"""Optional native accelerator for the counter-mode PRG.

The unmask plane's dominant cost is SHA-256 compressions: d = 2^20
elements is 2^18 blocks per mask and ~1,000 masks per round.  The pure
Python loop in :mod:`repro.crypto.prg` bottoms out around half a
microsecond per block — almost all of it per-block Python/hashlib
bookkeeping, not hashing.  This module removes that floor when (and only
when) the host can support it, by lazily compiling the self-contained C
kernel in ``_native/sha256ctr.c`` with the system C compiler and loading
it through :mod:`ctypes`.

Design constraints, in order:

- **No new dependencies.**  The kernel is first-party C with no
  includes beyond the C standard library; it is built with whatever
  ``cc``/``gcc``/``clang`` the host already has.  No compiler, no
  kernel — nothing is downloaded or installed.
- **Graceful fallback.**  Any failure — no compiler, compile error,
  load error, ``REPRO_NATIVE=0`` in the environment — makes
  :func:`load` return ``None`` (memoized), and callers silently keep
  the pure-Python path.  The two paths are bit-identical by
  construction (same ``SHA256(seed ∥ ctr)`` stream) and parity-pinned
  by test whenever the kernel is available.
- **Self-invalidating cache.**  The shared object lands in a
  gitignored ``_native/_build/`` directory next to the source, named by
  a hash of the source text, so editing the C file rebuilds and stale
  artifacts are never picked up.

The kernel itself dispatches at runtime between a portable scalar
SHA-256 and an SHA-NI path on x86-64 CPUs that have it (~10× again over
scalar C).  ``ctypes`` releases the GIL around the foreign call, so
:class:`repro.parallel.WorkerPool` fan-out scales the native path across
cores too.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import sysconfig
import tempfile
import threading
from pathlib import Path
from typing import Optional

_SRC = Path(__file__).resolve().parent / "_native" / "sha256ctr.c"
_BUILD_DIR = _SRC.parent / "_build"

# Messages are seed ∥ be64(counter); the kernel requires them to fit a
# single padded SHA-256 block (seedlen + 8 ≤ 55).  Protocol seeds are
# 32 bytes (DH agreement digests / random_seed(32)).
MAX_SEED_LEN = 47

_lock = threading.Lock()
_loaded = False
_lib: Optional[ctypes.CDLL] = None


def _compilers() -> list[str]:
    """Candidate C compilers, most specific first."""
    cands = []
    cc = sysconfig.get_config_var("CC")
    if cc:
        cands.append(cc.split()[0])
    cands.extend(["cc", "gcc", "clang"])
    seen: set[str] = set()
    return [c for c in cands if not (c in seen or seen.add(c))]


def _build() -> Optional[ctypes.CDLL]:
    src = _SRC.read_text()
    tag = hashlib.sha256(src.encode()).hexdigest()[:16]
    sofile = _BUILD_DIR / f"sha256ctr-{tag}.so"
    if not sofile.exists():
        _BUILD_DIR.mkdir(parents=True, exist_ok=True)
        built = False
        for cc in _compilers():
            # Compile to a temp name and rename into place so a
            # concurrent builder can never load a half-written object.
            fd, tmp = tempfile.mkstemp(
                suffix=".so", prefix="sha256ctr-", dir=_BUILD_DIR
            )
            os.close(fd)
            try:
                subprocess.run(
                    [cc, "-O3", "-fPIC", "-shared", str(_SRC), "-o", tmp],
                    check=True,
                    capture_output=True,
                    timeout=120,
                )
                os.replace(tmp, sofile)
                built = True
                break
            except (OSError, subprocess.SubprocessError):
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
        if not built:
            return None
    lib = ctypes.CDLL(str(sofile))
    lib.repro_sha256_ctr.argtypes = [
        ctypes.c_char_p,
        ctypes.c_size_t,
        ctypes.c_uint64,
        ctypes.c_uint64,
        ctypes.c_char_p,
    ]
    lib.repro_sha256_ctr.restype = ctypes.c_int
    lib.repro_sha256_ctr_backend.argtypes = []
    lib.repro_sha256_ctr_backend.restype = ctypes.c_int
    return lib


def load() -> Optional[ctypes.CDLL]:
    """The loaded kernel, building it on first call; ``None`` on failure."""
    global _loaded, _lib
    if _loaded:
        return _lib
    with _lock:
        if _loaded:
            return _lib
        lib = None
        if os.environ.get("REPRO_NATIVE", "1") != "0":
            try:
                lib = _build()
                if lib is not None:
                    # One sanity digest before trusting it: block 0 of an
                    # all-zero seed must match hashlib.
                    probe = ctypes.create_string_buffer(32)
                    seed = b"\x00" * 32
                    rc = lib.repro_sha256_ctr(seed, len(seed), 0, 1, probe)
                    want = hashlib.sha256(seed + (0).to_bytes(8, "big"))
                    if rc != 0 or probe.raw != want.digest():
                        lib = None
            except Exception:
                lib = None
        _lib = lib
        _loaded = True
    return _lib


def backend_name() -> str:
    """Which expansion backend is active (for bench metadata)."""
    lib = load()
    if lib is None:
        return "python"
    return {1: "c-scalar", 2: "c-sha-ni"}.get(
        lib.repro_sha256_ctr_backend(), "c-unknown"
    )


def sha256_ctr_stream(seed: bytes, nblocks: int, ctr0: int = 0) -> Optional[bytearray]:
    """``nblocks`` · 32 bytes of ``SHA256(seed ∥ be64(ctr))`` stream.

    Returns ``None`` when the kernel is unavailable or the seed is too
    long for the single-block message layout — callers fall back to the
    pure-Python loop, which produces the identical stream.
    """
    if len(seed) > MAX_SEED_LEN:
        return None
    lib = load()
    if lib is None:
        return None
    out = bytearray(32 * nblocks)
    if nblocks:
        buf = (ctypes.c_char * len(out)).from_buffer(out)
        rc = lib.repro_sha256_ctr(seed, len(seed), ctr0, nblocks, buf)
        if rc != 0:
            return None
    return out
