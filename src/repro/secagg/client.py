"""The SecAgg client state machine (Fig. 5, user side).

One instance lives for one aggregation round.  The stage methods must be
called in protocol order; each validates the server's broadcast before
responding, raising :class:`ProtocolAbort` on any inconsistency — the
"otherwise abort" arms of Fig. 5.

Malicious-mode behaviour (signature generation/verification and the
ConsistencyCheck stage) activates when the config says so and a PKI is
supplied.

The class exposes two extension points used by XNoise
(:mod:`repro.xnoise.protocol`):

- ``extra_secrets`` — labelled byte secrets Shamir-shared along with the
  mask key and self-mask seed in ShareKeys (XNoise: the noise-component
  seeds g_{u,k});
- :meth:`shares_of_extra_secret` — disclose held shares of peers' extra
  secrets on request (XNoise: ExcessiveNoiseRemoval).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.crypto.ae import AEError, AuthenticatedEncryption
from repro.crypto.dh import KeyAgreement, resolve_group
from repro.crypto.pki import PublicKeyInfrastructure
from repro.crypto.shamir import Share, ShamirSecretSharing, random_seed
from repro.crypto.signature import SchnorrSigner
from repro.secagg import wire
from repro.crypto.prg import expand_uniform
from repro.secagg.masking import MaskAccumulator, self_mask
from repro.secagg.types import (
    AdvertiseKeysMsg,
    MaskedInputMsg,
    ProtocolAbort,
    SecAggConfig,
    UnmaskingMsg,
)


def _advertise_message_bytes(msg: AdvertiseKeysMsg) -> bytes:
    return msg.c_public.to_bytes(256, "big") + msg.s_public.to_bytes(256, "big")


def consistency_message(round_index: int, u3: list[int]) -> bytes:
    """The ``r ∥ U3`` byte string signed in ConsistencyCheck."""
    body = ",".join(str(u) for u in sorted(u3))
    return f"round:{round_index}|u3:{body}".encode("utf-8")


class SecAggClient:
    """One sampled client's view of a secure-aggregation round."""

    def __init__(
        self,
        client_id: int,
        config: SecAggConfig,
        graph: dict[int, set[int]] | None = None,
        signer: Optional[SchnorrSigner] = None,
        pki: Optional[PublicKeyInfrastructure] = None,
        round_index: int = 0,
        extra_secrets: dict[str, bytes] | None = None,
    ):
        if config.malicious and (signer is None or pki is None):
            raise ValueError("malicious mode requires a signer and a PKI")
        self.id = client_id
        self.config = config
        self.round_index = round_index
        self._ka = KeyAgreement(resolve_group(config.dh_group))
        self._signer = signer
        self._pki = pki
        self._graph = graph
        self.extra_secrets = dict(extra_secrets or {})

        self._c_pair = self._ka.generate()
        self._s_pair = self._ka.generate()
        self._b_seed: bytes = b""
        self._roster: dict[int, AdvertiseKeysMsg] = {}
        self._neighbors: set[int] = set()
        self._received_ciphertexts: dict[int, bytes] = {}
        self._u2: set[int] = set()
        self._u3: set[int] = set()

    # ------------------------------------------------------------------
    # Stage 0 — AdvertiseKeys
    # ------------------------------------------------------------------
    def advertise_keys(self) -> AdvertiseKeysMsg:
        """Generate the two key pairs and advertise the public halves."""
        msg = AdvertiseKeysMsg(
            sender=self.id,
            c_public=self._c_pair.public,
            s_public=self._s_pair.public,
        )
        if self.config.malicious:
            assert self._signer is not None
            sig = self._signer.sign(_advertise_message_bytes(msg))
            msg = AdvertiseKeysMsg(
                sender=self.id,
                c_public=msg.c_public,
                s_public=msg.s_public,
                signature=sig,
            )
        return msg

    # ------------------------------------------------------------------
    # Stage 1 — ShareKeys
    # ------------------------------------------------------------------
    def share_keys(
        self, roster: dict[int, AdvertiseKeysMsg], graph: dict[int, set[int]]
    ) -> dict[int, bytes]:
        """Validate the roster and distribute encrypted shares.

        Returns ``recipient id → AE ciphertext``.  Shares of the masking
        key s^SK, the self-mask seed b_u, and every extra secret are cut
        with the same threshold t among this client's graph neighbors.
        """
        if self.id not in roster:
            raise ProtocolAbort(f"client {self.id} missing from roster")
        if len(roster) < self.config.threshold:
            raise ProtocolAbort(
                f"roster of {len(roster)} below threshold {self.config.threshold}"
            )
        publics = [(m.c_public, m.s_public) for m in roster.values()]
        flat = [k for pair in publics for k in pair]
        if len(set(flat)) != len(flat):
            raise ProtocolAbort("duplicate public keys in roster")
        if self.config.malicious:
            assert self._pki is not None
            for peer, msg in roster.items():
                if msg.signature is None or not self._pki.verifier(peer).verify(
                    _advertise_message_bytes(msg), msg.signature
                ):
                    raise ProtocolAbort(f"bad key signature from {peer}")

        self._roster = dict(roster)
        self._graph = graph
        self._neighbors = set(graph.get(self.id, set())) & set(roster)
        if len(self._neighbors) < self.config.threshold:
            raise ProtocolAbort(
                f"only {len(self._neighbors)} neighbors; threshold "
                f"{self.config.threshold} unsatisfiable"
            )

        self._b_seed = random_seed(32)
        ss = ShamirSecretSharing(self.config.threshold)
        # Fig. 5 cuts shares over all of U1 including the dealer itself;
        # the dealer keeps its own share and may reveal it in Unmasking.
        holder_ids = sorted(self._neighbors | {self.id})
        neighbor_ids = sorted(self._neighbors)
        s_sk_bytes = self._s_pair.secret.to_bytes(256, "big")
        s_shares = ss.share(s_sk_bytes, holder_ids)
        b_shares = ss.share(self._b_seed, holder_ids)
        extra_shares: dict[str, dict[int, Share]] = {
            label: ss.share(secret, holder_ids)
            for label, secret in self.extra_secrets.items()
        }
        self._own_shares = (
            s_shares[self.id],
            b_shares[self.id],
            {label: shares[self.id] for label, shares in extra_shares.items()},
        )

        ciphertexts: dict[int, bytes] = {}
        for peer in neighbor_ids:
            payload = wire.encode_share_payload(
                sender=self.id,
                recipient=peer,
                s_sk_share=s_shares[peer],
                b_share=b_shares[peer],
                extra_shares={lbl: shares[peer] for lbl, shares in extra_shares.items()},
            )
            key = self._ka.agree(self._c_pair, self._roster[peer].c_public)
            ciphertexts[peer] = AuthenticatedEncryption(key).encrypt(payload)
        return ciphertexts

    # ------------------------------------------------------------------
    # Stage 2 — MaskedInputCollection
    # ------------------------------------------------------------------
    def masked_input(
        self, ciphertexts: dict[int, bytes], update_ring: np.ndarray
    ) -> MaskedInputMsg:
        """Store routed ciphertexts and upload the masked input.

        ``update_ring`` is the already DP-encoded vector in Z_{2^b}.
        """
        update_ring = np.asarray(update_ring, dtype=np.int64)
        if update_ring.shape != (self.config.dimension,):
            raise ProtocolAbort(
                f"input shape {update_ring.shape} != ({self.config.dimension},)"
            )
        self._received_ciphertexts = dict(ciphertexts)
        self._u2 = (set(ciphertexts) & set(self._roster)) | {self.id}
        if len(self._u2) < self.config.threshold:
            raise ProtocolAbort(
                f"|U2| = {len(self._u2)} below threshold {self.config.threshold}"
            )

        modulus = self.config.modulus
        peers = sorted(self._neighbors & self._u2)
        # Input + self mask + one pairwise mask per live neighbor, summed
        # with one deferred reduction (int64 headroom guard inside).
        # The pairwise sign γ (p_{u,v} = γ·PRG(s_{u,v}), γ = +1 iff
        # u > v) folds into the accumulation: subtracting the raw
        # expansion equals adding ``(−PRG(s)) % R`` without the extra
        # full-vector negate-and-reduce pass `pairwise_mask` pays.
        acc = MaskAccumulator(update_ring, modulus, n_terms=2 + len(peers))
        acc.add(self_mask(self._b_seed, self.config.dimension, modulus))
        for peer in peers:
            seed = self._ka.agree(self._s_pair, self._roster[peer].s_public)
            base = expand_uniform(seed, self.config.dimension, modulus)
            if self.id > peer:
                acc.add(base)
            else:
                acc.sub(base)
        return MaskedInputMsg(sender=self.id, masked_vector=acc.finish())

    # ------------------------------------------------------------------
    # Stage 3 — ConsistencyCheck (malicious mode only)
    # ------------------------------------------------------------------
    def consistency_check(self, u3: list[int]):
        """Sign ``r ∥ U3`` so the server cannot equivocate about survivors."""
        self._u3 = set(u3)
        if len(self._u3) < self.config.threshold:
            raise ProtocolAbort(f"|U3| = {len(self._u3)} below threshold")
        if self.id not in self._u3:
            raise ProtocolAbort("server excluded me from U3 I contributed to")
        if not self.config.malicious:
            return None
        assert self._signer is not None
        return self._signer.sign(consistency_message(self.round_index, u3))

    # ------------------------------------------------------------------
    # Stage 4 — Unmasking
    # ------------------------------------------------------------------
    def unmask(
        self,
        u4: list[int],
        u4_signatures: dict[int, object] | None,
        dropped: list[int],
        survivors: list[int],
        revealed_seeds: dict[int, bytes] | None = None,
    ) -> UnmaskingMsg:
        """Reveal shares: mask keys of the dropped, self-mask seeds of survivors.

        The dropped/survivor lists must be disjoint — revealing both
        secrets of one client would expose its input, so the client
        refuses (this is the critical privacy invariant of SecAgg).
        """
        dropped_set, survivor_set = set(dropped), set(survivors)
        if dropped_set & survivor_set:
            raise ProtocolAbort("server requested both secrets of one client")
        if not survivor_set <= self._u3 or self._u3 - survivor_set:
            # Survivor list must be exactly the U3 the client saw.
            raise ProtocolAbort("survivor list inconsistent with U3")
        if dropped_set & self._u3:
            # With a k-regular graph the client only sees its neighborhood
            # slice of U2, so it cannot check membership — but a "dropped"
            # client that the client knows survived is a lying server.
            raise ProtocolAbort("dropped list overlaps the survivor set U3")
        if len(u4) < self.config.threshold:
            raise ProtocolAbort(f"|U4| = {len(u4)} below threshold")
        if not set(u4) <= self._u3:
            raise ProtocolAbort("U4 must be a subset of U3")
        if self.config.malicious:
            assert self._pki is not None
            if u4_signatures is None:
                raise ProtocolAbort("missing consistency signatures")
            expect = consistency_message(self.round_index, sorted(self._u3))
            for peer in u4:
                sig = u4_signatures.get(peer)
                if sig is None or not self._pki.verifier(peer).verify(expect, sig):
                    raise ProtocolAbort(f"bad consistency signature from {peer}")

        payloads = self._decrypt_payloads()
        s_sk_shares = {
            peer: payloads[peer][0] for peer in dropped_set if peer in payloads
        }
        b_shares = {
            peer: payloads[peer][1] for peer in survivor_set if peer in payloads
        }
        return UnmaskingMsg(
            sender=self.id,
            s_sk_shares=s_sk_shares,
            b_shares=b_shares,
            revealed_seeds=dict(revealed_seeds or {}),
        )

    # ------------------------------------------------------------------
    # XNoise extension hook
    # ------------------------------------------------------------------
    def shares_of_extra_secret(
        self, label_for: dict[int, list[str]]
    ) -> dict[int, dict[str, Share]]:
        """Disclose held shares of peers' labelled extra secrets.

        ``label_for`` maps peer id → labels requested.  Used by XNoise's
        ExcessiveNoiseRemoval to recover the noise seeds of survivors that
        dropped before revealing them (§3.2).
        """
        payloads = self._decrypt_payloads()
        response: dict[int, dict[str, Share]] = {}
        for peer, labels in label_for.items():
            if peer not in payloads:
                continue
            extras = payloads[peer][2]
            found = {lbl: extras[lbl] for lbl in labels if lbl in extras}
            if found:
                response[peer] = found
        return response

    # ------------------------------------------------------------------
    def _decrypt_payloads(self) -> dict[int, tuple[Share, Share, dict[str, Share]]]:
        """Decrypt and authenticate all stored ShareKeys ciphertexts.

        Includes this client's own (never-encrypted) shares of its own
        secrets, mirroring Fig. 5's SS.share over all of U1.
        """
        out: dict[int, tuple[Share, Share, dict[str, Share]]] = {}
        if hasattr(self, "_own_shares"):
            out[self.id] = self._own_shares
        for peer, blob in self._received_ciphertexts.items():
            if peer == self.id or peer not in self._roster:
                continue
            key = self._ka.agree(self._c_pair, self._roster[peer].c_public)
            try:
                plaintext = AuthenticatedEncryption(key).decrypt(blob)
                sender, recipient, s_share, b_share, extra = (
                    wire.decode_share_payload(plaintext)
                )
            except (AEError, ValueError) as exc:
                raise ProtocolAbort(f"bad ciphertext from {peer}: {exc}") from exc
            if sender != peer or recipient != self.id:
                raise ProtocolAbort(
                    f"misrouted payload: claims {sender}->{recipient}, "
                    f"expected {peer}->{self.id}"
                )
            out[peer] = (s_share, b_share, extra)
        return out
