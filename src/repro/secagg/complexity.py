"""Asymptotic cost accounting for secure-aggregation protocols.

§2.3.2 and §8 discuss the complexity gap that motivates SecAgg+: SecAgg
costs each client O(n) key agreements/shares and the server O(n²)
mask-expansion work, while SecAgg+'s k-regular graph (k = O(log n)) cuts
these to O(log n) and O(n log n).  This module computes the *exact*
per-round operation and byte counts from the protocol parameters, so the
asymptotics are checkable and the Fig.-2-style models have a grounded
counterpart.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.secagg.graph import recommended_degree

#: Wire-size constants (bytes) matching repro.secagg.codec / §6.3.
PUBLIC_KEY_BYTES = 256
CIPHERTEXT_OVERHEAD = 48  # nonce + tag
SHARE_BYTES = 300  # one encoded Shamir share of a 256-byte secret


@dataclass(frozen=True)
class ClientCost:
    """One client's per-round operation counts."""

    key_agreements: int
    shares_generated: int
    ciphertexts_sent: int
    mask_expansions: int  # PRG expansions of model length
    upload_bytes_fixed: int  # excludes the masked vector itself

    @property
    def total_crypto_ops(self) -> int:
        return self.key_agreements + self.shares_generated + self.ciphertexts_sent


@dataclass(frozen=True)
class ServerCost:
    """The server's per-round operation counts."""

    reconstructions: int
    mask_expansions: int
    routed_ciphertexts: int


def secagg_client_cost(n_clients: int, dropout_rate: float = 0.0) -> ClientCost:
    """Per-client cost of full SecAgg: everything is O(n)."""
    if n_clients < 2:
        raise ValueError("need at least 2 clients")
    neighbors = n_clients - 1
    return ClientCost(
        key_agreements=2 * neighbors,  # c- and s-channel per peer
        shares_generated=2 * (neighbors + 1),  # s_sk and b over U1
        ciphertexts_sent=neighbors,
        mask_expansions=neighbors + 1,  # pairwise + self
        upload_bytes_fixed=2 * PUBLIC_KEY_BYTES
        + neighbors * (2 * SHARE_BYTES + CIPHERTEXT_OVERHEAD),
    )


def secagg_plus_client_cost(
    n_clients: int, degree: int | None = None
) -> ClientCost:
    """Per-client cost of SecAgg+: everything is O(k) = O(log n)."""
    if n_clients < 2:
        raise ValueError("need at least 2 clients")
    k = degree if degree is not None else recommended_degree(n_clients)
    k = min(k, n_clients - 1)
    return ClientCost(
        key_agreements=2 * k,
        shares_generated=2 * (k + 1),
        ciphertexts_sent=k,
        mask_expansions=k + 1,
        upload_bytes_fixed=2 * PUBLIC_KEY_BYTES
        + k * (2 * SHARE_BYTES + CIPHERTEXT_OVERHEAD),
    )


def secagg_server_cost(
    n_clients: int, dropout_rate: float = 0.0, degree: int | None = None
) -> ServerCost:
    """Server cost; ``degree=None`` → full SecAgg (k = n−1).

    Mask expansions: one self-mask per survivor plus, for every dropped
    client, one pairwise mask per surviving neighbor — the O(n²) term
    under dropout (O(n·log n) for SecAgg+).
    """
    if n_clients < 2:
        raise ValueError("need at least 2 clients")
    if not 0 <= dropout_rate < 1:
        raise ValueError("dropout_rate must be in [0, 1)")
    k = (n_clients - 1) if degree is None else min(degree, n_clients - 1)
    dropped = int(round(n_clients * dropout_rate))
    survivors = n_clients - dropped
    return ServerCost(
        reconstructions=survivors + dropped,  # b_u's and s_sk's
        mask_expansions=survivors + dropped * min(survivors, k),
        routed_ciphertexts=n_clients * k,
    )


def crossover_population(base: float = 3.0) -> int:
    """Smallest n where SecAgg+'s per-client work beats SecAgg's.

    k = ⌈base·log₂ n⌉ < n − 1 — solvable by scan; the answer is small
    (tens), matching the regime where SecAgg+ starts to pay off.
    """
    n = 3
    while True:
        k = math.ceil(base * math.log2(n))
        if k < n - 1:
            return n
        n += 1
