"""Byte-level codecs for encrypted share payloads.

The ShareKeys ciphertext of Fig. 5 carries
``u ∥ v ∥ s^SK_{u,v} ∥ b_{u,v} [∥ g_{u,1,v} … g_{u,T,v}]`` — sender id,
recipient id, one Shamir share of the mask key, one of the self-mask
seed, and (with XNoise) one share of each noise-component seed.  These
helpers give that concatenation an unambiguous, length-prefixed encoding
so a tampered or mis-routed payload fails to parse instead of being
misinterpreted.
"""

from __future__ import annotations

from repro.crypto.shamir import Share


def encode_fields(fields: list[bytes]) -> bytes:
    """Length-prefixed concatenation (4-byte big-endian lengths)."""
    out = bytearray()
    for f in fields:
        out += len(f).to_bytes(4, "big")
        out += f
    return bytes(out)


def decode_fields(data: bytes) -> list[bytes]:
    """Inverse of :func:`encode_fields`; raises ``ValueError`` on garbage."""
    fields = []
    i = 0
    while i < len(data):
        if i + 4 > len(data):
            raise ValueError("truncated field header")
        n = int.from_bytes(data[i : i + 4], "big")
        i += 4
        if i + n > len(data):
            raise ValueError("truncated field body")
        fields.append(data[i : i + n])
        i += n
    return fields


def encode_share(share: Share) -> bytes:
    """Serialize one Shamir share (16 bytes per polynomial evaluation)."""
    parts = [
        share.x.to_bytes(8, "big"),
        share.secret_len.to_bytes(4, "big"),
        len(share.ys).to_bytes(2, "big"),
    ]
    parts += [y.to_bytes(16, "big") for y in share.ys]
    return b"".join(parts)


def decode_share(data: bytes) -> Share:
    """Inverse of :func:`encode_share`."""
    if len(data) < 14:
        raise ValueError("share encoding too short")
    x = int.from_bytes(data[:8], "big")
    secret_len = int.from_bytes(data[8:12], "big")
    count = int.from_bytes(data[12:14], "big")
    body = data[14:]
    if len(body) != 16 * count:
        raise ValueError("share encoding length mismatch")
    ys = tuple(
        int.from_bytes(body[i * 16 : (i + 1) * 16], "big") for i in range(count)
    )
    return Share(x=x, ys=ys, secret_len=secret_len)


def encode_share_payload(
    sender: int,
    recipient: int,
    s_sk_share: Share,
    b_share: Share,
    extra_shares: dict[str, Share] | None = None,
) -> bytes:
    """The full plaintext of one ShareKeys ciphertext."""
    fields = [
        sender.to_bytes(8, "big"),
        recipient.to_bytes(8, "big"),
        encode_share(s_sk_share),
        encode_share(b_share),
    ]
    for label in sorted(extra_shares or {}):
        fields.append(label.encode("utf-8"))
        fields.append(encode_share(extra_shares[label]))
    return encode_fields(fields)


def decode_share_payload(
    data: bytes,
) -> tuple[int, int, Share, Share, dict[str, Share]]:
    """Inverse of :func:`encode_share_payload`."""
    fields = decode_fields(data)
    if len(fields) < 4 or len(fields) % 2 != 0:
        raise ValueError("malformed share payload")
    sender = int.from_bytes(fields[0], "big")
    recipient = int.from_bytes(fields[1], "big")
    s_share = decode_share(fields[2])
    b_share = decode_share(fields[3])
    extra: dict[str, Share] = {}
    rest = fields[4:]
    for i in range(0, len(rest), 2):
        label = rest[i].decode("utf-8")
        extra[label] = decode_share(rest[i + 1])
    return sender, recipient, s_share, b_share, extra
