"""Byte-level codecs for encrypted share payloads.

The ShareKeys ciphertext of Fig. 5 carries
``u ∥ v ∥ s^SK_{u,v} ∥ b_{u,v} [∥ g_{u,1,v} … g_{u,T,v}]`` — sender id,
recipient id, one Shamir share of the mask key, one of the self-mask
seed, and (with XNoise) one share of each noise-component seed.  These
helpers give that concatenation an unambiguous, length-prefixed encoding
so a tampered or mis-routed payload fails to parse instead of being
misinterpreted.
"""

from __future__ import annotations

from repro.crypto.shamir import Share


def encode_fields(fields: list[bytes]) -> bytes:
    """Length-prefixed concatenation (4-byte big-endian lengths)."""
    out = bytearray()
    for f in fields:
        out += len(f).to_bytes(4, "big")
        out += f
    return bytes(out)


def decode_fields(data: bytes) -> list[bytes]:
    """Inverse of :func:`encode_fields`; raises ``ValueError`` on garbage."""
    fields = []
    i = 0
    while i < len(data):
        if i + 4 > len(data):
            raise ValueError("truncated field header")
        n = int.from_bytes(data[i : i + 4], "big")
        i += 4
        if i + n > len(data):
            raise ValueError("truncated field body")
        fields.append(data[i : i + n])
        i += n
    return fields


def encode_share(share: Share) -> bytes:
    """Serialize one Shamir share (16 bytes per polynomial evaluation).

    Field widths are fixed (x: 8 bytes, secret_len: 4, count: 2, each
    y: 16), so every out-of-range field is validated here and raises a
    ``ValueError`` naming the field — never a raw ``OverflowError``
    from ``int.to_bytes``.
    """
    if not 0 <= share.x < 1 << 64:
        raise ValueError(
            f"share field 'x' = {share.x} outside [0, 2**64)"
        )
    if not 0 <= share.secret_len < 1 << 32:
        raise ValueError(
            f"share field 'secret_len' = {share.secret_len} outside [0, 2**32)"
        )
    if len(share.ys) >= 1 << 16:
        raise ValueError(
            f"share field 'ys' has {len(share.ys)} evaluations (max {(1 << 16) - 1})"
        )
    for i, y in enumerate(share.ys):
        if not 0 <= y < 1 << 128:
            raise ValueError(
                f"share field 'ys[{i}]' = {y} outside [0, 2**128)"
            )
    parts = [
        share.x.to_bytes(8, "big"),
        share.secret_len.to_bytes(4, "big"),
        len(share.ys).to_bytes(2, "big"),
    ]
    parts += [y.to_bytes(16, "big") for y in share.ys]
    return b"".join(parts)


def decode_share(data: bytes) -> Share:
    """Inverse of :func:`encode_share`."""
    if len(data) < 14:
        raise ValueError("share encoding too short")
    x = int.from_bytes(data[:8], "big")
    secret_len = int.from_bytes(data[8:12], "big")
    count = int.from_bytes(data[12:14], "big")
    body = data[14:]
    if len(body) != 16 * count:
        raise ValueError("share encoding length mismatch")
    ys = tuple(
        int.from_bytes(body[i * 16 : (i + 1) * 16], "big") for i in range(count)
    )
    return Share(x=x, ys=ys, secret_len=secret_len)


def encode_share_payload(
    sender: int,
    recipient: int,
    s_sk_share: Share,
    b_share: Share,
    extra_shares: dict[str, Share] | None = None,
) -> bytes:
    """The full plaintext of one ShareKeys ciphertext."""
    if not 0 <= sender < 1 << 64:
        raise ValueError(f"share payload field 'sender' = {sender} outside [0, 2**64)")
    if not 0 <= recipient < 1 << 64:
        raise ValueError(
            f"share payload field 'recipient' = {recipient} outside [0, 2**64)"
        )
    fields = [
        sender.to_bytes(8, "big"),
        recipient.to_bytes(8, "big"),
        encode_share(s_sk_share),
        encode_share(b_share),
    ]
    for label in sorted(extra_shares or {}):
        fields.append(label.encode("utf-8"))
        fields.append(encode_share(extra_shares[label]))
    return encode_fields(fields)


def decode_share_payload(
    data: bytes,
) -> tuple[int, int, Share, Share, dict[str, Share]]:
    """Inverse of :func:`encode_share_payload`."""
    fields = decode_fields(data)
    if len(fields) < 4 or len(fields) % 2 != 0:
        raise ValueError("malformed share payload")
    sender = int.from_bytes(fields[0], "big")
    recipient = int.from_bytes(fields[1], "big")
    s_share = decode_share(fields[2])
    b_share = decode_share(fields[3])
    extra: dict[str, Share] = {}
    rest = fields[4:]
    for i in range(0, len(rest), 2):
        label = rest[i].decode("utf-8")
        if label in extra:
            raise ValueError(f"duplicate extra-share label {label!r}")
        extra[label] = decode_share(rest[i + 1])
    return sender, recipient, s_share, b_share, extra


def encode_share_bundle(bundle: dict[int, bytes]) -> bytes:
    """One client's ShareKeys outbox: ``recipient id → AE ciphertext``.

    Recipients are emitted in ascending id order, so equal bundles
    encode identically and the decoder can reject duplicates for free.
    """
    fields = []
    for recipient in sorted(bundle):
        if not 0 <= int(recipient) < 1 << 64:
            raise ValueError(
                f"share bundle recipient id {recipient} outside [0, 2**64)"
            )
        ciphertext = bundle[recipient]
        if not isinstance(ciphertext, (bytes, bytearray, memoryview)):
            # bytes(7) would silently emit seven NULs — refuse instead.
            raise ValueError(
                f"share bundle ciphertext for recipient {recipient} is "
                f"{type(ciphertext).__name__}, not bytes"
            )
        fields.append(int(recipient).to_bytes(8, "big"))
        fields.append(bytes(ciphertext))
    return encode_fields(fields)


def decode_share_bundle(data: bytes) -> dict[int, bytes]:
    """Inverse of :func:`encode_share_bundle`.

    Rejects duplicate and out-of-order recipient ids — a bundle that
    names one recipient twice is malformed, not "last entry wins".
    """
    fields = decode_fields(data)
    if len(fields) % 2 != 0:
        raise ValueError("malformed share bundle: odd field count")
    bundle: dict[int, bytes] = {}
    previous = -1
    for i in range(0, len(fields), 2):
        if len(fields[i]) != 8:
            raise ValueError("malformed share bundle: bad recipient id width")
        recipient = int.from_bytes(fields[i], "big")
        if recipient == previous:
            raise ValueError(f"duplicate recipient id {recipient} in share bundle")
        if recipient < previous:
            raise ValueError("share bundle recipient ids out of order")
        bundle[recipient] = fields[i + 1]
        previous = recipient
    return bundle
