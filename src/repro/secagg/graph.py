"""Communication graphs for secure aggregation.

SecAgg masks every pair of clients — a complete graph, O(|U|²) pairwise
work.  SecAgg+ (Bell et al., CCS'20) cuts this to (poly)logarithmic cost
by masking only along the edges of a random k-regular graph with
k = O(log n), at a slight cost in dropout/collusion robustness (§2.3.2).

Both cases expose the same interface: given the stage-0 roster, return
each client's neighbor set.  The graph must be a *public, deterministic*
function of the roster and a public seed so every party derives the same
topology.
"""

from __future__ import annotations

import math

import networkx as nx


class CompleteGraph:
    """All-pairs masking — the original SecAgg topology."""

    def build(self, roster: list[int]) -> dict[int, set[int]]:
        members = set(roster)
        return {u: members - {u} for u in roster}

    def describe(self) -> str:
        return "complete"


class KRegularGraph:
    """Random k-regular masking graph — the SecAgg+ topology.

    The construction is deterministic in ``(roster, seed)``: node ids are
    sorted and mapped onto a ``networkx`` random regular graph.  If k·n is
    odd or k ≥ n (no such regular graph), the degree is adjusted downward
    to the nearest feasible value.
    """

    def __init__(self, degree: int, seed: int = 0):
        if degree < 1:
            raise ValueError("degree must be >= 1")
        self.degree = degree
        self.seed = seed

    def _feasible_degree(self, n: int) -> int:
        k = min(self.degree, n - 1)
        if k * n % 2 == 1:
            k -= 1
        return max(k, 1 if n > 1 else 0)

    def build(self, roster: list[int]) -> dict[int, set[int]]:
        ordered = sorted(roster)
        n = len(ordered)
        if n <= 1:
            return {u: set() for u in ordered}
        k = self._feasible_degree(n)
        if k >= n - 1:
            return CompleteGraph().build(roster)
        g = nx.random_regular_graph(k, n, seed=self.seed)
        return {
            ordered[node]: {ordered[nbr] for nbr in g.neighbors(node)}
            for node in g.nodes
        }

    def describe(self) -> str:
        return f"{self.degree}-regular"


def recommended_degree(n: int, base: float = 3.0) -> int:
    """SecAgg+'s k = O(log n) neighbor count.

    ``base`` multiplies log₂(n); 3·log₂(n) gives the correctness and
    security margins of the Bell et al. parameterization for the failure
    probabilities used in practice.  Clamped to [2, n−1].
    """
    if n <= 2:
        return max(n - 1, 1)
    k = int(math.ceil(base * math.log2(n)))
    return max(2, min(k, n - 1))


def build_graph(config, roster: list[int]) -> dict[int, set[int]]:
    """Construct the public masking graph over the stage-0 roster."""
    if config.graph_degree is None:
        return CompleteGraph().build(roster)
    return KRegularGraph(config.graph_degree, config.graph_seed).build(roster)
