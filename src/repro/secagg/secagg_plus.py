"""SecAgg+ configuration helpers.

SecAgg+ (Bell et al., CCS'20) is SecAgg over a random k-regular
communication graph with k = O(log n): each client only key-agrees,
masks, and secret-shares with its k neighbors, cutting the per-client
cost from O(n) to O(log n) and the server's from O(n²) to O(n·log n).
The protocol logic is unchanged — only the graph and the (per-
neighborhood) threshold differ — so this module just produces the right
:class:`SecAggConfig`.
"""

from __future__ import annotations

import math

from repro.secagg.graph import recommended_degree
from repro.secagg.types import SecAggConfig


def secagg_plus_config(
    n_clients: int,
    bits: int = 20,
    dimension: int = 16,
    malicious: bool = False,
    degree: int | None = None,
    threshold_fraction: float = 0.55,
    graph_seed: int = 0,
    dh_group: str = "modp2048",
) -> SecAggConfig:
    """A :class:`SecAggConfig` parameterized the SecAgg+ way.

    The Shamir threshold applies within each k-neighborhood, so it is a
    fraction of the degree rather than of n.  ``threshold_fraction``
    defaults just above 1/2, the regime Bell et al. analyze.
    """
    if n_clients < 2:
        raise ValueError("SecAgg+ needs at least 2 clients")
    k = degree if degree is not None else recommended_degree(n_clients)
    k = min(k, n_clients - 1)
    threshold = max(2, int(math.ceil(threshold_fraction * k)))
    if threshold > k:
        threshold = k
    return SecAggConfig(
        threshold=threshold,
        bits=bits,
        dimension=dimension,
        malicious=malicious,
        graph_degree=k,
        graph_seed=graph_seed,
        dh_group=dh_group,
    )


__all__ = ["secagg_plus_config", "recommended_degree"]
