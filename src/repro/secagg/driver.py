"""Round driver: runs a full SecAgg round with injected client dropout.

Execution now flows through the unified :class:`repro.engine.RoundEngine`:
the Fig.-5 workflow is declared by
:class:`repro.secagg.workflow.SecAggWorkflowServer`, client operations
fan out concurrently over the engine's transport, and dropout — the role
this module's old synchronous loop played inline — is injected by
:class:`repro.engine.DropoutTransport` middleware.  The paper's dropout
model (§6.1) — "clients drop out after being sampled but before sending
their masked and perturbed update" — corresponds to scheduling dropouts
before ``STAGE_MASKED_INPUT``; any stage works, so tests can also
exercise mid-unmasking failures.

The pre-engine serial loop is retained as
:func:`run_secagg_round_reference` — the executable specification the
engine path is regression-tested against (bit-identical aggregates,
participant sets, and traffic).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.crypto.pki import PublicKeyInfrastructure
from repro.engine import RoundEngine
from repro.engine.core import run_sync
from repro.secagg.client import SecAggClient
from repro.secagg.graph import build_graph  # noqa: F401  (re-export)
from repro.secagg.server import SecAggServer
from repro.secagg.workflow import (
    SecAggWorkflowClient,
    SecAggWorkflowServer,
    secagg_stage_of,  # noqa: F401  (re-export)
    with_dropout,
)
from repro.secagg.types import (
    ProtocolAbort,
    RoundResult,
    SecAggConfig,
    TrafficMeter,
    STAGE_ADVERTISE,
    STAGE_SHARE_KEYS,
    STAGE_MASKED_INPUT,
    STAGE_CONSISTENCY,
    STAGE_UNMASK,
)


@dataclass
class DropoutSchedule:
    """Which clients disappear before which stage.

    ``at_stage[s]`` is the set of client ids that stop responding from
    stage ``s`` onward.  A dropped client never comes back within the
    round.
    """

    at_stage: dict[int, set[int]] = field(default_factory=dict)

    @classmethod
    def before_upload(cls, client_ids: set[int]) -> "DropoutSchedule":
        """The paper's canonical model: drop before the masked upload."""
        return cls(at_stage={STAGE_MASKED_INPUT: set(client_ids)})

    def dropped_by(self, stage: int) -> set[int]:
        gone: set[int] = set()
        for s, ids in self.at_stage.items():
            if s <= stage:
                gone |= ids
        return gone


def resolve_round_pki(
    config: SecAggConfig,
    pki: Optional[PublicKeyInfrastructure],
    client_factory,
) -> Optional[PublicKeyInfrastructure]:
    """Default PKI for a round whose clients are built internally.

    Malicious mode needs one PKI shared by clients and server; when the
    caller supplied neither it nor a client factory, create it here so
    both sides of the round see the same instance.
    """
    if client_factory is None and config.malicious and pki is None:
        return PublicKeyInfrastructure()
    return pki


def make_secagg_clients(
    config: SecAggConfig,
    sampled: list[int],
    pki: Optional[PublicKeyInfrastructure],
    round_index: int,
    client_factory: Optional[Callable[[int], SecAggClient]],
    client_cls: type = SecAggClient,
    client_config=None,
) -> dict[int, SecAggClient]:
    """Instantiate one round's clients (registering PKI identities).

    ``client_cls``/``client_config`` let protocol extensions reuse the
    signer/PKI bookkeeping with their own client class (XNoise passes
    ``XNoiseClient`` and its :class:`XNoiseConfig`).

    In malicious mode the caller must supply the PKI (the same instance
    its server uses) — creating one here would silently leave the
    server unable to verify the identities registered for the clients.
    """
    if client_factory is None:
        signers = {}
        if config.malicious:
            if pki is None:
                raise ValueError(
                    "malicious mode requires a shared PKI: construct one "
                    "and pass the same instance to the clients and server"
                )
            for u in sampled:
                if pki.is_registered(u):
                    raise ValueError(
                        f"client {u} already registered in the PKI; pass a "
                        "client_factory that holds the existing signing keys"
                    )
                signers[u] = pki.register(u)
        build_config = config if client_config is None else client_config

        def client_factory(u: int) -> SecAggClient:
            return client_cls(
                u,
                build_config,
                signer=signers.get(u),
                pki=pki,
                round_index=round_index,
            )

    return {u: client_factory(u) for u in sampled}


def secagg_round_components(
    config: SecAggConfig,
    inputs: dict[int, np.ndarray],
    pki: Optional[PublicKeyInfrastructure] = None,
    round_index: int = 0,
    client_factory: Optional[Callable[[int], SecAggClient]] = None,
) -> tuple[SecAggWorkflowServer, list[SecAggWorkflowClient]]:
    """(declared server, declared clients) for one engine-executed round."""
    sampled = sorted(inputs)
    pki = resolve_round_pki(config, pki, client_factory)
    clients = make_secagg_clients(
        config, sampled, pki, round_index, client_factory
    )
    server = SecAggServer(config, pki=pki, round_index=round_index)
    return (
        SecAggWorkflowServer(server),
        [SecAggWorkflowClient(clients[u], inputs[u]) for u in sampled],
    )


async def arun_secagg_round(
    config: SecAggConfig,
    inputs: dict[int, np.ndarray],
    dropout: Optional[DropoutSchedule] = None,
    pki: Optional[PublicKeyInfrastructure] = None,
    round_index: int = 0,
    client_factory: Optional[Callable[[int], SecAggClient]] = None,
    engine: Optional[RoundEngine] = None,
) -> RoundResult:
    """Execute one secure-aggregation round on the engine (async).

    Dropout middleware wraps the engine's own transport, so a caller
    that configured e.g. a :class:`SimulatedNetworkTransport` keeps its
    latency model.
    """
    server, clients = secagg_round_components(
        config, inputs, pki, round_index, client_factory
    )
    engine = engine or RoundEngine()
    return await engine.run_round(
        server,
        clients,
        round_index=round_index,
        transport=with_dropout(engine.transport, dropout),
    )


def run_secagg_round(
    config: SecAggConfig,
    inputs: dict[int, np.ndarray],
    dropout: Optional[DropoutSchedule] = None,
    pki: Optional[PublicKeyInfrastructure] = None,
    round_index: int = 0,
    client_factory: Optional[Callable[[int], SecAggClient]] = None,
) -> RoundResult:
    """Execute one secure-aggregation round end to end.

    Parameters
    ----------
    inputs:
        ``client id → ring vector`` (already DP-encoded).  The key set is
        the sampled set U.
    dropout:
        Clients to silence before each stage; ``None`` → no dropout.
    client_factory:
        Override client construction (XNoise passes clients carrying
        noise seeds).  The factory must accept the client id.

    Returns the :class:`RoundResult` with the unmasked ring aggregate over
    U3 and per-stage traffic.  Raises :class:`ProtocolAbort` if any stage
    falls below threshold.
    """
    return run_sync(
        arun_secagg_round(
            config, inputs, dropout, pki, round_index, client_factory
        )
    )


def run_secagg_round_reference(
    config: SecAggConfig,
    inputs: dict[int, np.ndarray],
    dropout: Optional[DropoutSchedule] = None,
    pki: Optional[PublicKeyInfrastructure] = None,
    round_index: int = 0,
    client_factory: Optional[Callable[[int], SecAggClient]] = None,
) -> RoundResult:
    """The pre-engine synchronous driver, kept as executable specification.

    Regression tests run both this and the engine path on identical
    inputs and require bit-identical outcomes.  Do not add features here;
    new behavior belongs in the workflow/engine path.
    """
    dropout = dropout or DropoutSchedule()
    traffic = TrafficMeter()
    sampled = sorted(inputs)

    pki = resolve_round_pki(config, pki, client_factory)
    clients = make_secagg_clients(config, sampled, pki, round_index, client_factory)
    server = SecAggServer(config, pki=pki, round_index=round_index)

    # Stage 0 — AdvertiseKeys.
    alive = set(sampled) - dropout.dropped_by(STAGE_ADVERTISE)
    adverts = {u: clients[u].advertise_keys() for u in sorted(alive)}
    for _ in adverts:
        traffic.add_up(STAGE_ADVERTISE, 512 + (288 if config.malicious else 0))
    graph = build_graph(config, sorted(adverts))
    roster = server.collect_advertise(adverts, graph)
    traffic.add_down(STAGE_ADVERTISE, len(roster) * 512 * len(roster))

    # Stage 1 — ShareKeys.
    alive -= dropout.dropped_by(STAGE_SHARE_KEYS)
    outboxes = {}
    for u in sorted(alive & set(roster)):
        outboxes[u] = clients[u].share_keys(roster, graph)
        traffic.add_up(
            STAGE_SHARE_KEYS, sum(len(ct) for ct in outboxes[u].values())
        )
    inboxes = server.route_shares(outboxes)
    for box in inboxes.values():
        traffic.add_down(STAGE_SHARE_KEYS, sum(len(ct) for ct in box.values()))

    # Stage 2 — MaskedInputCollection.
    alive -= dropout.dropped_by(STAGE_MASKED_INPUT)
    masked = {}
    for u in sorted(alive & set(server.u2)):
        masked[u] = clients[u].masked_input(inboxes.get(u, {}), inputs[u])
        traffic.add_up(STAGE_MASKED_INPUT, config.vector_bytes)
    u3 = server.collect_masked(masked)
    traffic.add_down(STAGE_MASKED_INPUT, 8 * len(u3) * len(u3))

    # Stage 3 — ConsistencyCheck (malicious only).
    alive -= dropout.dropped_by(STAGE_CONSISTENCY)
    if config.malicious:
        sigs = {}
        for u in sorted(alive & set(u3)):
            sigs[u] = clients[u].consistency_check(u3)
            traffic.add_up(STAGE_CONSISTENCY, 288)
        u4, sig_set = server.collect_consistency(sigs)
        traffic.add_down(STAGE_CONSISTENCY, 288 * len(u4) * len(u4))
    else:
        for u in sorted(alive & set(u3)):
            clients[u].consistency_check(u3)
        u4, sig_set = server.skip_consistency(), None

    # Stage 4 — Unmasking.
    alive -= dropout.dropped_by(STAGE_UNMASK)
    dropped_list = server.dropped_after_masking
    unmask_msgs = {}
    for u in sorted(alive & set(u4)):
        msg = clients[u].unmask(
            u4, sig_set, dropped=dropped_list, survivors=list(u3)
        )
        unmask_msgs[u] = msg
        traffic.add_up(
            STAGE_UNMASK,
            300 * (len(msg.s_sk_shares) + len(msg.b_shares)),
        )
    aggregate = server.collect_unmask(unmask_msgs)

    return RoundResult(
        aggregate=aggregate,
        u1=list(server.u1),
        u2=list(server.u2),
        u3=list(server.u3),
        u4=list(server.u4),
        u5=list(server.u5),
        traffic=traffic,
    )
