"""Round driver: runs a full SecAgg round with injected client dropout.

The driver plays the network: it calls the client/server stage methods in
protocol order, withholds messages from clients scheduled to drop, and
meters traffic.  The paper's dropout model (§6.1) — "clients drop out
after being sampled but before sending their masked and perturbed
update" — corresponds to scheduling dropouts before
``STAGE_MASKED_INPUT``; the driver supports dropout before *any* stage so
tests can also exercise mid-unmasking failures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.crypto.pki import PublicKeyInfrastructure
from repro.secagg.client import SecAggClient
from repro.secagg.graph import CompleteGraph, KRegularGraph
from repro.secagg.server import SecAggServer
from repro.secagg.types import (
    ProtocolAbort,
    RoundResult,
    SecAggConfig,
    TrafficMeter,
    STAGE_ADVERTISE,
    STAGE_SHARE_KEYS,
    STAGE_MASKED_INPUT,
    STAGE_CONSISTENCY,
    STAGE_UNMASK,
)


@dataclass
class DropoutSchedule:
    """Which clients disappear before which stage.

    ``at_stage[s]`` is the set of client ids that stop responding from
    stage ``s`` onward.  A dropped client never comes back within the
    round.
    """

    at_stage: dict[int, set[int]] = field(default_factory=dict)

    @classmethod
    def before_upload(cls, client_ids: set[int]) -> "DropoutSchedule":
        """The paper's canonical model: drop before the masked upload."""
        return cls(at_stage={STAGE_MASKED_INPUT: set(client_ids)})

    def dropped_by(self, stage: int) -> set[int]:
        gone: set[int] = set()
        for s, ids in self.at_stage.items():
            if s <= stage:
                gone |= ids
        return gone


def build_graph(config: SecAggConfig, roster: list[int]) -> dict[int, set[int]]:
    """Construct the public masking graph over the stage-0 roster."""
    if config.graph_degree is None:
        return CompleteGraph().build(roster)
    return KRegularGraph(config.graph_degree, config.graph_seed).build(roster)


def _vector_bytes(config: SecAggConfig) -> int:
    """Wire size of one masked vector: dimension × b bits."""
    return config.dimension * config.bits // 8


def run_secagg_round(
    config: SecAggConfig,
    inputs: dict[int, np.ndarray],
    dropout: Optional[DropoutSchedule] = None,
    pki: Optional[PublicKeyInfrastructure] = None,
    round_index: int = 0,
    client_factory: Optional[Callable[[int], SecAggClient]] = None,
) -> RoundResult:
    """Execute one secure-aggregation round end to end.

    Parameters
    ----------
    inputs:
        ``client id → ring vector`` (already DP-encoded).  The key set is
        the sampled set U.
    dropout:
        Clients to silence before each stage; ``None`` → no dropout.
    client_factory:
        Override client construction (XNoise passes clients carrying
        noise seeds).  The factory must accept the client id.

    Returns the :class:`RoundResult` with the unmasked ring aggregate over
    U3 and per-stage traffic.  Raises :class:`ProtocolAbort` if any stage
    falls below threshold.
    """
    dropout = dropout or DropoutSchedule()
    traffic = TrafficMeter()
    sampled = sorted(inputs)

    if client_factory is None:
        signers = {}
        if config.malicious:
            pki = pki or PublicKeyInfrastructure()
            for u in sampled:
                if pki.is_registered(u):
                    raise ValueError(
                        f"client {u} already registered in the PKI; pass a "
                        "client_factory that holds the existing signing keys"
                    )
                signers[u] = pki.register(u)

        def client_factory(u: int) -> SecAggClient:
            return SecAggClient(
                u,
                config,
                signer=signers.get(u),
                pki=pki,
                round_index=round_index,
            )

    clients = {u: client_factory(u) for u in sampled}
    server = SecAggServer(config, pki=pki, round_index=round_index)

    # Stage 0 — AdvertiseKeys.
    alive = set(sampled) - dropout.dropped_by(STAGE_ADVERTISE)
    adverts = {u: clients[u].advertise_keys() for u in sorted(alive)}
    for _ in adverts:
        traffic.add_up(STAGE_ADVERTISE, 512 + (288 if config.malicious else 0))
    graph = build_graph(config, sorted(adverts))
    roster = server.collect_advertise(adverts, graph)
    traffic.add_down(STAGE_ADVERTISE, len(roster) * 512 * len(roster))

    # Stage 1 — ShareKeys.
    alive -= dropout.dropped_by(STAGE_SHARE_KEYS)
    outboxes = {}
    for u in sorted(alive & set(roster)):
        outboxes[u] = clients[u].share_keys(roster, graph)
        traffic.add_up(
            STAGE_SHARE_KEYS, sum(len(ct) for ct in outboxes[u].values())
        )
    inboxes = server.route_shares(outboxes)
    for box in inboxes.values():
        traffic.add_down(STAGE_SHARE_KEYS, sum(len(ct) for ct in box.values()))

    # Stage 2 — MaskedInputCollection.
    alive -= dropout.dropped_by(STAGE_MASKED_INPUT)
    masked = {}
    for u in sorted(alive & set(server.u2)):
        masked[u] = clients[u].masked_input(inboxes.get(u, {}), inputs[u])
        traffic.add_up(STAGE_MASKED_INPUT, _vector_bytes(config))
    u3 = server.collect_masked(masked)
    traffic.add_down(STAGE_MASKED_INPUT, 8 * len(u3) * len(u3))

    # Stage 3 — ConsistencyCheck (malicious only).
    alive -= dropout.dropped_by(STAGE_CONSISTENCY)
    if config.malicious:
        sigs = {}
        for u in sorted(alive & set(u3)):
            sigs[u] = clients[u].consistency_check(u3)
            traffic.add_up(STAGE_CONSISTENCY, 288)
        u4, sig_set = server.collect_consistency(sigs)
        traffic.add_down(STAGE_CONSISTENCY, 288 * len(u4) * len(u4))
    else:
        for u in sorted(alive & set(u3)):
            clients[u].consistency_check(u3)
        u4, sig_set = server.skip_consistency(), None

    # Stage 4 — Unmasking.
    alive -= dropout.dropped_by(STAGE_UNMASK)
    dropped_list = server.dropped_after_masking
    unmask_msgs = {}
    for u in sorted(alive & set(u4)):
        msg = clients[u].unmask(
            u4, sig_set, dropped=dropped_list, survivors=list(u3)
        )
        unmask_msgs[u] = msg
        traffic.add_up(
            STAGE_UNMASK,
            300 * (len(msg.s_sk_shares) + len(msg.b_shares)),
        )
    aggregate = server.collect_unmask(unmask_msgs)

    return RoundResult(
        aggregate=aggregate,
        u1=list(server.u1),
        u2=list(server.u2),
        u3=list(server.u3),
        u4=list(server.u4),
        u5=list(server.u5),
        traffic=traffic,
    )
