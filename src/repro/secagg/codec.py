"""Wire codecs for every protocol message.

The round driver passes Python objects in-process; a deployment ships
bytes.  This module gives each message type a canonical, length-prefixed
binary encoding — used by the traffic meter for *exact* payload sizes and
by tests to pin the wire format (a tampered or truncated encoding must
fail to parse, never mis-parse).

Format conventions: 4-byte big-endian length prefixes via
:mod:`repro.secagg.wire`; vectors as ``int64`` big-endian; group elements
at the group's fixed width.
"""

from __future__ import annotations

import numpy as np

from repro.crypto.signature import SchnorrSignature
from repro.secagg import wire
from repro.secagg.types import AdvertiseKeysMsg, MaskedInputMsg, UnmaskingMsg

_KEY_BYTES = 256  # MODP group elements (≤ 2048 bits)


def encode_advertise(msg: AdvertiseKeysMsg) -> bytes:
    fields = [
        msg.sender.to_bytes(8, "big"),
        msg.c_public.to_bytes(_KEY_BYTES, "big"),
        msg.s_public.to_bytes(_KEY_BYTES, "big"),
        msg.signature.to_bytes() if msg.signature is not None else b"",
    ]
    return wire.encode_fields(fields)


def decode_advertise(data: bytes) -> AdvertiseKeysMsg:
    fields = wire.decode_fields(data)
    if len(fields) != 4:
        raise ValueError("malformed AdvertiseKeys encoding")
    signature = (
        SchnorrSignature.from_bytes(fields[3]) if fields[3] else None
    )
    return AdvertiseKeysMsg(
        sender=int.from_bytes(fields[0], "big"),
        c_public=int.from_bytes(fields[1], "big"),
        s_public=int.from_bytes(fields[2], "big"),
        signature=signature,
    )


def encode_vector(vector: np.ndarray) -> bytes:
    return np.ascontiguousarray(vector, dtype=">i8").tobytes()


def decode_vector(data: bytes) -> np.ndarray:
    if len(data) % 8:
        raise ValueError("vector encoding must be a multiple of 8 bytes")
    return np.frombuffer(data, dtype=">i8").astype(np.int64)


def encode_masked_input(msg: MaskedInputMsg) -> bytes:
    return wire.encode_fields(
        [msg.sender.to_bytes(8, "big"), encode_vector(msg.masked_vector)]
    )


def decode_masked_input(data: bytes) -> MaskedInputMsg:
    fields = wire.decode_fields(data)
    if len(fields) != 2:
        raise ValueError("malformed MaskedInput encoding")
    return MaskedInputMsg(
        sender=int.from_bytes(fields[0], "big"),
        masked_vector=decode_vector(fields[1]),
    )


def _encode_share_map(shares: dict) -> bytes:
    fields = []
    for peer in sorted(shares):
        fields.append(int(peer).to_bytes(8, "big"))
        fields.append(wire.encode_share(shares[peer]))
    return wire.encode_fields(fields)


def _decode_share_map(data: bytes) -> dict:
    fields = wire.decode_fields(data)
    if len(fields) % 2:
        raise ValueError("malformed share map")
    return {
        int.from_bytes(fields[i], "big"): wire.decode_share(fields[i + 1])
        for i in range(0, len(fields), 2)
    }


def encode_unmasking(msg: UnmaskingMsg) -> bytes:
    seed_fields = []
    for k in sorted(msg.revealed_seeds):
        seed_fields.append(int(k).to_bytes(4, "big"))
        seed_fields.append(msg.revealed_seeds[k])
    return wire.encode_fields(
        [
            msg.sender.to_bytes(8, "big"),
            _encode_share_map(msg.s_sk_shares),
            _encode_share_map(msg.b_shares),
            wire.encode_fields(seed_fields),
        ]
    )


def decode_unmasking(data: bytes) -> UnmaskingMsg:
    fields = wire.decode_fields(data)
    if len(fields) != 4:
        raise ValueError("malformed Unmasking encoding")
    seed_fields = wire.decode_fields(fields[3])
    if len(seed_fields) % 2:
        raise ValueError("malformed revealed-seed list")
    seeds = {
        int.from_bytes(seed_fields[i], "big"): seed_fields[i + 1]
        for i in range(0, len(seed_fields), 2)
    }
    return UnmaskingMsg(
        sender=int.from_bytes(fields[0], "big"),
        s_sk_shares=_decode_share_map(fields[1]),
        b_shares=_decode_share_map(fields[2]),
        revealed_seeds=seeds,
    )


def message_bytes(msg) -> int:
    """Exact wire size of any protocol message (for traffic metering)."""
    if isinstance(msg, AdvertiseKeysMsg):
        return len(encode_advertise(msg))
    if isinstance(msg, MaskedInputMsg):
        return len(encode_masked_input(msg))
    if isinstance(msg, UnmaskingMsg):
        return len(encode_unmasking(msg))
    raise TypeError(f"unknown message type {type(msg).__name__}")
