"""The SecAgg server state machine (Fig. 5, server side).

The server is *untrusted*: it routes messages, tracks the per-stage
participant sets U1 ⊇ U2 ⊇ U3 ⊇ U4 ⊇ U5, and finally unmasks the sum

    z = Σ_{u∈U3} y_u − Σ_{u∈U3} p_u + Σ_{u∈U3, v∈U2\\U3} p_{v,u}

by reconstructing dropped clients' mask keys and survivors' self-mask
seeds from Shamir shares.  It learns the aggregate only — the privacy
argument lives in the client's refusal to reveal both secrets of any one
peer.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.crypto.dh import DHKeyPair, KeyAgreement, resolve_group
from repro.crypto.pki import PublicKeyInfrastructure
from repro.crypto.shamir import Share, ShamirSecretSharing
from repro.secagg.masking import pairwise_mask, self_mask
from repro.secagg.types import (
    AdvertiseKeysMsg,
    MaskedInputMsg,
    ProtocolAbort,
    SecAggConfig,
    UnmaskingMsg,
)


class SecAggServer:
    """One round's server state."""

    def __init__(
        self,
        config: SecAggConfig,
        pki: Optional[PublicKeyInfrastructure] = None,
        round_index: int = 0,
    ):
        self.config = config
        self.pki = pki
        self.round_index = round_index
        self._ka = KeyAgreement(resolve_group(config.dh_group))
        self.roster: dict[int, AdvertiseKeysMsg] = {}
        self.graph: dict[int, set[int]] = {}
        self.u1: list[int] = []
        self.u2: list[int] = []
        self.u3: list[int] = []
        self.u4: list[int] = []
        self.u5: list[int] = []
        self._masked: dict[int, np.ndarray] = {}
        self._consistency_sigs: dict[int, object] = {}

    # ------------------------------------------------------------------
    def collect_advertise(
        self, messages: dict[int, AdvertiseKeysMsg], graph: dict[int, set[int]]
    ) -> dict[int, AdvertiseKeysMsg]:
        """Fix U1 and the communication graph; broadcast the roster."""
        if len(messages) < self.config.threshold:
            raise ProtocolAbort(
                f"only {len(messages)} advertisements; threshold "
                f"{self.config.threshold} unmet"
            )
        self.roster = dict(messages)
        self.u1 = sorted(messages)
        self.graph = graph
        return dict(self.roster)

    # ------------------------------------------------------------------
    def route_shares(
        self, outboxes: dict[int, dict[int, bytes]]
    ) -> dict[int, dict[int, bytes]]:
        """Fix U2; deliver each ciphertext to its addressee."""
        senders = [u for u in outboxes if u in self.roster]
        if len(senders) < self.config.threshold:
            raise ProtocolAbort(f"only {len(senders)} share lists; below threshold")
        self.u2 = sorted(senders)
        inboxes: dict[int, dict[int, bytes]] = {u: {} for u in self.u2}
        for sender in self.u2:
            for recipient, blob in outboxes[sender].items():
                if recipient in inboxes:
                    inboxes[recipient][sender] = blob
        return inboxes

    # ------------------------------------------------------------------
    def collect_masked(self, messages: dict[int, MaskedInputMsg]) -> list[int]:
        """Fix U3 (the survivor set whose inputs enter the aggregate)."""
        good = {u: m for u, m in messages.items() if u in self.u2}
        if len(good) < self.config.threshold:
            raise ProtocolAbort(f"only {len(good)} masked inputs; below threshold")
        self._masked = {
            u: np.asarray(m.masked_vector, dtype=np.int64) % self.config.modulus
            for u, m in good.items()
        }
        self.u3 = sorted(good)
        return list(self.u3)

    # ------------------------------------------------------------------
    def collect_consistency(
        self, signatures: dict[int, object]
    ) -> tuple[list[int], dict[int, object]]:
        """Fix U4; broadcast the signature set for mutual verification."""
        good = {u: s for u, s in signatures.items() if u in self.u3 and s is not None}
        if len(good) < self.config.threshold:
            raise ProtocolAbort(f"only {len(good)} consistency sigs; below threshold")
        self.u4 = sorted(good)
        self._consistency_sigs = dict(good)
        return list(self.u4), dict(good)

    def skip_consistency(self) -> list[int]:
        """Semi-honest mode: U4 = U3 without signatures."""
        self.u4 = list(self.u3)
        return list(self.u4)

    @property
    def dropped_after_masking(self) -> list[int]:
        """U2 \\ U3 — clients whose pairwise masks must be reconstructed."""
        return sorted(set(self.u2) - set(self.u3))

    # ------------------------------------------------------------------
    def collect_unmask(self, messages: dict[int, UnmaskingMsg]) -> np.ndarray:
        """Fix U5, reconstruct masks, and return the unmasked ring sum."""
        good = {u: m for u, m in messages.items() if u in self.u4}
        if len(good) < self.config.threshold:
            raise ProtocolAbort(f"only {len(good)} unmask responses; below threshold")
        self.u5 = sorted(good)

        modulus = self.config.modulus
        aggregate = np.zeros(self.config.dimension, dtype=np.int64)
        for u in self.u3:
            aggregate = (aggregate + self._masked[u]) % modulus

        ss = ShamirSecretSharing(self.config.threshold)

        # Remove survivors' self masks: reconstruct b_u, expand, subtract.
        for u in self.u3:
            shares = [
                m.b_shares[u] for m in good.values() if u in m.b_shares
            ]
            b_seed = self._reconstruct(ss, shares, f"self-mask seed of {u}")
            aggregate = (
                aggregate - self_mask(b_seed, self.config.dimension, modulus)
            ) % modulus

        # Cancel dropped clients' pairwise masks: reconstruct s^SK_u, then
        # recompute p_{v,u} for each surviving neighbor v and subtract it.
        for u in self.dropped_after_masking:
            shares = [
                m.s_sk_shares[u] for m in good.values() if u in m.s_sk_shares
            ]
            sk_bytes = self._reconstruct(ss, shares, f"mask key of {u}")
            sk = int.from_bytes(sk_bytes, "big")
            pair = DHKeyPair(secret=sk, public=0)
            for v in sorted(self.graph.get(u, set()) & set(self.u3)):
                seed = self._ka.agree(pair, self.roster[v].s_public)
                mask = pairwise_mask(seed, v, u, self.config.dimension, modulus)
                aggregate = (aggregate - mask) % modulus
        return aggregate

    # ------------------------------------------------------------------
    def _reconstruct(
        self, ss: ShamirSecretSharing, shares: list[Share], what: str
    ) -> bytes:
        try:
            return ss.reconstruct(shares)
        except ValueError as exc:
            raise ProtocolAbort(f"cannot reconstruct {what}: {exc}") from exc
