"""The SecAgg server state machine (Fig. 5, server side).

The server is *untrusted*: it routes messages, tracks the per-stage
participant sets U1 ⊇ U2 ⊇ U3 ⊇ U4 ⊇ U5, and finally unmasks the sum

    z = Σ_{u∈U3} y_u − Σ_{u∈U3} p_u + Σ_{u∈U3, v∈U2\\U3} p_{v,u}

by reconstructing dropped clients' mask keys and survivors' self-mask
seeds from Shamir shares.  It learns the aggregate only — the privacy
argument lives in the client's refusal to reveal both secrets of any one
peer.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.crypto.dh import DHKeyPair, KeyAgreement, resolve_group
from repro.crypto.pki import PublicKeyInfrastructure
from repro.crypto.prg import PRGReference, expand_uniform, expand_uniform_batch
from repro.crypto.shamir import Share, ShamirSecretSharing
from repro.parallel import WorkerPool, split_slabs
from repro.secagg.masking import MaskAccumulator
from repro.secagg.types import (
    AdvertiseKeysMsg,
    MaskedInputMsg,
    ProtocolAbort,
    SecAggConfig,
    UnmaskingMsg,
)


class SecAggServer:
    """One round's server state."""

    def __init__(
        self,
        config: SecAggConfig,
        pki: Optional[PublicKeyInfrastructure] = None,
        round_index: int = 0,
    ):
        self.config = config
        self.pki = pki
        self.round_index = round_index
        self._ka = KeyAgreement(resolve_group(config.dh_group))
        self.roster: dict[int, AdvertiseKeysMsg] = {}
        self.graph: dict[int, set[int]] = {}
        self.u1: list[int] = []
        self.u2: list[int] = []
        self.u3: list[int] = []
        self.u4: list[int] = []
        self.u5: list[int] = []
        self._masked: dict[int, np.ndarray] = {}
        self._consistency_sigs: dict[int, object] = {}

    # ------------------------------------------------------------------
    def collect_advertise(
        self, messages: dict[int, AdvertiseKeysMsg], graph: dict[int, set[int]]
    ) -> dict[int, AdvertiseKeysMsg]:
        """Fix U1 and the communication graph; broadcast the roster."""
        if len(messages) < self.config.threshold:
            raise ProtocolAbort(
                f"only {len(messages)} advertisements; threshold "
                f"{self.config.threshold} unmet"
            )
        self.roster = dict(messages)
        self.u1 = sorted(messages)
        self.graph = graph
        return dict(self.roster)

    # ------------------------------------------------------------------
    def route_shares(
        self, outboxes: dict[int, dict[int, bytes]]
    ) -> dict[int, dict[int, bytes]]:
        """Fix U2; deliver each ciphertext to its addressee."""
        senders = [u for u in outboxes if u in self.roster]
        if len(senders) < self.config.threshold:
            raise ProtocolAbort(f"only {len(senders)} share lists; below threshold")
        self.u2 = sorted(senders)
        inboxes: dict[int, dict[int, bytes]] = {u: {} for u in self.u2}
        for sender in self.u2:
            for recipient, blob in outboxes[sender].items():
                if recipient in inboxes:
                    inboxes[recipient][sender] = blob
        return inboxes

    # ------------------------------------------------------------------
    def collect_masked(self, messages: dict[int, MaskedInputMsg]) -> list[int]:
        """Fix U3 (the survivor set whose inputs enter the aggregate)."""
        good = {u: m for u, m in messages.items() if u in self.u2}
        if len(good) < self.config.threshold:
            raise ProtocolAbort(f"only {len(good)} masked inputs; below threshold")
        self._masked = {
            u: np.asarray(m.masked_vector, dtype=np.int64) % self.config.modulus
            for u, m in good.items()
        }
        self.u3 = sorted(good)
        return list(self.u3)

    # ------------------------------------------------------------------
    def collect_consistency(
        self, signatures: dict[int, object]
    ) -> tuple[list[int], dict[int, object]]:
        """Fix U4; broadcast the signature set for mutual verification."""
        good = {u: s for u, s in signatures.items() if u in self.u3 and s is not None}
        if len(good) < self.config.threshold:
            raise ProtocolAbort(f"only {len(good)} consistency sigs; below threshold")
        self.u4 = sorted(good)
        self._consistency_sigs = dict(good)
        return list(self.u4), dict(good)

    def skip_consistency(self) -> list[int]:
        """Semi-honest mode: U4 = U3 without signatures."""
        self.u4 = list(self.u3)
        return list(self.u4)

    @property
    def dropped_after_masking(self) -> list[int]:
        """U2 \\ U3 — clients whose pairwise masks must be reconstructed."""
        return sorted(set(self.u2) - set(self.u3))

    # How many masks one expand_uniform_batch call materializes at once
    # inside a worker slab — bounds peak memory per worker to a few
    # vectors while still amortizing the batch entry point's setup.
    _EXPAND_BATCH = 4

    # ------------------------------------------------------------------
    def collect_unmask(self, messages: dict[int, UnmaskingMsg]) -> np.ndarray:
        """Fix U5, reconstruct masks, and return the unmasked ring sum.

        The unmasking plane.  The round's entire mask-cancellation sum

            z = Σ_{u∈U3} y_u − Σ_{u∈U3} PRG(b_u) − Σ γ_{v,u}·PRG(s_{v,u})

        is computed as one deferred-reduction int64 accumulation: every
        term folds in raw (the pairwise sign γ folds into the sum — no
        ``(−mask) % R`` materialization) and the vector is reduced into
        ``[0, R)`` exactly once at the end.  Secrets are recovered
        through :meth:`ShamirSecretSharing.reconstruct_many`, which
        computes the Lagrange-at-zero coefficients once per share-holder
        set; mask expansion and reconstruction fan across a
        :class:`repro.parallel.WorkerPool` sized by ``config.workers``
        (``workers=1`` is purely inline and serial).  Slab partials are
        exact int64 sums, so the aggregate is bit-identical at every
        ``workers`` setting and to :meth:`collect_unmask_reference`
        (both pinned by test).

        Headroom guard: the deferred signed sum has magnitude at most
        ``n_terms · (modulus − 1)``; when that (or the modulus itself)
        would not fit int64, the plane falls back to per-term reduced
        accumulation through :class:`MaskAccumulator`, whose internal
        guard makes the same call.
        """
        good = self._accept_unmask(messages)
        modulus = self.config.modulus
        dim = self.config.dimension
        dropped = self.dropped_after_masking
        ss = ShamirSecretSharing(self.config.threshold)

        # One reconstruction job per secret, in the reference twin's
        # order (survivors' b_u first, then dropped clients' s^SK) so a
        # failed reconstruction aborts with the identical message.
        jobs: list[tuple[list[Share], str]] = [
            (
                [m.b_shares[u] for m in good.values() if u in m.b_shares],
                f"self-mask seed of {u}",
            )
            for u in self.u3
        ]
        jobs += [
            (
                [m.s_sk_shares[u] for m in good.values() if u in m.s_sk_shares],
                f"mask key of {u}",
            )
            for u in dropped
        ]

        with WorkerPool(self.config.workers) as pool:
            secrets = self._reconstruct_batch(ss, jobs, pool)
            b_seeds = secrets[: len(self.u3)]

            # The signed expansion terms: survivors' self masks subtract;
            # a dropped u's pairwise mask p_{v,u} = γ·PRG(s_{v,u}) with
            # γ = +1 iff v > u is *subtracted*, so the raw expansion
            # folds with sign −γ.
            terms: list[tuple[bytes, int]] = [(seed, -1) for seed in b_seeds]
            for u, sk_bytes in zip(dropped, secrets[len(self.u3):]):
                pair = DHKeyPair(secret=int.from_bytes(sk_bytes, "big"), public=0)
                for v in sorted(self.graph.get(u, set()) & set(self.u3)):
                    seed = self._ka.agree(pair, self.roster[v].s_public)
                    terms.append((seed, -1 if v > u else 1))

            n_terms = 1 + len(self.u3) + len(terms)
            if modulus > 2**63 or n_terms * (modulus - 1) >= 2**63:
                # No int64 headroom: fold every term with interleaved
                # reductions (MaskAccumulator's guard picks that path for
                # exactly this n_terms/modulus combination).
                acc = MaskAccumulator(
                    np.zeros(dim, dtype=np.int64), modulus, n_terms=n_terms
                )
                for u in self.u3:
                    acc.add(self._masked[u])
                for seed, sign in terms:
                    mask = expand_uniform(seed, dim, modulus)
                    if sign > 0:
                        acc.add(mask)
                    else:
                        acc.sub(mask)
                return acc.finish()

            aggregate = np.zeros(dim, dtype=np.int64)
            for u in self.u3:
                aggregate += self._masked[u]
            if terms:
                aggregate += self._sum_signed_masks(terms, pool)
            aggregate %= modulus
            return aggregate

    # ------------------------------------------------------------------
    def collect_unmask_reference(
        self, messages: dict[int, UnmaskingMsg]
    ) -> np.ndarray:
        """Retained serial reference for :meth:`collect_unmask`.

        The executable specification of the unmasking plane, composed
        from the reference primitives: one full ``(· ± x) mod R``
        reduction per term, one :class:`PRGReference` expansion per
        mask (``(−base) % R`` materialized for the γ = −1 pairwise
        case), one :meth:`ShamirSecretSharing.reconstruct_reference`
        per secret with its own Lagrange computation.  The fast plane
        must reproduce this aggregate bit for bit at every ``workers``
        setting (pinned by test); it is also the "before" side of
        ``bench --topics unmask``.
        """
        good = self._accept_unmask(messages)
        modulus = self.config.modulus
        dim = self.config.dimension
        aggregate = np.zeros(dim, dtype=np.int64)
        for u in self.u3:
            aggregate = (aggregate + self._masked[u]) % modulus

        ss = ShamirSecretSharing(self.config.threshold)

        # Remove survivors' self masks: reconstruct b_u, expand, subtract.
        for u in self.u3:
            shares = [m.b_shares[u] for m in good.values() if u in m.b_shares]
            b_seed = self._reconstruct_reference(
                ss, shares, f"self-mask seed of {u}"
            )
            mask = PRGReference(b_seed).uniform_vector(dim, modulus)
            aggregate = (aggregate - mask) % modulus

        # Cancel dropped clients' pairwise masks: reconstruct s^SK_u, then
        # recompute p_{v,u} for each surviving neighbor v and subtract it.
        for u in self.dropped_after_masking:
            shares = [
                m.s_sk_shares[u] for m in good.values() if u in m.s_sk_shares
            ]
            sk_bytes = self._reconstruct_reference(ss, shares, f"mask key of {u}")
            sk = int.from_bytes(sk_bytes, "big")
            pair = DHKeyPair(secret=sk, public=0)
            for v in sorted(self.graph.get(u, set()) & set(self.u3)):
                seed = self._ka.agree(pair, self.roster[v].s_public)
                base = PRGReference(seed).uniform_vector(dim, modulus)
                mask = base if v > u else (-base) % modulus
                aggregate = (aggregate - mask) % modulus
        return aggregate

    # ------------------------------------------------------------------
    def _accept_unmask(
        self, messages: dict[int, UnmaskingMsg]
    ) -> dict[int, UnmaskingMsg]:
        """Shared stage-4 validation: fix U5, return the good responses."""
        good = {u: m for u, m in messages.items() if u in self.u4}
        if len(good) < self.config.threshold:
            raise ProtocolAbort(f"only {len(good)} unmask responses; below threshold")
        self.u5 = sorted(good)
        return good

    def _reconstruct_batch(
        self,
        ss: ShamirSecretSharing,
        jobs: list[tuple[list[Share], str]],
        pool: WorkerPool,
    ) -> list[bytes]:
        """All secrets, reconstructed in slabs across the pool.

        On any reconstruction failure, the jobs are replayed serially in
        order so the abort carries the first failing secret's label —
        identical to the reference twin's behavior.
        """
        share_lists = [shares for shares, _ in jobs]
        try:
            slabs = split_slabs(share_lists, pool.workers)
            return [
                secret
                for batch in pool.map(ss.reconstruct_many, slabs)
                for secret in batch
            ]
        except ValueError:
            for shares, what in jobs:
                self._reconstruct(ss, shares, what)
            raise  # unreachable: the replay aborts at the failing job

    def _sum_signed_masks(
        self, terms: list[tuple[bytes, int]], pool: WorkerPool
    ) -> np.ndarray:
        """Σ sign·PRG(seed) over ``terms`` as an *unreduced* int64 vector.

        Terms split into contiguous slabs, one per worker; each slab
        expands its seeds through :func:`expand_uniform_batch` in small
        chunks (bounding peak memory) and folds them into a slab
        partial.  Partials and the final sum are exact int64 arithmetic
        — order-independent, so the result is identical for any slab
        count.  Callers guarantee int64 headroom.
        """
        dim = self.config.dimension
        modulus = self.config.modulus
        batch = self._EXPAND_BATCH

        def slab_sum(slab: list[tuple[bytes, int]]) -> np.ndarray:
            part = np.zeros(dim, dtype=np.int64)
            for start in range(0, len(slab), batch):
                chunk = slab[start : start + batch]
                masks = expand_uniform_batch(
                    [seed for seed, _ in chunk], dim, modulus
                )
                for row, (_, sign) in zip(masks, chunk):
                    if sign > 0:
                        part += row
                    else:
                        part -= row
            return part

        total = np.zeros(dim, dtype=np.int64)
        for part in pool.map(slab_sum, split_slabs(terms, pool.workers)):
            total += part
        return total

    def _reconstruct(
        self, ss: ShamirSecretSharing, shares: list[Share], what: str
    ) -> bytes:
        try:
            return ss.reconstruct(shares)
        except ValueError as exc:
            raise ProtocolAbort(f"cannot reconstruct {what}: {exc}") from exc

    def _reconstruct_reference(
        self, ss: ShamirSecretSharing, shares: list[Share], what: str
    ) -> bytes:
        try:
            return ss.reconstruct_reference(shares)
        except ValueError as exc:
            raise ProtocolAbort(f"cannot reconstruct {what}: {exc}") from exc
