"""Secure aggregation: SecAgg (Bonawitz et al.) and SecAgg+ (Bell et al.).

Distributed DP aggregates locally-perturbed updates with secure
aggregation so the untrusted server learns only the (noised) sum (§2.2).
This subpackage implements both protocols the paper evaluates as
in-process state machines:

- :mod:`repro.secagg.client` / :mod:`repro.secagg.server` — the SecAgg
  stages of Fig. 5 (AdvertiseKeys, ShareKeys, MaskedInputCollection,
  ConsistencyCheck, Unmasking), with the bracketed malicious-mode steps
  toggleable via configuration.
- :mod:`repro.secagg.graph` — the communication graph: complete for
  SecAgg, random k-regular for SecAgg+ (the "(poly)logarithmic overhead"
  variant).
- :mod:`repro.secagg.masking` — pairwise and self masks over Z_{2^b}.
- :mod:`repro.secagg.workflow` — the Fig.-5 protocol declared as an
  Appendix-D workflow for the unified round engine
  (:mod:`repro.engine`), with dropout injected as transport middleware.
- :mod:`repro.secagg.driver` — round drivers: the engine-backed
  :func:`run_secagg_round` and the retained synchronous reference it is
  regression-tested against; both inject client dropout before any stage
  and return the aggregate plus per-stage traffic statistics.
- :mod:`repro.secagg.wire` — byte-level codecs for the encrypted share
  payloads.

The XNoise protocol (:mod:`repro.xnoise.protocol`) extends these classes
with seed sharing and the ExcessiveNoiseRemoval stage.
"""

from repro.secagg.types import (
    SecAggConfig,
    RoundResult,
    ProtocolAbort,
    STAGE_ADVERTISE,
    STAGE_SHARE_KEYS,
    STAGE_MASKED_INPUT,
    STAGE_CONSISTENCY,
    STAGE_UNMASK,
    STAGE_NOISE_REMOVAL,
)
from repro.secagg.graph import CompleteGraph, KRegularGraph
from repro.secagg.client import SecAggClient
from repro.secagg.server import SecAggServer
from repro.secagg.driver import (
    run_secagg_round,
    run_secagg_round_reference,
    arun_secagg_round,
    DropoutSchedule,
)
from repro.secagg.workflow import (
    SecAggWorkflowClient,
    SecAggWorkflowServer,
    secagg_stage_of,
    with_dropout,
)
from repro.secagg.secagg_plus import secagg_plus_config, recommended_degree
from repro.secagg.complexity import (
    secagg_client_cost,
    secagg_plus_client_cost,
    secagg_server_cost,
)

__all__ = [
    "SecAggConfig",
    "RoundResult",
    "ProtocolAbort",
    "CompleteGraph",
    "KRegularGraph",
    "SecAggClient",
    "SecAggServer",
    "run_secagg_round",
    "run_secagg_round_reference",
    "arun_secagg_round",
    "DropoutSchedule",
    "SecAggWorkflowClient",
    "SecAggWorkflowServer",
    "secagg_stage_of",
    "with_dropout",
    "secagg_plus_config",
    "recommended_degree",
    "secagg_client_cost",
    "secagg_plus_client_cost",
    "secagg_server_cost",
    "STAGE_ADVERTISE",
    "STAGE_SHARE_KEYS",
    "STAGE_MASKED_INPUT",
    "STAGE_CONSISTENCY",
    "STAGE_UNMASK",
    "STAGE_NOISE_REMOVAL",
]
