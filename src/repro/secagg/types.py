"""Shared protocol types: configuration, messages, stage constants.

The stage constants index the dropout-injection points of the round
driver and match the paper's Fig. 5 stage names.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.crypto.signature import SchnorrSignature

STAGE_ADVERTISE = 0
STAGE_SHARE_KEYS = 1
STAGE_MASKED_INPUT = 2
STAGE_CONSISTENCY = 3
STAGE_UNMASK = 4
STAGE_NOISE_REMOVAL = 5  # XNoise's ExcessiveNoiseRemoval extension

STAGE_NAMES = {
    STAGE_ADVERTISE: "AdvertiseKeys",
    STAGE_SHARE_KEYS: "ShareKeys",
    STAGE_MASKED_INPUT: "MaskedInputCollection",
    STAGE_CONSISTENCY: "ConsistencyCheck",
    STAGE_UNMASK: "Unmasking",
    STAGE_NOISE_REMOVAL: "ExcessiveNoiseRemoval",
}


class ProtocolAbort(Exception):
    """A party aborted the round (below threshold, failed verification…).

    Fig. 5 prescribes abort on: fewer than t responses, duplicate public
    keys, failed signature checks, undecryptable share payloads, or an
    inconsistent broadcast.
    """


@dataclass(frozen=True)
class SecAggConfig:
    """Static parameters of one secure-aggregation round.

    Attributes
    ----------
    threshold:
        Shamir threshold t.  Reconstruction of dropped clients' masking
        keys — and XNoise seed recovery — needs t live clients.  The
        malicious setting requires t > |U|/2 (§3.3 footnote).
    bits:
        Ring bit-width; inputs and masks live in Z_{2^bits}.
    dimension:
        Length of the (already padded/encoded) input vectors.
    malicious:
        Enables the bracketed Fig. 5 steps: signed key advertisements and
        the ConsistencyCheck stage.
    graph_degree:
        ``None`` → complete graph (SecAgg).  An integer k → random
        k-regular communication graph (SecAgg+).
    graph_seed:
        Public randomness for the k-regular graph construction.
    dh_group:
        Named Diffie–Hellman group ("modp2048" for deployment-grade keys,
        "modp512" for fast simulation/testing).
    workers:
        Worker threads for the coordinator's unmask compute plane.
        ``1`` (the default) is the purely inline serial path; ``None``
        means one worker per available core.  Any setting produces the
        bit-identical aggregate (pinned by test) — the fan-out reduces
        with exact order-independent int64 sums.
    """

    threshold: int
    bits: int = 20
    dimension: int = 16
    malicious: bool = False
    graph_degree: Optional[int] = None
    graph_seed: int = 0
    dh_group: str = "modp2048"
    workers: Optional[int] = 1

    def __post_init__(self) -> None:
        if self.threshold < 1:
            raise ValueError("threshold must be >= 1")
        if not 1 <= self.bits <= 62:
            raise ValueError("bits must be in [1, 62]")
        if self.dimension < 1:
            raise ValueError("dimension must be >= 1")
        if self.graph_degree is not None and self.graph_degree < 1:
            raise ValueError("graph_degree must be >= 1 when given")
        if self.workers is not None and self.workers < 1:
            raise ValueError("workers must be >= 1 (or None for auto)")
        from repro.crypto.dh import GROUPS

        if self.dh_group not in GROUPS:
            raise ValueError(
                f"unknown dh_group {self.dh_group!r}; choose from {sorted(GROUPS)}"
            )

    @property
    def modulus(self) -> int:
        return 1 << self.bits

    @property
    def vector_bytes(self) -> int:
        """Wire size of one masked vector: dimension × b bits."""
        return self.dimension * self.bits // 8


@dataclass(frozen=True)
class AdvertiseKeysMsg:
    """Stage-0 client → server: the two DH public keys (+ signature)."""

    sender: int
    c_public: int
    s_public: int
    signature: Optional[SchnorrSignature] = None


@dataclass(frozen=True)
class MaskedInputMsg:
    """Stage-2 client → server: the masked (and DP-perturbed) input."""

    sender: int
    masked_vector: np.ndarray


@dataclass(frozen=True)
class UnmaskingMsg:
    """Stage-4 client → server.

    ``s_sk_shares`` hold shares of *dropped* clients' mask-key secrets
    (U2 \\ U3); ``b_shares`` hold shares of *survivors'* self-mask seeds
    (U3).  A client never reveals both kinds for the same peer — that
    disjointness is what keeps survivors' inputs hidden.
    ``revealed_seeds`` is XNoise's direct seed upload (survivor reveals
    its own excess-component seeds g_{u,k} for k > |D|).
    """

    sender: int
    s_sk_shares: dict  # peer id -> Share
    b_shares: dict  # peer id -> Share
    revealed_seeds: dict = field(default_factory=dict)  # k -> bytes


@dataclass
class TrafficMeter:
    """Per-stage upstream/downstream byte estimates.

    Used by the Fig. 2 / Fig. 10 cost analysis; counts serialized payload
    sizes, not Python object overhead.
    """

    up_bytes: dict = field(default_factory=dict)
    down_bytes: dict = field(default_factory=dict)

    def add_up(self, stage: int, nbytes: int) -> None:
        self.up_bytes[stage] = self.up_bytes.get(stage, 0) + int(nbytes)

    def add_down(self, stage: int, nbytes: int) -> None:
        self.down_bytes[stage] = self.down_bytes.get(stage, 0) + int(nbytes)

    @property
    def total_bytes(self) -> int:
        return sum(self.up_bytes.values()) + sum(self.down_bytes.values())


@dataclass
class RoundResult:
    """Outcome of one secure-aggregation round.

    ``aggregate`` is the ring-domain sum over the survivor set ``u3``
    (Fig. 5's z), before any DP decode.  The u* fields record the
    per-stage participant sets.
    """

    aggregate: np.ndarray
    u1: list
    u2: list
    u3: list
    u4: list
    u5: list
    traffic: TrafficMeter
    u6: list = field(default_factory=list)  # XNoise stage-5 responders
    removed_noise_components: int = 0  # XNoise bookkeeping

    @property
    def survivors(self) -> list:
        return list(self.u3)
