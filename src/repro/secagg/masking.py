"""Pairwise and self masks over Z_{2^b}.

SecAgg hides each input under two kinds of one-time pads (Fig. 5,
MaskedInputCollection):

- *pairwise masks* p_{u,v} = γ·PRG(s_{u,v}) with γ = +1 if u > v else −1,
  so p_{u,v} + p_{v,u} = 0 and all pairwise masks cancel in the sum of a
  complete survivor set;
- a *self mask* p_u = PRG(b_u) that protects u's input if the server
  learns u's pairwise secrets while unmasking a *dropped* u — survivors'
  self masks are only removed via their secret-shared b_u.

Both mask vectors are expanded from 32-byte seeds by the counter-mode
PRG, exactly as the deployed protocol does, so a mask is never
materialized on the wire.
"""

from __future__ import annotations

import numpy as np

from repro.crypto.prg import expand_uniform


def pairwise_mask(
    shared_seed: bytes, u: int, v: int, dimension: int, modulus: int
) -> np.ndarray:
    """The signed pairwise mask p_{u,v} as seen from client ``u``.

    Antisymmetry (p_{u,v} = −p_{v,u} mod R) holds because both ends expand
    the same seed and apply opposite signs.
    """
    if u == v:
        return np.zeros(dimension, dtype=np.int64)
    base = expand_uniform(shared_seed, dimension, modulus)
    if u > v:
        return base
    return (-base) % modulus


def self_mask(seed: bytes, dimension: int, modulus: int) -> np.ndarray:
    """The self mask p_u = PRG(b_u)."""
    return expand_uniform(seed, dimension, modulus)


class MaskAccumulator:
    """Signed sum of a base vector and ``n`` masks mod R, reduced once.

    MaskedInputCollection adds the self mask plus one pairwise mask per
    live neighbor to the encoded input; the coordinator's unmask plane
    *subtracts* reconstructed masks from the survivor sum.  Reducing
    after *every* term walks the full vector k + 1 extra times; instead
    the terms fold raw into int64 (:meth:`add` / :meth:`sub`) and reduce
    once at :meth:`finish`.

    Headroom proof: each term is in ``[0, modulus)``, so the running
    signed sum of ``n_terms`` terms has magnitude at most
    ``n_terms · (modulus − 1)``; the deferral guard requires exactly
    ``n_terms · (modulus − 1) < 2**63``, so int64 never overflows —
    with the paper's ring bit-width b ≤ 24 and any realistic cohort the
    guard always passes.  When it fails the accumulator falls back to
    per-term reduction; the two paths are bit-identical (pinned by
    test) because ``(Σ ±xᵢ) mod R`` equals the left-fold of
    ``(· ± xᵢ) mod R``, and both Python's and NumPy's ``%`` map
    negative values into ``[0, R)``.

    Subtraction folds the pairwise-mask sign γ into the accumulation:
    instead of materializing ``(−PRG(s)) % R`` (a full extra vector
    pass) and adding it, callers ``sub`` the raw expansion —
    ``(x + ((−b) mod R)) mod R == (x − b) mod R``.
    """

    def __init__(self, base: np.ndarray, modulus: int, n_terms: int):
        if n_terms < 1:
            raise ValueError("n_terms counts the base vector: must be >= 1")
        self._modulus = modulus
        self._deferred = n_terms * (modulus - 1) < 2**63
        self._acc = np.asarray(base, dtype=np.int64) % modulus
        self._remaining = n_terms - 1

    def _fold(self, mask: np.ndarray, sign: int) -> None:
        if self._remaining <= 0:
            raise ValueError("more masks added than n_terms declared")
        self._remaining -= 1
        if self._deferred:
            if sign > 0:
                self._acc += mask
            else:
                self._acc -= mask
        elif sign > 0:
            self._acc = (self._acc + mask) % self._modulus
        else:
            self._acc = (self._acc - mask) % self._modulus

    def add(self, mask: np.ndarray) -> None:
        """Fold one mask vector (values in ``[0, modulus)``) into the sum."""
        self._fold(mask, 1)

    def sub(self, mask: np.ndarray) -> None:
        """Fold one *negated* mask vector into the sum."""
        self._fold(mask, -1)

    def finish(self) -> np.ndarray:
        """The accumulated sum, reduced into ``[0, modulus)``."""
        if self._deferred:
            self._acc %= self._modulus
        return self._acc


# repro: allow[parity-twin] the fast twin is the MaskAccumulator class, not a def
def accumulate_masks_reference(
    base: np.ndarray, masks: list[np.ndarray], modulus: int
) -> np.ndarray:
    """Retained reference for :class:`MaskAccumulator`: reduce after
    every addition, exactly as MaskedInputCollection originally did."""
    total = np.asarray(base, dtype=np.int64) % modulus
    for mask in masks:
        total = (total + mask) % modulus
    return total


# repro: allow[parity-twin] the fast twin is the MaskAccumulator class, not a def
def accumulate_signed_masks_reference(
    base: np.ndarray, terms: list[tuple[np.ndarray, int]], modulus: int
) -> np.ndarray:
    """Retained signed reference for :class:`MaskAccumulator`: one
    reduced ``(· ± xᵢ) mod R`` step per term, in term order — the
    left-fold the deferred signed sum must reproduce bit for bit."""
    total = np.asarray(base, dtype=np.int64) % modulus
    for mask, sign in terms:
        if sign > 0:
            total = (total + mask) % modulus
        else:
            total = (total - mask) % modulus
    return total


def add_mod(a: np.ndarray, b: np.ndarray, modulus: int) -> np.ndarray:
    """(a + b) mod R with int64 vectors."""
    return (a + b) % modulus


def sub_mod(a: np.ndarray, b: np.ndarray, modulus: int) -> np.ndarray:
    """(a − b) mod R with int64 vectors."""
    return (a - b) % modulus
