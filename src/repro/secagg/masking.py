"""Pairwise and self masks over Z_{2^b}.

SecAgg hides each input under two kinds of one-time pads (Fig. 5,
MaskedInputCollection):

- *pairwise masks* p_{u,v} = γ·PRG(s_{u,v}) with γ = +1 if u > v else −1,
  so p_{u,v} + p_{v,u} = 0 and all pairwise masks cancel in the sum of a
  complete survivor set;
- a *self mask* p_u = PRG(b_u) that protects u's input if the server
  learns u's pairwise secrets while unmasking a *dropped* u — survivors'
  self masks are only removed via their secret-shared b_u.

Both mask vectors are expanded from 32-byte seeds by the counter-mode
PRG, exactly as the deployed protocol does, so a mask is never
materialized on the wire.
"""

from __future__ import annotations

import numpy as np

from repro.crypto.prg import PRG


def pairwise_mask(
    shared_seed: bytes, u: int, v: int, dimension: int, modulus: int
) -> np.ndarray:
    """The signed pairwise mask p_{u,v} as seen from client ``u``.

    Antisymmetry (p_{u,v} = −p_{v,u} mod R) holds because both ends expand
    the same seed and apply opposite signs.
    """
    if u == v:
        return np.zeros(dimension, dtype=np.int64)
    base = PRG(shared_seed).uniform_vector(dimension, modulus)
    if u > v:
        return base
    return (-base) % modulus


def self_mask(seed: bytes, dimension: int, modulus: int) -> np.ndarray:
    """The self mask p_u = PRG(b_u)."""
    return PRG(seed).uniform_vector(dimension, modulus)


def add_mod(a: np.ndarray, b: np.ndarray, modulus: int) -> np.ndarray:
    """(a + b) mod R with int64 vectors."""
    return (a + b) % modulus


def sub_mod(a: np.ndarray, b: np.ndarray, modulus: int) -> np.ndarray:
    """(a − b) mod R with int64 vectors."""
    return (a - b) % modulus
