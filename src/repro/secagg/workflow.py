"""SecAgg as a declared workflow for the unified round engine.

The Fig.-5 protocol, expressed through the Appendix-D programming
interface: every client stage method becomes a routine-table entry, and
the server state machine becomes a :class:`ProtocolServer` whose
coordination methods narrow each stage to the live participant set with
:class:`repro.engine.Targeted` results.  Dropout is *not* modelled here —
it is injected by wrapping the engine's transport in
:class:`repro.engine.DropoutTransport` with :func:`secagg_stage_of`, the
role the old synchronous ``SecAggDriver`` loop used to play inline.

Traffic metering reproduces the old driver's accounting byte-for-byte,
which the engine-vs-reference regression tests check.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.api.protocol import ProtocolClient, ProtocolServer
from repro.engine import Targeted
from repro.secagg.client import SecAggClient
from repro.secagg.graph import build_graph
from repro.secagg.server import SecAggServer
from repro.secagg.types import (
    RoundResult,
    TrafficMeter,
    STAGE_ADVERTISE,
    STAGE_SHARE_KEYS,
    STAGE_MASKED_INPUT,
    STAGE_CONSISTENCY,
    STAGE_UNMASK,
    STAGE_NOISE_REMOVAL,
)

#: Operation name → Fig.-5 stage constant (dropout-injection points).
STAGE_OF_OP = {
    "advertise_keys": STAGE_ADVERTISE,
    "share_keys": STAGE_SHARE_KEYS,
    "masked_input": STAGE_MASKED_INPUT,
    "consistency_check": STAGE_CONSISTENCY,
    "unmask": STAGE_UNMASK,
    "noise_shares": STAGE_NOISE_REMOVAL,
}


def secagg_stage_of(op: str) -> Optional[int]:
    """Stage lookup for :class:`repro.engine.DropoutTransport`."""
    return STAGE_OF_OP.get(op)


def with_dropout(transport, schedule) -> "DropoutTransport":
    """Wrap a transport in SecAgg dropout middleware (``None`` → none)."""
    from repro.engine import DropoutTransport
    from repro.secagg.driver import DropoutSchedule

    return DropoutTransport(
        transport, schedule or DropoutSchedule(), secagg_stage_of
    )


class SecAggWorkflowClient(ProtocolClient):
    """Routine table around one :class:`SecAggClient` and its input."""

    def __init__(self, inner: SecAggClient, update_ring: np.ndarray):
        super().__init__(inner.id)
        self.inner = inner
        self.update_ring = update_ring

    def set_routine(self) -> dict:
        return {
            "advertise_keys": self._advertise_keys,
            "share_keys": self._share_keys,
            "masked_input": self._masked_input,
            "consistency_check": self._consistency_check,
            "unmask": self._unmask,
            "noise_shares": self._noise_shares,
        }

    def _advertise_keys(self, _payload):
        return self.inner.advertise_keys()

    def _share_keys(self, payload):
        roster, graph = payload
        return self.inner.share_keys(roster, graph)

    def _masked_input(self, inbox):
        return self.inner.masked_input(inbox, self.update_ring)

    def _consistency_check(self, u3):
        return self.inner.consistency_check(u3)

    def _unmask(self, payload):
        u4, sig_set, dropped, survivors = payload
        return self.inner.unmask(u4, sig_set, dropped=dropped, survivors=survivors)

    def _noise_shares(self, labels):
        return self.inner.shares_of_extra_secret(labels)


class SecAggWorkflowServer(ProtocolServer):
    """Declared Fig.-5 workflow around one :class:`SecAggServer`."""

    # Server compute ops heavy enough to offload to the engine's worker
    # pool (when one is configured): the unmask plane expands and folds
    # ~|U3| + |U2\U3|·degree full-length masks, and running it on an
    # executor keeps the coordinator's event loop serving listener I/O.
    offload_ops = frozenset({"collect_unmask"})

    def __init__(self, inner: SecAggServer, traffic: Optional[TrafficMeter] = None):
        self.inner = inner
        self.config = inner.config
        self.traffic = traffic if traffic is not None else TrafficMeter()

    # ------------------------------------------------------------------
    def set_graph_dict(self) -> dict:
        ops = [
            ("advertise_keys", "c-comp", []),
            ("collect_advertise", "s-comp", ["advertise_keys"]),
            ("share_keys", "c-comp", ["collect_advertise"]),
            ("route_shares", "s-comp", ["share_keys"]),
            ("masked_input", "c-comp", ["route_shares"]),
            ("collect_masked", "s-comp", ["masked_input"]),
            ("consistency_check", "c-comp", ["collect_masked"]),
            ("collect_consistency", "s-comp", ["consistency_check"]),
            ("unmask", "c-comp", ["collect_consistency"]),
            ("collect_unmask", "s-comp", ["unmask"]),
        ]
        return {op: {"resource": r, "deps": d} for op, r, d in ops}

    # ------------------------------------------------------------------
    # Coordination methods (one per declared s-comp operation)
    # ------------------------------------------------------------------
    def collect_advertise(self, responses: dict) -> Targeted:
        for _ in responses:
            self.traffic.add_up(
                STAGE_ADVERTISE, 512 + (288 if self.config.malicious else 0)
            )
        graph = build_graph(self.config, sorted(responses))
        roster = self.inner.collect_advertise(responses, graph)
        self.traffic.add_down(STAGE_ADVERTISE, len(roster) * 512 * len(roster))
        return Targeted({u: (dict(roster), graph) for u in sorted(roster)})

    def route_shares(self, responses: dict) -> Targeted:
        for u in sorted(responses):
            self.traffic.add_up(
                STAGE_SHARE_KEYS, sum(len(ct) for ct in responses[u].values())
            )
        inboxes = self.inner.route_shares(responses)
        for box in inboxes.values():
            self.traffic.add_down(
                STAGE_SHARE_KEYS, sum(len(ct) for ct in box.values())
            )
        return Targeted({u: inboxes[u] for u in sorted(inboxes)})

    def collect_masked(self, responses: dict) -> Targeted:
        for _ in responses:
            self.traffic.add_up(STAGE_MASKED_INPUT, self.config.vector_bytes)
        u3 = self.inner.collect_masked(responses)
        self.traffic.add_down(STAGE_MASKED_INPUT, 8 * len(u3) * len(u3))
        return Targeted({u: list(u3) for u in u3})

    def collect_consistency(self, responses: dict) -> Targeted:
        if self.config.malicious:
            for _ in responses:
                self.traffic.add_up(STAGE_CONSISTENCY, 288)
            u4, sig_set = self.inner.collect_consistency(responses)
            self.traffic.add_down(STAGE_CONSISTENCY, 288 * len(u4) * len(u4))
        else:
            u4, sig_set = self.inner.skip_consistency(), None
        dropped = self.inner.dropped_after_masking
        survivors = list(self.inner.u3)
        return Targeted(
            {u: (list(u4), sig_set, dropped, survivors) for u in u4}
        )

    def _meter_unmask(self, responses: dict) -> None:
        for msg in responses.values():
            self.traffic.add_up(
                STAGE_UNMASK, 300 * (len(msg.s_sk_shares) + len(msg.b_shares))
            )

    def collect_unmask(self, responses: dict) -> RoundResult:
        self._meter_unmask(responses)
        aggregate = self.inner.collect_unmask(responses)
        return self._round_result(aggregate)

    # ------------------------------------------------------------------
    def _round_result(self, aggregate: np.ndarray) -> RoundResult:
        return RoundResult(
            aggregate=aggregate,
            u1=list(self.inner.u1),
            u2=list(self.inner.u2),
            u3=list(self.inner.u3),
            u4=list(self.inner.u4),
            u5=list(self.inner.u5),
            traffic=self.traffic,
        )
