"""Wall-clock training timelines: time-to-accuracy under pipelining.

The evaluation's headline speedups (Fig. 10) are per-round; what a
deployment cares about is *time to a target accuracy*.  This module
combines a utility trajectory (metric per round, from a
:class:`repro.core.dordis.DordisSession` run) with the per-round timing
model (plain or pipelined) into a wall-clock curve — the derived
experiment the paper's §6.4 numbers imply: the same accuracy is reached
up to 2.4× sooner with pipelining, because the *round sequence* is
unchanged and only its clock is compressed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.pipeline.perf_model import WorkflowPerfModel
from repro.pipeline.simulator import compare_plain_pipelined


@dataclass(frozen=True)
class Timeline:
    """Cumulative wall-clock per completed round plus the metric curve."""

    round_seconds: float
    metric_history: tuple
    metric_name: str

    @property
    def elapsed(self) -> np.ndarray:
        """Elapsed seconds after each completed round."""
        n = len(self.metric_history)
        return self.round_seconds * np.arange(1, n + 1)

    def time_to_metric(self, target: float, higher_is_better: bool = True) -> float:
        """Seconds until the metric first reaches ``target``; inf if never."""
        for t, value in zip(self.elapsed, self.metric_history):
            hit = value >= target if higher_is_better else value <= target
            if hit:
                return float(t)
        return float("inf")

    @property
    def total_seconds(self) -> float:
        return float(self.elapsed[-1]) if len(self.metric_history) else 0.0


def build_timelines(
    metric_history,
    metric_name: str,
    perf_model: WorkflowPerfModel,
    update_size: int,
    training_time: float | None = None,
) -> tuple[Timeline, Timeline, float]:
    """(plain, pipelined, speedup) timelines for one utility trajectory.

    The utility trajectory is timing-independent (same protocol, same
    rounds), so one training run yields both clocks.
    """
    plain, pipelined, speedup = compare_plain_pipelined(
        perf_model, update_size, training_time=training_time
    )
    history = tuple(metric_history)
    return (
        Timeline(plain.total, history, metric_name),
        Timeline(pipelined.total, history, metric_name),
        speedup,
    )
