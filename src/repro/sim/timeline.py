"""Wall-clock training timelines: time-to-accuracy under pipelining.

The evaluation's headline speedups (Fig. 10) are per-round; what a
deployment cares about is *time to a target accuracy*.  This module
combines a utility trajectory (metric per round, from a
:class:`repro.core.dordis.DordisSession` run) with the per-round timing
model (plain or pipelined) into a wall-clock curve — the derived
experiment the paper's §6.4 numbers imply: the same accuracy is reached
up to 2.4× sooner with pipelining, because the *round sequence* is
unchanged and only its clock is compressed.

It also defines :class:`ExecutionTrace`, the per-(stage, chunk) interval
record the :class:`repro.engine.RoundEngine` fills while *executing*
rounds — the measured counterpart to the offline
:class:`repro.pipeline.scheduler.PipelineSchedule` — and
:class:`TraceTimeline`, which turns traced per-round durations into the
same time-to-metric curves as the model-driven :class:`Timeline`.

:func:`simulate_trace` is the offline discrete-event replay of the
engine's virtual-time arbiter: given round structures and per-stage
durations it reproduces, span for span, the :class:`ExecutionTrace` the
engine emits when those rounds execute concurrently — the oracle the
engine's determinism tests and the concurrent-rounds benchmark compare
against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import NamedTuple

import numpy as np

from repro.pipeline.perf_model import WorkflowPerfModel
from repro.pipeline.simulator import compare_plain_pipelined


class _TimelineQueries:
    """Shared curve queries over ``elapsed`` + ``metric_history``."""

    def time_to_metric(self, target: float, higher_is_better: bool = True) -> float:
        """Seconds until the metric first reaches ``target``; inf if never."""
        for t, value in zip(self.elapsed, self.metric_history):
            hit = value >= target if higher_is_better else value <= target
            if hit:
                return float(t)
        return float("inf")

    @property
    def total_seconds(self) -> float:
        return float(self.elapsed[-1]) if len(self.metric_history) else 0.0


@dataclass(frozen=True)
class Timeline(_TimelineQueries):
    """Cumulative wall-clock per completed round plus the metric curve."""

    round_seconds: float
    metric_history: tuple
    metric_name: str

    @property
    def elapsed(self) -> np.ndarray:
        """Elapsed seconds after each completed round."""
        n = len(self.metric_history)
        return self.round_seconds * np.arange(1, n + 1)


class TrafficSplit(NamedTuple):
    """Directional wire-byte count: server→client down, client→server up."""

    down: int
    up: int

    @property
    def total(self) -> int:
        return self.down + self.up


@dataclass(frozen=True)
class StageSpan:
    """One stage execution interval for one chunk, in virtual seconds.

    ``round_index`` is the **engine-assigned round serial** (0, 1, … in
    execution order on one engine), not the caller's training-round
    number; chunked rounds report theirs as
    ``ChunkedRoundResult.trace_round``.

    Traffic is *measured and directional*: ``down_bytes`` is the framed
    request bytes the server pushed to clients (model/state broadcast,
    routed inboxes), ``up_bytes`` the framed response bytes clients sent
    back (masked vectors, shares — see
    :class:`repro.engine.transport.Delivery`).  Both are 0 for
    in-process execution, which never serializes, and exact — byte for
    byte what was written to the socket — for the serializing and
    stream transports.  ``traffic_bytes`` is their sum; constructing a
    span whose ``traffic_bytes`` disagrees with the split is an error
    (the invariant ``up + down == total`` holds for every span, by
    construction).
    """

    round_index: int
    chunk: int
    stage: int
    label: str
    resource: str
    begin: float
    finish: float
    up_bytes: int = 0
    down_bytes: int = 0
    traffic_bytes: int | None = None

    def __post_init__(self) -> None:
        if self.up_bytes < 0 or self.down_bytes < 0:
            raise ValueError("directional byte counts must be non-negative")
        total = self.up_bytes + self.down_bytes
        if self.traffic_bytes is None:
            object.__setattr__(self, "traffic_bytes", total)
        elif self.traffic_bytes != total:
            raise ValueError(
                f"traffic_bytes={self.traffic_bytes} must equal "
                f"up_bytes + down_bytes = {total}; traffic is directional "
                f"now — pass the split and let the sum derive"
            )

    @property
    def duration(self) -> float:
        return self.finish - self.begin

    @property
    def traffic_split(self) -> TrafficSplit:
        return TrafficSplit(down=self.down_bytes, up=self.up_bytes)


@dataclass
class ExecutionTrace:
    """Per-stage timing surfaced by engine-executed rounds.

    Spans accumulate across every round an engine runs, in one shared
    virtual clock — consecutive rounds therefore appear on a common
    timeline and their overlap (or lack of it) is directly visible.
    """

    spans: list = field(default_factory=list)
    _max_finish: float = field(default=0.0, repr=False)
    _round_bounds: dict = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        # Derive the caches when constructed over pre-existing spans
        # (e.g. a trace rehydrated from recorded data).
        spans, self.spans = self.spans, []
        for span in spans:
            self.add(span)

    def add(self, span: StageSpan) -> None:
        self.spans.append(span)
        if span.finish > self._max_finish:
            self._max_finish = span.finish
        bounds = self._round_bounds.get(span.round_index)
        if bounds is None:
            self._round_bounds[span.round_index] = (span.begin, span.finish)
        else:
            self._round_bounds[span.round_index] = (
                min(bounds[0], span.begin),
                max(bounds[1], span.finish),
            )

    def round_spans(self, round_index: int) -> list:
        return [s for s in self.spans if s.round_index == round_index]

    @property
    def completion_time(self) -> float:
        """Finish time of the latest span (0 for an empty trace); O(1)."""
        return self._max_finish if self.spans else 0.0

    def round_interval(self, round_index: int) -> tuple[float, float]:
        """(first begin, last finish) of one round's spans; O(1)."""
        bounds = self._round_bounds.get(round_index)
        if bounds is None:
            raise ValueError(f"no spans recorded for round {round_index}")
        return bounds

    def round_duration(self, round_index: int) -> float:
        begin, finish = self.round_interval(round_index)
        return finish - begin

    def stage_intervals(
        self, stage: int, round_index: int = 0
    ) -> list[tuple[float, float]]:
        """(begin, finish) per chunk for one stage, in chunk order."""
        spans = sorted(
            (s for s in self.round_spans(round_index) if s.stage == stage),
            key=lambda s: s.chunk,
        )
        return [(s.begin, s.finish) for s in spans]

    def resource_busy_time(self) -> dict:
        """Total busy seconds per resource, mirroring
        :meth:`repro.pipeline.scheduler.PipelineSchedule.resource_busy_time`."""
        out: dict = {}
        for s in self.spans:
            out[s.resource] = out.get(s.resource, 0.0) + s.duration
        return out

    # -- measured traffic ------------------------------------------------
    def round_traffic_bytes(self, round_index: int) -> int:
        """Measured wire bytes of one round (sum over its spans)."""
        return sum(s.traffic_bytes for s in self.round_spans(round_index))

    def round_traffic_split(self, round_index: int) -> TrafficSplit:
        """Directional wire bytes of one round: (down, up)."""
        spans = self.round_spans(round_index)
        return TrafficSplit(
            down=sum(s.down_bytes for s in spans),
            up=sum(s.up_bytes for s in spans),
        )

    def stage_traffic(self, round_index: int = 0) -> dict:
        """``{stage label: measured bytes}`` for one round, in stage order.

        Chunked rounds sum each stage's traffic across chunks.
        """
        out: dict = {}
        for s in sorted(self.round_spans(round_index), key=lambda s: s.stage):
            out[s.label] = out.get(s.label, 0) + s.traffic_bytes
        return out

    def stage_traffic_split(self, round_index: int = 0) -> dict:
        """``{stage label: TrafficSplit}`` for one round, in stage order.

        The directional counterpart of :meth:`stage_traffic`: chunked
        rounds sum each stage's down/up bytes across chunks.
        """
        out: dict = {}
        for s in sorted(self.round_spans(round_index), key=lambda s: s.stage):
            prev = out.get(s.label, TrafficSplit(0, 0))
            out[s.label] = TrafficSplit(
                down=prev.down + s.down_bytes, up=prev.up + s.up_bytes
            )
        return out

    @property
    def total_traffic_bytes(self) -> int:
        """Measured wire bytes across every traced round."""
        return sum(s.traffic_bytes for s in self.spans)

    @property
    def total_down_bytes(self) -> int:
        """Measured server→client wire bytes across every traced round."""
        return sum(s.down_bytes for s in self.spans)

    @property
    def total_up_bytes(self) -> int:
        """Measured client→server wire bytes across every traced round."""
        return sum(s.up_bytes for s in self.spans)


@dataclass(frozen=True)
class TraceTimeline(_TimelineQueries):
    """Timeline over *measured* (traced) per-round durations.

    Same query API as :class:`Timeline`, but each round carries its own
    duration — what an engine-executed session reports instead of the
    uniform model-predicted round time.
    """

    round_durations: tuple
    metric_history: tuple
    metric_name: str

    def __post_init__(self) -> None:
        if len(self.round_durations) != len(self.metric_history):
            raise ValueError("one duration per completed round required")

    @property
    def elapsed(self) -> np.ndarray:
        return np.cumsum(np.asarray(self.round_durations, dtype=float))


@dataclass(frozen=True)
class SimulatedRound:
    """Offline description of one engine round for :func:`simulate_trace`.

    ``resources`` holds one resource label per stage (the §4.1 grouping,
    e.g. ``("c-comp", "s-comp")``); ``durations[stage][chunk]`` the
    virtual seconds each (stage, chunk) execution takes — for a
    ``PerOpTiming`` engine run that is the sum of the stage's op
    durations plus any transport latency.  ``serial=True`` chains chunks
    end to end (the engine's ``pipelined=False`` baseline); ``floor`` is
    the submitting job's virtual start (``submit_round`` dependency
    floor); ``round_index`` overrides the engine-style serial (default:
    position in the list passed to :func:`simulate_trace`).

    ``down_traffic[stage][chunk]`` / ``up_traffic[stage][chunk]``
    optionally carry the measured *directional* wire bytes of each stage
    execution, so a replay of a round run over a serializing/socket
    transport can equal the executed trace *exactly* — including every
    span's ``down_bytes``/``up_bytes`` (and hence ``traffic_bytes``,
    their sum).  Omitted (``None``), the direction contributes 0;
    with both omitted every replayed span reports 0 traffic, matching
    in-process execution.  ``traffic`` is the retired undirected field:
    spans are directional now, so passing it raises with a migration
    hint instead of silently mis-attributing the bytes.
    """

    resources: tuple
    durations: tuple
    labels: tuple | None = None
    n_chunks: int = 1
    serial: bool = False
    floor: float = 0.0
    round_index: int | None = None
    down_traffic: tuple | None = None
    up_traffic: tuple | None = None
    traffic: tuple | None = None

    def __post_init__(self) -> None:
        if self.traffic is not None:
            raise ValueError(
                "SimulatedRound.traffic was undirected and is retired: "
                "pass down_traffic/up_traffic (spans now carry the "
                "per-direction split, and traffic_bytes is their sum)"
            )


def simulate_trace(rounds, initial_clocks=None) -> ExecutionTrace:
    """Replay the engine's discrete-event arbitration offline.

    Runs the same :class:`repro.engine.arbiter.VirtualTimeArbiter` the
    engine executes on: each resource is granted to the lowest-virtual-
    begin-time stage (ties broken by round serial, then chunk index,
    then stage), one stage at a time.  For rounds that were submitted
    concurrently — registered before any of them finished a stage — the
    returned trace equals the engine's executed trace *exactly*,
    including span order.  Rounds a job submits only after another
    round's virtual finish should carry that finish as their ``floor``
    (as ``submit_round`` dependents do).

    ``initial_clocks`` seeds the per-resource availability clocks, e.g.
    a copy of a live engine's clocks to replay rounds appended to an
    existing timeline.
    """
    # Imported lazily: repro.engine.core imports this module, so a
    # top-level import of the arbiter would be circular.
    from repro.engine.arbiter import VirtualTimeArbiter

    arbiter = VirtualTimeArbiter(dict(initial_clocks) if initial_clocks else {})
    specs: dict[int, SimulatedRound] = {}
    for position, spec in enumerate(rounds):
        serial_no = (
            spec.round_index if spec.round_index is not None else position
        )
        if serial_no in specs:
            raise ValueError(f"duplicate round_index {serial_no}")
        if len(spec.durations) != len(spec.resources):
            raise ValueError("one durations row per stage required")
        if any(len(row) != spec.n_chunks for row in spec.durations):
            raise ValueError("one duration per (stage, chunk) required")
        for grid in (spec.down_traffic, spec.up_traffic):
            if grid is None:
                continue
            if len(grid) != len(spec.resources):
                raise ValueError("one traffic row per stage required")
            if any(len(row) != spec.n_chunks for row in grid):
                raise ValueError("one traffic entry per (stage, chunk) required")
        specs[serial_no] = spec
        arbiter.add_round(
            serial_no,
            list(spec.resources),
            spec.n_chunks,
            serial=spec.serial,
            floor=spec.floor,
        )
    trace = ExecutionTrace()
    while True:
        node = arbiter.poll()
        if node is None:
            break
        spec = specs[node.round_serial]
        finish = node.begin + float(spec.durations[node.stage][node.chunk])
        labels = spec.labels
        down = (
            int(spec.down_traffic[node.stage][node.chunk])
            if spec.down_traffic
            else 0
        )
        up = (
            int(spec.up_traffic[node.stage][node.chunk])
            if spec.up_traffic
            else 0
        )
        trace.add(
            StageSpan(
                round_index=node.round_serial,
                chunk=node.chunk,
                stage=node.stage,
                label=labels[node.stage] if labels else node.resource,
                resource=node.resource,
                begin=node.begin,
                finish=finish,
                up_bytes=up,
                down_bytes=down,
            )
        )
        arbiter.complete(node, finish)
    if not arbiter.idle:
        raise RuntimeError("replay stalled: unresolved stage dependencies")
    return trace


def build_timelines(
    metric_history,
    metric_name: str,
    perf_model: WorkflowPerfModel,
    update_size: int,
    training_time: float | None = None,
) -> tuple[Timeline, Timeline, float]:
    """(plain, pipelined, speedup) timelines for one utility trajectory.

    The utility trajectory is timing-independent (same protocol, same
    rounds), so one training run yields both clocks.
    """
    plain, pipelined, speedup = compare_plain_pipelined(
        perf_model, update_size, training_time=training_time
    )
    history = tuple(metric_history)
    return (
        Timeline(plain.total, history, metric_name),
        Timeline(pipelined.total, history, metric_name),
        speedup,
    )
