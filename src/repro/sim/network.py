"""Heterogeneous client devices.

Each device carries a compute-speed factor and a bandwidth, drawn from
the paper's §6.1 profiles: end-to-end latency of the i-th slowest client
∝ i^−1.2, bandwidth Zipf within [21, 210] Mbps.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import derive_rng
from repro.utils.zipf import zipf_between, zipf_weights


@dataclass(frozen=True)
class ClientDevice:
    """One client's hardware/network profile.

    ``compute_factor`` multiplies compute-stage durations (1.0 = the
    fleet's fastest device); ``bandwidth_bps`` is bytes per second.
    """

    client_id: int
    compute_factor: float
    bandwidth_bps: float

    def __post_init__(self) -> None:
        if self.compute_factor < 1.0:
            raise ValueError("compute_factor is relative to the fastest (>= 1)")
        if self.bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")

    def upload_seconds(self, nbytes: float) -> float:
        return nbytes / self.bandwidth_bps


def heterogeneous_fleet(
    n: int,
    zipf_a: float = 1.2,
    bandwidth_range: tuple[float, float] = (21e6 / 8, 210e6 / 8),
    max_slowdown: float = 8.0,
    seed: int = 0,
) -> list[ClientDevice]:
    """Build a fleet with §6.1's latency and bandwidth heterogeneity.

    Compute factors follow the inverse Zipf profile (slowest =
    ``max_slowdown``×); bandwidths are an independently-shuffled Zipf
    profile within ``bandwidth_range`` — the two resources are not
    correlated, as in the paper's setup of two independent Zipf draws.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    weights = zipf_weights(n, zipf_a)
    # Largest weight = slowest device (rank 1 in the paper's i^-a law).
    slowdowns = 1.0 + (max_slowdown - 1.0) * (weights - weights.min()) / (
        weights.max() - weights.min() + 1e-12
    )
    bandwidths = zipf_between(n, *bandwidth_range, a=zipf_a)
    rng = derive_rng("fleet-shuffle", seed)
    rng.shuffle(bandwidths)
    order = rng.permutation(n)
    return [
        ClientDevice(
            client_id=i,
            compute_factor=float(slowdowns[order[i]]),
            bandwidth_bps=float(bandwidths[i]),
        )
        for i in range(n)
    ]
