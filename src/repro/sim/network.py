"""Heterogeneous client devices — legacy import location.

The profile layer moved to :mod:`repro.fleet.profile`, where devices
carry *directional* bandwidth (separate ``uplink_bps`` /
``downlink_bps``).  This module re-exports it and keeps the historical
:func:`ClientDevice` entry point, which builds a **symmetric** profile
from one ``bandwidth_bps`` — bit-identical behaviour to the pre-split
device class.
"""

from __future__ import annotations

from repro.fleet.profile import (
    DEFAULT_BANDWIDTH_RANGE,
    DeviceProfile,
    heterogeneous_fleet,
)


def ClientDevice(
    client_id: int,
    compute_factor: float = 1.0,
    bandwidth_bps: float = DEFAULT_BANDWIDTH_RANGE[1],
) -> DeviceProfile:
    """A symmetric :class:`DeviceProfile` (legacy constructor).

    ``bandwidth_bps`` sets both directions; use :class:`DeviceProfile`
    directly for asymmetric links.
    """
    return DeviceProfile.symmetric(
        client_id, compute_factor=compute_factor, bandwidth_bps=bandwidth_bps
    )


__all__ = [
    "ClientDevice",
    "DEFAULT_BANDWIDTH_RANGE",
    "DeviceProfile",
    "heterogeneous_fleet",
]
