"""The in-process simulated cluster.

Binds a device fleet to protocol participants and answers the timing
queries the experiments need: who is the straggler of a sampled set, and
how long its compute/upload takes.  Protocol *correctness* runs as real
in-process message passing (:mod:`repro.secagg`, :mod:`repro.xnoise`);
this class only models *time*, per DESIGN.md's substitution table.

Devices are :class:`repro.fleet.DeviceProfile` objects, so uplink and
downlink gate their own stages: uploads by the slowest *uplink* of the
sample, broadcasts by the slowest *downlink*.  (For richer population
queries — availability, per-round cost — use :class:`repro.fleet.Fleet`,
which this class predates.)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fleet.profile import DeviceProfile, heterogeneous_fleet


@dataclass
class SimulatedCluster:
    """A population of heterogeneous devices plus one (fast) server."""

    devices: list[DeviceProfile]

    @classmethod
    def build(cls, n_clients: int, seed: int = 0, **fleet_kwargs) -> "SimulatedCluster":
        return cls(devices=heterogeneous_fleet(n_clients, seed=seed, **fleet_kwargs))

    @property
    def n_clients(self) -> int:
        return len(self.devices)

    def device(self, client_id: int) -> DeviceProfile:
        return self.devices[client_id % self.n_clients]

    def straggler(self, sampled: list[int]) -> DeviceProfile:
        """The sampled client that gates synchronous stages."""
        if not sampled:
            raise ValueError("sampled set is empty")
        return max(
            (self.device(u) for u in sampled),
            key=lambda d: d.compute_factor,
        )

    def slowest_bandwidth(self, sampled: list[int]) -> float:
        """Least uplink bandwidth of the sample (upload gating)."""
        if not sampled:
            raise ValueError("sampled set is empty")
        return min(self.device(u).uplink_bps for u in sampled)

    def slowest_downlink(self, sampled: list[int]) -> float:
        """Least downlink bandwidth of the sample (broadcast gating)."""
        if not sampled:
            raise ValueError("sampled set is empty")
        return min(self.device(u).downlink_bps for u in sampled)

    def stage_compute_seconds(self, sampled: list[int], base_seconds: float) -> float:
        """Wall time of a client-compute stage: base × straggler factor."""
        return base_seconds * self.straggler(sampled).compute_factor

    def stage_upload_seconds(self, sampled: list[int], nbytes: float) -> float:
        """Wall time of a synchronized upload: gated by least uplink."""
        return nbytes / self.slowest_bandwidth(sampled)

    def stage_download_seconds(self, sampled: list[int], nbytes: float) -> float:
        """Wall time of a synchronized broadcast: gated by least downlink."""
        return nbytes / self.slowest_downlink(sampled)
