"""Deployment-environment simulation: device heterogeneity and the
in-process cluster.

The paper's testbed throttles client bandwidth into [21, 210] Mbps and
skews response latency with a Zipf(a = 1.2) profile (§6.1).  This
subpackage reproduces that environment analytically:

- :mod:`repro.sim.network` — heterogeneous device fleets;
- :mod:`repro.sim.cluster` — an in-process cluster binding devices to
  protocol participants and answering straggler/timing queries.
"""

from repro.sim.network import ClientDevice, DeviceProfile, heterogeneous_fleet
from repro.sim.cluster import SimulatedCluster
from repro.sim.timeline import (
    ExecutionTrace,
    SimulatedRound,
    StageSpan,
    Timeline,
    TraceTimeline,
    TrafficSplit,
    build_timelines,
    simulate_trace,
)

__all__ = [
    "ClientDevice",
    "DeviceProfile",
    "heterogeneous_fleet",
    "SimulatedCluster",
    "ExecutionTrace",
    "SimulatedRound",
    "StageSpan",
    "Timeline",
    "TraceTimeline",
    "TrafficSplit",
    "build_timelines",
    "simulate_trace",
]
