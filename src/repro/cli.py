"""Command-line interface.

Eight subcommands mirror the workflow a user of the original system
walks through:

- ``run``      — train one Dordis session and report utility + ε;
- ``plan``     — offline noise planning: print the per-round σ for a
  budget/horizon (§2.2);
- ``pipeline`` — print plain-vs-pipelined round times and the optimal
  chunk count for a workload (§4);
- ``sockets``  — run one secure-aggregation round over real localhost
  connections — framed TCP or RFC 6455 WebSocket
  (``--transport websocket``) — and report the *measured* per-stage
  traffic and per-connection byte accounting;
- ``serve``    — the cross-process coordinator: bind ONE listening
  port, wait for every ``join`` process to dial in, run one
  secure-aggregation round across them, and report (or ``--json``-emit)
  the measured traffic — the production topology, one process per
  party;
- ``join``     — one dialing device: connect to a ``serve``
  coordinator, answer its requests with the deterministic demo inputs
  for ``--client-id``, and print this end's byte counters as JSON
  (``--die-after K`` vanishes after K answers — dropout injection);
- ``bench``    — run the hot-path microbenchmarks (each optimized
  crypto/codec path against its retained ``*_reference`` twin),
  measured end-to-end rounds, and the listener stress topic (1000
  concurrent dialing clients against one coordinator port by default),
  writing one machine-readable ``BENCH_<topic>.json`` per topic;
  ``--diff old new`` compares two persisted reports metric by metric;
- ``check``    — run the repo's own AST-based invariant checker
  (``repro.analysis``) over ``src/repro``: exits 0 when clean, 1 when
  any non-baselined finding remains, 2 on usage errors.

Examples::

    python -m repro.cli run --task cifar10-like --dropout-rate 0.2 \\
        --strategy xnoise --rounds 8
    python -m repro.cli plan --rounds 150 --epsilon 6 --delta 0.01
    python -m repro.cli pipeline --clients 100 --model-size 11000000
    python -m repro.cli sockets --clients 6 --dimension 64 --drop 1
    python -m repro.cli sockets --clients 6 --transport websocket
    python -m repro.cli serve --clients 3 --port 7001   # terminal 1
    python -m repro.cli join --client-id 1 --clients 3 --port 7001  # 2..4
    python -m repro.cli bench --out .
    python -m repro.cli bench --diff BENCH_hotpath.old.json BENCH_hotpath.json
    python -m repro.cli check
    python -m repro.cli check --format json
"""

from __future__ import annotations

import argparse
import sys


def _add_run_parser(sub) -> None:
    p = sub.add_parser("run", help="train one Dordis session")
    p.add_argument("--task", default="cifar10-like",
                   choices=["cifar10-like", "cifar100-like", "femnist-like",
                            "reddit-like"])
    p.add_argument("--model", default=None,
                   choices=["softmax", "mlp", "bigram"],
                   help="defaults to softmax (bigram for reddit-like)")
    p.add_argument("--num-clients", type=int, default=40)
    p.add_argument("--sample-size", type=int, default=12)
    p.add_argument("--rounds", type=int, default=8)
    p.add_argument("--epsilon", type=float, default=6.0)
    p.add_argument("--clip-bound", type=float, default=0.5)
    p.add_argument("--learning-rate", type=float, default=0.15)
    p.add_argument("--dropout-rate", type=float, default=0.0)
    p.add_argument("--availability", default="fixed",
                   choices=["fixed", "trace", "session"],
                   help="fixed: i.i.d. dropout at --dropout-rate; trace: "
                        "Fig.-1a behaviour-trace churn (rate swings per "
                        "round, --dropout-rate ignored; lazily derived at "
                        "large n); session: the lazy per-device session "
                        "stream unconditionally")
    p.add_argument("--correlation", type=float, default=0.0,
                   help="rank-correlate link speed with availability "
                        "(slow-link devices are also flaky); needs "
                        "--availability trace or session")
    p.add_argument("--asymmetric", action="store_true",
                   help="give devices independent Zipf downlinks "
                        "(100-1000 Mbps) instead of symmetric links")
    p.add_argument("--no-fleet", action="store_true",
                   help="opt out of the fleet layer: legacy zero-latency "
                        "execution with hard-wired fixed-rate dropout")
    p.add_argument("--strategy", default="xnoise",
                   help="orig | early | conK | xnoise")
    p.add_argument("--mechanism", default="gaussian",
                   choices=["gaussian", "skellam"])
    p.add_argument("--transport", default="inprocess",
                   choices=["inprocess", "serialized", "sockets",
                            "websocket"],
                   help="engine transport for protocol rounds: direct "
                        "dispatch, the in-process wire serialization "
                        "boundary, real framed TCP, or real RFC 6455 "
                        "WebSocket connections")
    p.add_argument("--seed", type=int, default=0)


def _add_plan_parser(sub) -> None:
    p = sub.add_parser("plan", help="offline noise planning")
    p.add_argument("--rounds", type=int, required=True)
    p.add_argument("--epsilon", type=float, required=True)
    p.add_argument("--delta", type=float, required=True)
    p.add_argument("--sensitivity", type=float, default=1.0)
    p.add_argument("--mechanism", default="gaussian",
                   choices=["gaussian", "skellam"])


def _add_pipeline_parser(sub) -> None:
    p = sub.add_parser("pipeline", help="pipeline speedup for a workload")
    p.add_argument("--clients", type=int, required=True)
    p.add_argument("--model-size", type=int, required=True)
    p.add_argument("--protocol", default="secagg", choices=["secagg", "secagg+"])
    p.add_argument("--xnoise", action="store_true")
    p.add_argument("--dropout-rate", type=float, default=0.0)
    p.add_argument("--max-chunks", type=int, default=20)


def _add_sockets_parser(sub) -> None:
    p = sub.add_parser(
        "sockets",
        help="one secure-aggregation round over real sockets "
             "(framed TCP or WebSocket)",
    )
    p.add_argument("--clients", type=int, default=5)
    p.add_argument("--dimension", type=int, default=16)
    p.add_argument("--bits", type=int, default=16)
    p.add_argument("--drop", type=int, default=0,
                   help="clients dropping before the masked upload")
    p.add_argument("--xnoise", action="store_true",
                   help="run the integrated XNoise+SecAgg protocol instead")
    p.add_argument("--transport", default="sockets",
                   choices=["sockets", "websocket"],
                   help="wire carrier: framed TCP (default) or RFC 6455 "
                        "WebSocket (byte counts then include the WS "
                        "framing overhead)")
    p.add_argument("--seed", type=int, default=0)


def _add_serve_parser(sub) -> None:
    p = sub.add_parser(
        "serve",
        help="cross-process coordinator: one listening port, one "
             "secure-aggregation round over dialing `join` processes",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="listening port (0 picks an ephemeral one; the "
                        "first output line is always "
                        "`listening <host> <port>`)")
    p.add_argument("--clients", type=int, default=5,
                   help="cohort size — expects exactly these client ids "
                        "(1..N) to dial in")
    p.add_argument("--dimension", type=int, default=16)
    p.add_argument("--bits", type=int, default=16)
    p.add_argument("--transport", default="sockets",
                   choices=["sockets", "websocket"],
                   help="wire carrier: framed TCP (default) or RFC 6455 "
                        "WebSocket")
    p.add_argument("--auth-token", default="",
                   help="shared secret demanded from every HELLO "
                        "(empty: unauthenticated)")
    p.add_argument("--join-timeout", type=float, default=30.0,
                   help="seconds to wait for a client to dial in before "
                        "treating it as a dropout")
    p.add_argument("--json", action="store_true",
                   help="emit one JSON document (aggregate, participant "
                        "sets, per-span traffic) instead of the table — "
                        "the machine-readable parity contract")
    p.add_argument("--seed", type=int, default=0)


def _add_join_parser(sub) -> None:
    p = sub.add_parser(
        "join",
        help="one dialing device for a `serve` coordinator",
    )
    p.add_argument("--client-id", type=int, required=True,
                   help="this device's id (1..--clients)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, required=True,
                   help="the coordinator's listening port")
    p.add_argument("--clients", type=int, default=5,
                   help="cohort size — must match the serve side so the "
                        "deterministic demo inputs line up")
    p.add_argument("--dimension", type=int, default=16)
    p.add_argument("--bits", type=int, default=16)
    p.add_argument("--transport", default="sockets",
                   choices=["sockets", "websocket"],
                   help="wire carrier — must match the serve side")
    p.add_argument("--auth-token", default="",
                   help="shared secret presented in the HELLO")
    p.add_argument("--die-after", type=int, default=None,
                   help="answer this many requests, then vanish without "
                        "a goodbye (dropout injection)")
    p.add_argument("--seed", type=int, default=0,
                   help="must match the serve side")


def _add_bench_parser(sub) -> None:
    p = sub.add_parser(
        "bench",
        help="hot-path microbenchmarks + measured rounds → BENCH_*.json",
    )
    p.add_argument("--dims", type=int, nargs="+",
                   default=[2 ** 14, 2 ** 17, 2 ** 20],
                   help="model dimensions for the PRG/round sweeps")
    p.add_argument("--clients", type=int, default=4,
                   help="clients per measured round (and Shamir cohort)")
    p.add_argument("--repeats", type=int, default=3,
                   help="best-of repetitions per microbenchmark")
    p.add_argument("--bits", type=int, default=20,
                   help="ring bit-width b (modulus 2**b)")
    p.add_argument("--traffic-dimension", type=int, default=1024,
                   help="dimension for the per-stage traffic round")
    p.add_argument("--topics", nargs="+", default=["hotpath", "traffic",
                                                   "round", "listener",
                                                   "fleet"],
                   choices=["hotpath", "traffic", "round", "listener",
                            "fleet", "unmask"],
                   help="which reports to produce (unmask — the "
                        "coordinator's full dropout-recovery plane at the "
                        "target shape — runs only when asked for: its "
                        "reference side alone takes minutes)")
    p.add_argument("--fleet-devices", type=int, default=1_000_000,
                   help="population size for the fleet topic")
    p.add_argument("--fleet-cohort", type=int, default=100,
                   help="sampled clients per round for the fleet topic")
    p.add_argument("--fleet-rounds", type=int, default=50,
                   help="rounds per scenario sweep for the fleet topic")
    p.add_argument("--connections", type=int, default=1000,
                   help="concurrent dialing clients for the listener "
                        "stress topic")
    p.add_argument("--unmask-dim", type=int, default=2 ** 20,
                   help="model dimension for the unmask topic")
    p.add_argument("--unmask-clients", type=int, default=100,
                   help="cohort size for the unmask topic")
    p.add_argument("--unmask-dropout", type=float, default=0.1,
                   help="dropout fraction for the unmask topic")
    p.add_argument("--unmask-workers", type=int, nargs="+", default=[1, 4],
                   help="workers settings timed for the unmask fast plane")
    p.add_argument("--unmask-repeats", type=int, default=1,
                   help="best-of repetitions for the unmask topic (its "
                        "reference side is minutes per repeat at the "
                        "default shape)")
    p.add_argument("--out", default=".",
                   help="directory BENCH_<topic>.json files are written to")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--suite", action="store_true",
                   help="also run the figure/table benchmark suite "
                        "(pytest benchmarks/) before the micro topics")
    p.add_argument("--diff", nargs=2, metavar=("OLD", "NEW"), default=None,
                   help="compare two persisted BENCH_*.json reports and "
                        "exit (no benchmarks run)")


def _add_check_parser(sub) -> None:
    p = sub.add_parser(
        "check",
        help="run the AST-based invariant checker over src/repro",
    )
    p.add_argument("--format", default="text", choices=["text", "json"],
                   help="report format: human-readable lines (default) or "
                        "one machine-readable JSON document")
    p.add_argument("--root", default=None,
                   help="repository root to check (default: the checkout "
                        "this package was loaded from)")
    p.add_argument("--baseline", default=None,
                   help="baseline file grandfathering known findings "
                        "(default: <root>/ANALYSIS_BASELINE.json)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Dordis reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)
    _add_run_parser(sub)
    _add_plan_parser(sub)
    _add_pipeline_parser(sub)
    _add_sockets_parser(sub)
    _add_serve_parser(sub)
    _add_join_parser(sub)
    _add_bench_parser(sub)
    _add_check_parser(sub)
    return parser


def _demo_round_setup(n: int, dimension: int, bits: int, seed: int):
    """The deterministic demo cohort shared by ``sockets``, ``serve``,
    and ``join``: every process deriving from the same seed sees the
    same config and the same per-client ring vectors, so a
    cross-process round is bit-comparable to an in-process one."""
    from repro.secagg.types import SecAggConfig
    from repro.utils.rng import derive_rng

    config = SecAggConfig(
        threshold=max(2, n // 2 + 1),
        bits=bits,
        dimension=dimension,
        dh_group="modp512",
    )
    rng = derive_rng("sockets-demo", seed)
    inputs = {
        u: rng.integers(0, config.modulus, size=dimension)
        for u in range(1, n + 1)
    }
    return config, inputs


def _cmd_run(args) -> int:
    import numpy as np

    from repro.core import DordisConfig, DordisSession
    from repro.fleet import FleetConfig

    model = args.model or ("bigram" if args.task == "reddit-like" else "softmax")
    optimizer = "adamw" if args.task == "reddit-like" else "sgd"
    if args.no_fleet:
        if args.availability != "fixed" or args.asymmetric or args.correlation:
            print(
                "--no-fleet disables the fleet layer, which owns "
                "--availability trace/session, --asymmetric and "
                "--correlation; drop --no-fleet or the fleet flags",
                file=sys.stderr,
            )
            return 2
        fleet = None
    else:
        if args.correlation and args.availability == "fixed":
            print(
                "--correlation couples link speed to availability, which "
                "the fixed-rate model cannot express; add "
                "--availability trace (or session)",
                file=sys.stderr,
            )
            return 2
        fleet = FleetConfig(
            availability=args.availability,
            downlink_range=(100e6 / 8, 1000e6 / 8) if args.asymmetric else None,
            correlation=args.correlation,
        )
    config = DordisConfig(
        task=args.task,
        model=model,
        num_clients=args.num_clients,
        sample_size=args.sample_size,
        rounds=args.rounds,
        epsilon=args.epsilon,
        clip_bound=args.clip_bound,
        learning_rate=args.learning_rate,
        optimizer=optimizer,
        dropout_rate=args.dropout_rate,
        strategy=args.strategy,
        mechanism=args.mechanism,
        transport=args.transport,
        seed=args.seed,
        fleet=fleet,
    )
    session = DordisSession(config)
    result = session.run()
    dropout = (
        f"{args.availability} (mean {float(np.mean(result.dropout_history)):.0%})"
        if args.availability in ("trace", "session") and fleet is not None
        else f"{args.dropout_rate:.0%}"
    )
    print(f"task={args.task} strategy={args.strategy} dropout={dropout}")
    print(f"rounds completed : {result.rounds_completed}"
          f"{' (stopped early)' if result.stopped_early else ''}")
    print(f"final {result.metric_name:10s}: {result.final_metric:.4f}")
    print(f"epsilon consumed : {result.epsilon_consumed:.3f} "
          f"(budget {args.epsilon})")
    if fleet is not None and result.round_seconds_history:
        trace = session.engine.trace
        print(f"mean round       : "
              f"{float(np.mean(result.round_seconds_history)):.3f} s "
              f"(fleet-timed)")
        print(f"traffic          : {trace.total_down_bytes / 2**20:.2f} MiB "
              f"down, {trace.total_up_bytes / 2**20:.2f} MiB up")
    return 0


def _cmd_plan(args) -> int:
    from repro.dp.planner import plan_noise

    plan = plan_noise(
        rounds=args.rounds,
        epsilon_budget=args.epsilon,
        delta=args.delta,
        l2_sensitivity=args.sensitivity,
        mechanism=args.mechanism,
    )
    print(f"mechanism        : {plan.mechanism}")
    print(f"per-round sigma  : {plan.sigma:.6g}")
    print(f"noise multiplier : {plan.noise_multiplier:.6g}")
    print(f"epsilon at R={args.rounds}: {plan.epsilon_if_executed():.4f} "
          f"(budget {args.epsilon})")
    return 0


def _cmd_pipeline(args) -> int:
    from repro.pipeline import build_dordis_perf_model, compare_plain_pipelined

    model = build_dordis_perf_model(
        args.clients,
        args.model_size,
        protocol=args.protocol,
        xnoise=args.xnoise,
        dropout_rate=args.dropout_rate,
    )
    plain, pipe, speedup = compare_plain_pipelined(
        model, args.model_size, max_chunks=args.max_chunks
    )
    print(f"plain round      : {plain.total / 60:.2f} min "
          f"(agg {plain.aggregation_share:.0%})")
    print(f"optimal chunks   : m* = {pipe.n_chunks}")
    print(f"pipelined round  : {pipe.total / 60:.2f} min")
    print(f"speedup          : {speedup:.2f}x")
    return 0


def _cmd_sockets(args) -> int:
    import numpy as np

    from repro.engine import RoundEngine, StreamTransport, WebSocketTransport
    from repro.engine.core import run_sync
    from repro.secagg.driver import DropoutSchedule, arun_secagg_round
    from repro.xnoise.protocol import XNoiseConfig, arun_xnoise_round

    n = args.clients
    if n < 3:
        print("need at least 3 clients", file=sys.stderr)
        return 2
    config, inputs = _demo_round_setup(n, args.dimension, args.bits, args.seed)
    threshold = config.threshold
    if not 0 <= args.drop <= n - threshold:
        print(
            f"--drop must be in [0, {n - threshold}]: with {n} clients the "
            f"Shamir threshold is {threshold}, so at most {n - threshold} "
            f"dropouts are tolerable",
            file=sys.stderr,
        )
        return 2
    dropped = set(range(1, args.drop + 1))
    schedule = DropoutSchedule.before_upload(dropped)
    transport = (
        WebSocketTransport()
        if args.transport == "websocket"
        else StreamTransport()
    )
    engine = RoundEngine(transport=transport)

    if args.xnoise:
        xconfig = XNoiseConfig(
            secagg=config,
            n_sampled=n,
            tolerance=max(1, n - threshold),
            target_variance=4.0,
        )
        signal_inputs = {
            u: (v - config.modulus // 2) for u, v in inputs.items()
        }
        result = run_sync(
            arun_xnoise_round(xconfig, signal_inputs, schedule, engine=engine)
        )
    else:
        result = run_sync(
            arun_secagg_round(config, dict(inputs), schedule, engine=engine)
        )

    protocol = "XNoise+SecAgg" if args.xnoise else "SecAgg"
    carrier = (
        "RFC 6455 WebSocket" if args.transport == "websocket"
        else "framed TCP"
    )
    print(f"protocol         : {protocol} over {carrier} (localhost)")
    print(f"sampled/survived : {n} sampled, {len(result.u3)} in U3 "
          f"({args.drop} dropped before upload)")
    if not args.xnoise:
        expected = np.zeros(config.dimension, dtype=np.int64)
        for u in result.u3:
            expected = (expected + inputs[u]) % config.modulus
        ok = np.array_equal(result.aggregate, expected)
        print(f"aggregate        : {'verified — ring sum over U3 matches' if ok else 'MISMATCH'}")
        if not ok:
            return 1
    print()
    print("measured per-stage traffic (framed bytes on the socket):")
    print(f"  {'stage':20s} {'down':>10s} {'up':>10s} {'total':>10s}")
    for label, split in engine.trace.stage_traffic_split(0).items():
        if split.total:
            print(f"  {label:20s} {split.down:>10,d} {split.up:>10,d} "
                  f"{split.total:>10,d}")
    total = engine.trace.round_traffic_bytes(0)
    round_split = engine.trace.round_traffic_split(0)
    stats = transport.closed_connection_stats
    frames = sum(s.frame_bytes for s in stats)
    down_frames = sum(s.down_bytes for s in stats)
    up_frames = sum(s.up_bytes for s in stats)
    handshake = sum(s.handshake_sent + s.handshake_received for s in stats)
    print(f"  {'total':20s} {round_split.down:>10,d} {round_split.up:>10,d} "
          f"{total:>10,d}")
    print()
    print(f"connections      : {len(stats)} "
          f"(+{handshake:,d} B handshake, not stage-accounted)")
    balanced = (
        total == frames
        and round_split.down == down_frames
        and round_split.up == up_frames
    )
    print(f"accounting check : traced {round_split.down:,d}↓ + "
          f"{round_split.up:,d}↑ == framed {down_frames:,d}↓ + "
          f"{up_frames:,d}↑ {'✓' if balanced else '✗ MISMATCH'}")
    return 0 if balanced else 1


def _cmd_serve(args) -> int:
    import json

    import numpy as np

    from repro.engine import CoordinatorListener, ListenerTransport, RoundEngine
    from repro.engine.core import run_sync
    from repro.secagg.driver import secagg_round_components

    n = args.clients
    if n < 3:
        print("need at least 3 clients", file=sys.stderr)
        return 2
    if not 0 <= args.port <= 65535:
        print(f"--port must be in [0, 65535], not {args.port}",
              file=sys.stderr)
        return 2
    if args.join_timeout <= 0:
        print("--join-timeout must be positive", file=sys.stderr)
        return 2
    config, inputs = _demo_round_setup(n, args.dimension, args.bits, args.seed)
    # The local workflow clients are inert id-carriers: every state
    # machine lives behind a socket, in a `join` process.
    server, clients = secagg_round_components(config, dict(inputs))

    async def run():
        listener = CoordinatorListener(
            args.host,
            args.port,
            carrier=args.transport,
            expected_ids=set(inputs),
            auth_token=args.auth_token.encode(),
            join_timeout=args.join_timeout,
        )
        host, port = await listener.start()
        # The contract line a supervising process (or a human in a
        # second terminal) parses to learn the ephemeral port.
        print(f"listening {host} {port}", flush=True)
        engine = RoundEngine(transport=ListenerTransport(listener))
        try:
            result = await engine.run_round(server, clients)
        finally:
            await listener.aclose()
        return listener, engine, result

    listener, engine, result = run_sync(run())

    expected = np.zeros(config.dimension, dtype=np.int64)
    for u in result.u3:
        expected = (expected + inputs[u]) % config.modulus
    ok = np.array_equal(result.aggregate, expected)
    total = engine.trace.round_traffic_bytes(0)
    split = engine.trace.round_traffic_split(0)
    stats = listener.closed_connection_stats
    balanced = (
        total == sum(s.frame_bytes for s in stats)
        and split.down == sum(s.down_bytes for s in stats)
        and split.up == sum(s.up_bytes for s in stats)
    )

    if args.json:
        print(json.dumps({
            "protocol": "secagg",
            "transport": args.transport,
            "clients": n,
            "u3": sorted(result.u3),
            "u5": sorted(result.u5),
            "aggregate": [int(x) for x in result.aggregate],
            "aggregate_ok": bool(ok),
            "spans": [
                {"label": s.label, "begin": s.begin, "finish": s.finish,
                 "down": s.down_bytes, "up": s.up_bytes}
                for s in engine.trace.spans
            ],
            "traffic": {"down": split.down, "up": split.up, "total": total},
            "connections": len(stats),
            "accepted": listener.accepted,
            "rejected": listener.rejected,
            "balanced": balanced,
        }))
        return 0 if ok else 1

    carrier = (
        "RFC 6455 WebSocket" if args.transport == "websocket"
        else "framed TCP"
    )
    print(f"protocol         : SecAgg over {carrier} (cross-process)")
    print(f"cohort/survived  : {n} expected, {listener.accepted} joined, "
          f"{len(result.u3)} in U3")
    print(f"aggregate        : "
          f"{'verified — ring sum over U3 matches' if ok else 'MISMATCH'}")
    print()
    print("measured per-stage traffic (framed bytes on the socket):")
    print(f"  {'stage':20s} {'down':>10s} {'up':>10s} {'total':>10s}")
    for label, stage in engine.trace.stage_traffic_split(0).items():
        if stage.total:
            print(f"  {label:20s} {stage.down:>10,d} {stage.up:>10,d} "
                  f"{stage.total:>10,d}")
    print(f"  {'total':20s} {split.down:>10,d} {split.up:>10,d} "
          f"{total:>10,d}")
    print(f"accounting check : "
          f"{'✓' if balanced else '✗ (clients died mid-round?)'}")
    return 0 if ok else 1


def _cmd_join(args) -> int:
    import json

    from repro.engine import DialingClient
    from repro.engine.core import run_sync
    from repro.secagg.driver import secagg_round_components

    n = args.clients
    if n < 3:
        print("need at least 3 clients", file=sys.stderr)
        return 2
    if not 1 <= args.port <= 65535:
        print(f"--port must be in [1, 65535], not {args.port}",
              file=sys.stderr)
        return 2
    if not 1 <= args.client_id <= n:
        print(f"--client-id must be in [1, {n}] for a {n}-client cohort",
              file=sys.stderr)
        return 2
    if args.die_after is not None and args.die_after < 1:
        print("--die-after must be at least 1", file=sys.stderr)
        return 2
    config, inputs = _demo_round_setup(n, args.dimension, args.bits, args.seed)
    # Identical construction to the in-process round — only this
    # client's workflow actually serves; the rest are garbage-collected.
    _server, clients = secagg_round_components(config, dict(inputs))
    workflow = next(c for c in clients if c.id == args.client_id)
    dialer = DialingClient(
        workflow,
        args.host,
        args.port,
        carrier=args.transport,
        auth_token=args.auth_token.encode(),
        max_requests=args.die_after,
    )
    try:
        run_sync(dialer.run())
    except (ValueError, ConnectionError) as exc:
        print(f"join failed: {exc}", file=sys.stderr)
        return 1
    # This end's ground-truth byte counters — the cross-process twin of
    # ConnectionStats.endpoint_*, reported on stdout instead.
    print(json.dumps({
        "client_id": args.client_id,
        "bytes_sent": dialer.bytes_sent,
        "bytes_received": dialer.bytes_received,
        "request_bytes": dialer.request_bytes,
        "response_bytes": dialer.response_bytes,
        "requests": dialer.requests,
        "handshake_sent": dialer.handshake_sent,
        "handshake_received": dialer.handshake_received,
    }))
    return 0


def _cmd_bench(args) -> int:
    from repro import bench

    if args.diff:
        old, new = args.diff
        print(bench.format_diff(bench.diff_bench(old, new)))
        return 0

    if args.suite:
        import subprocess

        print("running figure/table suite (pytest benchmarks/) ...")
        rc = subprocess.call(
            [sys.executable, "-m", "pytest", "benchmarks", "-q"]
        )
        if rc != 0:
            print("figure/table suite failed", file=sys.stderr)
            return rc

    written = []
    if "hotpath" in args.topics:
        report = bench.run_hotpath(
            args.dims,
            clients=args.clients,
            repeats=args.repeats,
            bits=args.bits,
            seed=args.seed,
        )
        written.append(bench.write_bench(report, args.out))
        d = max(args.dims)
        m = report["metrics"]
        speedup = m.get(f"prg_expand_d{d}_speedup")
        if speedup:
            print(f"PRG expand d={d}: "
                  f"{m[f'prg_expand_d{d}_reference_s']['value']:.4f}s ref → "
                  f"{m[f'prg_expand_d{d}_fast_s']['value']:.4f}s fast "
                  f"({speedup['value']:.2f}x)")
    if "traffic" in args.topics:
        report = bench.run_traffic(
            clients=args.clients,
            dimension=args.traffic_dimension,
            bits=args.bits,
            seed=args.seed,
        )
        written.append(bench.write_bench(report, args.out))
        m = report["metrics"]
        print(f"traffic round d={args.traffic_dimension}: "
              f"{int(m['total_bytes']['value']):,d} B framed in "
              f"{m['round_wall_s']['value']:.3f}s")
    if "round" in args.topics:
        report = bench.run_round(
            args.dims, clients=args.clients, bits=args.bits, seed=args.seed
        )
        written.append(bench.write_bench(report, args.out))
        for d in args.dims:
            v = report["metrics"][f"round_d{d}_wall_s"]["value"]
            print(f"measured round d={d}: {v:.3f}s")
    if "fleet" in args.topics:
        if args.fleet_devices < 1 or args.fleet_cohort < 1 or args.fleet_rounds < 2:
            print("--fleet-devices/--fleet-cohort must be positive and "
                  "--fleet-rounds at least 2", file=sys.stderr)
            return 2
        report = bench.run_fleet(
            devices=args.fleet_devices,
            cohort=args.fleet_cohort,
            rounds=args.fleet_rounds,
            repeats=args.repeats,
            seed=args.seed,
        )
        written.append(bench.write_bench(report, args.out))
        m = report["metrics"]
        print(f"fleet build n={args.fleet_devices:,d}: "
              f"{m['build_columnar_s']['value']:.3f}s columnar "
              f"({m['build_per_device_speedup']['value']:.1f}x per-device "
              f"vs boxed)")
        print(f"fleet round cost k={min(args.fleet_cohort, args.fleet_devices)}: "
              f"{m['round_cost_reference_s']['value'] * 1e3:.3f}ms loop → "
              f"{m['round_cost_fast_s']['value'] * 1e3:.3f}ms vectorized "
              f"({m['round_cost_speedup']['value']:.2f}x), "
              f"{int(m['resident_profiles']['value'])} resident profiles")
    if "unmask" in args.topics:
        if args.unmask_clients < 4 or not 0 <= args.unmask_dropout < 0.5:
            print("--unmask-clients must be >= 4 and --unmask-dropout in "
                  "[0, 0.5)", file=sys.stderr)
            return 2
        report = bench.run_unmask(
            dim=args.unmask_dim,
            clients=args.unmask_clients,
            dropout=args.unmask_dropout,
            workers_list=args.unmask_workers,
            repeats=args.unmask_repeats,
            bits=args.bits,
            seed=args.seed,
        )
        written.append(bench.write_bench(report, args.out))
        m = report["metrics"]
        ref = m["unmask_reference_s"]["value"]
        print(f"unmask plane d={args.unmask_dim} n={args.unmask_clients} "
              f"dropout={args.unmask_dropout:g} "
              f"({report['config']['prg_backend']}): {ref:.3f}s reference")
        for w in args.unmask_workers:
            fast = m[f"unmask_fast_w{w}_s"]["value"]
            speed = m[f"unmask_speedup_w{w}"]["value"]
            print(f"  workers={w}: {fast:.3f}s ({speed:.2f}x)")
        if not m["parity_bit_identical"]["value"]:
            print("unmask plane: fast aggregate != reference aggregate",
                  file=sys.stderr)
            return 1
    if "listener" in args.topics:
        if args.connections < 1:
            print("--connections must be positive", file=sys.stderr)
            return 2
        report = bench.run_listener(connections=args.connections)
        written.append(bench.write_bench(report, args.out))
        m = report["metrics"]
        print(f"listener stress n={args.connections}: accepted in "
              f"{m['accept_wall_s']['value']:.3f}s "
              f"({m['accept_rate_per_s']['value']:,.0f}/s), echo round "
              f"{m['round_wall_s']['value']:.3f}s, "
              f"{int(m['total_bytes']['value']):,d} B on the wire")
        if not m["all_answered_ok"]["value"]:
            print("listener stress: not every exchange answered",
                  file=sys.stderr)
            return 1
    for path in written:
        print(f"wrote {path}")
    return 0


def _cmd_check(args) -> int:
    from pathlib import Path

    from repro.analysis import render_json, render_text, run_check

    root = Path(args.root).resolve() if args.root else None
    baseline = Path(args.baseline).resolve() if args.baseline else None
    try:
        result = run_check(root=root, baseline_path=baseline)
    except (FileNotFoundError, ValueError) as exc:
        print(f"check: {exc}", file=sys.stderr)
        return 2
    render = render_json if args.format == "json" else render_text
    print(render(result))
    return 0 if result.clean else 1


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "plan": _cmd_plan,
        "pipeline": _cmd_pipeline,
        "sockets": _cmd_sockets,
        "serve": _cmd_serve,
        "join": _cmd_join,
        "bench": _cmd_bench,
        "check": _cmd_check,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
