"""Command-line interface.

Five subcommands mirror the workflow a user of the original system
walks through:

- ``run``      — train one Dordis session and report utility + ε;
- ``plan``     — offline noise planning: print the per-round σ for a
  budget/horizon (§2.2);
- ``pipeline`` — print plain-vs-pipelined round times and the optimal
  chunk count for a workload (§4);
- ``sockets``  — run one secure-aggregation round over real localhost
  connections — framed TCP or RFC 6455 WebSocket
  (``--transport websocket``) — and report the *measured* per-stage
  traffic and per-connection byte accounting;
- ``bench``    — run the hot-path microbenchmarks (each optimized
  crypto/codec path against its retained ``*_reference`` twin) and
  measured end-to-end rounds, writing one machine-readable
  ``BENCH_<topic>.json`` per topic; ``--diff old new`` compares two
  persisted reports metric by metric.

Examples::

    python -m repro.cli run --task cifar10-like --dropout-rate 0.2 \\
        --strategy xnoise --rounds 8
    python -m repro.cli plan --rounds 150 --epsilon 6 --delta 0.01
    python -m repro.cli pipeline --clients 100 --model-size 11000000
    python -m repro.cli sockets --clients 6 --dimension 64 --drop 1
    python -m repro.cli sockets --clients 6 --transport websocket
    python -m repro.cli bench --out .
    python -m repro.cli bench --diff BENCH_hotpath.old.json BENCH_hotpath.json
"""

from __future__ import annotations

import argparse
import sys


def _add_run_parser(sub) -> None:
    p = sub.add_parser("run", help="train one Dordis session")
    p.add_argument("--task", default="cifar10-like",
                   choices=["cifar10-like", "cifar100-like", "femnist-like",
                            "reddit-like"])
    p.add_argument("--model", default=None,
                   choices=["softmax", "mlp", "bigram"],
                   help="defaults to softmax (bigram for reddit-like)")
    p.add_argument("--num-clients", type=int, default=40)
    p.add_argument("--sample-size", type=int, default=12)
    p.add_argument("--rounds", type=int, default=8)
    p.add_argument("--epsilon", type=float, default=6.0)
    p.add_argument("--clip-bound", type=float, default=0.5)
    p.add_argument("--learning-rate", type=float, default=0.15)
    p.add_argument("--dropout-rate", type=float, default=0.0)
    p.add_argument("--availability", default="fixed",
                   choices=["fixed", "trace"],
                   help="fixed: i.i.d. dropout at --dropout-rate; trace: "
                        "Fig.-1a behaviour-trace churn (rate swings per "
                        "round, --dropout-rate ignored)")
    p.add_argument("--asymmetric", action="store_true",
                   help="give devices independent Zipf downlinks "
                        "(100-1000 Mbps) instead of symmetric links")
    p.add_argument("--no-fleet", action="store_true",
                   help="opt out of the fleet layer: legacy zero-latency "
                        "execution with hard-wired fixed-rate dropout")
    p.add_argument("--strategy", default="xnoise",
                   help="orig | early | conK | xnoise")
    p.add_argument("--mechanism", default="gaussian",
                   choices=["gaussian", "skellam"])
    p.add_argument("--transport", default="inprocess",
                   choices=["inprocess", "serialized", "sockets",
                            "websocket"],
                   help="engine transport for protocol rounds: direct "
                        "dispatch, the in-process wire serialization "
                        "boundary, real framed TCP, or real RFC 6455 "
                        "WebSocket connections")
    p.add_argument("--seed", type=int, default=0)


def _add_plan_parser(sub) -> None:
    p = sub.add_parser("plan", help="offline noise planning")
    p.add_argument("--rounds", type=int, required=True)
    p.add_argument("--epsilon", type=float, required=True)
    p.add_argument("--delta", type=float, required=True)
    p.add_argument("--sensitivity", type=float, default=1.0)
    p.add_argument("--mechanism", default="gaussian",
                   choices=["gaussian", "skellam"])


def _add_pipeline_parser(sub) -> None:
    p = sub.add_parser("pipeline", help="pipeline speedup for a workload")
    p.add_argument("--clients", type=int, required=True)
    p.add_argument("--model-size", type=int, required=True)
    p.add_argument("--protocol", default="secagg", choices=["secagg", "secagg+"])
    p.add_argument("--xnoise", action="store_true")
    p.add_argument("--dropout-rate", type=float, default=0.0)
    p.add_argument("--max-chunks", type=int, default=20)


def _add_sockets_parser(sub) -> None:
    p = sub.add_parser(
        "sockets",
        help="one secure-aggregation round over real sockets "
             "(framed TCP or WebSocket)",
    )
    p.add_argument("--clients", type=int, default=5)
    p.add_argument("--dimension", type=int, default=16)
    p.add_argument("--bits", type=int, default=16)
    p.add_argument("--drop", type=int, default=0,
                   help="clients dropping before the masked upload")
    p.add_argument("--xnoise", action="store_true",
                   help="run the integrated XNoise+SecAgg protocol instead")
    p.add_argument("--transport", default="sockets",
                   choices=["sockets", "websocket"],
                   help="wire carrier: framed TCP (default) or RFC 6455 "
                        "WebSocket (byte counts then include the WS "
                        "framing overhead)")
    p.add_argument("--seed", type=int, default=0)


def _add_bench_parser(sub) -> None:
    p = sub.add_parser(
        "bench",
        help="hot-path microbenchmarks + measured rounds → BENCH_*.json",
    )
    p.add_argument("--dims", type=int, nargs="+",
                   default=[2 ** 14, 2 ** 17, 2 ** 20],
                   help="model dimensions for the PRG/round sweeps")
    p.add_argument("--clients", type=int, default=4,
                   help="clients per measured round (and Shamir cohort)")
    p.add_argument("--repeats", type=int, default=3,
                   help="best-of repetitions per microbenchmark")
    p.add_argument("--bits", type=int, default=20,
                   help="ring bit-width b (modulus 2**b)")
    p.add_argument("--traffic-dimension", type=int, default=1024,
                   help="dimension for the per-stage traffic round")
    p.add_argument("--topics", nargs="+", default=["hotpath", "traffic",
                                                   "round"],
                   choices=["hotpath", "traffic", "round"],
                   help="which reports to produce")
    p.add_argument("--out", default=".",
                   help="directory BENCH_<topic>.json files are written to")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--suite", action="store_true",
                   help="also run the figure/table benchmark suite "
                        "(pytest benchmarks/) before the micro topics")
    p.add_argument("--diff", nargs=2, metavar=("OLD", "NEW"), default=None,
                   help="compare two persisted BENCH_*.json reports and "
                        "exit (no benchmarks run)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Dordis reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)
    _add_run_parser(sub)
    _add_plan_parser(sub)
    _add_pipeline_parser(sub)
    _add_sockets_parser(sub)
    _add_bench_parser(sub)
    return parser


def _cmd_run(args) -> int:
    import numpy as np

    from repro.core import DordisConfig, DordisSession
    from repro.fleet import FleetConfig

    model = args.model or ("bigram" if args.task == "reddit-like" else "softmax")
    optimizer = "adamw" if args.task == "reddit-like" else "sgd"
    if args.no_fleet:
        if args.availability != "fixed" or args.asymmetric:
            print(
                "--no-fleet disables the fleet layer, which owns "
                "--availability trace and --asymmetric; drop --no-fleet "
                "or the fleet flags",
                file=sys.stderr,
            )
            return 2
        fleet = None
    else:
        fleet = FleetConfig(
            availability=args.availability,
            downlink_range=(100e6 / 8, 1000e6 / 8) if args.asymmetric else None,
        )
    config = DordisConfig(
        task=args.task,
        model=model,
        num_clients=args.num_clients,
        sample_size=args.sample_size,
        rounds=args.rounds,
        epsilon=args.epsilon,
        clip_bound=args.clip_bound,
        learning_rate=args.learning_rate,
        optimizer=optimizer,
        dropout_rate=args.dropout_rate,
        strategy=args.strategy,
        mechanism=args.mechanism,
        transport=args.transport,
        seed=args.seed,
        fleet=fleet,
    )
    session = DordisSession(config)
    result = session.run()
    dropout = (
        f"trace (mean {float(np.mean(result.dropout_history)):.0%})"
        if args.availability == "trace" and fleet is not None
        else f"{args.dropout_rate:.0%}"
    )
    print(f"task={args.task} strategy={args.strategy} dropout={dropout}")
    print(f"rounds completed : {result.rounds_completed}"
          f"{' (stopped early)' if result.stopped_early else ''}")
    print(f"final {result.metric_name:10s}: {result.final_metric:.4f}")
    print(f"epsilon consumed : {result.epsilon_consumed:.3f} "
          f"(budget {args.epsilon})")
    if fleet is not None and result.round_seconds_history:
        trace = session.engine.trace
        print(f"mean round       : "
              f"{float(np.mean(result.round_seconds_history)):.3f} s "
              f"(fleet-timed)")
        print(f"traffic          : {trace.total_down_bytes / 2**20:.2f} MiB "
              f"down, {trace.total_up_bytes / 2**20:.2f} MiB up")
    return 0


def _cmd_plan(args) -> int:
    from repro.dp.planner import plan_noise

    plan = plan_noise(
        rounds=args.rounds,
        epsilon_budget=args.epsilon,
        delta=args.delta,
        l2_sensitivity=args.sensitivity,
        mechanism=args.mechanism,
    )
    print(f"mechanism        : {plan.mechanism}")
    print(f"per-round sigma  : {plan.sigma:.6g}")
    print(f"noise multiplier : {plan.noise_multiplier:.6g}")
    print(f"epsilon at R={args.rounds}: {plan.epsilon_if_executed():.4f} "
          f"(budget {args.epsilon})")
    return 0


def _cmd_pipeline(args) -> int:
    from repro.pipeline import build_dordis_perf_model, compare_plain_pipelined

    model = build_dordis_perf_model(
        args.clients,
        args.model_size,
        protocol=args.protocol,
        xnoise=args.xnoise,
        dropout_rate=args.dropout_rate,
    )
    plain, pipe, speedup = compare_plain_pipelined(
        model, args.model_size, max_chunks=args.max_chunks
    )
    print(f"plain round      : {plain.total / 60:.2f} min "
          f"(agg {plain.aggregation_share:.0%})")
    print(f"optimal chunks   : m* = {pipe.n_chunks}")
    print(f"pipelined round  : {pipe.total / 60:.2f} min")
    print(f"speedup          : {speedup:.2f}x")
    return 0


def _cmd_sockets(args) -> int:
    import numpy as np

    from repro.engine import RoundEngine, StreamTransport, WebSocketTransport
    from repro.engine.core import run_sync
    from repro.secagg.driver import DropoutSchedule, arun_secagg_round
    from repro.secagg.types import SecAggConfig
    from repro.utils.rng import derive_rng
    from repro.xnoise.protocol import XNoiseConfig, arun_xnoise_round

    n = args.clients
    if n < 3:
        print("need at least 3 clients", file=sys.stderr)
        return 2
    threshold = max(2, n // 2 + 1)
    if not 0 <= args.drop <= n - threshold:
        print(
            f"--drop must be in [0, {n - threshold}]: with {n} clients the "
            f"Shamir threshold is {threshold}, so at most {n - threshold} "
            f"dropouts are tolerable",
            file=sys.stderr,
        )
        return 2
    config = SecAggConfig(
        threshold=threshold,
        bits=args.bits,
        dimension=args.dimension,
        dh_group="modp512",
    )
    rng = derive_rng("sockets-demo", args.seed)
    inputs = {
        u: rng.integers(0, config.modulus, size=args.dimension)
        for u in range(1, n + 1)
    }
    dropped = set(range(1, args.drop + 1))
    schedule = DropoutSchedule.before_upload(dropped)
    transport = (
        WebSocketTransport()
        if args.transport == "websocket"
        else StreamTransport()
    )
    engine = RoundEngine(transport=transport)

    if args.xnoise:
        xconfig = XNoiseConfig(
            secagg=config,
            n_sampled=n,
            tolerance=max(1, n - threshold),
            target_variance=4.0,
        )
        signal_inputs = {
            u: (v - config.modulus // 2) for u, v in inputs.items()
        }
        result = run_sync(
            arun_xnoise_round(xconfig, signal_inputs, schedule, engine=engine)
        )
    else:
        result = run_sync(
            arun_secagg_round(config, dict(inputs), schedule, engine=engine)
        )

    protocol = "XNoise+SecAgg" if args.xnoise else "SecAgg"
    carrier = (
        "RFC 6455 WebSocket" if args.transport == "websocket"
        else "framed TCP"
    )
    print(f"protocol         : {protocol} over {carrier} (localhost)")
    print(f"sampled/survived : {n} sampled, {len(result.u3)} in U3 "
          f"({args.drop} dropped before upload)")
    if not args.xnoise:
        expected = np.zeros(config.dimension, dtype=np.int64)
        for u in result.u3:
            expected = (expected + inputs[u]) % config.modulus
        ok = np.array_equal(result.aggregate, expected)
        print(f"aggregate        : {'verified — ring sum over U3 matches' if ok else 'MISMATCH'}")
        if not ok:
            return 1
    print()
    print("measured per-stage traffic (framed bytes on the socket):")
    print(f"  {'stage':20s} {'down':>10s} {'up':>10s} {'total':>10s}")
    for label, split in engine.trace.stage_traffic_split(0).items():
        if split.total:
            print(f"  {label:20s} {split.down:>10,d} {split.up:>10,d} "
                  f"{split.total:>10,d}")
    total = engine.trace.round_traffic_bytes(0)
    round_split = engine.trace.round_traffic_split(0)
    stats = transport.closed_connection_stats
    frames = sum(s.frame_bytes for s in stats)
    down_frames = sum(s.down_bytes for s in stats)
    up_frames = sum(s.up_bytes for s in stats)
    handshake = sum(s.handshake_sent + s.handshake_received for s in stats)
    print(f"  {'total':20s} {round_split.down:>10,d} {round_split.up:>10,d} "
          f"{total:>10,d}")
    print()
    print(f"connections      : {len(stats)} "
          f"(+{handshake:,d} B handshake, not stage-accounted)")
    balanced = (
        total == frames
        and round_split.down == down_frames
        and round_split.up == up_frames
    )
    print(f"accounting check : traced {round_split.down:,d}↓ + "
          f"{round_split.up:,d}↑ == framed {down_frames:,d}↓ + "
          f"{up_frames:,d}↑ {'✓' if balanced else '✗ MISMATCH'}")
    return 0 if balanced else 1


def _cmd_bench(args) -> int:
    from repro import bench

    if args.diff:
        old, new = args.diff
        print(bench.format_diff(bench.diff_bench(old, new)))
        return 0

    if args.suite:
        import subprocess

        print("running figure/table suite (pytest benchmarks/) ...")
        rc = subprocess.call(
            [sys.executable, "-m", "pytest", "benchmarks", "-q"]
        )
        if rc != 0:
            print("figure/table suite failed", file=sys.stderr)
            return rc

    written = []
    if "hotpath" in args.topics:
        report = bench.run_hotpath(
            args.dims,
            clients=args.clients,
            repeats=args.repeats,
            bits=args.bits,
            seed=args.seed,
        )
        written.append(bench.write_bench(report, args.out))
        d = max(args.dims)
        m = report["metrics"]
        speedup = m.get(f"prg_expand_d{d}_speedup")
        if speedup:
            print(f"PRG expand d={d}: "
                  f"{m[f'prg_expand_d{d}_reference_s']['value']:.4f}s ref → "
                  f"{m[f'prg_expand_d{d}_fast_s']['value']:.4f}s fast "
                  f"({speedup['value']:.2f}x)")
    if "traffic" in args.topics:
        report = bench.run_traffic(
            clients=args.clients,
            dimension=args.traffic_dimension,
            bits=args.bits,
            seed=args.seed,
        )
        written.append(bench.write_bench(report, args.out))
        m = report["metrics"]
        print(f"traffic round d={args.traffic_dimension}: "
              f"{int(m['total_bytes']['value']):,d} B framed in "
              f"{m['round_wall_s']['value']:.3f}s")
    if "round" in args.topics:
        report = bench.run_round(
            args.dims, clients=args.clients, bits=args.bits, seed=args.seed
        )
        written.append(bench.write_bench(report, args.out))
        for d in args.dims:
            v = report["metrics"][f"round_d{d}_wall_s"]["value"]
            print(f"measured round d={d}: {v:.3f}s")
    for path in written:
        print(f"wrote {path}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "plan": _cmd_plan,
        "pipeline": _cmd_pipeline,
        "sockets": _cmd_sockets,
        "bench": _cmd_bench,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
