"""Command-line interface.

Three subcommands mirror the workflow a user of the original system
walks through:

- ``run``      — train one Dordis session and report utility + ε;
- ``plan``     — offline noise planning: print the per-round σ for a
  budget/horizon (§2.2);
- ``pipeline`` — print plain-vs-pipelined round times and the optimal
  chunk count for a workload (§4).

Examples::

    python -m repro.cli run --task cifar10-like --dropout-rate 0.2 \\
        --strategy xnoise --rounds 8
    python -m repro.cli plan --rounds 150 --epsilon 6 --delta 0.01
    python -m repro.cli pipeline --clients 100 --model-size 11000000
"""

from __future__ import annotations

import argparse
import sys


def _add_run_parser(sub) -> None:
    p = sub.add_parser("run", help="train one Dordis session")
    p.add_argument("--task", default="cifar10-like",
                   choices=["cifar10-like", "cifar100-like", "femnist-like",
                            "reddit-like"])
    p.add_argument("--model", default=None,
                   choices=["softmax", "mlp", "bigram"],
                   help="defaults to softmax (bigram for reddit-like)")
    p.add_argument("--num-clients", type=int, default=40)
    p.add_argument("--sample-size", type=int, default=12)
    p.add_argument("--rounds", type=int, default=8)
    p.add_argument("--epsilon", type=float, default=6.0)
    p.add_argument("--clip-bound", type=float, default=0.5)
    p.add_argument("--learning-rate", type=float, default=0.15)
    p.add_argument("--dropout-rate", type=float, default=0.0)
    p.add_argument("--strategy", default="xnoise",
                   help="orig | early | conK | xnoise")
    p.add_argument("--mechanism", default="gaussian",
                   choices=["gaussian", "skellam"])
    p.add_argument("--seed", type=int, default=0)


def _add_plan_parser(sub) -> None:
    p = sub.add_parser("plan", help="offline noise planning")
    p.add_argument("--rounds", type=int, required=True)
    p.add_argument("--epsilon", type=float, required=True)
    p.add_argument("--delta", type=float, required=True)
    p.add_argument("--sensitivity", type=float, default=1.0)
    p.add_argument("--mechanism", default="gaussian",
                   choices=["gaussian", "skellam"])


def _add_pipeline_parser(sub) -> None:
    p = sub.add_parser("pipeline", help="pipeline speedup for a workload")
    p.add_argument("--clients", type=int, required=True)
    p.add_argument("--model-size", type=int, required=True)
    p.add_argument("--protocol", default="secagg", choices=["secagg", "secagg+"])
    p.add_argument("--xnoise", action="store_true")
    p.add_argument("--dropout-rate", type=float, default=0.0)
    p.add_argument("--max-chunks", type=int, default=20)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Dordis reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)
    _add_run_parser(sub)
    _add_plan_parser(sub)
    _add_pipeline_parser(sub)
    return parser


def _cmd_run(args) -> int:
    from repro.core import DordisConfig, DordisSession

    model = args.model or ("bigram" if args.task == "reddit-like" else "softmax")
    optimizer = "adamw" if args.task == "reddit-like" else "sgd"
    config = DordisConfig(
        task=args.task,
        model=model,
        num_clients=args.num_clients,
        sample_size=args.sample_size,
        rounds=args.rounds,
        epsilon=args.epsilon,
        clip_bound=args.clip_bound,
        learning_rate=args.learning_rate,
        optimizer=optimizer,
        dropout_rate=args.dropout_rate,
        strategy=args.strategy,
        mechanism=args.mechanism,
        seed=args.seed,
    )
    result = DordisSession(config).run()
    print(f"task={args.task} strategy={args.strategy} "
          f"dropout={args.dropout_rate:.0%}")
    print(f"rounds completed : {result.rounds_completed}"
          f"{' (stopped early)' if result.stopped_early else ''}")
    print(f"final {result.metric_name:10s}: {result.final_metric:.4f}")
    print(f"epsilon consumed : {result.epsilon_consumed:.3f} "
          f"(budget {args.epsilon})")
    return 0


def _cmd_plan(args) -> int:
    from repro.dp.planner import plan_noise

    plan = plan_noise(
        rounds=args.rounds,
        epsilon_budget=args.epsilon,
        delta=args.delta,
        l2_sensitivity=args.sensitivity,
        mechanism=args.mechanism,
    )
    print(f"mechanism        : {plan.mechanism}")
    print(f"per-round sigma  : {plan.sigma:.6g}")
    print(f"noise multiplier : {plan.noise_multiplier:.6g}")
    print(f"epsilon at R={args.rounds}: {plan.epsilon_if_executed():.4f} "
          f"(budget {args.epsilon})")
    return 0


def _cmd_pipeline(args) -> int:
    from repro.pipeline import build_dordis_perf_model, compare_plain_pipelined

    model = build_dordis_perf_model(
        args.clients,
        args.model_size,
        protocol=args.protocol,
        xnoise=args.xnoise,
        dropout_rate=args.dropout_rate,
    )
    plain, pipe, speedup = compare_plain_pipelined(
        model, args.model_size, max_chunks=args.max_chunks
    )
    print(f"plain round      : {plain.total / 60:.2f} min "
          f"(agg {plain.aggregation_share:.0%})")
    print(f"optimal chunks   : m* = {pipe.n_chunks}")
    print(f"pipelined round  : {pipe.total / 60:.2f} min")
    print(f"speedup          : {speedup:.2f}x")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {"run": _cmd_run, "plan": _cmd_plan, "pipeline": _cmd_pipeline}
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
