"""Dordis reproduction: dropout-resilient distributed DP for federated learning.

This package is a from-scratch reproduction of the system described in
*Dordis: Efficient Federated Learning with Dropout-Resilient Differential
Privacy* (Jiang, Wang, Chen — EuroSys 2024).  It contains:

- ``repro.crypto``   — cryptographic primitives (Shamir, DH, AE, Schnorr, PRG)
  built on the Python standard library.
- ``repro.dp``       — distributed differential privacy: RDP accounting,
  the distributed Gaussian and DSkellam mechanisms, and offline noise
  planning.
- ``repro.secagg``   — the SecAgg (Bonawitz et al.) and SecAgg+ (Bell et
  al.) secure-aggregation protocols as in-process state machines.
- ``repro.xnoise``   — the paper's core contribution: the XNoise
  ``add-then-remove`` noise-enforcement scheme with noise decomposition,
  seed secret-sharing, and malicious-server checks, plus the ``rebasing``
  baseline.
- ``repro.fl``       — a NumPy federated-learning substrate (models, non-IID
  data, FedAvg).
- ``repro.fleet``    — the scenario layer: per-device profiles with
  directional (uplink/downlink) bandwidth, client-availability models
  (fixed-rate dropout, behaviour-trace churn), and the ``Fleet`` object
  sessions and transports consume.
- ``repro.pipeline`` — the pipeline-parallel aggregation architecture:
  stage abstraction, the Eq.-3 performance model, the Appendix-C schedule
  recurrence, and the chunk-count optimizer.
- ``repro.engine``   — the unified async round engine: every declared
  protocol workflow executes over a pluggable transport with concurrent
  client dispatch and chunk-pipelined scheduling per Appendix C.
- ``repro.sim``      — network/latency heterogeneity models and an
  in-process cluster used to drive the protocols.
- ``repro.core``     — the end-to-end Dordis framework and the baseline
  noise strategies (Orig / Early / Con-k).

Quickstart::

    from repro.core import DordisConfig, DordisSession
    cfg = DordisConfig(num_clients=20, sample_size=8, rounds=5)
    session = DordisSession(cfg)
    result = session.run()
    print(result.final_accuracy, result.epsilon_consumed)
"""

__all__ = ["DordisConfig", "DordisSession", "TrainingResult"]

__version__ = "1.0.0"


def __getattr__(name):
    # Lazy re-exports: importing `repro` must not drag in the full
    # framework (NumPy models, simulators) when a caller only needs a
    # primitive subpackage such as `repro.crypto`.
    if name == "DordisConfig":
        from repro.core.config import DordisConfig

        return DordisConfig
    if name in ("DordisSession", "TrainingResult"):
        from repro.core import dordis

        return getattr(dordis, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
