"""Client-availability and dropout models — legacy import location.

The models moved to :mod:`repro.fleet.availability`: availability is a
property of the device population (the fleet layer), not of the
learning algorithm.  This module re-exports them so existing imports
keep working.
"""

from __future__ import annotations

from repro.fleet.availability import (
    AlwaysAvailable,
    BehaviorTrace,
    FixedRateDropout,
    SessionStream,
    TraceDrivenDropout,
    build_availability,
)

__all__ = [
    "AlwaysAvailable",
    "BehaviorTrace",
    "FixedRateDropout",
    "SessionStream",
    "TraceDrivenDropout",
    "build_availability",
]
