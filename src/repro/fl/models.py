"""Pure-NumPy models with a flat-parameter interface.

FL protocols move *flat vectors* (model updates) around, so every model
here exposes ``get_flat()`` / ``set_flat()`` plus mini-batch
``loss_and_grad``.  The models stand in for the paper's PyTorch nets
(§6.1): softmax regression and an MLP for the image-classification
stand-ins, a small convolutional head for parity with the paper's "CNN",
and a bigram language model whose perplexity plays Reddit/Albert's role.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import derive_rng


def _softmax(logits: np.ndarray) -> np.ndarray:
    z = logits - logits.max(axis=1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=1, keepdims=True)


def _one_hot(y: np.ndarray, k: int) -> np.ndarray:
    out = np.zeros((y.shape[0], k))
    out[np.arange(y.shape[0]), y] = 1.0
    return out


class FlatModel:
    """Interface: a differentiable model over a flat parameter vector."""

    @property
    def n_params(self) -> int:
        return self.get_flat().shape[0]

    def get_flat(self) -> np.ndarray:
        raise NotImplementedError

    def set_flat(self, flat: np.ndarray) -> None:
        raise NotImplementedError

    def loss_and_grad(self, x: np.ndarray, y: np.ndarray) -> tuple[float, np.ndarray]:
        raise NotImplementedError

    def predict(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    # ------------------------------------------------------------------
    def accuracy(self, x: np.ndarray, y: np.ndarray) -> float:
        """Fraction of correct argmax predictions."""
        return float((self.predict(x) == y).mean())

    def loss(self, x: np.ndarray, y: np.ndarray) -> float:
        return self.loss_and_grad(x, y)[0]

    def perplexity(self, x: np.ndarray, y: np.ndarray) -> float:
        """exp(cross-entropy) — the language-modeling metric of Fig. 9c."""
        return float(np.exp(self.loss(x, y)))

    def clone_params(self) -> np.ndarray:
        return self.get_flat().copy()


class SoftmaxRegression(FlatModel):
    """Multinomial logistic regression: W (d×k) + b (k)."""

    def __init__(self, n_features: int, n_classes: int, l2: float = 0.0, seed: int = 0):
        if n_features < 1 or n_classes < 2:
            raise ValueError("need n_features >= 1 and n_classes >= 2")
        self.n_features = n_features
        self.n_classes = n_classes
        self.l2 = l2
        rng = derive_rng("softmax-init", n_features, n_classes, seed)
        self.w = rng.normal(scale=0.01, size=(n_features, n_classes))
        self.b = np.zeros(n_classes)

    def get_flat(self) -> np.ndarray:
        return np.concatenate([self.w.ravel(), self.b])

    def set_flat(self, flat: np.ndarray) -> None:
        d, k = self.n_features, self.n_classes
        if flat.shape != (d * k + k,):
            raise ValueError(f"expected {(d * k + k,)}, got {flat.shape}")
        self.w = flat[: d * k].reshape(d, k).copy()
        self.b = flat[d * k :].copy()

    def loss_and_grad(self, x, y):
        n = x.shape[0]
        probs = _softmax(x @ self.w + self.b)
        onehot = _one_hot(y, self.n_classes)
        loss = -np.log(probs[np.arange(n), y] + 1e-12).mean()
        loss += 0.5 * self.l2 * float((self.w**2).sum())
        dlogits = (probs - onehot) / n
        gw = x.T @ dlogits + self.l2 * self.w
        gb = dlogits.sum(axis=0)
        return float(loss), np.concatenate([gw.ravel(), gb])

    def predict(self, x):
        return np.argmax(x @ self.w + self.b, axis=1)


class MLPClassifier(FlatModel):
    """One-hidden-layer tanh MLP — the mid-size classification model."""

    def __init__(
        self, n_features: int, n_hidden: int, n_classes: int, seed: int = 0
    ):
        if min(n_features, n_hidden) < 1 or n_classes < 2:
            raise ValueError("invalid MLP shape")
        self.shapes = dict(d=n_features, h=n_hidden, k=n_classes)
        rng = derive_rng("mlp-init", n_features, n_hidden, n_classes, seed)
        self.w1 = rng.normal(scale=1.0 / np.sqrt(n_features), size=(n_features, n_hidden))
        self.b1 = np.zeros(n_hidden)
        self.w2 = rng.normal(scale=1.0 / np.sqrt(n_hidden), size=(n_hidden, n_classes))
        self.b2 = np.zeros(n_classes)

    def get_flat(self) -> np.ndarray:
        return np.concatenate(
            [self.w1.ravel(), self.b1, self.w2.ravel(), self.b2]
        )

    def set_flat(self, flat: np.ndarray) -> None:
        d, h, k = self.shapes["d"], self.shapes["h"], self.shapes["k"]
        expected = d * h + h + h * k + k
        if flat.shape != (expected,):
            raise ValueError(f"expected ({expected},), got {flat.shape}")
        i = 0
        self.w1 = flat[i : i + d * h].reshape(d, h).copy(); i += d * h
        self.b1 = flat[i : i + h].copy(); i += h
        self.w2 = flat[i : i + h * k].reshape(h, k).copy(); i += h * k
        self.b2 = flat[i : i + k].copy()

    def loss_and_grad(self, x, y):
        n = x.shape[0]
        k = self.shapes["k"]
        hidden = np.tanh(x @ self.w1 + self.b1)
        probs = _softmax(hidden @ self.w2 + self.b2)
        loss = -np.log(probs[np.arange(n), y] + 1e-12).mean()
        dlogits = (probs - _one_hot(y, k)) / n
        gw2 = hidden.T @ dlogits
        gb2 = dlogits.sum(axis=0)
        dhidden = (dlogits @ self.w2.T) * (1 - hidden**2)
        gw1 = x.T @ dhidden
        gb1 = dhidden.sum(axis=0)
        return float(loss), np.concatenate(
            [gw1.ravel(), gb1, gw2.ravel(), gb2]
        )

    def predict(self, x):
        hidden = np.tanh(x @ self.w1 + self.b1)
        return np.argmax(hidden @ self.w2 + self.b2, axis=1)


class ConvClassifier(FlatModel):
    """A small conv net over square single-channel images (im2col).

    One valid-padding conv layer (c filters of f×f), ReLU, global average
    pooling per filter map, then a linear head.  The paper's "CNN (1M
    params)" plays this role at larger scale; here the architecture —
    weight sharing, locality — is what matters for exercising the code
    path with a structurally different gradient.
    """

    def __init__(
        self,
        image_side: int,
        n_classes: int,
        n_filters: int = 8,
        filter_side: int = 3,
        seed: int = 0,
    ):
        if image_side < filter_side:
            raise ValueError("image smaller than filter")
        self.side = image_side
        self.f = filter_side
        self.c = n_filters
        self.k = n_classes
        self.out_side = image_side - filter_side + 1
        rng = derive_rng("conv-init", image_side, n_classes, n_filters, seed)
        self.filters = rng.normal(
            scale=1.0 / filter_side, size=(n_filters, filter_side * filter_side)
        )
        self.w = rng.normal(scale=0.1, size=(n_filters, n_classes))
        self.b = np.zeros(n_classes)

    def get_flat(self) -> np.ndarray:
        return np.concatenate([self.filters.ravel(), self.w.ravel(), self.b])

    def set_flat(self, flat: np.ndarray) -> None:
        nf = self.c * self.f * self.f
        nw = self.c * self.k
        if flat.shape != (nf + nw + self.k,):
            raise ValueError("flat vector shape mismatch")
        self.filters = flat[:nf].reshape(self.c, self.f * self.f).copy()
        self.w = flat[nf : nf + nw].reshape(self.c, self.k).copy()
        self.b = flat[nf + nw :].copy()

    def _im2col(self, images: np.ndarray) -> np.ndarray:
        n = images.shape[0]
        imgs = images.reshape(n, self.side, self.side)
        out = self.out_side
        cols = np.empty((n, out * out, self.f * self.f))
        idx = 0
        for i in range(out):
            for j in range(out):
                patch = imgs[:, i : i + self.f, j : j + self.f]
                cols[:, idx, :] = patch.reshape(n, -1)
                idx += 1
        return cols

    def _forward(self, x):
        cols = self._im2col(x)  # (n, P, f²)
        pre = cols @ self.filters.T  # (n, P, c)
        act = np.maximum(pre, 0.0)
        pooled = act.mean(axis=1)  # (n, c)
        logits = pooled @ self.w + self.b
        return cols, pre, act, pooled, logits

    def loss_and_grad(self, x, y):
        n = x.shape[0]
        cols, pre, act, pooled, logits = self._forward(x)
        probs = _softmax(logits)
        loss = -np.log(probs[np.arange(n), y] + 1e-12).mean()
        dlogits = (probs - _one_hot(y, self.k)) / n
        gw = pooled.T @ dlogits
        gb = dlogits.sum(axis=0)
        dpooled = dlogits @ self.w.T  # (n, c)
        dact = dpooled[:, None, :] / cols.shape[1]  # mean-pool backprop
        dpre = dact * (pre > 0)
        gfilters = np.einsum("npc,npf->cf", dpre, cols)
        return float(loss), np.concatenate(
            [gfilters.ravel(), gw.ravel(), gb]
        )

    def predict(self, x):
        return np.argmax(self._forward(x)[4], axis=1)


class BigramLM(FlatModel):
    """A learned bigram table: logits[prev, next] — the language model.

    Input ``x`` holds previous-token indices, labels ``y`` next-token
    indices; the parameters are a V×V logit matrix.  Cross-entropy /
    perplexity behave like the paper's Reddit task: DP noise on the
    aggregated update raises perplexity smoothly.
    """

    def __init__(self, vocab: int, seed: int = 0):
        if vocab < 2:
            raise ValueError("vocab must be >= 2")
        self.vocab = vocab
        rng = derive_rng("bigram-init", vocab, seed)
        self.logits = rng.normal(scale=0.01, size=(vocab, vocab))

    def get_flat(self) -> np.ndarray:
        return self.logits.ravel().copy()

    def set_flat(self, flat: np.ndarray) -> None:
        if flat.shape != (self.vocab * self.vocab,):
            raise ValueError("flat vector shape mismatch")
        self.logits = flat.reshape(self.vocab, self.vocab).copy()

    def loss_and_grad(self, x, y):
        n = x.shape[0]
        rows = self.logits[x]  # (n, V)
        probs = _softmax(rows)
        loss = -np.log(probs[np.arange(n), y] + 1e-12).mean()
        drows = (probs - _one_hot(y, self.vocab)) / n
        grad = np.zeros_like(self.logits)
        np.add.at(grad, x, drows)
        return float(loss), grad.ravel()

    def predict(self, x):
        return np.argmax(self.logits[x], axis=1)
