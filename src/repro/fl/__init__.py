"""A NumPy federated-learning substrate.

The paper trains PyTorch models on CIFAR-10/100, FEMNIST, and Reddit over
100–1000 clients (§6.1).  Offline and CPU-only, we substitute synthetic
federated tasks with the same structure (documented in DESIGN.md §1):

- :mod:`repro.fl.data`    — synthetic classification corpora partitioned
  non-IID with latent Dirichlet allocation (the paper's partitioner) and
  a Markov-text corpus for next-token perplexity.
- :mod:`repro.fl.models`  — pure-NumPy models with a flat-parameter
  interface: softmax regression, an MLP, a small conv net, and a bigram
  language model.
- :mod:`repro.fl.optim`   — SGD with momentum and AdamW on flat vectors.
- :mod:`repro.fl.client` / :mod:`repro.fl.server` — local training and
  FedAvg aggregation.
- :mod:`repro.fl.dropout` — legacy re-export of the client-availability
  models, which now live in :mod:`repro.fleet.availability` (i.i.d.
  fixed-rate dropout and the trace-driven on/off behaviour generator
  reproducing the Fig. 1a dynamics).
"""

from repro.fl.data import (
    FederatedDataset,
    lda_partition,
    make_classification_task,
    make_cifar10_like,
    make_cifar100_like,
    make_femnist_like,
    make_text_task,
)
from repro.fl.models import (
    SoftmaxRegression,
    MLPClassifier,
    ConvClassifier,
    BigramLM,
)
from repro.fl.optim import SGD, AdamW
from repro.fl.client import LocalTrainer
from repro.fl.server import FedAvgServer
from repro.fl.dropout import FixedRateDropout, BehaviorTrace, TraceDrivenDropout

__all__ = [
    "FederatedDataset",
    "lda_partition",
    "make_classification_task",
    "make_cifar10_like",
    "make_cifar100_like",
    "make_femnist_like",
    "make_text_task",
    "SoftmaxRegression",
    "MLPClassifier",
    "ConvClassifier",
    "BigramLM",
    "SGD",
    "AdamW",
    "LocalTrainer",
    "FedAvgServer",
    "FixedRateDropout",
    "BehaviorTrace",
    "TraceDrivenDropout",
]
