"""Federated evaluation utilities.

Global test accuracy hides distributional effects that matter in FL with
non-IID data: DP noise and dropout do not hurt all clients equally.
These helpers compute per-client metric distributions and the summary
statistics FL papers report (weighted average, worst decile).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fl.data import FederatedDataset
from repro.fl.models import FlatModel


@dataclass(frozen=True)
class FederatedEvaluation:
    """Per-client metric values plus shard sizes for weighting."""

    values: np.ndarray
    weights: np.ndarray
    metric_name: str

    def __post_init__(self) -> None:
        if self.values.shape != self.weights.shape:
            raise ValueError("values and weights must align")
        if self.values.size == 0:
            raise ValueError("empty evaluation")

    @property
    def unweighted_mean(self) -> float:
        return float(self.values.mean())

    @property
    def weighted_mean(self) -> float:
        """Shard-size-weighted mean — FedAvg's implicit objective."""
        return float(np.average(self.values, weights=self.weights))

    def percentile(self, q: float) -> float:
        """Metric value at the q-th percentile of clients."""
        return float(np.percentile(self.values, q))

    @property
    def worst_decile(self) -> float:
        """Mean over the worst 10% of clients (fairness summary)."""
        cutoff = np.percentile(self.values, 10)
        worst = self.values[self.values <= cutoff]
        return float(worst.mean())


def evaluate_per_client(
    model: FlatModel,
    params: np.ndarray,
    dataset: FederatedDataset,
    max_clients: int | None = None,
) -> FederatedEvaluation:
    """Evaluate the global model on every client's local shard.

    Classification tasks yield per-client accuracy; language tasks yield
    per-client perplexity.
    """
    model.set_flat(params)
    shards = dataset.shards[: max_clients or len(dataset.shards)]
    values, weights = [], []
    for shard in shards:
        if len(shard) == 0:
            continue
        if dataset.kind == "language":
            values.append(model.perplexity(shard.x, shard.y))
        else:
            values.append(model.accuracy(shard.x, shard.y))
        weights.append(len(shard))
    return FederatedEvaluation(
        values=np.asarray(values, dtype=float),
        weights=np.asarray(weights, dtype=float),
        metric_name="perplexity" if dataset.kind == "language" else "accuracy",
    )
