"""Synthetic federated datasets.

The paper's utility experiments need federated tasks whose accuracy
responds to DP noise and whose client shards are non-IID.  We generate:

- Gaussian-mixture classification tasks ("CIFAR-10-like",
  "CIFAR-100-like", "FEMNIST-like") partitioned across clients with
  latent Dirichlet allocation over label proportions — the exact
  partitioner the paper uses (§6.1, concentration α = 1.0); and
- a Markov-chain text corpus for next-token prediction evaluated by
  perplexity ("Reddit-like").

Every generator is deterministic in its seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import derive_rng


@dataclass
class ClientShard:
    """One client's local data: features/labels (or token streams)."""

    x: np.ndarray
    y: np.ndarray

    def __len__(self) -> int:
        return self.x.shape[0]


@dataclass
class FederatedDataset:
    """A federated task: per-client shards plus a held-out test set.

    ``kind`` is "classification" or "language"; language shards store
    previous-token indices in ``x`` and next-token indices in ``y``.
    """

    name: str
    shards: list[ClientShard]
    test: ClientShard
    n_classes: int
    n_features: int
    kind: str = "classification"

    @property
    def n_clients(self) -> int:
        return len(self.shards)


def lda_partition(
    labels: np.ndarray,
    n_clients: int,
    alpha: float,
    rng: np.random.Generator,
    min_per_client: int = 2,
) -> list[np.ndarray]:
    """Latent-Dirichlet-allocation partition of sample indices.

    Each client draws a Dirichlet(α) distribution over classes; samples
    of each class are dealt to clients proportionally.  Small α → highly
    skewed label distributions (the paper uses α = 1.0, "highly skewed").
    """
    if n_clients < 1:
        raise ValueError("n_clients must be >= 1")
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    classes = np.unique(labels)
    buckets: list[list[int]] = [[] for _ in range(n_clients)]
    for cls in classes:
        idx = np.flatnonzero(labels == cls)
        rng.shuffle(idx)
        proportions = rng.dirichlet(alpha * np.ones(n_clients))
        counts = np.floor(proportions * len(idx)).astype(int)
        # Deal the rounding remainder to the largest-proportion clients.
        remainder = len(idx) - counts.sum()
        for i in np.argsort(-proportions)[:remainder]:
            counts[i] += 1
        start = 0
        for client, count in enumerate(counts):
            buckets[client].extend(idx[start : start + count])
            start += count
    # Guarantee a minimum shard size by stealing from the richest client.
    for client in range(n_clients):
        while len(buckets[client]) < min_per_client:
            donor = int(np.argmax([len(b) for b in buckets]))
            if donor == client or len(buckets[donor]) <= min_per_client:
                break
            buckets[client].append(buckets[donor].pop())
    return [np.asarray(sorted(b), dtype=int) for b in buckets]


def make_classification_task(
    name: str,
    n_clients: int,
    n_classes: int,
    n_features: int,
    samples_per_client: int = 40,
    test_samples: int = 800,
    alpha: float = 1.0,
    class_separation: float = 3.0,
    noise_scale: float = 1.0,
    seed: int = 0,
) -> FederatedDataset:
    """A Gaussian-mixture classification task, LDA-partitioned.

    Class c's samples are N(μ_c, noise_scale²·I) with unit-norm random
    centroids scaled by ``class_separation`` — separable enough that a
    linear model reaches high accuracy noise-free, and degraded smoothly
    by DP noise (the property the Fig. 1/Table 2 experiments rely on).
    """
    rng = derive_rng("fed-dataset", name, seed)
    centroids = rng.normal(size=(n_classes, n_features))
    centroids /= np.linalg.norm(centroids, axis=1, keepdims=True)
    centroids *= class_separation

    def sample(n: int) -> ClientShard:
        ys = rng.integers(0, n_classes, size=n)
        xs = centroids[ys] + rng.normal(scale=noise_scale, size=(n, n_features))
        return ClientShard(x=xs, y=ys)

    pool = sample(n_clients * samples_per_client)
    parts = lda_partition(pool.y, n_clients, alpha, rng)
    shards = [ClientShard(x=pool.x[idx], y=pool.y[idx]) for idx in parts]
    return FederatedDataset(
        name=name,
        shards=shards,
        test=sample(test_samples),
        n_classes=n_classes,
        n_features=n_features,
    )


def make_cifar10_like(
    n_clients: int = 100, samples_per_client: int = 40, seed: int = 0
) -> FederatedDataset:
    """10-class stand-in for CIFAR-10 (paper: ResNet-18, 100 clients)."""
    return make_classification_task(
        "cifar10-like", n_clients, n_classes=10, n_features=32,
        samples_per_client=samples_per_client, seed=seed,
    )


def make_cifar100_like(
    n_clients: int = 100, samples_per_client: int = 40, seed: int = 0
) -> FederatedDataset:
    """100-class stand-in for CIFAR-100 — harder, hence more noise-
    sensitive, reproducing Fig. 1c's larger utility drops."""
    return make_classification_task(
        "cifar100-like", n_clients, n_classes=100, n_features=64,
        samples_per_client=samples_per_client, class_separation=2.8, seed=seed,
    )


def make_femnist_like(
    n_clients: int = 100, samples_per_client: int = 30, seed: int = 0
) -> FederatedDataset:
    """62-class stand-in for FEMNIST (paper: CNN, 1000 clients)."""
    return make_classification_task(
        "femnist-like", n_clients, n_classes=62, n_features=48,
        samples_per_client=samples_per_client, class_separation=2.6, seed=seed,
    )


def make_text_task(
    n_clients: int = 50,
    vocab: int = 64,
    tokens_per_client: int = 400,
    test_tokens: int = 4000,
    skew: float = 0.6,
    seed: int = 0,
) -> FederatedDataset:
    """A Markov-chain next-token task ("Reddit-like", perplexity metric).

    A global random transition matrix generates token streams; each
    client mixes the global chain with its own idiosyncratic chain
    (weight ``skew``) for non-IIDness.  Shards store (prev-token,
    next-token) pairs; models treat prev-token one-hots as features.
    """
    rng = derive_rng("fed-text", seed)

    def random_chain() -> np.ndarray:
        # Sparse-ish rows: Dirichlet(0.3) makes transitions peaked.
        return rng.dirichlet(0.3 * np.ones(vocab), size=vocab)

    global_chain = random_chain()

    def generate(chain: np.ndarray, n: int) -> ClientShard:
        tokens = np.empty(n + 1, dtype=int)
        tokens[0] = rng.integers(vocab)
        for i in range(1, n + 1):
            tokens[i] = rng.choice(vocab, p=chain[tokens[i - 1]])
        return ClientShard(x=tokens[:-1].copy(), y=tokens[1:].copy())

    shards = []
    for _ in range(n_clients):
        local = random_chain()
        mixed = (1 - skew) * global_chain + skew * local
        shards.append(generate(mixed, tokens_per_client))
    return FederatedDataset(
        name="reddit-like",
        shards=shards,
        test=generate(global_chain, test_tokens),
        n_classes=vocab,
        n_features=vocab,
        kind="language",
    )
