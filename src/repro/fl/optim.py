"""Optimizers over flat parameter vectors.

The paper uses mini-batch SGD with momentum 0.9 for the image tasks and
AdamW for Reddit (§6.1).  Both are implemented statefully over flat
vectors so the local trainer can drive any :class:`FlatModel`.
"""

from __future__ import annotations

import numpy as np


class SGD:
    """SGD with classical momentum (the paper's image-task optimizer)."""

    def __init__(self, lr: float, momentum: float = 0.9):
        if lr <= 0:
            raise ValueError("lr must be positive")
        if not 0 <= momentum < 1:
            raise ValueError("momentum must be in [0, 1)")
        self.lr = lr
        self.momentum = momentum
        self._velocity: np.ndarray | None = None

    def step(self, params: np.ndarray, grad: np.ndarray) -> np.ndarray:
        if self._velocity is None:
            self._velocity = np.zeros_like(params)
        self._velocity = self.momentum * self._velocity + grad
        return params - self.lr * self._velocity

    def reset(self) -> None:
        self._velocity = None


class AdamW:
    """AdamW with decoupled weight decay (the paper's Reddit optimizer)."""

    def __init__(
        self,
        lr: float,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.01,
    ):
        if lr <= 0:
            raise ValueError("lr must be positive")
        if not (0 <= beta1 < 1 and 0 <= beta2 < 1):
            raise ValueError("betas must be in [0, 1)")
        self.lr = lr
        self.beta1, self.beta2 = beta1, beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: np.ndarray | None = None
        self._v: np.ndarray | None = None
        self._t = 0

    def step(self, params: np.ndarray, grad: np.ndarray) -> np.ndarray:
        if self._m is None:
            self._m = np.zeros_like(params)
            self._v = np.zeros_like(params)
        self._t += 1
        self._m = self.beta1 * self._m + (1 - self.beta1) * grad
        self._v = self.beta2 * self._v + (1 - self.beta2) * grad**2
        m_hat = self._m / (1 - self.beta1**self._t)
        v_hat = self._v / (1 - self.beta2**self._t)
        update = m_hat / (np.sqrt(v_hat) + self.eps)
        return params - self.lr * (update + self.weight_decay * params)

    def reset(self) -> None:
        self._m = self._v = None
        self._t = 0
