"""Server-side FedAvg aggregation.

The server refines the global model with the mean of the participants'
updates (§2.1).  With distributed DP the *sum* arrives from secure
aggregation already noised; dividing by the participant count yields the
noisy mean this class consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.fl.models import FlatModel


@dataclass
class FedAvgServer:
    """Holds the global model and applies aggregate updates."""

    model: FlatModel
    server_lr: float = 1.0
    rounds_applied: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        if self.server_lr <= 0:
            raise ValueError("server_lr must be positive")
        self.global_params = self.model.clone_params()

    def apply_update_sum(self, update_sum: np.ndarray, n_participants: int) -> None:
        """FedAvg step from a *sum* of updates (what SecAgg outputs)."""
        if n_participants < 1:
            raise ValueError("need at least one participant")
        if update_sum.shape != self.global_params.shape:
            raise ValueError(
                f"update shape {update_sum.shape} != model "
                f"shape {self.global_params.shape}"
            )
        mean = update_sum / n_participants
        self.global_params = self.global_params + self.server_lr * mean
        self.model.set_flat(self.global_params)
        self.rounds_applied += 1

    def apply_update_mean(self, update_mean: np.ndarray) -> None:
        """FedAvg step from an already-averaged update."""
        self.apply_update_sum(update_mean, 1)

    def evaluate(self, x: np.ndarray, y: np.ndarray) -> float:
        self.model.set_flat(self.global_params)
        return self.model.accuracy(x, y)

    def evaluate_perplexity(self, x: np.ndarray, y: np.ndarray) -> float:
        self.model.set_flat(self.global_params)
        return self.model.perplexity(x, y)
