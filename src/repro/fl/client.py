"""Client-side local training.

In each round a sampled client downloads the global model, runs a few
epochs of mini-batch optimization on its private shard, and reports the
*model delta* (local − global), which distributed DP then clips, encodes,
and perturbs (§2.1, Fig. 7 step 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.fl.data import ClientShard
from repro.fl.models import FlatModel
from repro.utils.rng import derive_rng


@dataclass
class LocalTrainer:
    """Runs local epochs and returns the update delta.

    ``optimizer_factory`` builds a fresh optimizer per round — local
    optimizer state must not leak across rounds (each round re-starts
    from the new global model).
    """

    model: FlatModel
    optimizer_factory: Callable[[], object]
    epochs: int = 1
    batch_size: int = 20

    def compute_update(
        self,
        global_params: np.ndarray,
        shard: ClientShard,
        round_index: int = 0,
        client_id: int = 0,
    ) -> np.ndarray:
        """Return Δ = local − global after local training on ``shard``."""
        if len(shard) == 0:
            raise ValueError("cannot train on an empty shard")
        self.model.set_flat(global_params)
        params = global_params.copy()
        optimizer = self.optimizer_factory()
        rng = derive_rng("local-train", round_index, client_id)
        n = len(shard)
        batch = min(self.batch_size, n)
        for _ in range(self.epochs):
            order = rng.permutation(n)
            for start in range(0, n, batch):
                idx = order[start : start + batch]
                self.model.set_flat(params)
                _, grad = self.model.loss_and_grad(shard.x[idx], shard.y[idx])
                params = optimizer.step(params, grad)
        return params - global_params
