"""Unified async round execution (the Dordis execution substrate).

Every round in the repo — the Appendix-D programming-interface runtime,
the SecAgg/XNoise protocol drivers, and the training session loop — runs
through one event-driven :class:`RoundEngine`:

- **Transport-agnostic**: in-process direct dispatch, asyncio message
  queues, simulated per-link latency from §6.1 device profiles,
  wire-serializing middleware, real framed TCP sockets
  (:class:`StreamTransport`), real RFC 6455 WebSockets
  (:class:`WebSocketTransport`), and dropout-injecting middleware are
  interchangeable backends.
- **Chunk-pipelined**: aggregation tasks split into m sub-tasks
  (:mod:`repro.pipeline.chunking`) executed as overlapping asyncio tasks
  whose cross-chunk ordering is the Appendix-C schedule — the pipeline
  model is the execution path, not an offline calculator.
- **Traced**: per-stage virtual timing lands in a
  :class:`repro.sim.timeline.ExecutionTrace` shared across rounds.
- **Exactly arbitrated**: a discrete-event virtual-time arbiter
  (:mod:`repro.engine.arbiter`) grants each resource to the lowest-
  virtual-begin-time waiter across chunks *and* concurrently submitted
  rounds, so traces are deterministic, scheduling-order independent,
  and equal to the offline replay
  (:func:`repro.sim.timeline.simulate_trace`).
"""

from repro.engine.arbiter import AsyncResourceArbiter, VirtualTimeArbiter
from repro.engine.core import (
    ChunkedRoundResult,
    EngineBusyError,
    RoundEngine,
    RoundHandle,
    Targeted,
    run_sync,
)
from repro.engine.timing import (
    OpTiming,
    PerOpTiming,
    ScaledResourceTiming,
    StageTiming,
    ZeroTiming,
    stage_groups,
)
from repro.engine.listener import (
    ConnectionStats,
    CoordinatorListener,
    DialingClient,
    ListenerTransport,
)
from repro.engine.stream import StreamTransport
from repro.engine.websocket import WebSocketTransport, ws_envelope_overhead
from repro.engine.transport import (
    Channel,
    ClientUnavailable,
    Delivery,
    DropoutTransport,
    InProcessTransport,
    QueueTransport,
    SerializingTransport,
    SimulatedNetworkTransport,
    Transport,
    measured_nbytes,
    payload_nbytes,
)

__all__ = [
    "AsyncResourceArbiter",
    "VirtualTimeArbiter",
    "ChunkedRoundResult",
    "EngineBusyError",
    "RoundEngine",
    "RoundHandle",
    "Targeted",
    "run_sync",
    "stage_groups",
    "OpTiming",
    "PerOpTiming",
    "ScaledResourceTiming",
    "StageTiming",
    "ZeroTiming",
    "Channel",
    "ClientUnavailable",
    "ConnectionStats",
    "CoordinatorListener",
    "Delivery",
    "DialingClient",
    "DropoutTransport",
    "InProcessTransport",
    "ListenerTransport",
    "QueueTransport",
    "SerializingTransport",
    "SimulatedNetworkTransport",
    "StreamTransport",
    "Transport",
    "WebSocketTransport",
    "measured_nbytes",
    "payload_nbytes",
    "ws_envelope_overhead",
]
