"""Discrete-event virtual-time resource arbitration.

The engine's cross-round correctness problem (pre-arbiter): per-resource
``asyncio.Lock``s serialized concurrent rounds in *lock-grant* order,
i.e. in whatever order the event loop happened to schedule the waiting
tasks.  A stage that was virtually ready at t=5 could be traced behind
one ready at t=10 that reached the lock first — admissible (no resource
ever served two rounds at once) but pessimistic, and dependent on task
scheduling.

:class:`VirtualTimeArbiter` replaces that with a discrete-event
simulation that *is* the execution order.  Every stage execution is a
node registered up front (per round, per chunk) with its Appendix-C
dependencies; the arbiter grants exactly one node at a time, always the
one with the **lowest virtual begin time** — ``max(ready, clock[resource])``
— with ties broken by round serial, then chunk index, then stage.  A
node's ready time is the max of its dependencies' finish times (the
o-term and r-term of the recurrence) and the submitting job's virtual
floor.  Because grant decisions depend only on registered rounds and
reported finish times — never on task scheduling — the executed trace
is deterministic and equals the offline replay
(:func:`repro.sim.timeline.simulate_trace`) exactly.

Two layers:

- :class:`VirtualTimeArbiter` — the pure, synchronous DES core
  (``add_round`` / ``poll`` / ``complete`` / ``abort_round``).  Usable
  without an event loop; :func:`repro.sim.timeline.simulate_trace`
  drives it to replay a schedule offline.
- :class:`AsyncResourceArbiter` — the asyncio layer the
  :class:`~repro.engine.core.RoundEngine` uses: stage tasks park on
  per-node futures in :meth:`acquire` and an event-driven grant step
  (scheduled with ``call_soon`` after every registration, completion,
  and abort) releases the next winner.  Deferring grants to a fresh
  loop turn guarantees every round registered by already-created tasks
  participates in the first grant decision, so concurrently submitted
  rounds are arbitrated exactly as the offline replay predicts.

The arbiter sequences stage executions **globally** — one stage in
flight at a time, across all resources.  That is a deliberate trade:
durations are only known after a stage runs (transport latency is
measured during dispatch, and zero-duration ops are legal), so granting
a second resource concurrently could let a stage start whose virtual
slot an in-flight stage's completion was about to claim — breaking the
equality with the offline replay.  Real concurrency is preserved where
it matters in-process: every client request of a stage's op still fans
out concurrently (``asyncio.gather`` in the engine's dispatch); what is
serialized is the wall-clock interleaving of *stages*, whose virtual
overlap the trace still records exactly.

The per-resource clocks dict is owned by the caller and mutated in
place, so an engine can rebuild the arbiter per event loop while its
virtual timeline persists across rounds and loops.
"""

from __future__ import annotations

import asyncio
from typing import Optional, Sequence

from repro.pipeline.stages import previous_same_resource


class _Node:
    """One (round, stage, chunk) stage execution awaiting its turn."""

    __slots__ = (
        "round_serial",
        "stage",
        "chunk",
        "resource",
        "ready",
        "deps_left",
        "dependents",
        "begin",
        "finish",
        "granted",
        "finished",
        "future",
    )

    def __init__(self, round_serial: int, stage: int, chunk: int,
                 resource: str, floor: float):
        self.round_serial = round_serial
        self.stage = stage
        self.chunk = chunk
        self.resource = resource
        self.ready = floor
        self.deps_left = 0
        self.dependents: list[_Node] = []
        self.begin = 0.0
        self.finish = 0.0
        self.granted = False
        self.finished = False
        self.future: Optional[asyncio.Future] = None

    @property
    def key(self) -> tuple[int, int, int]:
        return (self.round_serial, self.stage, self.chunk)


class VirtualTimeArbiter:
    """The synchronous discrete-event core.

    ``clocks`` maps resource label → virtual time the resource becomes
    free; it is mutated in place so the caller can persist it across
    arbiter instances (the engine rebuilds the async layer per event
    loop but keeps one timeline).
    """

    def __init__(self, clocks: Optional[dict] = None):
        self.clocks: dict = clocks if clocks is not None else {}
        self._nodes: dict[tuple[int, int, int], _Node] = {}
        self._round_nodes: dict[int, list[_Node]] = {}
        self._unfinished: dict[int, int] = {}
        self._enabled: list[_Node] = []
        self._running: Optional[_Node] = None

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def add_round(
        self,
        round_serial: int,
        resources: Sequence[str],
        n_chunks: int = 1,
        *,
        serial: bool = False,
        floor: float = 0.0,
    ) -> None:
        """Register one round: ``len(resources)`` stages × ``n_chunks``.

        Dependency wiring is the Appendix-C recurrence: stage s of chunk
        c waits on stage s−1 of chunk c (the o-term; the job ``floor``
        stands in for s=0) and on the r-term — chunk c−1 of stage s, or
        for the first chunk the last chunk of the latest earlier stage
        on the same resource.  ``serial=True`` instead chains chunk c's
        first stage after chunk c−1's last: the unpipelined baseline.
        """
        if round_serial in self._round_nodes:
            raise ValueError(f"round {round_serial} already registered")
        if not resources:
            raise ValueError("a round needs at least one stage")
        if n_chunks < 1:
            raise ValueError("n_chunks must be >= 1")
        n_stages = len(resources)
        nodes: dict[tuple[int, int], _Node] = {
            (s, c): _Node(round_serial, s, c, resources[s],
                          floor if s == 0 else 0.0)
            for s in range(n_stages)
            for c in range(n_chunks)
        }
        for (s, c), node in nodes.items():
            deps: list[_Node] = []
            if s > 0:
                deps.append(nodes[(s - 1, c)])
            if serial:
                if s == 0 and c > 0:
                    deps.append(nodes[(n_stages - 1, c - 1)])
            elif c > 0:
                deps.append(nodes[(s, c - 1)])
            else:
                q = previous_same_resource(resources, s)
                if q is not None:
                    deps.append(nodes[(q, n_chunks - 1)])
            node.deps_left = len(deps)
            for dep in deps:
                dep.dependents.append(node)
            self._nodes[node.key] = node
        self._round_nodes[round_serial] = list(nodes.values())
        self._unfinished[round_serial] = len(nodes)
        self._enabled.extend(n for n in nodes.values() if n.deps_left == 0)

    # ------------------------------------------------------------------
    # The discrete-event step
    # ------------------------------------------------------------------
    def _grant_key(self, node: _Node) -> tuple[float, int, int, int]:
        begin = max(node.ready, self.clocks.get(node.resource, 0.0))
        return (begin, node.round_serial, node.chunk, node.stage)

    def poll(self) -> Optional[_Node]:
        """Select the next stage to execute, or None.

        None means either a stage is already in flight (the arbiter runs
        exactly one at a time — that sequencing is what makes the trace
        a discrete-event schedule) or nothing is enabled yet.  The
        winner's ``begin`` is resolved against the resource clock at
        grant time.
        """
        if self._running is not None or not self._enabled:
            return None
        best = min(self._enabled, key=self._grant_key)
        self._enabled.remove(best)
        best.begin = max(best.ready, self.clocks.get(best.resource, 0.0))
        self._running = best
        return best

    def complete(self, node: _Node, finish: float) -> None:
        """Record a stage's virtual finish; advance clocks and dependents."""
        if self._running is not node:
            raise RuntimeError(
                f"stage {node.key} is not the stage currently in flight"
            )
        if finish < node.begin:
            raise ValueError("finish may not precede begin")
        self._running = None
        node.finish = finish
        node.finished = True
        self.clocks[node.resource] = max(
            self.clocks.get(node.resource, 0.0), finish
        )
        for dep in node.dependents:
            dep.ready = max(dep.ready, finish)
            dep.deps_left -= 1
            if dep.deps_left == 0:
                self._enabled.append(dep)
        serial = node.round_serial
        self._unfinished[serial] -= 1
        if self._unfinished[serial] == 0:
            self._purge_round(serial)

    def abort_round(self, round_serial: int) -> list[_Node]:
        """Withdraw a failed round's unfinished stages; returns them.

        The resource clocks keep whatever the round's *completed* stages
        recorded (their spans stay traced), but pending stages vanish so
        other rounds are never blocked behind a dead job.
        """
        nodes = self._round_nodes.get(round_serial)
        if nodes is None:
            return []
        pending = [n for n in nodes if not n.finished]
        for node in pending:
            if node in self._enabled:
                self._enabled.remove(node)
            if self._running is node:
                self._running = None
        self._purge_round(round_serial)
        return pending

    def discard(self, node: _Node) -> None:
        """Drop one granted-but-dead stage (its waiter was cancelled)."""
        if self._running is node:
            self._running = None
        self._nodes.pop(node.key, None)

    def _purge_round(self, round_serial: int) -> None:
        for node in self._round_nodes.pop(round_serial, []):
            self._nodes.pop(node.key, None)
        self._unfinished.pop(round_serial, None)

    @property
    def idle(self) -> bool:
        """True when no registered stage remains unfinished."""
        return not self._round_nodes and self._running is None


class AsyncResourceArbiter(VirtualTimeArbiter):
    """The asyncio layer: park stage tasks on futures, grant event-driven.

    Grants are deferred to a fresh event-loop turn (``call_soon``) after
    every registration, completion, and abort.  The deferral is load-
    bearing: it lets every task created before the grant step run its
    registration first, so the first grant already arbitrates among all
    concurrently submitted rounds — the property that makes executed
    traces equal the offline replay regardless of task start order.
    """

    def __init__(self, clocks: Optional[dict] = None):
        super().__init__(clocks)
        self._dispatch_scheduled = False

    def add_round(self, *args, **kwargs) -> None:
        super().add_round(*args, **kwargs)
        self._schedule_dispatch()

    async def acquire(self, round_serial: int, stage: int, chunk: int) -> float:
        """Wait for this stage's turn; returns its virtual begin time."""
        node = self._nodes[(round_serial, stage, chunk)]
        if node.granted:
            return node.begin
        node.future = asyncio.get_running_loop().create_future()
        return await node.future

    def release(self, round_serial: int, stage: int, chunk: int,
                finish: float) -> None:
        """Report the acquired stage's virtual finish time."""
        self.complete(self._nodes[(round_serial, stage, chunk)], finish)
        self._schedule_dispatch()

    def abort_round(self, round_serial: int) -> list[_Node]:
        pending = super().abort_round(round_serial)
        for node in pending:
            if node.future is not None and not node.future.done():
                node.future.cancel()
        self._schedule_dispatch()
        return pending

    def _schedule_dispatch(self) -> None:
        if self._dispatch_scheduled:
            return
        self._dispatch_scheduled = True
        asyncio.get_running_loop().call_soon(self._dispatch)

    def _dispatch(self) -> None:
        self._dispatch_scheduled = False
        while True:
            node = self.poll()
            if node is None:
                return
            if node.future is not None and node.future.cancelled():
                # The waiter died (its round is being torn down); skip it
                # so surviving rounds are never blocked behind it.
                self.discard(node)
                continue
            node.granted = True
            if node.future is not None:
                node.future.set_result(node.begin)
            return
