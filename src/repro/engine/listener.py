"""Single-listener server core: one listening coordinator, N dialing clients.

This module is the production-topology heart of the socket stack.  One
:class:`CoordinatorListener` owns **one** ``asyncio.start_server`` port
(plain framed TCP, or its RFC 6455 upgrade twin) and accepts every
client connection on it; devices are :class:`DialingClient` workers that
dial *in* — the inverse of the original harness, where each protocol
client hid behind its own localhost server and the coordinator dialed
out.  Both socket carriers (:class:`~repro.engine.stream.StreamTransport`
and :class:`~repro.engine.websocket.WebSocketTransport`) and the
cross-process ``repro.cli serve``/``join`` entry points are thin shells
over this core.

Per accepted connection the listener runs:

1. the carrier accept — for the websocket carrier an HTTP/1.1 Upgrade
   handshake, for framed TCP nothing — counted as connection overhead;
2. the wire handshake — the dialer opens with a ``HELLO`` frame carrying
   the explicit :class:`repro.wire.frame.Hello` schema (client id, wire
   version, optional auth token); the listener validates version, token,
   membership, and uniqueness, answering ``WELCOME`` or a descriptive
   ``ERROR`` frame before hanging up;
3. a dedicated **reader task** (the accept task itself) that receives
   response frames and resolves in-flight exchanges in FIFO order, and a
   dedicated **writer task** draining a *bounded* send queue — the
   backpressure seam: a coordinator fanning requests to thousands of
   connections blocks on a full queue instead of buffering unboundedly.

A connection that drops mid-round — process killed, socket reset, clean
close — is *retired*: every in-flight exchange and every later request
for that client raises
:class:`~repro.engine.transport.ClientUnavailable`, which the engine
folds into the existing dropout machinery (the client simply stops
responding, exactly like :class:`~repro.engine.transport.DropoutTransport`
dropping it).  A dead connection never crashes the round.

Byte accounting is measured from both socket ends, as everywhere in the
repo: the listener books its view into :class:`ConnectionStats` (every
accepted socket lands in ``closed_connection_stats`` when it dies, even
one rejected or aborted mid-handshake), and in-process
:class:`DialingClient` workers keep the ground-truth counters for the
device end of the same socket.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterable, Optional

from repro.engine.transport import Channel, ClientUnavailable, Delivery, Transport
from repro.wire import codecs as wire_codecs
from repro.wire.frame import (
    KIND_ERROR,
    KIND_HELLO,
    KIND_REQUEST,
    KIND_RESPONSE,
    KIND_WELCOME,
    WIRE_VERSION,
    FrameEOF,
    Hello,
    decode_frame,
    decode_hello,
    encode_frame,
    encode_hello,
    read_frame,
)
from repro.wire.ws import (
    CONTROL_OPCODES,
    MAX_MESSAGE,
    OP_BINARY,
    OP_CLOSE,
    OP_CONT,
    OP_PING,
    OP_PONG,
    WSClosed,
    WSEOF,
    encode_ws_frame,
    encode_ws_frame_parts,
    handshake_request,
    handshake_response,
    parse_handshake_request,
    parse_handshake_response,
    read_handshake,
    read_ws_frame,
    websocket_key,
    ws_frame_overhead,
)

if TYPE_CHECKING:
    from repro.api.protocol import ProtocolClient

#: Carrier names the listener and dialers speak.
CARRIERS = ("sockets", "websocket")

#: Listen backlog: a 1k-connection stress burst must not see refusals.
LISTEN_BACKLOG = 2048

#: Per-connection bounded send queue (frames) — the backpressure seam.
SEND_QUEUE_SIZE = 32


@dataclass
class ConnectionStats:
    """Byte accounting for one client connection, from both socket ends.

    Listener-side counters split handshake traffic from request/response
    frames (so per-stage sums exclude the one-off connection setup) and
    are *directional*: ``request_bytes`` is the downlink (frames the
    coordinator wrote toward the client), ``response_bytes`` the uplink
    (frames it read back) — ``down_bytes``/``up_bytes`` name that
    explicitly.  ``handshake_received`` covers what the dialing client
    sent to set the connection up (for the websocket carrier the HTTP
    upgrade request, then the ``HELLO`` frame), ``handshake_sent`` the
    listener's answers (``101``/``WELCOME``) plus any control frames —
    anything on the socket that is not stage-accounted traffic.

    The ``endpoint_*`` counters are what the *dialing client* (the
    device end) independently observed on its side of the same socket,
    per direction — the ground truth the listener-side counts must equal
    byte for byte.  They are filled for in-process dialers; a remote
    ``repro.cli join`` process reports the same counters on its own
    stdout instead.  ``client_id`` is ``-1`` until a connection's HELLO
    has been parsed (a rejected or aborted socket may never get further).
    """

    client_id: int
    handshake_sent: int = 0
    handshake_received: int = 0
    request_bytes: int = 0
    response_bytes: int = 0
    requests: int = 0
    endpoint_received_bytes: int = 0
    endpoint_sent_bytes: int = 0
    endpoint_request_bytes: int = 0
    endpoint_response_bytes: int = 0

    @property
    def down_bytes(self) -> int:
        """Coordinator→client frame bytes (the downlink share of the
        stage accounting)."""
        return self.request_bytes

    @property
    def up_bytes(self) -> int:
        """Client→coordinator frame bytes (the uplink share of the
        stage accounting)."""
        return self.response_bytes

    @property
    def bytes_sent(self) -> int:
        """Everything the listener wrote to this socket."""
        return self.handshake_sent + self.request_bytes

    @property
    def bytes_received(self) -> int:
        """Everything the listener read from this socket."""
        return self.handshake_received + self.response_bytes

    @property
    def frame_bytes(self) -> int:
        """Request + response frames (the per-stage-accounted traffic)."""
        return self.request_bytes + self.response_bytes


class LinkClosed(Exception):
    """The peer ended the connection cleanly (EOF / close handshake)."""


class _TCPLink:
    """Framed TCP as a carrier link: frames pass through unchanged."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self._reader = reader
        self._writer = writer

    #: Framed TCP has no control frames; the counters exist so both
    #: carriers finalize identically.
    control_sent = 0
    control_received = 0

    async def recv(self) -> tuple[int, bytes, int]:
        try:
            return await read_frame(self._reader)
        except FrameEOF as exc:
            raise LinkClosed from exc

    async def send(
        self,
        frame: bytes | bytearray,
        count: Optional[Callable[[int], None]] = None,
    ) -> int:
        n = len(frame)
        # Counted *before* the flush: a cancellation landing in the
        # drain can never lose already-written bytes from the books.
        if count is not None:
            count(n)
        self._writer.write(frame)
        await self._writer.drain()
        return n

    def framed_size(self, frame_nbytes: int) -> int:
        """Wire bytes for one frame of that size — TCP adds nothing."""
        return frame_nbytes

    async def start_close(self) -> None:
        """Begin a graceful goodbye: plain TCP just closes the socket
        (the peer reads a clean EOF between frames)."""
        self._writer.close()

    async def shutdown(self) -> None:
        self._writer.close()
        with contextlib.suppress(Exception):
            await self._writer.wait_closed()


class _WSLink:
    """One end of an upgraded connection: messages over RFC 6455 frames.

    Handles fragmentation (outgoing when ``max_fragment`` is set,
    incoming always), answers pings, runs the close handshake, and
    counts every frame byte — data message bytes are returned per call
    for stage attribution, control bytes accumulate in
    ``control_sent``/``control_received`` (connection overhead).
    Counters update *before* each flush, so a cancellation landing in a
    drain can never lose already-written bytes from the accounting.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        masked: bool,
        max_fragment: Optional[int] = None,
    ):
        self._reader = reader
        self._writer = writer
        self.masked = masked
        self.max_fragment = max_fragment
        self._close_sent = False
        self.control_sent = 0
        self.control_received = 0

    def _mask(self) -> Optional[bytes]:
        return os.urandom(4) if self.masked else None

    def _build_parts(
        self, payload: bytes | bytearray
    ) -> tuple[bytes, bytes | bytearray | memoryview]:
        """One message as write-ready parts (head, wire payload).

        Unfragmented — the default — the payload buffer passes through
        untouched on the unmasked side (see
        :func:`repro.wire.ws.encode_ws_frame_parts`); fragmentation
        joins its pieces into the head part, payload part empty.
        """
        if self.max_fragment is None or len(payload) <= self.max_fragment:
            return encode_ws_frame_parts(OP_BINARY, payload, mask=self._mask())
        pieces = [
            payload[i : i + self.max_fragment]
            for i in range(0, len(payload), self.max_fragment)
        ]
        blob = b"".join(
            encode_ws_frame(
                OP_BINARY if i == 0 else OP_CONT,
                piece,
                fin=(i == len(pieces) - 1),
                mask=self._mask(),
            )
            for i, piece in enumerate(pieces)
        )
        return blob, b""

    async def _write(
        self, blob: bytes, count: Optional[Callable[[int], None]] = None
    ) -> None:
        if count is not None:
            count(len(blob))
        self._writer.write(blob)
        await self._writer.drain()

    async def send_message(
        self,
        payload: bytes | bytearray,
        count: Optional[Callable[[int], None]] = None,
    ) -> int:
        """One binary data message; returns its WS-framed byte count.

        ``count`` (if given) observes that count before the flush — the
        cancellation-safe way to attribute the bytes to a direction.
        The head and payload go onto the writer back to back, so the
        payload buffer is never concatenated into a new blob.
        """
        head, body = self._build_parts(payload)
        n = len(head) + len(body)
        if count is not None:
            count(n)
        self._writer.write(head)
        if len(body):
            self._writer.write(body)
        await self._writer.drain()
        return n

    async def _send_control(self, opcode: int, payload: bytes = b"") -> None:
        frame = encode_ws_frame(opcode, payload, mask=self._mask())
        self.control_sent += len(frame)
        await self._write(frame)

    async def recv_message(self) -> tuple[bytes, int]:
        """One binary data message: ``(payload, WS-framed byte count)``.

        Interleaved control frames are handled inline — pings answered,
        pongs absorbed, a peer CLOSE echoed then raised as
        :class:`WSClosed` — and counted as connection overhead.  Raises
        :class:`WSEOF` on a clean TCP close between frames.
        """
        assembled = bytearray()
        nbytes = 0
        expecting_cont = False
        while True:
            fin, opcode, body, n = await read_ws_frame(
                self._reader, require_mask=not self.masked
            )
            if opcode in CONTROL_OPCODES:
                self.control_received += n
                if opcode == OP_PING:
                    await self._send_control(OP_PONG, body)
                elif opcode == OP_CLOSE:
                    code = (
                        int.from_bytes(body[:2], "big") if len(body) >= 2 else 1000
                    )
                    if not self._close_sent:
                        self._close_sent = True
                        with contextlib.suppress(ConnectionError):
                            await self._send_control(OP_CLOSE, body[:2])
                    raise WSClosed(code, bytes(body[2:]))
                continue  # pong: keepalive noise, nothing to do
            if expecting_cont != (opcode == OP_CONT):
                raise ValueError(
                    "continuation frame without a message to continue"
                    if opcode == OP_CONT
                    else "data frame interleaved into a fragmented message"
                )
            if not expecting_cont and opcode != OP_BINARY:
                raise ValueError("wire messages must be binary frames")
            assembled += body
            nbytes += n
            if len(assembled) > MAX_MESSAGE:
                raise ValueError(
                    f"assembled message exceeds MAX_MESSAGE={MAX_MESSAGE}"
                )
            if fin:
                return bytes(assembled), nbytes
            expecting_cont = True

    async def send_close(self, code: int = 1000) -> None:
        """Send the CLOSE control frame (without reading the echo — the
        connection's reader consumes it as :class:`WSClosed`)."""
        if not self._close_sent:
            self._close_sent = True
            await self._send_control(OP_CLOSE, code.to_bytes(2, "big"))

    async def close(self, code: int = 1000) -> None:
        """Initiate (or finish) the close handshake from this end.

        Only safe when no other task is reading this link — the hosted
        connections run a dedicated reader and use :meth:`send_close`.
        """
        await self.send_close(code)
        while True:
            try:
                _fin, opcode, _body, n = await read_ws_frame(
                    self._reader, require_mask=not self.masked
                )
            except (WSEOF, ValueError, ConnectionError):
                return
            # Anything read while closing is teardown overhead.
            self.control_received += n
            if opcode == OP_CLOSE:
                return


class _WSFrameLink:
    """A :class:`_WSLink` speaking wire frames as binary messages."""

    def __init__(self, ws: _WSLink, writer: asyncio.StreamWriter):
        self.ws = ws
        self._writer = writer

    @property
    def control_sent(self) -> int:
        return self.ws.control_sent

    @property
    def control_received(self) -> int:
        return self.ws.control_received

    async def recv(self) -> tuple[int, bytes, int]:
        try:
            payload, n = await self.ws.recv_message()
        except (WSEOF, WSClosed) as exc:
            raise LinkClosed from exc
        kind, body = decode_frame(payload)
        return kind, body, n

    async def send(
        self,
        frame: bytes | bytearray,
        count: Optional[Callable[[int], None]] = None,
    ) -> int:
        return await self.ws.send_message(frame, count=count)

    def framed_size(self, frame_nbytes: int) -> int:
        """Deterministic wire bytes for one frame of that envelope size
        (fragmentation included) — what :meth:`send` will measure."""
        frag = self.ws.max_fragment
        if frag is None or frame_nbytes <= frag:
            return frame_nbytes + ws_frame_overhead(
                frame_nbytes, masked=self.ws.masked
            )
        total = 0
        for start in range(0, frame_nbytes, frag):
            piece = min(frag, frame_nbytes - start)
            total += piece + ws_frame_overhead(piece, masked=self.ws.masked)
        return total

    async def start_close(self) -> None:
        """Begin a graceful goodbye: send CLOSE; the reader task will
        consume the peer's echo and retire the connection."""
        await self.ws.send_close()

    async def shutdown(self) -> None:
        self._writer.close()
        with contextlib.suppress(Exception):
            await self._writer.wait_closed()


class _ClientConnection:
    """One accepted, welcomed client on the listener.

    Exchanges are correlated FIFO: the device end handles requests
    strictly in arrival order over one socket, so the k-th response
    frame answers the k-th outstanding request.  A requester cancelled
    before its frame was queued removes its slot; one cancelled after
    leaves the slot in place (the response still arrives and its bytes
    are still booked) — the reader simply discards the result.
    """

    def __init__(
        self, client_id: int, link, stats: ConnectionStats, queue_size: int
    ):
        self.client_id = client_id
        self.link = link
        self.stats = stats
        self.pending: deque[tuple[str, asyncio.Future]] = deque()
        self.send_queue: asyncio.Queue = asyncio.Queue(queue_size)
        self.writer_task: Optional[asyncio.Task] = None
        self.task: Optional[asyncio.Task] = None
        self.dead = False

    def _count_request(self, n: int) -> None:
        self.stats.request_bytes += n

    async def exchange(
        self, op: str, frame: bytes | bytearray
    ) -> tuple[int, bytes, int, int]:
        """One request/response over this connection.

        Returns ``(kind, body, sent, received)`` where ``sent`` is the
        deterministic carrier-framed size of ``frame`` (equal to what
        the writer task measures) and ``received`` the framed size of
        the answering frame.  Raises
        :class:`~repro.engine.transport.ClientUnavailable` if the
        connection is (or dies while) in flight.
        """
        if self.dead:
            raise ClientUnavailable(self.client_id, op)
        loop = asyncio.get_running_loop()
        fut: asyncio.Future = loop.create_future()
        entry = (op, fut)
        # Enlist before enqueueing: the writer/reader pair may complete
        # the whole round trip between the put and any later append.
        self.pending.append(entry)
        putter = loop.create_task(self.send_queue.put(frame))
        try:
            # Race the (possibly backpressured) put against the reply
            # future: a connection retired while this sender is parked
            # on a full queue fails the future, and waiting on the put
            # alone would hang forever.
            await asyncio.wait(
                {putter, fut}, return_when=asyncio.FIRST_COMPLETED
            )
            if not putter.done():
                putter.cancel()
            kind, body, received = await fut
        except BaseException:
            if not putter.done():
                putter.cancel()
                # Never sent: withdraw the slot so FIFO correlation of
                # the frames that *were* sent stays aligned.
                with contextlib.suppress(ValueError):
                    self.pending.remove(entry)
            raise
        finally:
            with contextlib.suppress(asyncio.CancelledError):
                await putter
        self.stats.requests += 1
        return kind, body, self.link.framed_size(len(frame)), received

    def retire(self, exc: Optional[BaseException] = None) -> None:
        """Mark dead and fail everything in flight.

        The first pending exchange gets ``exc`` when the death was a
        loud protocol error (malformed frame — the round should abort,
        not quietly drop the client); everything else folds into
        dropout as :class:`ClientUnavailable`.
        """
        self.dead = True
        first = True
        while self.pending:
            op, fut = self.pending.popleft()
            if not fut.done():
                if first and exc is not None:
                    fut.set_exception(exc)
                else:
                    fut.set_exception(ClientUnavailable(self.client_id, op))
            first = False


class CoordinatorListener:
    """One listening port multiplexing every dialing client.

    The production topology: ``await start()`` binds a single
    ``asyncio.start_server`` (``LISTEN_BACKLOG`` deep), and every
    protocol client — in-process :class:`DialingClient` task or remote
    ``repro.cli join`` process — dials into it.  ``expected_ids``
    (optional) closes membership: a HELLO from any other id is rejected.
    ``auth_token`` (optional) is demanded verbatim from every HELLO.

    ``connection(client_id)`` waits up to ``join_timeout`` seconds for
    that client to dial in and hand-shake; a client that never shows up
    — or already died — surfaces as
    :class:`~repro.engine.transport.ClientUnavailable`, i.e. exactly a
    dropout.  Every accepted socket's :class:`ConnectionStats` lands in
    ``closed_connection_stats`` when the socket dies (rejected and
    mid-handshake-aborted ones included, with whatever bytes really
    crossed).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        carrier: str = "sockets",
        expected_ids: Optional[Iterable[int]] = None,
        auth_token: bytes = b"",
        join_timeout: float = 30.0,
        send_queue_size: int = SEND_QUEUE_SIZE,
        max_fragment: Optional[int] = None,
    ):
        if carrier not in CARRIERS:
            raise ValueError(f"carrier must be one of {CARRIERS}, not {carrier!r}")
        self.host = host
        self.port = port
        self.carrier = carrier
        self.expected_ids = None if expected_ids is None else set(expected_ids)
        self.auth_token = bytes(auth_token)
        self.join_timeout = join_timeout
        self.send_queue_size = send_queue_size
        self.max_fragment = max_fragment
        self.accepted = 0
        self.rejected = 0
        self.closed_connection_stats: list[ConnectionStats] = []
        self._server: Optional[asyncio.base_events.Server] = None
        self._connections: dict[int, _ClientConnection] = {}
        self._dead_ids: set[int] = set()
        self._events: dict[int, asyncio.Event] = {}
        self._accept_tasks: set[asyncio.Task] = set()

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) — valid after :meth:`start`."""
        return self.host, self.port

    async def start(self) -> tuple[str, int]:
        self._server = await asyncio.start_server(
            self._accept, self.host, self.port, backlog=LISTEN_BACKLOG
        )
        self.host, self.port = self._server.sockets[0].getsockname()[:2]
        return self.host, self.port

    # -- accept path -----------------------------------------------------

    async def _accept_link(self, reader, writer, stats: ConnectionStats):
        """Carrier setup for one accepted socket; counts its bytes."""
        if self.carrier == "websocket":
            raw = await read_handshake(reader)
            stats.handshake_received += len(raw)
            key = parse_handshake_request(raw)
            response = handshake_response(key)
            stats.handshake_sent += len(response)
            writer.write(response)
            await writer.drain()
            return _WSFrameLink(
                _WSLink(
                    reader, writer, masked=False, max_fragment=self.max_fragment
                ),
                writer,
            )
        return _TCPLink(reader, writer)

    async def _check_hello(self, hello: Hello) -> None:
        """Admission control — every rejection names its reason.

        Runs after the HELLO is parsed (so the connection's stats
        already carry the claimed client id) and before WELCOME.
        """
        if hello.wire_version != WIRE_VERSION:
            raise ValueError(
                f"client {hello.client_id} speaks wire version "
                f"{hello.wire_version}, listener speaks {WIRE_VERSION}"
            )
        if self.auth_token and hello.auth_token != self.auth_token:
            raise ValueError(
                f"client {hello.client_id} presented a bad auth token"
            )
        if (
            self.expected_ids is not None
            and hello.client_id not in self.expected_ids
        ):
            raise ValueError(f"unknown client id {hello.client_id}")
        live = self._connections.get(hello.client_id)
        if live is not None and not live.dead:
            raise ValueError(
                f"duplicate connection for client id {hello.client_id}"
            )

    async def _handshake(self, link, stats: ConnectionStats) -> Hello:
        kind, body, n = await link.recv()
        stats.handshake_received += n
        if kind != KIND_HELLO:
            raise ValueError(f"handshake must open with HELLO, got {kind:#x}")
        hello = decode_hello(body)
        # The claimed identity is recorded the moment it is known, so
        # even a connection rejected (or stalled) right here is
        # attributable in the closed stats.
        stats.client_id = hello.client_id
        await self._check_hello(hello)
        return hello

    def _signal(self, client_id: int) -> None:
        event = self._events.get(client_id)
        if event is not None:
            event.set()

    async def _accept(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._accept_tasks.add(task)
            task.add_done_callback(self._accept_tasks.discard)
        stats = ConnectionStats(client_id=-1)
        link = None
        conn: Optional[_ClientConnection] = None

        def count_handshake_sent(n: int) -> None:
            stats.handshake_sent += n

        try:
            link = await self._accept_link(reader, writer, stats)
            try:
                hello = await self._handshake(link, stats)
            except LinkClosed:
                return  # dialer hung up before completing its HELLO
            except ValueError as exc:
                # Admission refused: say why on the wire, then hang up.
                self.rejected += 1
                with contextlib.suppress(Exception):
                    await link.send(
                        encode_frame(KIND_ERROR, wire_codecs.encode_error(exc)),
                        count=count_handshake_sent,
                    )
                return
            # No awaits between admission check and registration, so
            # two racing HELLOs for one id cannot both pass.
            conn = _ClientConnection(
                hello.client_id, link, stats, self.send_queue_size
            )
            conn.task = task
            self._connections[hello.client_id] = conn
            # A returning client (died earlier, dialed back in) is live
            # again — an old death must not shadow the new connection.
            self._dead_ids.discard(hello.client_id)
            await link.send(
                encode_frame(
                    KIND_WELCOME, wire_codecs.encode_payload(hello.client_id)
                ),
                count=count_handshake_sent,
            )
            self.accepted += 1
            conn.writer_task = asyncio.get_running_loop().create_task(
                self._drain_writer(conn)
            )
            self._signal(hello.client_id)
            await self._read_loop(conn)
        except asyncio.CancelledError:
            # aclose() cancels accepts parked mid-handshake; end quietly
            # (the finally below still books the partial stats).
            return
        except (ConnectionError, ValueError):
            # Carrier-level failure (bad upgrade, reset socket): the
            # socket dies, its partial stats are still recorded.
            return
        finally:
            if conn is not None:
                conn.retire()
                # Mark the id dead only while this connection is still
                # the registered one — a replacement that dialed back in
                # meanwhile stays live.
                if self._connections.get(conn.client_id) is conn:
                    self._dead_ids.add(conn.client_id)
                self._signal(conn.client_id)
                if conn.writer_task is not None and not conn.writer_task.done():
                    conn.writer_task.cancel()
                    with contextlib.suppress(
                        asyncio.CancelledError, Exception
                    ):
                        await conn.writer_task
            if link is not None:
                # Control frames (close handshake, pings) are connection
                # overhead, folded in at the end of life.
                stats.handshake_sent += link.control_sent
                stats.handshake_received += link.control_received
            self.closed_connection_stats.append(stats)
            writer.close()
            with contextlib.suppress(asyncio.CancelledError, Exception):
                await writer.wait_closed()

    async def _drain_writer(self, conn: _ClientConnection) -> None:
        """The connection's writer: one frame at a time off the bounded
        queue, request bytes booked before each flush."""
        try:
            while True:
                frame = await conn.send_queue.get()
                await conn.link.send(frame, count=conn._count_request)
        except asyncio.CancelledError:
            raise
        except Exception:
            # A dead socket: the reader loop (or aclose) retires the
            # connection; in-flight exchanges fold into dropout there.
            conn.retire()

    async def _read_loop(self, conn: _ClientConnection) -> None:
        """Resolve responses FIFO until the connection dies."""
        while True:
            try:
                kind, body, n = await conn.link.recv()
            except (LinkClosed, ConnectionError):
                conn.retire()
                return
            except ValueError as exc:
                # Malformed frame: fail loud into the in-flight
                # exchange (never misparse, never silently drop).
                conn.retire(exc)
                return
            conn.stats.response_bytes += n
            if not conn.pending:
                conn.retire(
                    ValueError(
                        f"client {conn.client_id} sent an unsolicited "
                        f"frame of kind {kind:#x}"
                    )
                )
                return
            _op, fut = conn.pending.popleft()
            if not fut.done():
                fut.set_result((kind, body, n))

    # -- round-facing API ------------------------------------------------

    async def connection(
        self,
        client_id: int,
        op: str = "connect",
        timeout: Optional[float] = None,
    ) -> _ClientConnection:
        """The live connection for ``client_id``, waiting for it to dial
        in if it has not yet; a dead or never-arriving client raises
        :class:`ClientUnavailable` (the dropout fold)."""
        conn = self._connections.get(client_id)
        if conn is not None and not conn.dead:
            return conn
        if client_id in self._dead_ids:
            raise ClientUnavailable(client_id, op)
        event = self._events.setdefault(client_id, asyncio.Event())
        try:
            await asyncio.wait_for(
                event.wait(),
                self.join_timeout if timeout is None else timeout,
            )
        except asyncio.TimeoutError:
            raise ClientUnavailable(client_id, op) from None
        conn = self._connections.get(client_id)
        if conn is None or conn.dead:
            raise ClientUnavailable(client_id, op)
        return conn

    async def aclose(self) -> None:
        """Stop listening, say goodbye to every live connection, and
        drain the per-connection tasks (booking partial stats for any
        socket still mid-handshake)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for conn in list(self._connections.values()):
            if not conn.dead:
                with contextlib.suppress(Exception):
                    await conn.link.start_close()
        # Welcomed connections get a grace period to retire cleanly off
        # the goodbye above; sockets still mid-handshake have no peer
        # loop to drain — cancel them outright (their accept task still
        # books the partial stats on the way out).
        welcomed = {
            conn.task for conn in self._connections.values() if conn.task
        }
        stragglers = [
            t for t in self._accept_tasks if not t.done() and t not in welcomed
        ]
        tasks = [t for t in self._accept_tasks if not t.done() and t in welcomed]
        if tasks:
            _done, timed_out = await asyncio.wait(tasks, timeout=5)
            stragglers.extend(timed_out)
        for t in stragglers:
            t.cancel()
        for t in stragglers:
            with contextlib.suppress(asyncio.CancelledError, Exception):
                await t


class DialingClient:
    """The device end: one protocol client dialing into the listener.

    Runs the client's state machine behind a single dialed connection —
    carrier setup, ``HELLO``/``WELCOME``, then a serve loop answering
    each ``REQUEST`` frame with one ``RESPONSE`` (or ``ERROR``) frame.
    Used in-process as one task per client by the socket transports,
    and by ``repro.cli join`` as a whole OS process.

    ``max_requests`` makes the worker vanish (abrupt socket close, as a
    killed process would) after answering that many requests — the
    dropout-mid-round test hook and ``join --die-after``.  The public
    counters mirror the old per-client endpoint's, so they remain the
    ground truth for :class:`ConnectionStats` ``endpoint_*`` fields.
    """

    def __init__(
        self,
        client: "ProtocolClient",
        host: str,
        port: int,
        *,
        carrier: str = "sockets",
        auth_token: bytes = b"",
        client_id: Optional[int] = None,
        wire_version: int = WIRE_VERSION,
        max_fragment: Optional[int] = None,
        max_requests: Optional[int] = None,
        dial_timeout: float = 5.0,
    ):
        if carrier not in CARRIERS:
            raise ValueError(f"carrier must be one of {CARRIERS}, not {carrier!r}")
        self.client = client
        self.client_id = client.id if client_id is None else client_id
        self.host = host
        self.port = port
        self.carrier = carrier
        self.auth_token = bytes(auth_token)
        self.wire_version = wire_version
        self.max_fragment = max_fragment
        self.max_requests = max_requests
        self.dial_timeout = dial_timeout
        self.bytes_received = 0
        self.bytes_sent = 0
        # Per-direction frame counters (handshake/control excluded):
        # what this end of the socket saw of the stage-accounted
        # traffic.  Requests arrive here (the downlink's far end).
        self.request_bytes = 0
        self.response_bytes = 0
        self.requests = 0
        self.handshake_sent = 0
        self.handshake_received = 0

    def _count_handshake(self, n: int) -> None:
        self.bytes_sent += n
        self.handshake_sent += n

    def _count_response(self, n: int) -> None:
        self.bytes_sent += n
        self.response_bytes += n

    async def _dial(self) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        """Dial the listener, retrying brief refusals — a ``join``
        process may race the coordinator to the port."""
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.dial_timeout
        while True:
            try:
                return await asyncio.open_connection(self.host, self.port)
            except (ConnectionRefusedError, ConnectionResetError):
                if loop.time() >= deadline:
                    raise
                await asyncio.sleep(0.05)

    async def _upgrade(self, reader, writer):
        """Carrier setup from the dialing side (the WS *client* masks)."""
        if self.carrier == "websocket":
            key = websocket_key()
            upgrade = handshake_request(self.host, self.port, key)
            self._count_handshake(len(upgrade))
            writer.write(upgrade)
            await writer.drain()
            raw = await read_handshake(reader)
            self.bytes_received += len(raw)
            self.handshake_received += len(raw)
            parse_handshake_response(raw, key)
            return _WSFrameLink(
                _WSLink(
                    reader, writer, masked=True, max_fragment=self.max_fragment
                ),
                writer,
            )
        return _TCPLink(reader, writer)

    async def _hello(self, link) -> None:
        await link.send(
            encode_frame(
                KIND_HELLO,
                encode_hello(
                    Hello(self.client_id, self.wire_version, self.auth_token)
                ),
            ),
            count=self._count_handshake,
        )
        kind, body, n = await link.recv()
        self.bytes_received += n
        self.handshake_received += n
        if kind == KIND_ERROR:
            raise wire_codecs.decode_error(body)
        if kind != KIND_WELCOME:
            raise ValueError(f"handshake expected WELCOME, got {kind:#x}")
        welcomed = wire_codecs.decode_payload(body)
        if welcomed != self.client_id:
            raise ValueError(
                f"listener welcomed client {welcomed!r}, "
                f"expected {self.client_id}"
            )

    async def run(self) -> None:
        """Dial, handshake, serve until the coordinator hangs up (or
        ``max_requests`` answers have been given)."""
        reader, writer = await self._dial()
        link = None
        try:
            link = await self._upgrade(reader, writer)
            await self._hello(link)
            served = 0
            while True:
                try:
                    kind, body, n = await link.recv()
                except (LinkClosed, ConnectionError):
                    return
                self.bytes_received += n
                if kind != KIND_REQUEST:
                    raise ValueError(
                        f"dialing client expected REQUEST, got {kind:#x}"
                    )
                self.request_bytes += n
                op, payload = wire_codecs.decode_payload(body)
                try:
                    response = self.client.handle(op, payload)
                except Exception as exc:
                    # An ERROR reply crosses the uplink like any other
                    # response frame; count it there so both socket
                    # ends agree per direction even on aborted rounds.
                    reply: bytes | bytearray = encode_frame(
                        KIND_ERROR, wire_codecs.encode_error(exc)
                    )
                else:
                    # Single-buffer wire envelope, framed without
                    # re-copying its body.
                    reply = wire_codecs.encode_payload_frame(
                        KIND_RESPONSE, response
                    )
                await link.send(reply, count=self._count_response)
                served += 1
                self.requests += 1
                if self.max_requests is not None and served >= self.max_requests:
                    return  # vanish abruptly, like a killed process
        finally:
            if link is not None:
                self.bytes_sent += link.control_sent
                self.bytes_received += link.control_received
                self.handshake_sent += link.control_sent
                self.handshake_received += link.control_received
            writer.close()
            with contextlib.suppress(asyncio.CancelledError, Exception):
                await writer.wait_closed()


def record_endpoint(stats: ConnectionStats, dialer) -> None:
    """Copy a dialing end's ground-truth counters into ``stats``.

    Every dialing worker exposes the same four counters; recording
    lives here so the carriers can never drift apart.
    """
    stats.endpoint_received_bytes = dialer.bytes_received
    stats.endpoint_sent_bytes = dialer.bytes_sent
    stats.endpoint_request_bytes = dialer.request_bytes
    stats.endpoint_response_bytes = dialer.response_bytes


def _delivery_latency(transport, client_id: int, sent: int, received: int) -> float:
    if transport.latency_split_fn is not None:
        return transport.latency_split_fn(client_id, sent, received)
    if transport.latency_fn is not None:
        return transport.latency_fn(client_id, sent + received)
    return 0.0


async def _request_over(
    conn: _ClientConnection, transport, client_id: int, op: str, payload: Any
) -> Delivery:
    """One engine request as an exchange on a listener connection."""
    frame = wire_codecs.encode_payload_frame(KIND_REQUEST, (op, payload))
    kind, rbody, sent, received = await conn.exchange(op, frame)
    latency = _delivery_latency(transport, client_id, sent, received)
    if kind == KIND_ERROR:
        raise wire_codecs.decode_error(rbody)
    if kind != KIND_RESPONSE:
        raise ValueError(f"unexpected frame kind {kind:#x} in response")
    return Delivery(
        client_id,
        op,
        wire_codecs.decode_payload(rbody),
        latency=latency,
        request_nbytes=sent,
        response_nbytes=received,
    )


class _HostedChannel(Channel):
    """One round's in-process ensemble: a private listener plus one
    dialing worker task per requested client.

    Lazy like the old per-client dialing: the listener starts on first
    use, and each client's worker is spawned on the first request to
    it.  ``aclose`` says goodbye to every connection, drains workers,
    copies their ground-truth counters into the matching
    :class:`ConnectionStats`, and lands everything in the owning
    transport's ``closed_connection_stats``.
    """

    #: In-process workers dial immediately; a client not connected well
    #: before this is a bug, not a slow join.
    JOIN_TIMEOUT = 10.0

    def __init__(self, clients, transport, carrier: str, max_fragment=None):
        self._clients = dict(clients)
        self._transport = transport
        self._carrier = carrier
        self._max_fragment = max_fragment
        self._listener: Optional[CoordinatorListener] = None
        self._start_task: Optional[asyncio.Task] = None
        self._workers: dict[int, tuple[DialingClient, asyncio.Task]] = {}

    async def _start(self) -> None:
        listener = CoordinatorListener(
            carrier=self._carrier,
            expected_ids=set(self._clients),
            join_timeout=self.JOIN_TIMEOUT,
            max_fragment=self._max_fragment,
        )
        await listener.start()
        self._listener = listener

    async def _connection(self, client_id: int, op: str) -> _ClientConnection:
        if self._start_task is None:
            self._start_task = asyncio.get_running_loop().create_task(
                self._start()
            )
        # Shielded: cancelling one requester must not kill the listener
        # start other requesters depend on.
        await asyncio.shield(self._start_task)
        assert self._listener is not None
        if client_id not in self._workers:
            dialer = DialingClient(
                self._clients[client_id],
                *self._listener.address,
                carrier=self._carrier,
                max_fragment=self._max_fragment,
            )
            task = asyncio.get_running_loop().create_task(dialer.run())
            self._workers[client_id] = (dialer, task)
        worker = self._workers[client_id][1]
        waiter = asyncio.ensure_future(
            self._listener.connection(client_id, op)
        )
        try:
            # Race the join against the worker: a dialer refused at the
            # handshake (bad version, bad token) dies with the decoded
            # rejection, which must surface loud — not as a join
            # timeout folded into dropout.
            await asyncio.wait(
                {waiter, worker}, return_when=asyncio.FIRST_COMPLETED
            )
        except BaseException:
            waiter.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await waiter
            raise
        if not waiter.done() and worker.done() and not worker.cancelled():
            exc = worker.exception()
            if exc is not None:
                waiter.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await waiter
                raise exc
        return await waiter

    async def request(self, client_id: int, op: str, payload: Any) -> Delivery:
        if client_id not in self._clients:
            raise ClientUnavailable(client_id, op)
        conn = await self._connection(client_id, op)
        return await _request_over(
            conn, self._transport, client_id, op, payload
        )

    async def aclose(self) -> None:
        if self._start_task is not None:
            with contextlib.suppress(Exception):
                await asyncio.shield(self._start_task)
        listener, self._listener = self._listener, None
        if listener is not None:
            await listener.aclose()
        for _dialer, task in self._workers.values():
            if not task.done():
                try:
                    await asyncio.wait_for(asyncio.shield(task), 5)
                except Exception:
                    if not task.done():
                        task.cancel()
            with contextlib.suppress(asyncio.CancelledError, Exception):
                await task
        if listener is not None:
            for stats in listener.closed_connection_stats:
                entry = self._workers.get(stats.client_id)
                if entry is not None:
                    record_endpoint(stats, entry[0])
            self._transport.closed_connection_stats.extend(
                listener.closed_connection_stats
            )


class _ListenerChannel(Channel):
    """A round routed over an externally-owned, already-started
    listener — the cross-process ``serve`` path.  The listener outlives
    the channel: ``aclose`` is deliberately a no-op (its owner closes
    it and then reads the stats)."""

    def __init__(self, ids, transport: "ListenerTransport"):
        self._ids = set(ids)
        self._transport = transport

    async def request(self, client_id: int, op: str, payload: Any) -> Delivery:
        if client_id not in self._ids:
            raise ClientUnavailable(client_id, op)
        conn = await self._transport.listener.connection(client_id, op)
        return await _request_over(
            conn, self._transport, client_id, op, payload
        )

    async def aclose(self) -> None:
        pass


class ListenerTransport(Transport):
    """A :class:`~repro.engine.transport.Transport` over one started
    :class:`CoordinatorListener` whose clients are *elsewhere* — other
    processes (``repro.cli join``) or independently-managed dialing
    tasks.  ``connect``'s mapping contributes only its id set; the
    state machines live behind the sockets.

    The optional ``latency_fn(client_id, frame_bytes)`` /
    ``latency_split_fn(client_id, down_nbytes, up_nbytes)`` hooks price
    measured frame sizes into virtual link seconds exactly as on the
    in-process socket transports.
    """

    def __init__(
        self,
        listener: CoordinatorListener,
        latency_fn: Optional[Callable[[int, int], float]] = None,
        latency_split_fn: Optional[Callable[[int, int, int], float]] = None,
    ):
        if latency_fn is not None and latency_split_fn is not None:
            raise ValueError("pass latency_fn or latency_split_fn, not both")
        self.listener = listener
        self.latency_fn = latency_fn
        self.latency_split_fn = latency_split_fn

    @property
    def closed_connection_stats(self) -> list[ConnectionStats]:
        return self.listener.closed_connection_stats

    def connect(self, clients) -> Channel:
        return _ListenerChannel(set(clients), self)
