"""Framed TCP transport: N dialing clients behind one listening port.

:class:`StreamTransport` runs each round over the single-listener core
(:mod:`repro.engine.listener`): the channel hosts one
:class:`~repro.engine.listener.CoordinatorListener` — one listening
port for the whole round, the production topology — and each protocol
client runs as a :class:`~repro.engine.listener.DialingClient` task
that dials *in* over a genuine localhost socket.  Every
request/response pair crosses the serialization boundary as
:mod:`repro.wire` frames:

1. on first use the client's worker dials the listener and performs
   the ``HELLO``/``WELCOME`` handshake (the explicit
   :class:`repro.wire.frame.Hello` schema: client id, wire version,
   optional auth token — a misdialed or version-skewed connection
   fails before any protocol bytes flow);
2. each engine request becomes one ``REQUEST`` frame carrying the
   codec-encoded ``(op, payload)``; the dialing client decodes, drives
   ``ProtocolClient.handle``, and answers with one ``RESPONSE`` frame
   (or an ``ERROR`` frame re-raised coordinator-side as the registered
   exception type — how abort notices travel);
3. every byte is accounted per connection (:class:`ConnectionStats`),
   from both ends of the socket, so tests can assert byte-for-byte
   that traced per-stage traffic equals what was actually written.

Accounting contract: traced per-stage ``traffic_bytes`` sums the
frames of *completed* deliveries.  An ERROR exchange is counted in its
connection's :class:`ConnectionStats` (the bytes really crossed the
socket) but produces no delivery — the engine aborts the round on the
re-raised exception — so ``traced == Σ frame_bytes`` holds exactly for
every round that runs to completion, and only for those.  A connection
aborted mid-handshake still lands its partial :class:`ConnectionStats`
(the bytes that really crossed) in ``closed_connection_stats`` — an
aborted round under-reports nothing.

A client whose connection drops mid-round folds into the dropout
machinery (:class:`~repro.engine.transport.ClientUnavailable`) instead
of crashing the round; the engine never sees any of this otherwise,
and a round over sockets is bit-identical to one over
:class:`~repro.engine.transport.InProcessTransport` (the parity suite
pins that).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Mapping, Optional

from repro.engine.listener import (
    ConnectionStats,
    _HostedChannel,
)
from repro.engine.transport import Channel, Transport

if TYPE_CHECKING:
    from repro.api.protocol import ProtocolClient

__all__ = ["ConnectionStats", "StreamTransport"]


class StreamTransport(Transport):
    """Each round behind one real asyncio TCP listener (localhost).

    Connections are dialed lazily (first request to a client spawns its
    dialing worker), live for the channel's round, and are fully
    accounted: the per-connection :class:`ConnectionStats` land in
    ``closed_connection_stats`` when the round's channel closes.
    ``latency_fn(client_id, frame_bytes)`` optionally maps measured
    frame sizes to *virtual* link seconds (e.g.
    ``device.upload_seconds``), folding real encoded sizes into the
    engine's simulated timeline;
    ``latency_split_fn(client_id, down_nbytes, up_nbytes)`` is the
    directional variant (e.g. ``device.link_seconds``) charging the
    request frame against the downlink and the response frame against
    the uplink — pass one or the other, not both.  By default socket
    rounds add no virtual latency, which keeps them trace-identical to
    in-process execution.
    """

    def __init__(
        self,
        latency_fn: Optional[Callable[[int, int], float]] = None,
        latency_split_fn: Optional[Callable[[int, int, int], float]] = None,
    ):
        if latency_fn is not None and latency_split_fn is not None:
            raise ValueError(
                "pass latency_fn or latency_split_fn, not both"
            )
        self.latency_fn = latency_fn
        self.latency_split_fn = latency_split_fn
        self.closed_connection_stats: list[ConnectionStats] = []

    def connect(self, clients: Mapping[int, "ProtocolClient"]) -> Channel:
        return _HostedChannel(clients, self, carrier="sockets")
