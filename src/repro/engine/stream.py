"""Framed TCP transport: every client behind a real socket.

:class:`StreamTransport` runs each protocol client as a *client
endpoint* — a localhost asyncio TCP server hosting the client's state
machine — and connects the engine-side channel to it over a genuine
socket.  Every request/response pair crosses the serialization
boundary as :mod:`repro.wire` frames:

1. on first use the channel dials the endpoint and performs the
   ``HELLO``/``WELCOME`` handshake (wire version + client id — a
   misdialed or version-skewed connection fails before any protocol
   bytes flow);
2. each engine request becomes one ``REQUEST`` frame carrying the
   codec-encoded ``(op, payload)``; the endpoint decodes, drives
   ``ProtocolClient.handle``, and answers with one ``RESPONSE`` frame
   (or an ``ERROR`` frame re-raised server-side as the registered
   exception type — how abort notices travel);
3. every byte is accounted per connection (:class:`ConnectionStats`),
   from both ends of the socket, so tests can assert byte-for-byte
   that traced per-stage traffic equals what was actually written.

Accounting contract: traced per-stage ``traffic_bytes`` sums the
frames of *completed* deliveries.  An ERROR exchange is counted in its
connection's :class:`ConnectionStats` (the bytes really crossed the
socket) but produces no delivery — the engine aborts the round on the
re-raised exception — so ``traced == Σ frame_bytes`` holds exactly for
every round that runs to completion, and only for those.  A connection
whose *open* is cancelled or fails mid-flight still lands its partial
:class:`ConnectionStats` (handshake bytes that really crossed) in
``closed_connection_stats`` — an aborted round under-reports nothing.

The engine never sees any of this: deliveries simply report the framed
byte counts, and a round over sockets is bit-identical to one over
:class:`~repro.engine.transport.InProcessTransport` (the parity suite
pins that).
"""

from __future__ import annotations

import asyncio
import contextlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Mapping, Optional

from repro.engine.transport import Channel, ClientUnavailable, Delivery, Transport
from repro.wire import codecs as wire_codecs
from repro.wire.frame import (
    KIND_ERROR,
    KIND_HELLO,
    KIND_REQUEST,
    KIND_RESPONSE,
    KIND_WELCOME,
    WIRE_VERSION,
    FrameEOF,
    encode_frame,
    read_frame,
    write_frame,
)

if TYPE_CHECKING:
    from repro.api.protocol import ProtocolClient


@dataclass
class ConnectionStats:
    """Byte accounting for one client connection, from both socket ends.

    Channel-side counters split handshake traffic from request/response
    frames (so per-stage sums exclude the one-off connection setup) and
    are *directional*: ``request_bytes`` is the downlink (server→client
    frames the channel wrote), ``response_bytes`` the uplink
    (client→server frames it read) — ``down_bytes``/``up_bytes`` name
    that explicitly.  The ``endpoint_*`` counters are what the client
    endpoint independently observed on its end of the socket, per
    direction — the ground truth the channel-side counts must equal
    byte for byte (``endpoint_request_bytes``/``endpoint_response_bytes``
    exclude the handshake, like their channel-side counterparts).

    For the websocket transport (:mod:`repro.engine.websocket`) the
    same fields apply with ``handshake_*`` widened to *connection
    overhead*: the HTTP upgrade plus every control frame
    (close/ping/pong) — anything on the socket that is not a
    stage-accounted request/response message.
    """

    client_id: int
    handshake_sent: int = 0
    handshake_received: int = 0
    request_bytes: int = 0
    response_bytes: int = 0
    requests: int = 0
    endpoint_received_bytes: int = 0
    endpoint_sent_bytes: int = 0
    endpoint_request_bytes: int = 0
    endpoint_response_bytes: int = 0

    @property
    def down_bytes(self) -> int:
        """Server→client frame bytes (the downlink share of the stage
        accounting)."""
        return self.request_bytes

    @property
    def up_bytes(self) -> int:
        """Client→server frame bytes (the uplink share of the stage
        accounting)."""
        return self.response_bytes

    @property
    def bytes_sent(self) -> int:
        """Everything the channel wrote to this socket."""
        return self.handshake_sent + self.request_bytes

    @property
    def bytes_received(self) -> int:
        """Everything the channel read from this socket."""
        return self.handshake_received + self.response_bytes

    @property
    def frame_bytes(self) -> int:
        """Request + response frames (the per-stage-accounted traffic)."""
        return self.request_bytes + self.response_bytes


class _ClientEndpoint:
    """One client's 'process': a localhost TCP server around its state
    machine, speaking the framed request/response protocol."""

    def __init__(self, client: "ProtocolClient"):
        self.client = client
        self.bytes_received = 0
        self.bytes_sent = 0
        # Per-direction frame counters (handshake excluded): what this
        # end of the socket saw of the stage-accounted traffic.
        self.request_bytes = 0
        self.response_bytes = 0
        self._server: Optional[asyncio.base_events.Server] = None
        self._handlers: set[asyncio.Task] = set()

    async def start(self) -> tuple[str, int]:
        self._server = await asyncio.start_server(self._serve, "127.0.0.1", 0)
        host, port = self._server.sockets[0].getsockname()[:2]
        return host, port

    async def _send(
        self, writer: asyncio.StreamWriter, kind: int, body: bytes,
        *, response: bool,
    ) -> None:
        """Write one frame from a prebuilt body (handshake/error path)."""
        await self._send_frame(writer, encode_frame(kind, body), response=response)

    async def _send_frame(
        self, writer: asyncio.StreamWriter, frame: bytes | bytearray,
        *, response: bool,
    ) -> None:
        """Write one already-framed buffer, counting it *before* the flush.

        The channel may cancel a lingering handler the instant it has
        read the reply (see :meth:`aclose`); counting after the drain
        would let that cancellation land between the write and the
        bookkeeping and silently unbalance the two ends.
        """
        self.bytes_sent += len(frame)
        if response:
            self.response_bytes += len(frame)
        writer.write(frame)
        await writer.drain()

    async def _serve(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
            task.add_done_callback(self._handlers.discard)
        try:
            await self._handshake(reader, writer)
            while True:
                try:
                    kind, body, nbytes = await read_frame(reader)
                except FrameEOF:
                    return
                self.bytes_received += nbytes
                if kind != KIND_REQUEST:
                    raise ValueError(
                        f"client endpoint expected REQUEST, got {kind:#x}"
                    )
                self.request_bytes += nbytes
                op, payload = wire_codecs.decode_payload(body)
                try:
                    response = self.client.handle(op, payload)
                except Exception as exc:
                    # An ERROR reply crosses the uplink like any other
                    # response frame; count it there so both socket
                    # ends agree per direction even on aborted rounds.
                    await self._send(
                        writer, KIND_ERROR, wire_codecs.encode_error(exc),
                        response=True,
                    )
                else:
                    # Single-buffer encode: the response payload is
                    # framed without re-copying its body.
                    await self._send_frame(
                        writer,
                        wire_codecs.encode_payload_frame(
                            KIND_RESPONSE, response
                        ),
                        response=True,
                    )
        except ConnectionError:
            raise
        except asyncio.CancelledError:
            # aclose() cancels a handler still parked on a read (e.g. a
            # connection the round aborted mid-handshake); end quietly
            # so asyncio's streams machinery does not log the
            # cancellation as an unhandled error.
            return
        except ValueError as exc:
            # A malformed frame kills the connection (fail loud, never
            # misparse); the channel side surfaces its own error.
            with contextlib.suppress(Exception):
                await self._send(
                    writer, KIND_ERROR, wire_codecs.encode_error(exc),
                    response=False,
                )
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _handshake(self, reader, writer) -> None:
        kind, body, nbytes = await read_frame(reader)
        self.bytes_received += nbytes
        if kind != KIND_HELLO:
            raise ValueError(f"handshake must open with HELLO, got {kind:#x}")
        hello = wire_codecs.decode_payload(body)
        if hello != (WIRE_VERSION, self.client.id):
            raise ValueError(
                f"bad HELLO {hello!r} for client {self.client.id} "
                f"speaking wire version {WIRE_VERSION}"
            )
        await self._send(
            writer, KIND_WELCOME, wire_codecs.encode_payload(self.client.id),
            response=False,
        )

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # The channel closed its end first, so handlers are draining
        # toward EOF — but one aborted mid-handshake (or mid-read) may
        # be parked on a read that will never complete; cancel instead
        # of waiting forever, then await so no task outlives the round.
        for task in list(self._handlers):
            if not task.done():
                task.cancel()
            with contextlib.suppress(asyncio.CancelledError, Exception):
                await task


@dataclass
class _StreamConnection:
    reader: asyncio.StreamReader
    writer: asyncio.StreamWriter
    endpoint: _ClientEndpoint
    stats: ConnectionStats
    lock: asyncio.Lock = field(default_factory=asyncio.Lock)


class _DialingChannel(Channel):
    """Lazy per-client dialing shared by the socket-backed channels.

    Each client's connection is opened by its own task on first use, so
    a requester cancelled mid-dial (an aborted round) never strands the
    half-open connection: :meth:`aclose` awaits every open — including
    cancelled ones — and the concrete ``_open`` records *partial*
    :class:`ConnectionStats` on any failure, so even a round aborted
    mid-handshake accounts the bytes that really crossed.
    """

    def __init__(
        self,
        clients: Mapping[int, "ProtocolClient"],
        transport,
    ):
        self._clients = dict(clients)
        self._transport = transport
        self._conns: dict[int, asyncio.Task] = {}

    async def _open(self, client_id: int):
        raise NotImplementedError

    async def _dispose(self, conn) -> None:
        raise NotImplementedError

    @staticmethod
    def _record_endpoint(stats: ConnectionStats, endpoint) -> None:
        """Copy the endpoint's ground-truth counters into ``stats``.

        Every socket-backed endpoint exposes the same four counters;
        recording lives here so the carriers can never drift apart.
        """
        stats.endpoint_received_bytes = endpoint.bytes_received
        stats.endpoint_sent_bytes = endpoint.bytes_sent
        stats.endpoint_request_bytes = endpoint.request_bytes
        stats.endpoint_response_bytes = endpoint.response_bytes

    async def _connection(self, client_id: int):
        task = self._conns.get(client_id)
        if task is None:
            task = asyncio.get_running_loop().create_task(
                self._open(client_id)
            )
            self._conns[client_id] = task
        try:
            # Shielded: cancelling one requester must not kill a dial
            # other requesters (or aclose's accounting) depend on.
            return await asyncio.shield(task)
        except BaseException:
            # Drop the entry only when the *dial* failed (a later
            # request may retry it).  A requester cancelled just as its
            # dial succeeded must leave the healthy connection in place
            # for aclose() to dispose and account.
            if (
                task.done()
                and (task.cancelled() or task.exception() is not None)
                and self._conns.get(client_id) is task
            ):
                self._conns.pop(client_id)
            raise

    async def aclose(self) -> None:
        conns, self._conns = self._conns, {}
        for task in conns.values():
            if not task.done():
                task.cancel()
            try:
                conn = await task
            except BaseException:
                # The open failed or was cancelled mid-flight; its
                # cleanup path already recorded the partial stats.
                continue
            await self._dispose(conn)


class _StreamChannel(_DialingChannel):
    async def _open(self, client_id: int) -> _StreamConnection:
        endpoint = _ClientEndpoint(self._clients[client_id])
        stats = ConnectionStats(client_id=client_id)
        writer = None
        try:
            host, port = await endpoint.start()
            reader, writer = await asyncio.open_connection(host, port)
            stats.handshake_sent = await write_frame(
                writer,
                KIND_HELLO,
                wire_codecs.encode_payload((WIRE_VERSION, client_id)),
            )
            kind, body, nbytes = await read_frame(reader)
            stats.handshake_received = nbytes
            if kind == KIND_ERROR:
                raise wire_codecs.decode_error(body)
            if kind != KIND_WELCOME:
                raise ValueError(f"handshake expected WELCOME, got {kind:#x}")
            welcomed = wire_codecs.decode_payload(body)
            if welcomed != client_id:
                raise ValueError(
                    f"endpoint welcomed client {welcomed!r}, expected {client_id}"
                )
            return _StreamConnection(reader, writer, endpoint, stats)
        except BaseException:
            if writer is not None:
                writer.close()
                with contextlib.suppress(Exception):
                    await writer.wait_closed()
            await endpoint.aclose()
            # Partial accounting: an aborted open still really moved
            # its handshake bytes; record them so the round's books
            # never silently drop a connection.
            self._record_endpoint(stats, endpoint)
            self._transport.closed_connection_stats.append(stats)
            raise

    async def request(self, client_id: int, op: str, payload: Any) -> Delivery:
        if client_id not in self._clients:
            raise ClientUnavailable(client_id, op)
        conn = await self._connection(client_id)
        frame = wire_codecs.encode_payload_frame(KIND_REQUEST, (op, payload))
        # One in-flight exchange per connection: frames on a byte
        # stream must not interleave.  Each direction is counted the
        # moment its bytes are known, so a round cancelled mid-exchange
        # still books the request frame that really crossed.
        async with conn.lock:
            sent = len(frame)
            conn.writer.write(frame)
            await conn.writer.drain()
            conn.stats.request_bytes += sent
            kind, rbody, received = await read_frame(conn.reader)
            conn.stats.response_bytes += received
        conn.stats.requests += 1
        latency = 0.0
        if self._transport.latency_split_fn is not None:
            latency = self._transport.latency_split_fn(client_id, sent, received)
        elif self._transport.latency_fn is not None:
            latency = self._transport.latency_fn(client_id, sent + received)
        if kind == KIND_ERROR:
            raise wire_codecs.decode_error(rbody)
        if kind != KIND_RESPONSE:
            raise ValueError(f"unexpected frame kind {kind:#x} in response")
        return Delivery(
            client_id,
            op,
            wire_codecs.decode_payload(rbody),
            latency=latency,
            request_nbytes=sent,
            response_nbytes=received,
        )

    async def _dispose(self, conn: _StreamConnection) -> None:
        conn.writer.close()
        with contextlib.suppress(Exception):
            await conn.writer.wait_closed()
        await conn.endpoint.aclose()
        self._record_endpoint(conn.stats, conn.endpoint)
        self._transport.closed_connection_stats.append(conn.stats)


class StreamTransport(Transport):
    """Each client behind a real asyncio TCP (localhost) connection.

    Connections are dialed lazily (first request to a client), live for
    the channel's round, and are fully accounted: the per-connection
    :class:`ConnectionStats` land in ``closed_connection_stats`` when
    the round's channel closes.  ``latency_fn(client_id, frame_bytes)``
    optionally maps measured frame sizes to *virtual* link seconds
    (e.g. ``device.upload_seconds``), folding real encoded sizes into
    the engine's simulated timeline;
    ``latency_split_fn(client_id, down_nbytes, up_nbytes)`` is the
    directional variant (e.g. ``device.link_seconds``) charging the
    request frame against the downlink and the response frame against
    the uplink — pass one or the other, not both.  By default socket
    rounds add no virtual latency, which keeps them trace-identical to
    in-process execution.
    """

    def __init__(
        self,
        latency_fn: Optional[Callable[[int, int], float]] = None,
        latency_split_fn: Optional[Callable[[int, int, int], float]] = None,
    ):
        if latency_fn is not None and latency_split_fn is not None:
            raise ValueError(
                "pass latency_fn or latency_split_fn, not both"
            )
        self.latency_fn = latency_fn
        self.latency_split_fn = latency_split_fn
        self.closed_connection_stats: list[ConnectionStats] = []

    def connect(self, clients: Mapping[int, "ProtocolClient"]) -> Channel:
        return _StreamChannel(clients, self)
