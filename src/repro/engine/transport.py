"""Pluggable transports for the :class:`repro.engine.RoundEngine`.

A transport is how the engine reaches protocol clients.  ``connect()``
binds a transport to one round's client set and returns a
:class:`Channel`; the engine issues concurrent ``request()`` calls on the
channel and folds the reported per-link latencies into its virtual
timeline.  Implementations:

- :class:`InProcessTransport` — direct dispatch in the caller's task,
  zero latency.  The engine with this transport is behaviorally identical
  to the old synchronous drivers (the regression tests rely on it).
- :class:`QueueTransport` — genuine message passing: one asyncio queue
  and worker task per client, responses returned through futures.  The
  shape a Socket.IO/websocket backend would plug into.
- :class:`SimulatedNetworkTransport` — queue transport whose links carry
  the per-client latency implied by :mod:`repro.sim.network` device
  profiles (payload bytes / bandwidth), so heterogeneous stragglers gate
  comm stages exactly as in the paper's §6.1 setup.  Sizes are
  *measured* through the :mod:`repro.wire` codecs, not guessed.
- :class:`SerializingTransport` — middleware that makes every payload
  cross a genuine serialization boundary: requests and responses travel
  as :mod:`repro.wire` frames through any inner transport, and each
  :class:`Delivery` reports the exact framed byte counts.
- :class:`repro.engine.stream.StreamTransport` — each client behind a
  real asyncio TCP (localhost) connection with framed messages,
  handshake, and per-connection accounting.
- :class:`repro.engine.websocket.WebSocketTransport` — each client
  behind a real RFC 6455 WebSocket (localhost): HTTP upgrade handshake,
  the same wire envelope as binary messages, accounting that includes
  the WebSocket framing overhead.
- :class:`DropoutTransport` — middleware that silences clients according
  to a :class:`repro.secagg.driver.DropoutSchedule`; this is the old
  ``SecAggDriver``'s dropout-injection role recast as a transport layer.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Mapping, Optional

import numpy as np

from repro.wire import codecs as wire_codecs
from repro.wire.frame import (
    KIND_ERROR,
    KIND_REQUEST,
    KIND_RESPONSE,
    decode_frame,
    encode_frame,
)

if TYPE_CHECKING:  # imported lazily to avoid an api ↔ engine import cycle
    from repro.api.protocol import ProtocolClient
    from repro.fleet.profile import DeviceProfile


class ClientUnavailable(Exception):
    """The transport could not reach a client (dropout, dead link).

    The engine treats this as a missing response — the client simply does
    not appear in the op's response dict — mirroring how the synchronous
    drivers modelled dropout by skipping the client's stage call.
    """

    def __init__(self, client_id: int, op: str):
        super().__init__(f"client {client_id} unreachable for request {op!r}")
        self.client_id = client_id
        self.op = op


@dataclass(frozen=True)
class Delivery:
    """One completed request/response exchange on a channel.

    ``latency`` is the *simulated* seconds the exchange spent on the wire
    (0 for in-process dispatch); the engine adds it to the virtual clock,
    it is never a wall-clock measurement.

    ``request_nbytes`` / ``response_nbytes`` are the framed byte counts
    the exchange put on the wire — measured, not modelled, for
    serializing/socket transports (0 for in-process dispatch, which
    moves live objects).  They are *directional*: the request travels
    server→client (the **downlink**), the response client→server (the
    **uplink**) — ``down_nbytes``/``up_nbytes`` name that explicitly.
    The engine folds them into each traced
    :class:`~repro.sim.timeline.StageSpan`'s ``down_bytes``/``up_bytes``
    (whose sum is ``traffic_bytes``).
    """

    client_id: int
    op: str
    response: Any
    latency: float = 0.0
    request_nbytes: int = 0
    response_nbytes: int = 0

    @property
    def down_nbytes(self) -> int:
        """Server→client bytes (the request frame, on the downlink)."""
        return self.request_nbytes

    @property
    def up_nbytes(self) -> int:
        """Client→server bytes (the response frame, on the uplink)."""
        return self.response_nbytes

    @property
    def wire_nbytes(self) -> int:
        return self.request_nbytes + self.response_nbytes


class Channel:
    """A transport bound to one round's clients."""

    async def request(self, client_id: int, op: str, payload: Any) -> Delivery:
        raise NotImplementedError

    async def aclose(self) -> None:
        """Release any resources (worker tasks, queues)."""


class Transport:
    """Factory of per-round channels."""

    def connect(self, clients: Mapping[int, ProtocolClient]) -> Channel:
        raise NotImplementedError


# ---------------------------------------------------------------------------
# In-process
# ---------------------------------------------------------------------------


class _InProcessChannel(Channel):
    def __init__(self, clients: Mapping[int, ProtocolClient]):
        self._clients = dict(clients)

    async def request(self, client_id: int, op: str, payload: Any) -> Delivery:
        if client_id not in self._clients:
            raise ClientUnavailable(client_id, op)
        response = self._clients[client_id].handle(op, payload)
        return Delivery(client_id, op, response)


class InProcessTransport(Transport):
    """Direct dispatch — the default, zero-latency backend."""

    def connect(self, clients: Mapping[int, ProtocolClient]) -> Channel:
        return _InProcessChannel(clients)


# ---------------------------------------------------------------------------
# Asyncio message passing
# ---------------------------------------------------------------------------


class _QueueChannel(Channel):
    """One request queue + worker task per client."""

    def __init__(
        self,
        clients: Mapping[int, ProtocolClient],
        latency_fn: Optional[Callable[[int, str, Any, Any], float]] = None,
    ):
        self._clients = dict(clients)
        self._latency_fn = latency_fn
        self._queues: dict[int, asyncio.Queue] = {}
        self._workers: dict[int, asyncio.Task] = {}

    def _queue_for(self, client_id: int) -> asyncio.Queue:
        queue = self._queues.get(client_id)
        if queue is None:
            queue = asyncio.Queue()
            self._queues[client_id] = queue
            self._workers[client_id] = asyncio.get_running_loop().create_task(
                self._worker(client_id, queue)
            )
        return queue

    async def _worker(self, client_id: int, queue: asyncio.Queue) -> None:
        client = self._clients[client_id]
        while True:
            op, payload, future = await queue.get()
            if future.cancelled():
                continue
            try:
                future.set_result(client.handle(op, payload))
            except Exception as exc:  # propagate to the requester
                future.set_exception(exc)

    async def request(self, client_id: int, op: str, payload: Any) -> Delivery:
        if client_id not in self._clients:
            raise ClientUnavailable(client_id, op)
        future = asyncio.get_running_loop().create_future()
        await self._queue_for(client_id).put((op, payload, future))
        response = await future
        latency = 0.0
        if self._latency_fn is not None:
            latency = self._latency_fn(client_id, op, payload, response)
        return Delivery(client_id, op, response, latency=latency)

    async def aclose(self) -> None:
        for task in self._workers.values():
            task.cancel()
        for task in self._workers.values():
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._workers.clear()
        self._queues.clear()


class QueueTransport(Transport):
    """Asyncio-queue message passing, with an optional per-exchange
    latency hook.

    ``latency_fn(client_id, op, payload, response)`` maps one exchange
    to virtual link seconds (default: none).  When the inner payloads
    are already wire frames — e.g. under a
    :class:`SerializingTransport` — the hook sees the framed ``bytes``
    and can charge each direction against its own bandwidth.
    """

    def __init__(
        self,
        latency_fn: Optional[Callable[[int, str, Any, Any], float]] = None,
    ):
        self.latency_fn = latency_fn

    def connect(self, clients: Mapping[int, ProtocolClient]) -> Channel:
        return _QueueChannel(clients, self.latency_fn)


def payload_nbytes(payload: Any) -> int:
    """Rough serialized size of a message payload — the legacy heuristic.

    Counts ndarray buffers, byte strings, and containers thereof; every
    other object costs a small fixed overhead (headers, framing).

    This is a documented **fallback only**: the accounting and latency
    paths use :func:`measured_nbytes`, the exact framed size from the
    :mod:`repro.wire` codecs, and reach for this guess solely when a
    payload type has no registered codec (e.g. an application object a
    custom protocol passes through a simulated transport).
    """
    if payload is None:
        return 0
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    if isinstance(payload, str):
        # Content-length counted like bytes (UTF-8 on the wire) plus a
        # small header — not the 8-byte scalar default, which would
        # price a kilobyte label the same as an int.
        return 8 + len(payload.encode("utf-8"))
    if isinstance(payload, (list, tuple, set, frozenset)):
        return 16 + sum(payload_nbytes(v) for v in payload)
    if isinstance(payload, dict):
        return 16 + sum(
            payload_nbytes(k) + payload_nbytes(v) for k, v in payload.items()
        )
    if hasattr(payload, "__dataclass_fields__"):
        return 16 + sum(
            payload_nbytes(getattr(payload, name))
            for name in payload.__dataclass_fields__
        )
    return 8


def measured_nbytes(payload: Any) -> int:
    """Exact framed wire size of ``payload`` via the codec registry.

    Falls back to the :func:`payload_nbytes` heuristic for payload
    types no codec covers, so custom application objects still get a
    size instead of an error.
    """
    try:
        return wire_codecs.encoded_nbytes(payload)
    except wire_codecs.CodecError:
        return payload_nbytes(payload)


class _SizedQueueChannel(_QueueChannel):
    """Queue channel reporting measured sizes and size-derived latency.

    Each size is computed exactly once per exchange; latency is derived
    from those same numbers, so the reported traffic and the simulated
    link time can never disagree.
    """

    def __init__(self, clients, transport: "SimulatedNetworkTransport"):
        super().__init__(clients)
        self._transport = transport

    async def request(self, client_id: int, op: str, payload: Any) -> Delivery:
        delivery = await super().request(client_id, op, payload)
        size_fn = self._transport.size_fn
        # The request wire message is the framed (op, payload) envelope,
        # the response just the payload — byte-identical to what
        # SerializingTransport/StreamTransport put on a real link.
        request_nbytes = size_fn((op, payload))
        response_nbytes = size_fn(delivery.response)
        overhead_fn = self._transport.overhead_fn
        if overhead_fn is not None:
            request_nbytes += overhead_fn("down", request_nbytes)
            response_nbytes += overhead_fn("up", response_nbytes)
        return Delivery(
            delivery.client_id,
            delivery.op,
            delivery.response,
            latency=self._transport.link_seconds(
                client_id,
                down_nbytes=request_nbytes,
                up_nbytes=response_nbytes,
            ),
            request_nbytes=request_nbytes,
            response_nbytes=response_nbytes,
        )


class SimulatedNetworkTransport(QueueTransport):
    """Queue transport with per-link latency from §6.1 device profiles.

    Each exchange charges the request bytes against the client's
    *downlink* and the response bytes against its *uplink*
    (:meth:`repro.fleet.DeviceProfile.link_seconds`); for a symmetric
    device that reduces — bit-identically, one division — to the
    pre-split ``(request + response) / bandwidth``.  The engine takes
    the max over concurrently dispatched clients, so the slowest
    sampled device gates each comm stage, as in the paper's cost model.

    ``size_fn`` sizes one *wire message*: it receives the ``(op,
    payload)`` tuple for requests and the bare response payload for
    responses.  The default, :func:`measured_nbytes`, returns the
    actual framed encoding — byte-identical to the frames
    :class:`SerializingTransport` and ``StreamTransport`` put on a real
    link — so simulated ``bytes / bandwidth`` latency and traced
    per-stage traffic both reflect what a deployment would send, not
    the old heuristic guess.

    ``overhead_fn(direction, envelope_nbytes)`` optionally adds a
    carrier's per-message framing bytes on top of the sized envelope
    (``direction`` is ``"down"`` for requests, ``"up"`` for
    responses).  With
    :func:`repro.engine.websocket.ws_envelope_overhead` this transport
    is the codec oracle for websocket rounds: span for span, its
    traffic equals what :class:`repro.engine.websocket.WebSocketTransport`
    measures on real connections.
    """

    def __init__(
        self,
        devices: Mapping[int, "DeviceProfile"],
        size_fn: Callable[[Any], int] = measured_nbytes,
        overhead_fn: Optional[Callable[[str, int], int]] = None,
    ):
        super().__init__()
        self.devices = dict(devices)
        self.size_fn = size_fn
        self.overhead_fn = overhead_fn

    def link_seconds(
        self, client_id: int, *, down_nbytes: int = 0, up_nbytes: int = 0
    ) -> float:
        device = self.devices.get(client_id)
        if device is None:
            return 0.0
        if hasattr(device, "link_seconds"):
            return device.link_seconds(down_nbytes, up_nbytes)
        # A bare legacy device (only upload_seconds): symmetric link.
        return device.upload_seconds(down_nbytes + up_nbytes)

    def connect(self, clients: Mapping[int, ProtocolClient]) -> Channel:
        return _SizedQueueChannel(clients, self)


# ---------------------------------------------------------------------------
# Serialization middleware
# ---------------------------------------------------------------------------


class _WireEndpoint:
    """The client edge of a serialization boundary.

    Receives REQUEST frames, decodes them, drives the wrapped
    :class:`ProtocolClient`, and answers with RESPONSE (or ERROR)
    frames — exactly what a remote client process does, minus the
    socket.  Duck-types the ``.id`` / ``.handle`` surface transports
    dispatch on.
    """

    def __init__(self, inner: ProtocolClient):
        self.id = inner.id
        self.inner = inner

    def handle(self, op: str, frame: bytes):
        kind, body = decode_frame(frame)
        if kind != KIND_REQUEST:
            raise ValueError(f"client endpoint expected a REQUEST frame, got {kind:#x}")
        wire_op, payload = wire_codecs.decode_payload(body)
        if wire_op != op:
            raise ValueError(
                f"frame op {wire_op!r} does not match dispatched op {op!r}"
            )
        try:
            response = self.inner.handle(op, payload)
        except Exception as exc:
            return encode_frame(KIND_ERROR, wire_codecs.encode_error(exc))
        return bytes(wire_codecs.encode_payload_frame(KIND_RESPONSE, response))


class _SerializingChannel(Channel):
    def __init__(self, inner: Channel):
        self._inner = inner

    async def request(self, client_id: int, op: str, payload: Any) -> Delivery:
        frame = bytes(
            wire_codecs.encode_payload_frame(KIND_REQUEST, (op, payload))
        )
        delivery = await self._inner.request(client_id, op, frame)
        kind, body = decode_frame(delivery.response)
        if kind == KIND_ERROR:
            raise wire_codecs.decode_error(body)
        if kind != KIND_RESPONSE:
            raise ValueError(f"unexpected frame kind {kind:#x} in response")
        return Delivery(
            client_id,
            op,
            wire_codecs.decode_payload(body),
            latency=delivery.latency,
            request_nbytes=len(frame),
            response_nbytes=len(delivery.response),
        )

    async def aclose(self) -> None:
        await self._inner.aclose()


class SerializingTransport(Transport):
    """Make every payload cross a genuine serialization boundary.

    Wraps any inner transport: requests are encoded to
    :mod:`repro.wire` REQUEST frames at the server edge, decoded (and
    re-encoded as RESPONSE/ERROR frames) at the client edge, so the
    inner transport only ever carries ``bytes`` — and each
    :class:`Delivery` reports the exact framed sizes.  With an
    :class:`InProcessTransport` inside, this is the cheapest way to get
    wire-faithful traffic measurement: the frames are byte-identical to
    what :class:`repro.engine.stream.StreamTransport` writes to its
    sockets.  Client-side exceptions cross as ERROR frames and are
    re-raised from a registered exception type
    (:func:`repro.wire.codecs.decode_error`).
    """

    def __init__(self, inner: Optional[Transport] = None):
        self.inner = inner or InProcessTransport()

    def connect(self, clients: Mapping[int, ProtocolClient]) -> Channel:
        endpoints = {cid: _WireEndpoint(c) for cid, c in clients.items()}
        return _SerializingChannel(self.inner.connect(endpoints))


# ---------------------------------------------------------------------------
# Dropout middleware
# ---------------------------------------------------------------------------


class _DropoutChannel(Channel):
    def __init__(self, inner: Channel, schedule, stage_of):
        self._inner = inner
        self._schedule = schedule
        self._stage_of = stage_of

    async def request(self, client_id: int, op: str, payload: Any) -> Delivery:
        stage = self._stage_of(op)
        if stage is not None and client_id in self._schedule.dropped_by(stage):
            raise ClientUnavailable(client_id, op)
        return await self._inner.request(client_id, op, payload)

    async def aclose(self) -> None:
        await self._inner.aclose()


class DropoutTransport(Transport):
    """Silence clients per a :class:`DropoutSchedule` — SecAgg's old driver
    recast as middleware.

    ``stage_of`` maps an operation name to the protocol stage constant it
    belongs to (``None`` → never dropped); a client scheduled to drop by
    that stage raises :class:`ClientUnavailable`, and a dropped client
    never comes back within the round — exactly the old driver's
    ``alive -= dropout.dropped_by(stage)`` bookkeeping.
    """

    def __init__(
        self,
        inner: Transport,
        schedule,
        stage_of: Callable[[str], Optional[int]],
    ):
        self.inner = inner
        self.schedule = schedule
        self.stage_of = stage_of

    def connect(self, clients: Mapping[int, ProtocolClient]) -> Channel:
        return _DropoutChannel(self.inner.connect(clients), self.schedule, self.stage_of)
