"""Pluggable transports for the :class:`repro.engine.RoundEngine`.

A transport is how the engine reaches protocol clients.  ``connect()``
binds a transport to one round's client set and returns a
:class:`Channel`; the engine issues concurrent ``request()`` calls on the
channel and folds the reported per-link latencies into its virtual
timeline.  Implementations:

- :class:`InProcessTransport` — direct dispatch in the caller's task,
  zero latency.  The engine with this transport is behaviorally identical
  to the old synchronous drivers (the regression tests rely on it).
- :class:`QueueTransport` — genuine message passing: one asyncio queue
  and worker task per client, responses returned through futures.  The
  shape a Socket.IO/websocket backend would plug into.
- :class:`SimulatedNetworkTransport` — queue transport whose links carry
  the per-client latency implied by :mod:`repro.sim.network` device
  profiles (payload bytes / bandwidth), so heterogeneous stragglers gate
  comm stages exactly as in the paper's §6.1 setup.
- :class:`DropoutTransport` — middleware that silences clients according
  to a :class:`repro.secagg.driver.DropoutSchedule`; this is the old
  ``SecAggDriver``'s dropout-injection role recast as a transport layer.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Mapping, Optional

import numpy as np

if TYPE_CHECKING:  # imported lazily to avoid an api ↔ engine import cycle
    from repro.api.protocol import ProtocolClient
    from repro.sim.network import ClientDevice


class ClientUnavailable(Exception):
    """The transport could not reach a client (dropout, dead link).

    The engine treats this as a missing response — the client simply does
    not appear in the op's response dict — mirroring how the synchronous
    drivers modelled dropout by skipping the client's stage call.
    """

    def __init__(self, client_id: int, op: str):
        super().__init__(f"client {client_id} unreachable for request {op!r}")
        self.client_id = client_id
        self.op = op


@dataclass(frozen=True)
class Delivery:
    """One completed request/response exchange on a channel.

    ``latency`` is the *simulated* seconds the exchange spent on the wire
    (0 for in-process dispatch); the engine adds it to the virtual clock,
    it is never a wall-clock measurement.
    """

    client_id: int
    op: str
    response: Any
    latency: float = 0.0


class Channel:
    """A transport bound to one round's clients."""

    async def request(self, client_id: int, op: str, payload: Any) -> Delivery:
        raise NotImplementedError

    async def aclose(self) -> None:
        """Release any resources (worker tasks, queues)."""


class Transport:
    """Factory of per-round channels."""

    def connect(self, clients: Mapping[int, ProtocolClient]) -> Channel:
        raise NotImplementedError


# ---------------------------------------------------------------------------
# In-process
# ---------------------------------------------------------------------------


class _InProcessChannel(Channel):
    def __init__(self, clients: Mapping[int, ProtocolClient]):
        self._clients = dict(clients)

    async def request(self, client_id: int, op: str, payload: Any) -> Delivery:
        if client_id not in self._clients:
            raise ClientUnavailable(client_id, op)
        response = self._clients[client_id].handle(op, payload)
        return Delivery(client_id, op, response)


class InProcessTransport(Transport):
    """Direct dispatch — the default, zero-latency backend."""

    def connect(self, clients: Mapping[int, ProtocolClient]) -> Channel:
        return _InProcessChannel(clients)


# ---------------------------------------------------------------------------
# Asyncio message passing
# ---------------------------------------------------------------------------


class _QueueChannel(Channel):
    """One request queue + worker task per client."""

    def __init__(
        self,
        clients: Mapping[int, ProtocolClient],
        latency_fn: Optional[Callable[[int, str, Any, Any], float]] = None,
    ):
        self._clients = dict(clients)
        self._latency_fn = latency_fn
        self._queues: dict[int, asyncio.Queue] = {}
        self._workers: dict[int, asyncio.Task] = {}

    def _queue_for(self, client_id: int) -> asyncio.Queue:
        queue = self._queues.get(client_id)
        if queue is None:
            queue = asyncio.Queue()
            self._queues[client_id] = queue
            self._workers[client_id] = asyncio.get_running_loop().create_task(
                self._worker(client_id, queue)
            )
        return queue

    async def _worker(self, client_id: int, queue: asyncio.Queue) -> None:
        client = self._clients[client_id]
        while True:
            op, payload, future = await queue.get()
            if future.cancelled():
                continue
            try:
                future.set_result(client.handle(op, payload))
            except Exception as exc:  # propagate to the requester
                future.set_exception(exc)

    async def request(self, client_id: int, op: str, payload: Any) -> Delivery:
        if client_id not in self._clients:
            raise ClientUnavailable(client_id, op)
        future = asyncio.get_running_loop().create_future()
        await self._queue_for(client_id).put((op, payload, future))
        response = await future
        latency = 0.0
        if self._latency_fn is not None:
            latency = self._latency_fn(client_id, op, payload, response)
        return Delivery(client_id, op, response, latency=latency)

    async def aclose(self) -> None:
        for task in self._workers.values():
            task.cancel()
        for task in self._workers.values():
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._workers.clear()
        self._queues.clear()


class QueueTransport(Transport):
    """Asyncio-queue message passing with no simulated latency."""

    def connect(self, clients: Mapping[int, ProtocolClient]) -> Channel:
        return _QueueChannel(clients)


def payload_nbytes(payload: Any) -> int:
    """Rough serialized size of a message payload, for latency modelling.

    Counts ndarray buffers, byte strings, and containers thereof; every
    other object costs a small fixed overhead (headers, framing).
    """
    if payload is None:
        return 0
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    if isinstance(payload, (list, tuple, set, frozenset)):
        return 16 + sum(payload_nbytes(v) for v in payload)
    if isinstance(payload, dict):
        return 16 + sum(
            payload_nbytes(k) + payload_nbytes(v) for k, v in payload.items()
        )
    if hasattr(payload, "__dataclass_fields__"):
        return 16 + sum(
            payload_nbytes(getattr(payload, name))
            for name in payload.__dataclass_fields__
        )
    return 8


class SimulatedNetworkTransport(QueueTransport):
    """Queue transport with per-link latency from §6.1 device profiles.

    Each exchange costs ``(request bytes + response bytes) / bandwidth``
    of the client's :class:`repro.sim.network.ClientDevice`.  The engine
    takes the max over concurrently dispatched clients, so the slowest
    sampled device gates each comm stage, as in the paper's cost model.
    """

    def __init__(
        self,
        devices: Mapping[int, "ClientDevice"],
        size_fn: Callable[[Any], int] = payload_nbytes,
    ):
        self.devices = dict(devices)
        self._size_fn = size_fn

    def _latency(self, client_id: int, op: str, payload: Any, response: Any) -> float:
        device = self.devices.get(client_id)
        if device is None:
            return 0.0
        nbytes = self._size_fn(payload) + self._size_fn(response)
        return device.upload_seconds(nbytes)

    def connect(self, clients: Mapping[int, ProtocolClient]) -> Channel:
        return _QueueChannel(clients, latency_fn=self._latency)


# ---------------------------------------------------------------------------
# Dropout middleware
# ---------------------------------------------------------------------------


class _DropoutChannel(Channel):
    def __init__(self, inner: Channel, schedule, stage_of):
        self._inner = inner
        self._schedule = schedule
        self._stage_of = stage_of

    async def request(self, client_id: int, op: str, payload: Any) -> Delivery:
        stage = self._stage_of(op)
        if stage is not None and client_id in self._schedule.dropped_by(stage):
            raise ClientUnavailable(client_id, op)
        return await self._inner.request(client_id, op, payload)

    async def aclose(self) -> None:
        await self._inner.aclose()


class DropoutTransport(Transport):
    """Silence clients per a :class:`DropoutSchedule` — SecAgg's old driver
    recast as middleware.

    ``stage_of`` maps an operation name to the protocol stage constant it
    belongs to (``None`` → never dropped); a client scheduled to drop by
    that stage raises :class:`ClientUnavailable`, and a dropped client
    never comes back within the round — exactly the old driver's
    ``alive -= dropout.dropped_by(stage)`` bookkeeping.
    """

    def __init__(
        self,
        inner: Transport,
        schedule,
        stage_of: Callable[[str], Optional[int]],
    ):
        self.inner = inner
        self.schedule = schedule
        self.stage_of = stage_of

    def connect(self, clients: Mapping[int, ProtocolClient]) -> Channel:
        return _DropoutChannel(self.inner.connect(clients), self.schedule, self.stage_of)
