"""Virtual-time cost models for engine-executed operations.

The engine charges each operation a *simulated* duration and threads it
through the Appendix-C recurrence; these models are where the durations
come from.  :class:`StageTiming` connects execution to the Eq.-3
performance model (:mod:`repro.pipeline.perf_model`), which is what makes
an engine trace comparable — and, for matching configurations, equal —
to the offline :mod:`repro.pipeline.scheduler` prediction.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping

from repro.pipeline.stages import Stage

if TYPE_CHECKING:  # imported lazily to avoid an api ↔ engine import cycle
    from repro.api.protocol import ProtocolServer
    from repro.pipeline.perf_model import WorkflowPerfModel


def stage_groups(server: ProtocolServer) -> list[tuple[Stage, list[str]]]:
    """(stage, ops) pairs: consecutive same-resource ops merged (§4.1).

    The single source of the grouping invariant shared by the engine's
    executor and :class:`StageTiming`; it mirrors
    :meth:`ProtocolServer.pipeline_stages`, which provides the merged
    stage objects themselves.
    """
    graph = server.set_graph_dict()
    stages = server.pipeline_stages()
    groups: list[tuple[Stage, list[str]]] = []
    it = iter(stages)
    current: Stage | None = None
    for op in server.workflow_order():
        resource = graph[op]["resource"]
        if current is None or resource != current.resource.value:
            current = next(it, None)
            if current is None:
                raise ValueError(
                    f"workflow op {op!r} (resource {resource!r}) starts a "
                    f"new stage but the server declares only "
                    f"{len(stages)} pipeline stages — the workflow and "
                    f"pipeline_stages() disagree"
                )
            groups.append((current, []))
        groups[-1][1].append(op)
    return groups


class OpTiming:
    """Base cost model: every operation is free (pure functional runs)."""

    def duration(
        self, op: str, resource: str, *, n_chunks: int = 1, chunk_index: int = 0
    ) -> float:
        return 0.0


ZeroTiming = OpTiming


class PerOpTiming(OpTiming):
    """Explicit per-operation durations (seconds per chunk)."""

    def __init__(self, durations: Mapping[str, float], default: float = 0.0):
        if any(t < 0 for t in durations.values()) or default < 0:
            raise ValueError("durations must be non-negative")
        self.durations = dict(durations)
        self.default = default

    def duration(
        self, op: str, resource: str, *, n_chunks: int = 1, chunk_index: int = 0
    ) -> float:
        return self.durations.get(op, self.default)


class ScaledResourceTiming(OpTiming):
    """Scale an inner model's durations per resource.

    The training session's real-protocol path charges the sampled
    straggler's compute slowdown this way: each round wraps the
    engine's base timing and multiplies every ``c-comp`` duration by
    :meth:`repro.fleet.Fleet.straggler_factor` — comm stages keep
    their transport-derived link latency untouched (a no-op around the
    default zero-cost model).
    """

    def __init__(self, inner: OpTiming, factors: Mapping[str, float]):
        if any(f < 0 for f in factors.values()):
            raise ValueError("scale factors must be non-negative")
        self.inner = inner
        self.factors = dict(factors)

    def duration(
        self, op: str, resource: str, *, n_chunks: int = 1, chunk_index: int = 0
    ) -> float:
        base = self.inner.duration(
            op, resource, n_chunks=n_chunks, chunk_index=chunk_index
        )
        return base * self.factors.get(resource, 1.0)


class StageTiming(OpTiming):
    """Durations from a declared workflow's Eq.-3 stage perf model.

    Ops are grouped into stages exactly as
    :meth:`ProtocolServer.pipeline_stages` does (consecutive
    same-resource ops merge); each op is charged an even split of its
    stage's τ(d, m), so a stage's ops sum to the stage time and the
    engine's schedule matches :func:`repro.pipeline.scheduler.build_schedule`
    for the same model.

    Pair this with a zero-latency transport (the in-process default):
    the engine *adds* transport-reported link latency on top of op
    durations, and an Eq.-3 model's comm stages already include the
    bandwidth-gated transfer time — combining it with
    :class:`~repro.engine.transport.SimulatedNetworkTransport` would
    charge communication twice.  Use one timing source or the other.
    """

    def __init__(
        self,
        server: ProtocolServer,
        perf_model: WorkflowPerfModel,
        update_size: float,
    ):
        groups = stage_groups(server)
        if len(groups) != len(perf_model.models):
            raise ValueError(
                f"workflow groups into {len(groups)} stages but the perf "
                f"model has {len(perf_model.models)}"
            )
        self._stage_of: dict[str, int] = {}
        self._ops_in_stage: dict[int, int] = {}
        for s, (_stage, ops) in enumerate(groups):
            self._ops_in_stage[s] = len(ops)
            for op in ops:
                self._stage_of[op] = s
        self.perf_model = perf_model
        self.update_size = float(update_size)

    def duration(
        self, op: str, resource: str, *, n_chunks: int = 1, chunk_index: int = 0
    ) -> float:
        s = self._stage_of.get(op)
        if s is None:
            return 0.0
        tau = self.perf_model.models[s].time(self.update_size, n_chunks)
        return tau / self._ops_in_stage[s]
