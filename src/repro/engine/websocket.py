"""WebSocket transport: every client behind a real RFC 6455 connection.

:class:`WebSocketTransport` is the stack's fourth end-to-end carrier —
the same :mod:`repro.wire` envelope the in-process serialization
boundary and the framed-TCP :class:`~repro.engine.stream.StreamTransport`
speak, carried as standards WebSocket binary messages over localhost
sockets.  Per connection:

1. an HTTP/1.1 Upgrade handshake (``Sec-WebSocket-Key`` →
   ``Sec-WebSocket-Accept``, :mod:`repro.wire.ws`) promotes the TCP
   stream to WebSocket;
2. the wire-protocol ``HELLO``/``WELCOME`` exchange then rides as the
   first binary messages, so a misdialed or version-skewed connection
   still fails before any protocol bytes flow;
3. each engine request is one binary message carrying the codec-encoded
   ``REQUEST`` frame; the endpoint answers with one ``RESPONSE`` (or
   ``ERROR``) message; ping/pong and the close handshake are handled at
   the WebSocket layer.

Accounting is *measured from both socket ends*, exactly as for the TCP
transport, with one deliberate difference: deliveries report the
**WebSocket-framed** byte counts, i.e. the wire envelope plus RFC 6455
framing (:func:`repro.wire.ws.ws_frame_overhead`).  Traced per-stage
traffic therefore equals the codec oracle *plus the documented WS
overhead* — :func:`ws_envelope_overhead` is that oracle term, and a
:class:`~repro.engine.transport.SimulatedNetworkTransport` built with
it as ``overhead_fn`` reproduces a websocket round's spans without any
socket.  The HTTP upgrade, ``HELLO``/``WELCOME``, and every control
frame land in :class:`ConnectionStats` ``handshake_*`` (connection
overhead, never stage-accounted).

Direction note: over this harness the engine-side channel *dials* each
device endpoint, so the channel is the WebSocket client and its
request (downlink) frames carry the 4-byte client mask; endpoint
responses (uplink) are unmasked, per RFC 6455 §5.1.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Mapping, Optional

from repro.engine.stream import ConnectionStats, _DialingChannel
from repro.engine.transport import ClientUnavailable, Delivery, Transport
from repro.wire import codecs as wire_codecs
from repro.wire.frame import (
    KIND_ERROR,
    KIND_HELLO,
    KIND_REQUEST,
    KIND_RESPONSE,
    KIND_WELCOME,
    WIRE_VERSION,
    decode_frame,
    encode_frame,
)
from repro.wire.ws import (
    CONTROL_OPCODES,
    MAX_MESSAGE,
    OP_BINARY,
    OP_CLOSE,
    OP_CONT,
    OP_PING,
    OP_PONG,
    WSClosed,
    WSEOF,
    encode_ws_frame,
    encode_ws_frame_parts,
    handshake_request,
    handshake_response,
    parse_handshake_request,
    parse_handshake_response,
    read_handshake,
    read_ws_frame,
    websocket_key,
    ws_frame_overhead,
)

if TYPE_CHECKING:
    from repro.api.protocol import ProtocolClient


def ws_envelope_overhead(direction: str, envelope_nbytes: int) -> int:
    """RFC 6455 framing bytes around one wire envelope, per direction.

    The oracle term for websocket traffic: a span's ``down_bytes`` /
    ``up_bytes`` over :class:`WebSocketTransport` equal the codec-
    measured envelope sizes plus this overhead per message.  ``"down"``
    messages (requests, channel→endpoint) carry the client mask —
    the dialing engine side is the WebSocket client — ``"up"``
    messages (responses) do not.  Assumes unfragmented messages, the
    transport's default.
    """
    if direction not in ("down", "up"):
        raise ValueError(f"direction must be 'down' or 'up', not {direction!r}")
    return ws_frame_overhead(envelope_nbytes, masked=(direction == "down"))


class _WSLink:
    """One end of an upgraded connection: messages over frames.

    Handles fragmentation (outgoing when ``max_fragment`` is set,
    incoming always), answers pings, runs the close handshake, and
    counts every frame byte — data message bytes are returned per call
    for stage attribution, control bytes accumulate in
    ``control_sent``/``control_received`` (connection overhead).
    Counters update *before* each flush, so a cancellation landing in a
    drain can never lose already-written bytes from the accounting.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        masked: bool,
        max_fragment: Optional[int] = None,
    ):
        self._reader = reader
        self._writer = writer
        self._masked = masked
        self._max_fragment = max_fragment
        self._close_sent = False
        self.control_sent = 0
        self.control_received = 0

    def _mask(self) -> Optional[bytes]:
        return os.urandom(4) if self._masked else None

    def _build_parts(
        self, payload: bytes | bytearray
    ) -> tuple[bytes, bytes | bytearray | memoryview]:
        """One message as write-ready parts (head, wire payload).

        Unfragmented — the default — the payload buffer passes through
        untouched on the unmasked side (see
        :func:`repro.wire.ws.encode_ws_frame_parts`); fragmentation
        joins its pieces into the head part, payload part empty.
        """
        if self._max_fragment is None or len(payload) <= self._max_fragment:
            return encode_ws_frame_parts(OP_BINARY, payload, mask=self._mask())
        pieces = [
            payload[i : i + self._max_fragment]
            for i in range(0, len(payload), self._max_fragment)
        ]
        blob = b"".join(
            encode_ws_frame(
                OP_BINARY if i == 0 else OP_CONT,
                piece,
                fin=(i == len(pieces) - 1),
                mask=self._mask(),
            )
            for i, piece in enumerate(pieces)
        )
        return blob, b""

    async def _write(
        self, blob: bytes, count: Optional[Callable[[int], None]] = None
    ) -> None:
        if count is not None:
            count(len(blob))
        self._writer.write(blob)
        await self._writer.drain()

    async def send_message(
        self,
        payload: bytes | bytearray,
        count: Optional[Callable[[int], None]] = None,
    ) -> int:
        """One binary data message; returns its WS-framed byte count.

        ``count`` (if given) observes that count before the flush — the
        cancellation-safe way to attribute the bytes to a direction.
        The head and payload go onto the writer back to back, so the
        payload buffer is never concatenated into a new blob.
        """
        head, body = self._build_parts(payload)
        n = len(head) + len(body)
        if count is not None:
            count(n)
        self._writer.write(head)
        if len(body):
            self._writer.write(body)
        await self._writer.drain()
        return n

    async def _send_control(self, opcode: int, payload: bytes = b"") -> None:
        frame = encode_ws_frame(opcode, payload, mask=self._mask())
        self.control_sent += len(frame)
        await self._write(frame)

    async def recv_message(self) -> tuple[bytes, int]:
        """One binary data message: ``(payload, WS-framed byte count)``.

        Interleaved control frames are handled inline — pings answered,
        pongs absorbed, a peer CLOSE echoed then raised as
        :class:`WSClosed` — and counted as connection overhead.  Raises
        :class:`WSEOF` on a clean TCP close between frames.
        """
        assembled = bytearray()
        nbytes = 0
        expecting_cont = False
        while True:
            fin, opcode, body, n = await read_ws_frame(
                self._reader, require_mask=not self._masked
            )
            if opcode in CONTROL_OPCODES:
                self.control_received += n
                if opcode == OP_PING:
                    await self._send_control(OP_PONG, body)
                elif opcode == OP_CLOSE:
                    code = (
                        int.from_bytes(body[:2], "big") if len(body) >= 2 else 1000
                    )
                    if not self._close_sent:
                        self._close_sent = True
                        with contextlib.suppress(ConnectionError):
                            await self._send_control(OP_CLOSE, body[:2])
                    raise WSClosed(code, bytes(body[2:]))
                continue  # pong: keepalive noise, nothing to do
            if expecting_cont != (opcode == OP_CONT):
                raise ValueError(
                    "continuation frame without a message to continue"
                    if opcode == OP_CONT
                    else "data frame interleaved into a fragmented message"
                )
            if not expecting_cont and opcode != OP_BINARY:
                raise ValueError("wire messages must be binary frames")
            assembled += body
            nbytes += n
            if len(assembled) > MAX_MESSAGE:
                raise ValueError(
                    f"assembled message exceeds MAX_MESSAGE={MAX_MESSAGE}"
                )
            if fin:
                return bytes(assembled), nbytes
            expecting_cont = True

    async def close(self, code: int = 1000) -> None:
        """Initiate (or finish) the close handshake from this end."""
        if not self._close_sent:
            self._close_sent = True
            await self._send_control(OP_CLOSE, code.to_bytes(2, "big"))
        while True:
            try:
                _fin, opcode, _body, n = await read_ws_frame(
                    self._reader, require_mask=not self._masked
                )
            except (WSEOF, ValueError, ConnectionError):
                return
            # Anything read while closing is teardown overhead.
            self.control_received += n
            if opcode == OP_CLOSE:
                return


class _WSClientEndpoint:
    """One client's 'process': a localhost WebSocket server around its
    state machine, speaking the wire envelope as binary messages."""

    def __init__(self, client: "ProtocolClient", max_fragment: Optional[int]):
        self.client = client
        self.max_fragment = max_fragment
        self.bytes_received = 0
        self.bytes_sent = 0
        # Per-direction message counters (handshake/control excluded).
        self.request_bytes = 0
        self.response_bytes = 0
        self._server: Optional[asyncio.base_events.Server] = None
        self._handlers: set[asyncio.Task] = set()

    async def start(self) -> tuple[str, int]:
        self._server = await asyncio.start_server(self._serve, "127.0.0.1", 0)
        host, port = self._server.sockets[0].getsockname()[:2]
        return host, port

    async def _upgrade(self, reader, writer) -> _WSLink:
        raw = await read_handshake(reader)
        self.bytes_received += len(raw)
        key = parse_handshake_request(raw)
        response = handshake_response(key)
        self.bytes_sent += len(response)
        writer.write(response)
        await writer.drain()
        return _WSLink(
            reader, writer, masked=False, max_fragment=self.max_fragment
        )

    async def _wire_handshake(self, link: _WSLink, count_sent, count_received) -> None:
        payload, n = await link.recv_message()
        count_received(n)
        kind, body = decode_frame(payload)
        if kind != KIND_HELLO:
            raise ValueError(f"handshake must open with HELLO, got {kind:#x}")
        hello = wire_codecs.decode_payload(body)
        if hello != (WIRE_VERSION, self.client.id):
            raise ValueError(
                f"bad HELLO {hello!r} for client {self.client.id} "
                f"speaking wire version {WIRE_VERSION}"
            )
        await link.send_message(
            encode_frame(
                KIND_WELCOME, wire_codecs.encode_payload(self.client.id)
            ),
            count=count_sent,
        )

    async def _serve(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
            task.add_done_callback(self._handlers.discard)
        link = None
        # Message totals for this connection, counted *before* each
        # flush (see _WSLink) so a cancellation landing in a drain can
        # never unbalance the two ends.
        messages_sent = 0
        messages_received = 0

        def count_sent(n: int) -> None:
            nonlocal messages_sent
            messages_sent += n

        def count_received(n: int) -> None:
            nonlocal messages_received
            messages_received += n

        def count_response(n: int) -> None:
            count_sent(n)
            self.response_bytes += n

        try:
            link = await self._upgrade(reader, writer)
            await self._wire_handshake(link, count_sent, count_received)
            while True:
                try:
                    payload, n = await link.recv_message()
                except (WSEOF, WSClosed):
                    return
                self.request_bytes += n
                count_received(n)
                kind, body = decode_frame(payload)
                if kind != KIND_REQUEST:
                    raise ValueError(
                        f"client endpoint expected REQUEST, got {kind:#x}"
                    )
                op, request = wire_codecs.decode_payload(body)
                try:
                    response = self.client.handle(op, request)
                except Exception as exc:
                    # An ERROR reply crosses the uplink like any other
                    # response message; count it there so both socket
                    # ends agree per direction even on aborted rounds.
                    reply: bytes | bytearray = encode_frame(
                        KIND_ERROR, wire_codecs.encode_error(exc)
                    )
                else:
                    # Single-buffer wire envelope; the unmasked uplink
                    # then carries this buffer to the socket as-is.
                    reply = wire_codecs.encode_payload_frame(
                        KIND_RESPONSE, response
                    )
                await link.send_message(reply, count=count_response)
        except (WSEOF, WSClosed):
            # The peer hung up or ran the close handshake before (or
            # instead of) the wire handshake — a clean teardown.
            return
        except ConnectionError:
            raise
        except asyncio.CancelledError:
            # aclose() cancels a handler still parked on a read (e.g. a
            # connection the round aborted mid-handshake); end quietly
            # so asyncio's streams machinery does not log the
            # cancellation as an unhandled error.
            return
        except ValueError as exc:
            # A malformed message kills the connection (fail loud, never
            # misparse); the channel side surfaces its own error.
            if link is not None:
                with contextlib.suppress(Exception):
                    await link.send_message(
                        encode_frame(KIND_ERROR, wire_codecs.encode_error(exc)),
                        count=count_sent,
                    )
        finally:
            if link is not None:
                # Everything after the upgrade — messages either way
                # plus control frames.  Runs on cancellation too, so an
                # aborted connection still lands its partial totals.
                self.bytes_sent += messages_sent + link.control_sent
                self.bytes_received += messages_received + link.control_received
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Mirror the TCP endpoint: cancel anything still parked on a
        # read (e.g. a connection aborted mid-handshake), then await so
        # no task outlives the round.
        for task in list(self._handlers):
            if not task.done():
                task.cancel()
            with contextlib.suppress(asyncio.CancelledError, Exception):
                await task


@dataclass
class _WSConnection:
    reader: asyncio.StreamReader
    writer: asyncio.StreamWriter
    endpoint: _WSClientEndpoint
    link: _WSLink
    stats: ConnectionStats
    lock: asyncio.Lock = field(default_factory=asyncio.Lock)


class _WSChannel(_DialingChannel):
    async def _open(self, client_id: int) -> _WSConnection:
        endpoint = _WSClientEndpoint(
            self._clients[client_id], self._transport.max_fragment
        )
        stats = ConnectionStats(client_id=client_id)
        writer = None
        link = None
        try:
            host, port = await endpoint.start()
            reader, writer = await asyncio.open_connection(host, port)
            key = websocket_key()
            upgrade = handshake_request(host, port, key)
            stats.handshake_sent = len(upgrade)
            writer.write(upgrade)
            await writer.drain()
            raw = await read_handshake(reader)
            stats.handshake_received = len(raw)
            parse_handshake_response(raw, key)
            link = _WSLink(
                reader,
                writer,
                masked=True,
                max_fragment=self._transport.max_fragment,
            )
            stats.handshake_sent += await link.send_message(
                encode_frame(
                    KIND_HELLO,
                    wire_codecs.encode_payload((WIRE_VERSION, client_id)),
                )
            )
            payload, n = await link.recv_message()
            stats.handshake_received += n
            kind, body = decode_frame(payload)
            if kind == KIND_ERROR:
                raise wire_codecs.decode_error(body)
            if kind != KIND_WELCOME:
                raise ValueError(f"handshake expected WELCOME, got {kind:#x}")
            welcomed = wire_codecs.decode_payload(body)
            if welcomed != client_id:
                raise ValueError(
                    f"endpoint welcomed client {welcomed!r}, expected {client_id}"
                )
            return _WSConnection(reader, writer, endpoint, link, stats)
        except BaseException:
            if link is not None:
                stats.handshake_sent += link.control_sent
                stats.handshake_received += link.control_received
            if writer is not None:
                writer.close()
                with contextlib.suppress(Exception):
                    await writer.wait_closed()
            await endpoint.aclose()
            self._record_endpoint(stats, endpoint)
            self._transport.closed_connection_stats.append(stats)
            raise

    async def request(self, client_id: int, op: str, payload: Any) -> Delivery:
        if client_id not in self._clients:
            raise ClientUnavailable(client_id, op)
        conn = await self._connection(client_id)
        body = wire_codecs.encode_payload_frame(KIND_REQUEST, (op, payload))
        # One in-flight exchange per connection: a request/response pair
        # must not interleave with another on the same message stream.
        # Each direction is counted the moment its bytes are known, so
        # a round cancelled mid-exchange still books the request
        # message that really crossed.
        async with conn.lock:
            sent = await conn.link.send_message(body)
            conn.stats.request_bytes += sent
            rpayload, received = await conn.link.recv_message()
            conn.stats.response_bytes += received
        conn.stats.requests += 1
        latency = 0.0
        if self._transport.latency_split_fn is not None:
            latency = self._transport.latency_split_fn(client_id, sent, received)
        elif self._transport.latency_fn is not None:
            latency = self._transport.latency_fn(client_id, sent + received)
        kind, rbody = decode_frame(rpayload)
        if kind == KIND_ERROR:
            raise wire_codecs.decode_error(rbody)
        if kind != KIND_RESPONSE:
            raise ValueError(f"unexpected frame kind {kind:#x} in response")
        return Delivery(
            client_id,
            op,
            wire_codecs.decode_payload(rbody),
            latency=latency,
            request_nbytes=sent,
            response_nbytes=received,
        )

    async def _dispose(self, conn: _WSConnection) -> None:
        with contextlib.suppress(ConnectionError, ValueError, WSEOF, WSClosed):
            await conn.link.close()
        conn.writer.close()
        with contextlib.suppress(Exception):
            await conn.writer.wait_closed()
        await conn.endpoint.aclose()
        conn.stats.handshake_sent += conn.link.control_sent
        conn.stats.handshake_received += conn.link.control_received
        self._record_endpoint(conn.stats, conn.endpoint)
        self._transport.closed_connection_stats.append(conn.stats)


class WebSocketTransport(Transport):
    """Each client behind a real RFC 6455 WebSocket (localhost).

    The websocket sibling of
    :class:`~repro.engine.stream.StreamTransport`: connections are
    dialed lazily, live for the channel's round, and land their
    :class:`ConnectionStats` in ``closed_connection_stats`` — including
    partial stats for connections aborted mid-handshake.  Deliveries
    report WebSocket-framed byte counts (wire envelope + RFC 6455
    framing, see :func:`ws_envelope_overhead`), so traffic and the
    optional ``latency_fn(client_id, frame_bytes)`` /
    ``latency_split_fn(client_id, down_nbytes, up_nbytes)`` virtual
    link pricing reflect what this carrier actually puts on the wire.

    ``max_fragment`` (bytes) makes outgoing messages fragment into
    continuation frames — protocol exercise; accounting stays exact but
    no longer matches the single-frame oracle.  Default: unfragmented.
    """

    def __init__(
        self,
        latency_fn: Optional[Callable[[int, int], float]] = None,
        latency_split_fn: Optional[Callable[[int, int, int], float]] = None,
        max_fragment: Optional[int] = None,
    ):
        if latency_fn is not None and latency_split_fn is not None:
            raise ValueError("pass latency_fn or latency_split_fn, not both")
        if max_fragment is not None and max_fragment < 1:
            raise ValueError("max_fragment must be a positive byte count")
        self.latency_fn = latency_fn
        self.latency_split_fn = latency_split_fn
        self.max_fragment = max_fragment
        self.closed_connection_stats: list[ConnectionStats] = []

    def connect(self, clients: Mapping[int, "ProtocolClient"]) -> "_WSChannel":
        return _WSChannel(clients, self)
