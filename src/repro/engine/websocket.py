"""WebSocket transport: N dialing clients behind one RFC 6455 listener.

:class:`WebSocketTransport` is the stack's fourth end-to-end carrier —
the same :mod:`repro.wire` envelope the in-process serialization
boundary and the framed-TCP :class:`~repro.engine.stream.StreamTransport`
speak, carried as standards WebSocket binary messages.  Like the TCP
carrier it rides the single-listener core
(:mod:`repro.engine.listener`): one listening coordinator port, every
device a dialing client.  Per connection:

1. an HTTP/1.1 Upgrade handshake (``Sec-WebSocket-Key`` →
   ``Sec-WebSocket-Accept``, :mod:`repro.wire.ws`) promotes the TCP
   stream to WebSocket;
2. the wire-protocol ``HELLO``/``WELCOME`` exchange then rides as the
   first binary messages, so a misdialed or version-skewed connection
   still fails before any protocol bytes flow;
3. each engine request is one binary message carrying the codec-encoded
   ``REQUEST`` frame; the dialing client answers with one ``RESPONSE``
   (or ``ERROR``) message; ping/pong and the close handshake are
   handled at the WebSocket layer.

Accounting is *measured from both socket ends*, exactly as for the TCP
transport, with one deliberate difference: deliveries report the
**WebSocket-framed** byte counts, i.e. the wire envelope plus RFC 6455
framing (:func:`repro.wire.ws.ws_frame_overhead`).  Traced per-stage
traffic therefore equals the codec oracle *plus the documented WS
overhead* — :func:`ws_envelope_overhead` is that oracle term, and a
:class:`~repro.engine.transport.SimulatedNetworkTransport` built with
it as ``overhead_fn`` reproduces a websocket round's spans without any
socket.  The HTTP upgrade, ``HELLO``/``WELCOME``, and every control
frame land in :class:`ConnectionStats` ``handshake_*`` (connection
overhead, never stage-accounted).

Direction note: the *device* is the WebSocket client now that clients
dial in, so uplink responses (device→coordinator) carry the 4-byte
client mask and downlink requests (coordinator→device) are unmasked,
per RFC 6455 §5.1 — the mirror image of the old dial-out harness.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Mapping, Optional

from repro.engine.listener import _HostedChannel, _WSLink  # noqa: F401  (re-export)
from repro.engine.transport import Channel, Transport
from repro.wire.ws import ws_frame_overhead

if TYPE_CHECKING:
    from repro.api.protocol import ProtocolClient

__all__ = ["WebSocketTransport", "ws_envelope_overhead"]


def ws_envelope_overhead(direction: str, envelope_nbytes: int) -> int:
    """RFC 6455 framing bytes around one wire envelope, per direction.

    The oracle term for websocket traffic: a span's ``down_bytes`` /
    ``up_bytes`` over :class:`WebSocketTransport` equal the codec-
    measured envelope sizes plus this overhead per message.  ``"up"``
    messages (responses, device→coordinator) carry the client mask —
    the dialing device is the WebSocket client — ``"down"`` messages
    (requests) do not.  Assumes unfragmented messages, the transport's
    default.
    """
    if direction not in ("down", "up"):
        raise ValueError(f"direction must be 'down' or 'up', not {direction!r}")
    return ws_frame_overhead(envelope_nbytes, masked=(direction == "up"))


class WebSocketTransport(Transport):
    """Each round behind one real RFC 6455 listener (localhost).

    The websocket sibling of
    :class:`~repro.engine.stream.StreamTransport`: dialing workers
    connect lazily, live for the channel's round, and land their
    :class:`ConnectionStats` in ``closed_connection_stats`` — including
    partial stats for connections aborted mid-handshake.  Deliveries
    report WebSocket-framed byte counts (wire envelope + RFC 6455
    framing, see :func:`ws_envelope_overhead`), so traffic and the
    optional ``latency_fn(client_id, frame_bytes)`` /
    ``latency_split_fn(client_id, down_nbytes, up_nbytes)`` virtual
    link pricing reflect what this carrier actually puts on the wire.

    ``max_fragment`` (bytes) makes outgoing messages fragment into
    continuation frames — protocol exercise; accounting stays exact but
    no longer matches the single-frame oracle.  Default: unfragmented.
    """

    def __init__(
        self,
        latency_fn: Optional[Callable[[int, int], float]] = None,
        latency_split_fn: Optional[Callable[[int, int, int], float]] = None,
        max_fragment: Optional[int] = None,
    ):
        if latency_fn is not None and latency_split_fn is not None:
            raise ValueError("pass latency_fn or latency_split_fn, not both")
        if max_fragment is not None and max_fragment < 1:
            raise ValueError("max_fragment must be a positive byte count")
        self.latency_fn = latency_fn
        self.latency_split_fn = latency_split_fn
        self.max_fragment = max_fragment
        self.closed_connection_stats: list[ConnectionStats] = []

    def connect(self, clients: Mapping[int, "ProtocolClient"]) -> Channel:
        return _HostedChannel(
            clients, self, carrier="websocket", max_fragment=self.max_fragment
        )
