"""The async, transport-agnostic round engine.

One execution substrate for every declared protocol workflow
(:mod:`repro.api.protocol`): the engine walks the server's validated
operation graph, fans client operations out **concurrently** over a
pluggable :class:`~repro.engine.transport.Transport`, and threads a
virtual clock through the Appendix-C pipeline recurrence so that what
used to be an offline calculation (:mod:`repro.pipeline.scheduler`) is
now the observed schedule of real execution.

Chunk pipelining (§4.1): :meth:`RoundEngine.run_chunked_round` splits the
aggregation into m independent chunk sub-rounds
(:mod:`repro.pipeline.chunking`) running as concurrent asyncio tasks.
Cross-chunk ordering follows Appendix C exactly — stage s of chunk c
begins at ``max(f_{s-1,c}, r_{s,c})`` where the r-term serializes each
resource (one chunk at a time, earlier stages have priority) — so the
traced completion time of an engine run reproduces
:func:`repro.pipeline.scheduler.build_schedule` for the same stage
times.

Cross-round (and cross-chunk) resource arbitration is a discrete-event
simulation (:mod:`repro.engine.arbiter`): every stage execution is a
registered node and each resource is granted to the lowest-virtual-
begin-time waiter, ties broken by round serial then chunk index.
Traces are therefore deterministic and independent of asyncio task
scheduling; :func:`repro.sim.timeline.simulate_trace` replays the same
arbitration offline and the executed trace equals it exactly.

Rounds submitted through :meth:`RoundEngine.submit_round` share the
engine's per-resource availability clocks (which persist across rounds
and event loops), so consecutive rounds land on one session timeline
and overlap wherever their data dependencies allow.
"""

from __future__ import annotations

import asyncio
import contextvars
import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterable, Mapping, Optional

import numpy as np

from repro.engine.arbiter import AsyncResourceArbiter
from repro.parallel import WorkerPool
from repro.engine.timing import OpTiming, stage_groups
from repro.engine.transport import (
    Channel,
    ClientUnavailable,
    InProcessTransport,
    Transport,
)
from repro.pipeline.chunking import concat_chunks, split_vector
from repro.pipeline.stages import Resource, Stage
from repro.sim.timeline import ExecutionTrace, StageSpan
from repro.wire.codecs import register_targeted as _register_targeted

if TYPE_CHECKING:  # imported lazily to avoid an api ↔ engine import cycle
    from repro.api.protocol import ProtocolClient, ProtocolServer

#: Virtual time before which the current submitted job may not begin —
#: set per job task from its dependency's finish, so unrelated rounds on
#: the same engine never serialize each other's clocks.
_JOB_FLOOR: contextvars.ContextVar[float] = contextvars.ContextVar(
    "repro_engine_job_floor", default=0.0
)
#: Sink collecting the (begin, finish) interval of every engine round
#: the current submitted job executes (chunk tasks of one round share
#: one entry).  Lets callers attribute timing to their own job even
#: when other jobs share the engine's timeline.
_JOB_ROUNDS: contextvars.ContextVar[Optional[list]] = contextvars.ContextVar(
    "repro_engine_job_rounds", default=None
)


def _dispatches_to_clients(server: ProtocolServer, op: str, resource: str) -> bool:
    """c-comp ops always fan out; comm ops fan out unless the server
    declares a coordination method of that name (server-side comm, e.g.
    Table 1's "server dispatches the aggregate")."""
    if resource == Resource.C_COMP.value:
        return True
    if resource == Resource.COMM.value:
        return not callable(getattr(server, op, None))
    return False


@dataclass(frozen=True)
class Targeted:
    """A server-op result addressed to specific clients.

    Returning ``Targeted({client_id: payload, …})`` from a coordination
    method makes the engine dispatch the *next* client operation only to
    the listed clients, each with its own payload — how SecAgg narrows
    each stage to the surviving participant set (U1 ⊇ U2 ⊇ …).  An empty
    mapping dispatches to nobody (the following server op receives ``{}``).
    """

    payloads: Mapping[int, Any]


# Targeted maps are part of the wire contract; the registration lives
# here because the wire layer must not import the engine.
_register_targeted(Targeted)


@dataclass
class RoundHandle:
    """A round submitted to the engine; await :meth:`result` to join it.

    ``index`` is the submission order (0, 1, …) — not the trace round
    serial, which the engine assigns per executed round.  ``finish_time``
    is the virtual finish of the job's last executed round, available
    once the job completes; dependents are floored at it.
    """

    index: int
    task: asyncio.Task
    finish_time: Optional[float] = None

    async def result(self) -> Any:
        return await self.task


@dataclass
class ChunkedRoundResult:
    """Outcome of a chunk-pipelined round.

    ``trace_round`` is the engine-assigned serial identifying this
    round's spans in ``engine.trace`` (``trace.round_spans(trace_round)``).
    """

    result: Any
    chunk_results: list
    begin: float
    finish: float
    trace_round: int = 0

    @property
    def completion_time(self) -> float:
        return self.finish - self.begin


class EngineBusyError(RuntimeError):
    """A :class:`RoundEngine` was driven from a second event loop while
    rounds were still in flight on another.

    Raised by the engine's loop guard — most commonly when ``run_sync``
    (or ``run_round_sync``) is called under a running event loop that is
    itself still executing rounds on the same engine, which moves the new
    round onto a private helper-loop thread.  Sharing one engine across
    live loops would corrupt its virtual-time arbitration, so it is
    refused instead.
    """


def run_sync(coro) -> Any:
    """Run a coroutine to completion from synchronous code.

    Uses ``asyncio.run`` when no loop is running; inside a running loop
    (Jupyter, an async caller that insists on the sync API) the
    coroutine executes on a private loop in a helper thread instead of
    raising.  Engine state is rebuilt per loop when idle; an engine
    that still has rounds in flight on another loop refuses the second
    loop with :class:`EngineBusyError` rather than corrupting its clocks.
    """
    try:
        asyncio.get_running_loop()
    except RuntimeError:
        return asyncio.run(coro)
    outcome: dict[str, Any] = {}

    def _target() -> None:
        try:
            outcome["result"] = asyncio.run(coro)
        except BaseException as exc:  # re-raised in the calling thread
            outcome["error"] = exc

    thread = threading.Thread(target=_target, name="repro-engine-run-sync")
    thread.start()
    thread.join()
    if "error" in outcome:
        raise outcome["error"]
    return outcome["result"]


def _clients_by_id(clients) -> dict[int, ProtocolClient]:
    if isinstance(clients, Mapping):
        return dict(clients)
    return {c.id: c for c in clients}


class RoundEngine:
    """Executes declared protocol rounds over a pluggable transport.

    One engine instance can run many rounds; its per-resource virtual
    availability clocks persist across them, so every round it executes
    lands on a single shared :class:`ExecutionTrace` timeline.
    """

    def __init__(
        self,
        transport: Optional[Transport] = None,
        timing: Optional[OpTiming] = None,
        trace: Optional[ExecutionTrace] = None,
        offload: Optional["WorkerPool"] = None,
    ):
        self.transport = transport or InProcessTransport()
        self.timing = timing or OpTiming()
        self.trace = trace if trace is not None else ExecutionTrace()
        # Executor offload for heavy server compute ops: a server class
        # lists op names in ``offload_ops`` and the engine runs those on
        # the pool's executor, so (e.g.) the unmask plane no longer
        # stalls the listener's event loop mid-round.  ``None`` — and a
        # serial pool — run every server op inline, exactly as before;
        # results are identical either way (one op, one thread, same
        # arguments), only the loop's responsiveness changes.
        self._offload = offload
        self._resource_free: dict[str, float] = {}
        self._round_serial = 0
        self._submit_serial = 0
        # The discrete-event arbiter orders *all* stage executions —
        # across chunks and across concurrently submitted rounds — by
        # virtual begin time (ties: round serial, then chunk), so traces
        # are exact and independent of asyncio task scheduling.  It is
        # rebuilt per event loop (its futures cannot cross loops) around
        # the engine-owned ``_resource_free`` clocks, which persist.
        self._arbiter: Optional[AsyncResourceArbiter] = None
        self._arbiter_loop = None
        # In-flight workflow count + owning loop: one engine may only be
        # driven from one event loop at a time (see _enter_loop).
        self._active_count = 0
        self._active_loop = None

    # ------------------------------------------------------------------
    # Single-round execution
    # ------------------------------------------------------------------
    async def run_round(
        self,
        server: ProtocolServer,
        clients,
        *,
        round_index: int = 0,
        inputs: Optional[Mapping[int, Any]] = None,
        app_server=None,
        app_clients: Optional[Mapping[int, Any]] = None,
        transport: Optional[Transport] = None,
        timing: Optional[OpTiming] = None,
    ) -> Any:
        """Run every declared operation once; returns the final result.

        Same protocol contract as the old synchronous runtime — client
        operations fan out with the previous result as payload (dicts
        keyed by client id are unpacked per client, :class:`Targeted`
        results restrict the recipient set), server operations receive
        the response dict — but client dispatch is concurrent and flows
        through the engine's transport.
        """
        by_id = _clients_by_id(clients)
        if not by_id:
            raise ValueError("need at least one client")
        if inputs is None and app_clients:
            inputs = {
                cid: app.prepare_data(round_index)
                for cid, app in app_clients.items()
            }
        groups = stage_groups(server)
        self._enter_loop()
        arbiter = self._arbiter
        channel = None
        trace_round = self._next_round_serial()
        try:
            arbiter.add_round(
                trace_round,
                [g[0].resource.value for g in groups],
                floor=_JOB_FLOOR.get(),
            )
            channel = (transport or self.transport).connect(by_id)
            carry = await self._execute_workflow(
                server,
                by_id,
                groups,
                arbiter,
                channel,
                inputs,
                chunk_index=0,
                n_chunks=1,
                timing=timing or self.timing,
                trace_round=trace_round,
            )
        except BaseException:
            # A failed round must withdraw its pending stages, or other
            # rounds sharing the arbiter would wait on them forever.
            arbiter.abort_round(trace_round)
            raise
        finally:
            self._exit_loop()
            if channel is not None:
                await channel.aclose()
        self._record_job_round(trace_round)
        if app_server is not None:
            app_server.use_output(carry)
        for app in (app_clients or {}).values():
            app.use_output(carry)
        return carry

    def run_round_sync(self, server, clients, **kwargs) -> Any:
        """Synchronous wrapper; safe even under a running event loop."""
        return run_sync(self.run_round(server, clients, **kwargs))

    # ------------------------------------------------------------------
    # Chunk-pipelined execution
    # ------------------------------------------------------------------
    async def run_chunked_round(
        self,
        factory: Callable[[int, dict[int, np.ndarray]], tuple[ProtocolServer, Iterable[ProtocolClient]]],
        inputs: Mapping[int, np.ndarray],
        n_chunks: int,
        *,
        pipelined: bool = True,
        transport: Optional[Transport] = None,
        timing: Optional[OpTiming] = None,
        extract: Callable[[Any], Any] = lambda r: getattr(r, "aggregate", r),
    ) -> ChunkedRoundResult:
        """Split ``inputs`` into m chunks and run m sub-rounds overlapped.

        ``factory(chunk_index, chunk_inputs)`` builds one chunk's
        (server, clients) pair — e.g. a full XNoise+SecAgg sub-round over
        the chunk slice; round-scoped context (round number, PKI, …)
        should be closed over by the factory.  Chunks execute as
        concurrent tasks; the virtual clock serializes them per resource
        exactly as Appendix C prescribes (``pipelined=False`` chains
        chunks end-to-end instead, the plain-execution baseline).  Chunk
        aggregates concatenate in chunk order per the §4.1 identity.
        """
        if not inputs:
            raise ValueError("no inputs")
        if n_chunks < 1:
            raise ValueError("n_chunks must be >= 1")
        per_client = {u: split_vector(v, n_chunks) for u, v in inputs.items()}
        rounds = []
        for j in range(n_chunks):
            chunk_inputs = {u: chunks[j] for u, chunks in per_client.items()}
            server, clients = factory(j, chunk_inputs)
            rounds.append((server, _clients_by_id(clients)))

        per_chunk_groups = [stage_groups(server) for server, _ in rounds]
        structure = [
            [(g.resource, len(ops)) for g, ops in groups]
            for groups in per_chunk_groups
        ]
        if any(s != structure[0] for s in structure[1:]):
            raise ValueError("chunk sub-rounds must share one workflow structure")
        self._enter_loop()
        arbiter = self._arbiter
        trace_round = self._next_round_serial()
        use_transport = transport or self.transport
        use_timing = timing or self.timing

        async def _chunk(j: int) -> Any:
            server, by_id = rounds[j]
            channel = use_transport.connect(by_id)
            try:
                return await self._execute_workflow(
                    server,
                    by_id,
                    per_chunk_groups[j],
                    arbiter,
                    channel,
                    None,
                    chunk_index=j,
                    n_chunks=n_chunks,
                    timing=use_timing,
                    trace_round=trace_round,
                )
            finally:
                await channel.aclose()

        tasks: list[asyncio.Task] = []
        try:
            arbiter.add_round(
                trace_round,
                [g[0].resource.value for g in per_chunk_groups[0]],
                n_chunks,
                serial=not pipelined,
                floor=_JOB_FLOOR.get(),
            )
            tasks = [asyncio.ensure_future(_chunk(j)) for j in range(n_chunks)]
            chunk_results = await asyncio.gather(*tasks)
        except BaseException:
            # A failed chunk (e.g. ProtocolAbort) leaves stages the
            # siblings depend on unfinished; cancel the siblings parked
            # on the arbiter and withdraw the round so channels close,
            # no task outlives the round, and other rounds never wait
            # on the dead job's stages.
            for task in tasks:
                task.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)
            arbiter.abort_round(trace_round)
            raise
        finally:
            self._exit_loop()
        parts = [np.asarray(extract(r)) for r in chunk_results]
        begin, finish = self.trace.round_interval(trace_round)
        self._record_job_round(trace_round)
        return ChunkedRoundResult(
            result=concat_chunks(parts),
            chunk_results=list(chunk_results),
            begin=begin,
            finish=finish,
            trace_round=trace_round,
        )

    # ------------------------------------------------------------------
    # Session-level submission
    # ------------------------------------------------------------------
    def submit_round(
        self,
        runner: Callable[[], Any],
        *,
        after: Optional[RoundHandle] = None,
    ) -> RoundHandle:
        """Submit a round job (a coroutine factory) to the engine.

        The job starts once ``after`` (its data dependency) completes;
        because all jobs share this engine's resource clocks, consecutive
        rounds occupy one virtual timeline and overlap wherever the
        dependency structure permits.
        """

        async def _run():
            if after is not None:
                await asyncio.shield(after.task)
                # The dependency's output exists only at its virtual
                # finish; this job may not begin earlier on the clock.
                # The floor is job-local (a context variable), so
                # unrelated rounds on the engine are never serialized.
                _JOB_FLOOR.set(
                    max(_JOB_FLOOR.get(), after.finish_time or 0.0)
                )
            rounds: list = []
            _JOB_ROUNDS.set(rounds)
            try:
                return await runner()
            finally:
                handle.finish_time = max(
                    (finish for engine, _, finish in rounds if engine is self),
                    default=_JOB_FLOOR.get(),
                )

        index = self._submit_serial
        self._submit_serial += 1
        handle = RoundHandle(index=index, task=asyncio.ensure_future(_run()))
        return handle

    # ------------------------------------------------------------------
    # Externally-modeled rounds
    # ------------------------------------------------------------------
    def record_modeled_round(self, stages) -> int:
        """Append one *modeled* round to this engine's trace.

        For workloads that do their work outside the engine but still
        want to live on its timeline — e.g. the training session's fast
        noise-algebra path, whose round cost comes from the fleet's
        timing model rather than executed protocol stages.  ``stages``
        is an iterable of ``(label, resource, duration_seconds,
        down_bytes, up_bytes)`` tuples, laid back to back starting at
        the trace's current completion time.  Returns the engine round
        serial the spans carry; the round is attributed to the current
        submitted job (``current_job_rounds``) like an executed one.
        """
        serial = self._next_round_serial()
        t = self.trace.completion_time
        for s, (label, resource, duration, down, up) in enumerate(stages):
            if duration < 0:
                raise ValueError("modeled stage durations must be non-negative")
            finish = t + duration
            self.trace.add(
                StageSpan(
                    round_index=serial,
                    chunk=0,
                    stage=s,
                    label=label,
                    resource=resource,
                    begin=t,
                    finish=finish,
                    up_bytes=up,
                    down_bytes=down,
                )
            )
            t = finish
        self._record_job_round(serial)
        return serial

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @property
    def round_serial(self) -> int:
        """Serial the next executed round will get."""
        return self._round_serial

    def current_job_rounds(self) -> list:
        """(begin, finish) of each round the current submitted job ran
        **on this engine**.

        Job-local (context variable) and engine-filtered, so the answer
        is unaffected by other jobs sharing this engine's timeline or by
        rounds the job ran on a different engine (whose virtual clock is
        unrelated).  Empty outside a :meth:`submit_round` job.
        """
        return [
            (begin, finish)
            for engine, begin, finish in (_JOB_ROUNDS.get() or [])
            if engine is self
        ]

    def _record_job_round(self, trace_round: int) -> None:
        sink = _JOB_ROUNDS.get()
        if sink is not None:
            try:
                begin, finish = self.trace.round_interval(trace_round)
            except ValueError:
                return  # round executed no stages (nothing to attribute)
            sink.append((self, begin, finish))

    def _next_round_serial(self) -> int:
        serial = self._round_serial
        self._round_serial += 1
        return serial

    def _enter_loop(self):
        """Claim the engine for the current event loop.

        The per-loop arbiter is only rebuilt when nothing is in flight
        (its resource clocks live on the engine and persist); concurrent
        use from a second loop (e.g. run_sync's helper thread while the
        outer loop still runs a round) would silently break virtual-time
        arbitration, so it is refused.
        """
        loop = asyncio.get_running_loop()
        if self._active_count and self._active_loop is not loop:
            raise EngineBusyError(
                "this RoundEngine is already running rounds on another "
                "event loop; either await those rounds before driving "
                "the engine from this loop (run_sync under a running "
                "loop executes on a private helper loop, which triggers "
                "this guard) or create a separate RoundEngine per loop"
            )
        if self._arbiter_loop is not loop:
            self._arbiter = AsyncResourceArbiter(self._resource_free)
            self._arbiter_loop = loop
        self._active_loop = loop
        self._active_count += 1
        return loop

    def _exit_loop(self) -> None:
        self._active_count -= 1

    async def _execute_workflow(
        self,
        server: ProtocolServer,
        by_id: dict[int, ProtocolClient],
        groups: list[tuple[Stage, list[str]]],
        arbiter: AsyncResourceArbiter,
        channel: Channel,
        inputs,
        *,
        chunk_index: int,
        n_chunks: int,
        timing: OpTiming,
        trace_round: int,
    ) -> Any:
        carry = inputs
        for s, (stage, ops) in enumerate(groups):
            resource = stage.resource.value
            # The arbiter resolves both Appendix-C terms at once: the
            # grant waits for this stage's dependencies (o- and r-term)
            # and for the resource, which serves the lowest-virtual-
            # begin waiter across every chunk and submitted round.
            begin = await arbiter.acquire(trace_round, s, chunk_index)
            t = begin
            stage_down = 0
            stage_up = 0
            for op in ops:
                # Ops grouped into one stage share its resource by
                # construction (§4.1 grouping).
                if _dispatches_to_clients(server, op, resource):
                    carry, duration, down, up = await self._dispatch_clients(
                        channel, by_id, op, resource, carry,
                        n_chunks=n_chunks, chunk_index=chunk_index,
                        timing=timing,
                    )
                    stage_down += down
                    stage_up += up
                else:
                    method = server.operation_method(op)
                    if self._offload is not None and op in getattr(
                        server, "offload_ops", ()
                    ):
                        carry = await self._offload.run_async(method, carry)
                    else:
                        carry = method(carry)
                    duration = timing.duration(
                        op, resource,
                        n_chunks=n_chunks, chunk_index=chunk_index,
                    )
                t += duration
            finish = t
            self.trace.add(
                StageSpan(
                    round_index=trace_round,
                    chunk=chunk_index,
                    stage=s,
                    label=stage.name,
                    resource=resource,
                    begin=begin,
                    finish=finish,
                    up_bytes=stage_up,
                    down_bytes=stage_down,
                )
            )
            arbiter.release(trace_round, s, chunk_index, finish)
        return carry

    async def _dispatch_clients(
        self,
        channel: Channel,
        by_id: dict[int, ProtocolClient],
        op: str,
        resource: str,
        carry,
        *,
        n_chunks: int,
        chunk_index: int,
        timing: OpTiming,
    ) -> tuple[dict[int, Any], float, int, int]:
        """Fan one client operation out concurrently; collect live replies.

        Returns the response dict, the op's virtual duration, and the
        op's *measured* directional traffic — the framed request bytes
        (server→client, the downlink) and response bytes
        (client→server, the uplink) every delivery reports (0 for
        in-process dispatch, which never serializes).
        """
        if isinstance(carry, Targeted):
            requests = [(cid, carry.payloads[cid]) for cid in sorted(carry.payloads)]
        elif isinstance(carry, dict):
            requests = [
                (cid, carry[cid] if cid in carry else carry)
                for cid in sorted(by_id)
            ]
        else:
            requests = [(cid, carry) for cid in sorted(by_id)]

        deliveries = await asyncio.gather(
            *(channel.request(cid, op, payload) for cid, payload in requests),
            return_exceptions=True,
        )
        responses: dict[int, Any] = {}
        worst_latency = 0.0
        down = 0
        up = 0
        for (cid, _), outcome in zip(requests, deliveries):
            if isinstance(outcome, ClientUnavailable):
                continue
            if isinstance(outcome, BaseException):
                raise outcome
            responses[cid] = outcome.response
            worst_latency = max(worst_latency, outcome.latency)
            down += outcome.request_nbytes
            up += outcome.response_nbytes
        duration = (
            timing.duration(op, resource, n_chunks=n_chunks, chunk_index=chunk_index)
            + worst_latency
        )
        return responses, duration, down, up
