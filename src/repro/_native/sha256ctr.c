/* Counter-mode SHA-256 stream kernel.
 *
 * Computes out[i] = SHA256(seed || be64(ctr0 + i)) for i in [0, nblocks):
 * the exact block stream of repro.crypto.prg.PRGReference, specialized to
 * the protocol's short seeds.  Each message is seedlen + 8 <= 55 bytes,
 * so it fits one 64-byte padded block and every digest costs exactly one
 * compression — the padded block is built once and only the 8 counter
 * bytes are patched per iteration.
 *
 * Self-contained on purpose: no libcrypto (nothing to link against),
 * portable scalar compression everywhere, SHA-NI via function-target
 * dispatch where the CPU has it.  Built lazily by repro.native with the
 * system C compiler; when that fails, the pure-Python hashlib loop in
 * repro.crypto.prg serves the same bytes (parity-pinned by test).
 */

#include <stddef.h>
#include <stdint.h>
#include <string.h>

static const uint32_t K[64] = {
    0x428a2f98u, 0x71374491u, 0xb5c0fbcfu, 0xe9b5dba5u,
    0x3956c25bu, 0x59f111f1u, 0x923f82a4u, 0xab1c5ed5u,
    0xd807aa98u, 0x12835b01u, 0x243185beu, 0x550c7dc3u,
    0x72be5d74u, 0x80deb1feu, 0x9bdc06a7u, 0xc19bf174u,
    0xe49b69c1u, 0xefbe4786u, 0x0fc19dc6u, 0x240ca1ccu,
    0x2de92c6fu, 0x4a7484aau, 0x5cb0a9dcu, 0x76f988dau,
    0x983e5152u, 0xa831c66du, 0xb00327c8u, 0xbf597fc7u,
    0xc6e00bf3u, 0xd5a79147u, 0x06ca6351u, 0x14292967u,
    0x27b70a85u, 0x2e1b2138u, 0x4d2c6dfcu, 0x53380d13u,
    0x650a7354u, 0x766a0abbu, 0x81c2c92eu, 0x92722c85u,
    0xa2bfe8a1u, 0xa81a664bu, 0xc24b8b70u, 0xc76c51a3u,
    0xd192e819u, 0xd6990624u, 0xf40e3585u, 0x106aa070u,
    0x19a4c116u, 0x1e376c08u, 0x2748774cu, 0x34b0bcb5u,
    0x391c0cb3u, 0x4ed8aa4au, 0x5b9cca4fu, 0x682e6ff3u,
    0x748f82eeu, 0x78a5636fu, 0x84c87814u, 0x8cc70208u,
    0x90befffau, 0xa4506cebu, 0xbef9a3f7u, 0xc67178f2u,
};

static const uint32_t H0[8] = {
    0x6a09e667u, 0xbb67ae85u, 0x3c6ef372u, 0xa54ff53au,
    0x510e527fu, 0x9b05688cu, 0x1f83d9abu, 0x5be0cd19u,
};

#define ROR(x, n) (((x) >> (n)) | ((x) << (32 - (n))))

static void compress_scalar(uint32_t state[8], const uint8_t block[64])
{
    uint32_t w[64];
    uint32_t a, b, c, d, e, f, g, h;
    int i;

    for (i = 0; i < 16; i++) {
        w[i] = ((uint32_t)block[4 * i] << 24) |
               ((uint32_t)block[4 * i + 1] << 16) |
               ((uint32_t)block[4 * i + 2] << 8) |
               ((uint32_t)block[4 * i + 3]);
    }
    for (i = 16; i < 64; i++) {
        uint32_t s0 = ROR(w[i - 15], 7) ^ ROR(w[i - 15], 18) ^ (w[i - 15] >> 3);
        uint32_t s1 = ROR(w[i - 2], 17) ^ ROR(w[i - 2], 19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }

    a = state[0]; b = state[1]; c = state[2]; d = state[3];
    e = state[4]; f = state[5]; g = state[6]; h = state[7];

    for (i = 0; i < 64; i++) {
        uint32_t S1 = ROR(e, 6) ^ ROR(e, 11) ^ ROR(e, 25);
        uint32_t ch = (e & f) ^ (~e & g);
        uint32_t t1 = h + S1 + ch + K[i] + w[i];
        uint32_t S0 = ROR(a, 2) ^ ROR(a, 13) ^ ROR(a, 22);
        uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
        uint32_t t2 = S0 + maj;
        h = g; g = f; f = e; e = d + t1;
        d = c; c = b; b = a; a = t1 + t2;
    }

    state[0] += a; state[1] += b; state[2] += c; state[3] += d;
    state[4] += e; state[5] += f; state[6] += g; state[7] += h;
}

#if defined(__x86_64__) && defined(__GNUC__)
#define HAVE_SHANI_BUILD 1
#include <immintrin.h>

/* The standard Intel SHA-NI single-block flow: state packed as ABEF /
 * CDGH, four rounds per sha256rnds2 pair, message schedule kept rolling
 * with sha256msg1/msg2. */
__attribute__((target("sha,sse4.1,ssse3")))
static void compress_shani(uint32_t state[8], const uint8_t block[64])
{
    __m128i state0, state1, msg, tmp;
    __m128i msg0, msg1, msg2, msg3;
    __m128i abef_save, cdgh_save;
    const __m128i mask = _mm_set_epi64x(
        0x0c0d0e0f08090a0bULL, 0x0405060700010203ULL);

    tmp = _mm_loadu_si128((const __m128i *)&state[0]);
    state1 = _mm_loadu_si128((const __m128i *)&state[4]);

    tmp = _mm_shuffle_epi32(tmp, 0xB1);          /* CDAB */
    state1 = _mm_shuffle_epi32(state1, 0x1B);    /* EFGH */
    state0 = _mm_alignr_epi8(tmp, state1, 8);    /* ABEF */
    state1 = _mm_blend_epi16(state1, tmp, 0xF0); /* CDGH */

    abef_save = state0;
    cdgh_save = state1;

    /* Rounds 0-3 */
    msg = _mm_loadu_si128((const __m128i *)(block + 0));
    msg0 = _mm_shuffle_epi8(msg, mask);
    msg = _mm_add_epi32(msg0,
        _mm_set_epi64x(0xE9B5DBA5B5C0FBCFULL, 0x71374491428A2F98ULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    /* Rounds 4-7 */
    msg1 = _mm_loadu_si128((const __m128i *)(block + 16));
    msg1 = _mm_shuffle_epi8(msg1, mask);
    msg = _mm_add_epi32(msg1,
        _mm_set_epi64x(0xAB1C5ED5923F82A4ULL, 0x59F111F13956C25BULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg0 = _mm_sha256msg1_epu32(msg0, msg1);

    /* Rounds 8-11 */
    msg2 = _mm_loadu_si128((const __m128i *)(block + 32));
    msg2 = _mm_shuffle_epi8(msg2, mask);
    msg = _mm_add_epi32(msg2,
        _mm_set_epi64x(0x550C7DC3243185BEULL, 0x12835B01D807AA98ULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg1 = _mm_sha256msg1_epu32(msg1, msg2);

    /* Rounds 12-15 */
    msg3 = _mm_loadu_si128((const __m128i *)(block + 48));
    msg3 = _mm_shuffle_epi8(msg3, mask);
    msg = _mm_add_epi32(msg3,
        _mm_set_epi64x(0xC19BF1749BDC06A7ULL, 0x80DEB1FE72BE5D74ULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg3, msg2, 4);
    msg0 = _mm_add_epi32(msg0, tmp);
    msg0 = _mm_sha256msg2_epu32(msg0, msg3);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg2 = _mm_sha256msg1_epu32(msg2, msg3);

    /* Rounds 16-19 */
    msg = _mm_add_epi32(msg0,
        _mm_set_epi64x(0x240CA1CC0FC19DC6ULL, 0xEFBE4786E49B69C1ULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg0, msg3, 4);
    msg1 = _mm_add_epi32(msg1, tmp);
    msg1 = _mm_sha256msg2_epu32(msg1, msg0);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg3 = _mm_sha256msg1_epu32(msg3, msg0);

    /* Rounds 20-23 */
    msg = _mm_add_epi32(msg1,
        _mm_set_epi64x(0x76F988DA5CB0A9DCULL, 0x4A7484AA2DE92C6FULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg1, msg0, 4);
    msg2 = _mm_add_epi32(msg2, tmp);
    msg2 = _mm_sha256msg2_epu32(msg2, msg1);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg0 = _mm_sha256msg1_epu32(msg0, msg1);

    /* Rounds 24-27 */
    msg = _mm_add_epi32(msg2,
        _mm_set_epi64x(0xBF597FC7B00327C8ULL, 0xA831C66D983E5152ULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg2, msg1, 4);
    msg3 = _mm_add_epi32(msg3, tmp);
    msg3 = _mm_sha256msg2_epu32(msg3, msg2);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg1 = _mm_sha256msg1_epu32(msg1, msg2);

    /* Rounds 28-31 */
    msg = _mm_add_epi32(msg3,
        _mm_set_epi64x(0x1429296706CA6351ULL, 0xD5A79147C6E00BF3ULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg3, msg2, 4);
    msg0 = _mm_add_epi32(msg0, tmp);
    msg0 = _mm_sha256msg2_epu32(msg0, msg3);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg2 = _mm_sha256msg1_epu32(msg2, msg3);

    /* Rounds 32-35 */
    msg = _mm_add_epi32(msg0,
        _mm_set_epi64x(0x53380D134D2C6DFCULL, 0x2E1B213827B70A85ULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg0, msg3, 4);
    msg1 = _mm_add_epi32(msg1, tmp);
    msg1 = _mm_sha256msg2_epu32(msg1, msg0);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg3 = _mm_sha256msg1_epu32(msg3, msg0);

    /* Rounds 36-39 */
    msg = _mm_add_epi32(msg1,
        _mm_set_epi64x(0x92722C8581C2C92EULL, 0x766A0ABB650A7354ULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg1, msg0, 4);
    msg2 = _mm_add_epi32(msg2, tmp);
    msg2 = _mm_sha256msg2_epu32(msg2, msg1);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg0 = _mm_sha256msg1_epu32(msg0, msg1);

    /* Rounds 40-43 */
    msg = _mm_add_epi32(msg2,
        _mm_set_epi64x(0xC76C51A3C24B8B70ULL, 0xA81A664BA2BFE8A1ULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg2, msg1, 4);
    msg3 = _mm_add_epi32(msg3, tmp);
    msg3 = _mm_sha256msg2_epu32(msg3, msg2);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg1 = _mm_sha256msg1_epu32(msg1, msg2);

    /* Rounds 44-47 */
    msg = _mm_add_epi32(msg3,
        _mm_set_epi64x(0x106AA070F40E3585ULL, 0xD6990624D192E819ULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg3, msg2, 4);
    msg0 = _mm_add_epi32(msg0, tmp);
    msg0 = _mm_sha256msg2_epu32(msg0, msg3);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg2 = _mm_sha256msg1_epu32(msg2, msg3);

    /* Rounds 48-51 */
    msg = _mm_add_epi32(msg0,
        _mm_set_epi64x(0x34B0BCB52748774CULL, 0x1E376C0819A4C116ULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg0, msg3, 4);
    msg1 = _mm_add_epi32(msg1, tmp);
    msg1 = _mm_sha256msg2_epu32(msg1, msg0);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg3 = _mm_sha256msg1_epu32(msg3, msg0);

    /* Rounds 52-55 */
    msg = _mm_add_epi32(msg1,
        _mm_set_epi64x(0x682E6FF35B9CCA4FULL, 0x4ED8AA4A391C0CB3ULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg1, msg0, 4);
    msg2 = _mm_add_epi32(msg2, tmp);
    msg2 = _mm_sha256msg2_epu32(msg2, msg1);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    /* Rounds 56-59 */
    msg = _mm_add_epi32(msg2,
        _mm_set_epi64x(0x8CC7020884C87814ULL, 0x78A5636F748F82EEULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg2, msg1, 4);
    msg3 = _mm_add_epi32(msg3, tmp);
    msg3 = _mm_sha256msg2_epu32(msg3, msg2);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    /* Rounds 60-63 */
    msg = _mm_add_epi32(msg3,
        _mm_set_epi64x(0xC67178F2BEF9A3F7ULL, 0xA4506CEB90BEFFFAULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    state0 = _mm_add_epi32(state0, abef_save);
    state1 = _mm_add_epi32(state1, cdgh_save);

    tmp = _mm_shuffle_epi32(state0, 0x1B);       /* FEBA */
    state1 = _mm_shuffle_epi32(state1, 0xB1);    /* DCHG */
    state0 = _mm_blend_epi16(tmp, state1, 0xF0); /* DCBA */
    state1 = _mm_alignr_epi8(state1, tmp, 8);    /* HGFE */

    _mm_storeu_si128((__m128i *)&state[0], state0);
    _mm_storeu_si128((__m128i *)&state[4], state1);
}
#endif /* __x86_64__ */

static int pick_backend(void)
{
#ifdef HAVE_SHANI_BUILD
    if (__builtin_cpu_supports("sha") && __builtin_cpu_supports("sse4.1")
        && __builtin_cpu_supports("ssse3"))
        return 2;
#endif
    return 1;
}

/* Which compression path expand will use: 1 = portable C, 2 = SHA-NI. */
int repro_sha256_ctr_backend(void)
{
    static int backend;
    if (!backend)
        backend = pick_backend();
    return backend;
}

/* out[i*32 .. i*32+31] = SHA256(seed || be64(ctr0 + i)).
 * Requires seedlen <= 47 (message fits one padded block).
 * Returns 0 on success, -1 on bad arguments. */
int repro_sha256_ctr(const uint8_t *seed, size_t seedlen,
                     uint64_t ctr0, uint64_t nblocks, uint8_t *out)
{
    uint8_t block[64];
    size_t mlen;
    uint64_t bits, i;
    int j;
    int backend;

    if (seed == NULL || out == NULL || seedlen > 47)
        return -1;

    memset(block, 0, sizeof(block));
    memcpy(block, seed, seedlen);
    mlen = seedlen + 8;
    block[mlen] = 0x80;
    bits = (uint64_t)mlen * 8;
    for (j = 0; j < 8; j++)
        block[63 - j] = (uint8_t)(bits >> (8 * j));

    backend = repro_sha256_ctr_backend();
    for (i = 0; i < nblocks; i++) {
        uint64_t c = ctr0 + i;
        uint32_t st[8];
        uint8_t *o = out + 32 * i;

        for (j = 0; j < 8; j++)
            block[seedlen + 7 - j] = (uint8_t)(c >> (8 * j));
        memcpy(st, H0, sizeof(st));
#ifdef HAVE_SHANI_BUILD
        if (backend == 2)
            compress_shani(st, block);
        else
#endif
            compress_scalar(st, block);
        for (j = 0; j < 8; j++) {
            uint32_t v = st[j];
            o[4 * j] = (uint8_t)(v >> 24);
            o[4 * j + 1] = (uint8_t)(v >> 16);
            o[4 * j + 2] = (uint8_t)(v >> 8);
            o[4 * j + 3] = (uint8_t)v;
        }
    }
    return 0;
}
