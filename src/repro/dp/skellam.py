"""The DSkellam mechanism (Agarwal, Kairouz & Liu, NeurIPS 2021).

Dordis's prototype employs the distributed Skellam mechanism for its DP
encoding (§5), because Skellam noise is (a) integer-valued — compatible
with secure aggregation over Z_{2^b} — and (b) closed under summation,
the property XNoise's decomposition requires (§3).

Encode path (client): L2-clip → randomized-Hadamard rotate → scale by s →
conditional stochastic rounding → add Skellam noise → wrap mod 2**b.
Decode path (server): unwrap to signed → inverse rotate → unscale.

Configuration follows the paper's §6.1: signal-bound multiplier k = 3,
rounding bias β = e^{−0.5}, bit width b = 20.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.dp.quantize import (
    clip_l2,
    conditional_stochastic_round,
    unwrap_modular,
    wrap_modular,
)
from repro.dp.rotation import RandomizedHadamard


@dataclass(frozen=True)
class SkellamConfig:
    """Static parameters of the DSkellam encoding.

    Attributes
    ----------
    dimension:   model-update length (pre-padding).
    clip_bound:  per-client L2 clip in the real domain.
    bits:        ring bit-width b; aggregation happens mod 2**bits.
    scale:       quantization granularity s (real value 1.0 maps to s).
    k_multiplier: signal-bound multiplier k (paper: 3).
    beta:        conditional-rounding bias parameter (paper: e**-0.5).
    rotation_seed: shared per-round seed for the Hadamard rotation.
    """

    dimension: int
    clip_bound: float
    bits: int = 20
    scale: float = 64.0
    k_multiplier: float = 3.0
    beta: float = math.exp(-0.5)
    rotation_seed: bytes = b"dskellam-rotation"

    def __post_init__(self) -> None:
        if self.dimension <= 0:
            raise ValueError("dimension must be positive")
        if self.clip_bound <= 0:
            raise ValueError("clip_bound must be positive")
        if not 4 <= self.bits <= 62:
            raise ValueError("bits must be in [4, 62]")
        if self.scale <= 0:
            raise ValueError("scale must be positive")


def choose_scale(
    bits: int,
    n_clients: int,
    clip_bound: float,
    noise_multiplier: float,
    dimension: int,
    k_multiplier: float = 3.0,
) -> float:
    """Largest scale s for which the aggregate fits the ring w.h.p.

    The ring must hold the sum of n flattened signals plus the aggregate
    noise with k-sigma headroom:

        n·k·s·c/√d  +  k·z·(s·c + √d/2)  ≤  2**(b−1)

    (flattened coordinates concentrate around ‖x‖₂/√d; the noise std is
    z·Δ̃₂ with Δ̃₂ = s·c + √d/2 covering rounding inflation).  Solving the
    linear inequality for s gives the returned value.  Raises if the bit
    width cannot accommodate even s = 1.
    """
    d_pad = 1 << (dimension - 1).bit_length()
    half_ring = float(1 << (bits - 1))
    z = noise_multiplier
    budget = half_ring - k_multiplier * z * math.sqrt(d_pad) / 2.0
    denom = k_multiplier * clip_bound * (n_clients / math.sqrt(d_pad) + z)
    if budget <= 0 or budget / denom < 1.0:
        raise ValueError(
            f"bit width {bits} too small for n={n_clients}, z={z}, d={dimension}"
        )
    return budget / denom


class SkellamMechanism:
    """Stateful encoder/decoder for one round's DSkellam aggregation."""

    def __init__(self, config: SkellamConfig):
        self.config = config
        self.rotation = RandomizedHadamard(config.dimension, config.rotation_seed)

    @property
    def padded_dimension(self) -> int:
        return self.rotation.padded

    @property
    def modulus(self) -> int:
        return 1 << self.config.bits

    def scaled_sensitivities(self) -> tuple[float, float]:
        """(Δ̃₂, Δ̃₁) in the scaled integer domain.

        Rotation preserves the L2 norm, so the scaled L2 sensitivity is
        s·c inflated by the rounding slack √d/2 (each coordinate moves by
        at most 1/2... stochastic rounding worst case 1 but the
        conditional-rounding acceptance bound keeps the norm inflation
        within √d/2 with the β = e^{−0.5} configuration).  Δ̃₁ uses the
        generic bounds Δ₁ ≤ min(Δ₂², √d·Δ₂).
        """
        c = self.config
        d2 = c.scale * c.clip_bound + math.sqrt(self.padded_dimension) / 2.0
        d1 = min(d2**2, math.sqrt(self.padded_dimension) * d2)
        return d2, d1

    def rounding_norm_bound(self) -> float:
        """Acceptance bound for conditional rounding (norm + √d/2 slack)."""
        c = self.config
        return c.scale * c.clip_bound + math.sqrt(self.padded_dimension) / 2.0

    def encode_signal(
        self, update: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Clip, rotate, scale, round — everything except noise and wrap.

        Returns a signed int64 vector of length ``padded_dimension``.
        XNoise adds its noise components to this before wrapping.
        """
        clipped = clip_l2(update, self.config.clip_bound)
        rotated = self.rotation.forward(clipped)
        scaled = rotated * self.config.scale
        return conditional_stochastic_round(scaled, rng, self.rounding_norm_bound())

    def sample_noise(
        self, variance: float, rng: np.random.Generator
    ) -> np.ndarray:
        """Skellam noise of the given per-coordinate variance.

        Sk(μ, μ) with μ = variance/2 has mean 0 and variance 2μ; sums of
        independent Skellams are Skellam — the closure-under-summation
        property XNoise's add-then-remove algebra relies on.
        """
        if variance < 0:
            raise ValueError("variance must be non-negative")
        if variance == 0:
            return np.zeros(self.padded_dimension, dtype=np.int64)
        mu = variance / 2.0
        plus = rng.poisson(mu, size=self.padded_dimension)
        minus = rng.poisson(mu, size=self.padded_dimension)
        return (plus - minus).astype(np.int64)

    def wrap(self, signed: np.ndarray) -> np.ndarray:
        """Signed integer vector → ring representative (pre-masking)."""
        return wrap_modular(signed, self.config.bits)

    def encode(
        self,
        update: np.ndarray,
        noise_variance: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Full client-side encode: signal + Skellam noise, in the ring."""
        signal = self.encode_signal(update, rng)
        noise = self.sample_noise(noise_variance, rng)
        return self.wrap(signal + noise)

    def decode(self, aggregate_ring: np.ndarray) -> np.ndarray:
        """Server-side decode of a ring aggregate back to the real domain.

        Returns the *sum* of the participating clients' clipped updates
        (plus residual DP noise); the caller divides by the participant
        count for FedAvg.
        """
        signed = unwrap_modular(aggregate_ring, self.config.bits)
        unscaled = signed.astype(float) / self.config.scale
        return self.rotation.inverse(unscaled)

    def aggregate_ring(self, encoded: list[np.ndarray]) -> np.ndarray:
        """Sum encoded vectors in the ring (what SecAgg computes)."""
        if not encoded:
            raise ValueError("nothing to aggregate")
        total = np.zeros(self.padded_dimension, dtype=np.int64)
        for vec in encoded:
            total = (total + vec) % self.modulus
        return total
