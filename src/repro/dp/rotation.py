"""Randomized Hadamard transform.

DSkellam flattens coordinate magnitudes before quantization by applying
U = H·D/√d, where D is a diagonal of random signs and H the Walsh–Hadamard
matrix.  Flattening makes every coordinate O(‖x‖₂/√d) with high
probability, so a uniform per-coordinate quantizer wastes no range.  The
transform is orthogonal, hence exactly invertible and L2-preserving —
which also means it does not change the mechanism's L2 sensitivity.

Both the forward and inverse transforms run in O(d log d) via the
iterative butterfly.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import derive_rng


def _next_pow2(n: int) -> int:
    p = 1
    while p < n:
        p <<= 1
    return p


def fwht(vector: np.ndarray) -> np.ndarray:
    """In-place-style fast Walsh–Hadamard transform (unnormalized).

    Requires a power-of-two length; the caller pads.
    """
    v = np.asarray(vector, dtype=float).copy()
    n = v.shape[0]
    if n & (n - 1):
        raise ValueError("fwht length must be a power of two")
    h = 1
    while h < n:
        v = v.reshape(-1, 2 * h)
        left = v[:, :h].copy()
        right = v[:, h:].copy()
        v[:, :h] = left + right
        v[:, h:] = left - right
        v = v.reshape(-1)
        h *= 2
    return v


class RandomizedHadamard:
    """Seeded rotation U = H·D/√d_pad with exact inverse.

    All clients in a round must use the *same* rotation so the aggregate
    can be inverted server-side; the seed is distributed as public
    per-round configuration.
    """

    def __init__(self, dimension: int, seed_material: bytes | str = b"rotation"):
        if dimension <= 0:
            raise ValueError("dimension must be positive")
        self.dimension = dimension
        self.padded = _next_pow2(dimension)
        rng = derive_rng("hadamard-signs", seed_material)
        self.signs = rng.integers(0, 2, size=self.padded) * 2 - 1

    def forward(self, vector: np.ndarray) -> np.ndarray:
        """Rotate a length-``dimension`` vector into length-``padded`` space."""
        vector = np.asarray(vector, dtype=float)
        if vector.shape != (self.dimension,):
            raise ValueError(
                f"expected shape ({self.dimension},), got {vector.shape}"
            )
        padded = np.zeros(self.padded)
        padded[: self.dimension] = vector
        return fwht(padded * self.signs) / np.sqrt(self.padded)

    def inverse(self, vector: np.ndarray) -> np.ndarray:
        """Invert :meth:`forward`; returns the original ``dimension`` coords.

        H/√d is its own inverse (orthogonal, symmetric), so the inverse is
        un-rotate then un-sign then truncate the padding.
        """
        vector = np.asarray(vector, dtype=float)
        if vector.shape != (self.padded,):
            raise ValueError(f"expected shape ({self.padded},), got {vector.shape}")
        unrotated = fwht(vector) / np.sqrt(self.padded)
        return (unrotated * self.signs)[: self.dimension]
