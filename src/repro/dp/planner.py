"""Offline noise planning.

Distributed DP performs *offline noise planning* ahead of training (§2.2):
given a global budget (ε_G, δ) and the number of rounds R, find the
minimum per-round aggregate noise level σ²_* such that the R-fold
composition of the per-round mechanism consumes exactly the budget.  At
training end the remaining budget should be zero — the minimum-noise,
maximum-utility operating point.

The planner binary-searches the aggregate noise std; monotonicity of ε in
σ makes this exact to the requested tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dp.accountant import RdpAccountant


@dataclass(frozen=True)
class NoisePlan:
    """The output of offline planning.

    Attributes
    ----------
    sigma:        per-round aggregate noise std (target level σ_*).
    variance:     σ²_* — the level XNoise enforces regardless of dropout.
    rounds:       planned number of releases.
    epsilon_budget, delta: the global privacy goal.
    mechanism:    "gaussian" or "skellam".
    l2_sensitivity, l1_sensitivity: sensitivities the plan was made for.
    """

    sigma: float
    rounds: int
    epsilon_budget: float
    delta: float
    mechanism: str
    l2_sensitivity: float
    l1_sensitivity: float | None = None

    @property
    def variance(self) -> float:
        return self.sigma**2

    @property
    def noise_multiplier(self) -> float:
        """z = σ/Δ₂ — scale-free noise level."""
        return self.sigma / self.l2_sensitivity

    def fresh_accountant(self) -> RdpAccountant:
        return RdpAccountant(delta=self.delta)

    def spend_round(self, accountant: RdpAccountant, actual_variance: float) -> None:
        """Account one release at the *actual* aggregate noise level.

        Under Orig with dropout the actual level is below ``variance``;
        under XNoise it equals ``variance`` (Theorem 1).
        """
        if actual_variance <= 0:
            raise ValueError("actual_variance must be positive")
        sigma = actual_variance**0.5
        if self.mechanism == "gaussian":
            accountant.spend_gaussian(sigma, self.l2_sensitivity)
        elif self.mechanism == "skellam":
            accountant.spend_skellam(
                actual_variance, self.l2_sensitivity, self.l1_sensitivity
            )
        else:  # pragma: no cover - constructor validates
            raise ValueError(f"unknown mechanism {self.mechanism}")

    def epsilon_if_executed(self, rounds: int | None = None) -> float:
        """ε consumed by faithfully executing the plan for ``rounds``."""
        acc = self.fresh_accountant()
        for _ in range(rounds if rounds is not None else self.rounds):
            self.spend_round(acc, self.variance)
        return acc.epsilon()


def _epsilon_for_sigma(
    sigma: float,
    rounds: int,
    delta: float,
    mechanism: str,
    l2_sensitivity: float,
    l1_sensitivity: float | None,
) -> float:
    acc = RdpAccountant(delta=delta)
    for _ in range(rounds):
        if mechanism == "gaussian":
            acc.spend_gaussian(sigma, l2_sensitivity)
        else:
            acc.spend_skellam(sigma**2, l2_sensitivity, l1_sensitivity)
    return acc.epsilon()


def plan_noise(
    rounds: int,
    epsilon_budget: float,
    delta: float,
    l2_sensitivity: float,
    mechanism: str = "gaussian",
    l1_sensitivity: float | None = None,
    tolerance: float = 1e-4,
) -> NoisePlan:
    """Find the minimum σ_* whose R-fold composition meets the budget.

    Returns a :class:`NoisePlan` with ``epsilon_if_executed() <=
    epsilon_budget`` and within ``tolerance`` (relative) of equality —
    the prudent use of budget the paper calls for.
    """
    if rounds <= 0:
        raise ValueError("rounds must be positive")
    if epsilon_budget <= 0:
        raise ValueError("epsilon_budget must be positive")
    if mechanism not in ("gaussian", "skellam"):
        raise ValueError("mechanism must be 'gaussian' or 'skellam'")
    if l2_sensitivity <= 0:
        raise ValueError("l2_sensitivity must be positive")

    def eps(sigma: float) -> float:
        return _epsilon_for_sigma(
            sigma, rounds, delta, mechanism, l2_sensitivity, l1_sensitivity
        )

    # Bracket: grow high until the budget is met, shrink low until violated.
    low = high = l2_sensitivity
    while eps(high) > epsilon_budget:
        high *= 2.0
        if high > l2_sensitivity * 2**60:
            raise RuntimeError("could not bracket sigma; budget unreachably small")
    while eps(low) <= epsilon_budget and low > l2_sensitivity * 2**-60:
        low /= 2.0

    for _ in range(200):
        mid = (low + high) / 2.0
        if eps(mid) > epsilon_budget:
            low = mid
        else:
            high = mid
        if (high - low) / high < tolerance:
            break

    return NoisePlan(
        sigma=high,
        rounds=rounds,
        epsilon_budget=epsilon_budget,
        delta=delta,
        mechanism=mechanism,
        l2_sensitivity=l2_sensitivity,
        l1_sensitivity=l1_sensitivity,
    )
