"""Distributed differential privacy: accounting, mechanisms, planning.

Distributed DP (§2.2) specifies a global privacy budget (ε_G, δ_G) that is
consumed by every released aggregate update.  The pieces:

- :mod:`repro.dp.accountant` — Rényi-DP accounting: per-round RDP curves
  for the Gaussian and Skellam mechanisms, composition across rounds, and
  conversion to (ε, δ).
- :mod:`repro.dp.gaussian`   — the distributed Gaussian mechanism (each
  client adds a share of the target variance; Gaussian is closed under
  summation).
- :mod:`repro.dp.skellam`    — the DSkellam mechanism [Agarwal et al.
  2021] the paper's prototype employs (§5): clip → scale → rotate →
  conditionally round → add Skellam noise → wrap modulo 2**b.
- :mod:`repro.dp.quantize`   — clipping, stochastic rounding, modular
  (un)wrapping.
- :mod:`repro.dp.rotation`   — the randomized Hadamard transform used to
  flatten coordinate magnitudes before quantization.
- :mod:`repro.dp.planner`    — offline noise planning: the smallest
  per-round noise level σ²_* whose R-fold composition stays within the
  global budget.
"""

from repro.dp.accountant import (
    RdpAccountant,
    gaussian_rdp,
    skellam_rdp,
    rdp_to_epsilon,
    DEFAULT_ORDERS,
)
from repro.dp.gaussian import DistributedGaussianMechanism
from repro.dp.skellam import SkellamMechanism, SkellamConfig
from repro.dp.quantize import (
    clip_l2,
    stochastic_round,
    wrap_modular,
    unwrap_modular,
)
from repro.dp.rotation import RandomizedHadamard
from repro.dp.planner import NoisePlan, plan_noise
from repro.dp.dgauss import (
    DGaussConfig,
    DiscreteGaussianMechanism,
    sample_discrete_gaussian,
)

__all__ = [
    "RdpAccountant",
    "gaussian_rdp",
    "skellam_rdp",
    "rdp_to_epsilon",
    "DEFAULT_ORDERS",
    "DistributedGaussianMechanism",
    "SkellamMechanism",
    "SkellamConfig",
    "clip_l2",
    "stochastic_round",
    "wrap_modular",
    "unwrap_modular",
    "RandomizedHadamard",
    "NoisePlan",
    "plan_noise",
    "DGaussConfig",
    "DiscreteGaussianMechanism",
    "sample_discrete_gaussian",
]
