"""The distributed Gaussian mechanism.

The baseline distributed-DP mechanism (Definition 1, Orig): given the
target aggregate noise level σ²_*, each of the |U| sampled clients
perturbs its clipped update with N(0, σ²_*/|U|·I).  Gaussian noise is
closed under summation (§3's standing assumption), so the aggregate
carries exactly σ²_* when nobody drops — and (|U|−|D|)/|U|·σ²_* when |D|
clients drop, which is the privacy failure XNoise repairs.

This mechanism operates in the real domain and is used by the utility
experiments and as the χ distribution for XNoise's Gaussian
instantiation.  The quantized integer path lives in
:mod:`repro.dp.skellam`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dp.quantize import clip_l2


@dataclass(frozen=True)
class DistributedGaussianMechanism:
    """Clip to ``clip_bound`` and add seeded Gaussian noise shares.

    Parameters
    ----------
    clip_bound:
        L2 sensitivity of one client's contribution.
    """

    clip_bound: float

    def __post_init__(self) -> None:
        if self.clip_bound <= 0:
            raise ValueError("clip_bound must be positive")

    def prepare_update(self, update: np.ndarray) -> np.ndarray:
        """Client-side clipping (fixes the sensitivity)."""
        return clip_l2(update, self.clip_bound)

    def sample_noise(
        self, variance: float, rng: np.random.Generator, dimension: int
    ) -> np.ndarray:
        """One noise share of the given variance.

        Variance-parameterized (not std) because XNoise decomposes noise
        into additive components whose *variances* sum (§3.2).
        """
        if variance < 0:
            raise ValueError("variance must be non-negative")
        if variance == 0:
            return np.zeros(dimension)
        return rng.normal(0.0, np.sqrt(variance), size=dimension)

    def perturb(
        self, update: np.ndarray, variance: float, rng: np.random.Generator
    ) -> np.ndarray:
        """Clip and add one Gaussian share — Definition 1's client step."""
        clipped = self.prepare_update(update)
        return clipped + self.sample_noise(variance, rng, clipped.shape[0])
