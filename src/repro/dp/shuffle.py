"""The shuffle-model alternative to SecAgg-based distributed DP.

§2.2: "besides the commonly-used SecAgg, distributed DP can also be
implemented using alternative approaches such as secure shuffling
[Bittau et al., Cheu et al., Erlingsson et al.]".  The paper focuses on
SecAgg; we implement the shuffling alternative as a comparison substrate:

- each client applies a *local* ε₀-DP randomizer (Gaussian here);
- a trusted shuffler strips identities and permutes the reports;
- anonymity amplifies the local guarantee: the shuffled output satisfies
  a much smaller central ε.

The amplification bound is Feldman, McMillan & Talwar (FOCS 2021,
"Hiding Among the Clones"), Theorem 3.2's closed form:

    ε ≤ log(1 + (e^{ε₀} − 1)·(4·√(2·ln(4/δ)/((e^{ε₀}+1)·n)) + 4/n))

valid for ε₀ ≤ log(n / (16·ln(2/δ))).  The comparison the round-trip
tests pin down: for the same central (ε, δ), the shuffle model needs
*far more total noise* than SecAgg-based distributed DP — the
minimum-noise advantage that makes distributed DP "the most appealing"
(§2.2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.dp.quantize import clip_l2


def amplification_bound(epsilon0: float, n: int, delta: float) -> float:
    """Central ε of n shuffled ε₀-DP reports (FMT'21 Thm 3.2 closed form).

    Raises if ε₀ is outside the theorem's validity range — callers must
    not silently extrapolate a privacy bound.
    """
    if epsilon0 <= 0:
        raise ValueError("epsilon0 must be positive")
    if n < 2:
        raise ValueError("need at least 2 reports to shuffle")
    if not 0 < delta < 1:
        raise ValueError("delta must be in (0, 1)")
    limit = math.log(n / (16.0 * math.log(2.0 / delta)))
    if epsilon0 > limit:
        raise ValueError(
            f"epsilon0={epsilon0:.3f} outside the FMT bound's validity "
            f"(requires <= {limit:.3f} for n={n}, delta={delta:g})"
        )
    e0 = math.exp(epsilon0)
    term = 4.0 * math.sqrt(2.0 * math.log(4.0 / delta) / ((e0 + 1.0) * n)) + 4.0 / n
    return math.log1p((e0 - 1.0) * term)


def local_epsilon_for_central(
    epsilon: float, n: int, delta: float, tolerance: float = 1e-4
) -> float:
    """Largest ε₀ whose shuffled amplification stays within ``epsilon``.

    Binary search over the monotone :func:`amplification_bound`.
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    hi = math.log(n / (16.0 * math.log(2.0 / delta)))
    if hi <= 0:
        raise ValueError(f"population n={n} too small to amplify at delta={delta:g}")
    if amplification_bound(hi, n, delta) <= epsilon:
        return hi
    lo = 1e-6
    if amplification_bound(lo, n, delta) > epsilon:
        raise ValueError("central epsilon unreachably small for this n")
    while (hi - lo) / hi > tolerance:
        mid = (lo + hi) / 2.0
        if amplification_bound(mid, n, delta) > epsilon:
            hi = mid
        else:
            lo = mid
    return lo


def gaussian_sigma_for_local_epsilon(
    epsilon0: float, delta0: float, sensitivity: float
) -> float:
    """Classical Gaussian-mechanism calibration: σ = Δ·√(2·ln(1.25/δ))/ε."""
    if epsilon0 <= 0 or not 0 < delta0 < 1 or sensitivity <= 0:
        raise ValueError("invalid Gaussian calibration inputs")
    return sensitivity * math.sqrt(2.0 * math.log(1.25 / delta0)) / epsilon0


@dataclass
class ShuffleModelAggregator:
    """One shuffled aggregation round: local noise → shuffle → average.

    Parameters map a central (ε, δ) goal onto per-client Gaussian noise
    via the amplification bound; :attr:`local_sigma` is what each client
    adds — compare against distributed DP's σ_target/√n shares.
    """

    epsilon: float
    delta: float
    n_clients: int
    clip_bound: float

    def __post_init__(self) -> None:
        self.local_epsilon = local_epsilon_for_central(
            self.epsilon, self.n_clients, self.delta
        )
        # Split δ evenly between the local randomizers and amplification.
        self.local_sigma = gaussian_sigma_for_local_epsilon(
            self.local_epsilon, self.delta / 2.0, self.clip_bound
        )

    def randomize(self, update: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """The client-side local randomizer."""
        clipped = clip_l2(update, self.clip_bound)
        return clipped + rng.normal(0.0, self.local_sigma, clipped.shape)

    def shuffle_and_aggregate(
        self, reports: list[np.ndarray], rng: np.random.Generator
    ) -> np.ndarray:
        """The shuffler: permute (discard identities), then sum.

        Summation is permutation-invariant — the shuffle matters for the
        *privacy analysis* (identities are gone), not the value.
        """
        if len(reports) != self.n_clients:
            raise ValueError("reports must cover all clients")
        order = rng.permutation(len(reports))
        total = np.zeros_like(reports[0])
        for i in order:
            total = total + reports[i]
        return total

    def aggregate_noise_variance(self) -> float:
        """Total noise variance in the aggregate: n·σ₀² per coordinate."""
        return self.n_clients * self.local_sigma**2
