"""Rényi differential privacy accounting.

The paper's offline noise planning and online budget tracking (§2.2) need
three operations, all provided here:

1. a per-round RDP curve ε(α) for the mechanism actually applied
   (Gaussian, or Skellam for the DSkellam prototype);
2. composition — RDP composes additively across rounds;
3. conversion of a composed RDP curve to an (ε, δ) pair.

The conversion uses the bound of Canonne–Kamath–Steinke (2020), the same
one used by TensorFlow Privacy's accountant:

    ε(δ) = min_α [ ε_rdp(α) + log((α−1)/α) − (log δ + log α)/(α−1) ].

The Skellam RDP curve follows Agarwal, Kairouz & Liu, *The Skellam
Mechanism for Differentially Private Federated Learning* (NeurIPS 2021):
for integer-valued queries with L1/L2 sensitivities Δ₁/Δ₂ and aggregate
Skellam noise of variance σ² (i.e. Sk(σ²/2, σ²/2) per coordinate),

    ε(α) ≤ α·Δ₂²/(2σ²) + min( (2α−1)·Δ₂² + 6·Δ₁ , 3·Δ₁ ) / (4·σ⁴/4)

— equivalently, with μ = σ²/2 the Poisson rate on each side,

    ε(α) ≤ α·Δ₂²/(4μ) + min( (2α−1)·Δ₂² + 6·Δ₁ , 3·Δ₁ ) / (4μ²).

As μ → ∞ this approaches the Gaussian curve α·Δ₂²/(2σ²), which is the
sanity check the unit tests pin down.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: Standard order grid (same spirit as TF-Privacy's default orders).
DEFAULT_ORDERS: tuple[float, ...] = tuple(
    [1.25, 1.5, 1.75, 2.0, 2.25, 2.5, 3.0, 3.5, 4.0, 4.5]
    + list(range(5, 64))
    + [64.0, 80.0, 96.0, 128.0, 256.0, 512.0]
)


def gaussian_rdp(
    orders: tuple[float, ...], sigma: float, sensitivity: float = 1.0
) -> np.ndarray:
    """RDP curve of the Gaussian mechanism: ε(α) = α·Δ²/(2σ²)."""
    if sigma <= 0:
        raise ValueError("sigma must be positive")
    if sensitivity < 0:
        raise ValueError("sensitivity must be non-negative")
    alphas = np.asarray(orders, dtype=float)
    return alphas * sensitivity**2 / (2.0 * sigma**2)


def skellam_rdp(
    orders: tuple[float, ...],
    variance: float,
    l2_sensitivity: float,
    l1_sensitivity: float | None = None,
) -> np.ndarray:
    """RDP curve of the (aggregate) Skellam mechanism.

    Parameters
    ----------
    variance:
        Total per-coordinate variance σ² of the aggregate Skellam noise.
    l2_sensitivity, l1_sensitivity:
        Sensitivities in the *scaled integer* domain.  If Δ₁ is unknown we
        use the generic bound Δ₁ ≤ Δ₂² (integer-valued differences), which
        is what DSkellam's analysis falls back to.
    """
    if variance <= 0:
        raise ValueError("variance must be positive")
    if l2_sensitivity < 0:
        raise ValueError("l2_sensitivity must be non-negative")
    mu = variance / 2.0
    d2sq = l2_sensitivity**2
    d1 = l1_sensitivity if l1_sensitivity is not None else d2sq
    alphas = np.asarray(orders, dtype=float)
    gaussian_term = alphas * d2sq / (4.0 * mu)
    correction = np.minimum((2 * alphas - 1) * d2sq + 6 * d1, 3 * d1) / (4.0 * mu**2)
    return gaussian_term + correction


def rdp_to_epsilon(
    orders: tuple[float, ...], rdp: np.ndarray, delta: float
) -> float:
    """Convert a composed RDP curve to ε at the given δ (CKS 2020 bound)."""
    if not 0 < delta < 1:
        raise ValueError("delta must be in (0, 1)")
    alphas = np.asarray(orders, dtype=float)
    rdp = np.asarray(rdp, dtype=float)
    if alphas.shape != rdp.shape:
        raise ValueError("orders and rdp curves must align")
    usable = alphas > 1.0
    a = alphas[usable]
    r = rdp[usable]
    eps = r + np.log((a - 1) / a) - (np.log(delta) + np.log(a)) / (a - 1)
    best = float(np.min(eps))
    return max(best, 0.0)


@dataclass
class RdpAccountant:
    """Tracks cumulative privacy loss across training rounds.

    Every released aggregate consumes budget; :meth:`spend_gaussian` /
    :meth:`spend_skellam` add one round's RDP at the *actual* aggregate
    noise level — which under client dropout in the Orig scheme is lower
    than planned, which is exactly how the growing ε curves of Fig. 1
    and Fig. 8 arise.
    """

    delta: float
    orders: tuple[float, ...] = DEFAULT_ORDERS
    _rdp: np.ndarray = field(init=False)
    _rounds: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        if not 0 < self.delta < 1:
            raise ValueError("delta must be in (0, 1)")
        self._rdp = np.zeros(len(self.orders))

    @property
    def rounds_accounted(self) -> int:
        return self._rounds

    def spend_gaussian(self, sigma: float, sensitivity: float = 1.0) -> None:
        """Account one Gaussian release with aggregate std ``sigma``."""
        self._rdp = self._rdp + gaussian_rdp(self.orders, sigma, sensitivity)
        self._rounds += 1

    def spend_skellam(
        self,
        variance: float,
        l2_sensitivity: float,
        l1_sensitivity: float | None = None,
    ) -> None:
        """Account one Skellam release with aggregate variance ``variance``."""
        self._rdp = self._rdp + skellam_rdp(
            self.orders, variance, l2_sensitivity, l1_sensitivity
        )
        self._rounds += 1

    def epsilon(self) -> float:
        """Total ε consumed so far at this accountant's δ."""
        if self._rounds == 0:
            return 0.0
        return rdp_to_epsilon(self.orders, self._rdp, self.delta)

    def copy(self) -> "RdpAccountant":
        """Snapshot (used by what-if planning)."""
        clone = RdpAccountant(delta=self.delta, orders=self.orders)
        clone._rdp = self._rdp.copy()
        clone._rounds = self._rounds
        return clone
