"""The distributed discrete Gaussian mechanism (DDGauss).

Kairouz, Liu & Steinke's DDGauss (ICML 2021) is the other end-to-end
distributed-DP mechanism the paper's related work builds on (§8); the
DSkellam paper positions Skellam against it.  We implement it as an
alternative integer-domain mechanism:

- exact discrete Gaussian sampling via the Canonne–Kamath–Steinke
  rejection sampler (discrete-Laplace proposals, acceptance
  exp(−(|y| − σ²/t)²/2σ²));
- the same clip → rotate → scale → round → wrap pipeline as DSkellam.

One caveat the paper's §3 makes load-bearing: the discrete Gaussian is
**not** closed under summation (the sum of n discrete Gaussians is only
*approximately* discrete Gaussian), so DDGauss composes with Orig-style
even noise splitting but not with XNoise's exact add-then-remove algebra
— which is exactly why Dordis's prototype uses DSkellam (§5).  The
``closed_under_summation`` flag documents this machine-checkably.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.dp.accountant import gaussian_rdp
from repro.dp.quantize import (
    clip_l2,
    conditional_stochastic_round,
    unwrap_modular,
    wrap_modular,
)
from repro.dp.rotation import RandomizedHadamard


def sample_discrete_laplace(
    t: float, size: int, rng: np.random.Generator
) -> np.ndarray:
    """Discrete Laplace with P(y) ∝ exp(−|y|/t), as geometric differences."""
    if t <= 0:
        raise ValueError("t must be positive")
    p = 1.0 - math.exp(-1.0 / t)
    return (rng.geometric(p, size=size) - rng.geometric(p, size=size)).astype(
        np.int64
    )


def sample_discrete_gaussian(
    variance: float, size: int, rng: np.random.Generator, max_rounds: int = 200
) -> np.ndarray:
    """Exact discrete Gaussian N_Z(0, σ²) via CKS rejection sampling.

    Vectorized: all coordinates are proposed and accepted/rejected in
    NumPy batches; rejected coordinates are re-proposed until none
    remain (acceptance is ≥ ~40%, so a handful of rounds suffice —
    ``max_rounds`` is a pathological-input backstop).
    """
    if variance < 0:
        raise ValueError("variance must be non-negative")
    if variance == 0:
        return np.zeros(size, dtype=np.int64)
    sigma2 = float(variance)
    t = math.floor(math.sqrt(sigma2)) + 1
    out = np.zeros(size, dtype=np.int64)
    pending = np.arange(size)
    for _ in range(max_rounds):
        if pending.size == 0:
            return out
        y = sample_discrete_laplace(t, pending.size, rng)
        accept_p = np.exp(-((np.abs(y) - sigma2 / t) ** 2) / (2 * sigma2))
        accepted = rng.random(pending.size) < accept_p
        out[pending[accepted]] = y[accepted]
        pending = pending[~accepted]
    raise RuntimeError("discrete Gaussian sampler failed to converge")


@dataclass(frozen=True)
class DGaussConfig:
    """Static parameters of the DDGauss encoding (mirrors SkellamConfig)."""

    dimension: int
    clip_bound: float
    bits: int = 20
    scale: float = 64.0
    rotation_seed: bytes = b"ddgauss-rotation"

    def __post_init__(self) -> None:
        if self.dimension <= 0:
            raise ValueError("dimension must be positive")
        if self.clip_bound <= 0:
            raise ValueError("clip_bound must be positive")
        if not 4 <= self.bits <= 62:
            raise ValueError("bits must be in [4, 62]")
        if self.scale <= 0:
            raise ValueError("scale must be positive")


class DiscreteGaussianMechanism:
    """Encoder/decoder for DDGauss aggregation rounds.

    The privacy of the *aggregate* is accounted with the continuous
    Gaussian RDP curve — a tight approximation for the aggregate noise
    levels used in FL (σ ≫ 1 in the scaled domain), per the DDGauss
    analysis.
    """

    #: §3's standing assumption fails here — see the module docstring.
    closed_under_summation = False

    def __init__(self, config: DGaussConfig):
        self.config = config
        self.rotation = RandomizedHadamard(config.dimension, config.rotation_seed)

    @property
    def padded_dimension(self) -> int:
        return self.rotation.padded

    @property
    def modulus(self) -> int:
        return 1 << self.config.bits

    def scaled_l2_sensitivity(self) -> float:
        c = self.config
        return c.scale * c.clip_bound + math.sqrt(self.padded_dimension) / 2.0

    def rdp_curve(self, orders, aggregate_variance: float) -> np.ndarray:
        return gaussian_rdp(
            orders, aggregate_variance**0.5, self.scaled_l2_sensitivity()
        )

    def encode(
        self,
        update: np.ndarray,
        noise_variance: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Clip → rotate → scale → round → add N_Z(0, σ²) → wrap."""
        c = self.config
        clipped = clip_l2(update, c.clip_bound)
        rotated = self.rotation.forward(clipped) * c.scale
        bound = self.scaled_l2_sensitivity()
        rounded = conditional_stochastic_round(rotated, rng, bound)
        noise = sample_discrete_gaussian(
            noise_variance, self.padded_dimension, rng
        )
        return wrap_modular(rounded + noise, c.bits)

    def decode(self, aggregate_ring: np.ndarray) -> np.ndarray:
        signed = unwrap_modular(aggregate_ring, self.config.bits)
        return self.rotation.inverse(signed.astype(float) / self.config.scale)

    def aggregate_ring(self, encoded: list[np.ndarray]) -> np.ndarray:
        if not encoded:
            raise ValueError("nothing to aggregate")
        total = np.zeros(self.padded_dimension, dtype=np.int64)
        for vec in encoded:
            total = (total + vec) % self.modulus
        return total
