"""Clipping, stochastic rounding, and modular wrapping.

These are the scalar-level pieces of the DSkellam encode path (§5):
model updates are L2-clipped, scaled, unbiasedly rounded to the integer
grid, and finally wrapped into the ring Z_{2^b} that secure aggregation
operates over.  Decoding reverses the wrap by re-centering into the signed
range.
"""

from __future__ import annotations

import numpy as np


def clip_l2(vector: np.ndarray, bound: float) -> np.ndarray:
    """Scale ``vector`` down to L2 norm ``bound`` if it exceeds it.

    Clipping fixes the per-client sensitivity that the DP analysis is
    calibrated against.
    """
    if bound <= 0:
        raise ValueError("clip bound must be positive")
    norm = float(np.linalg.norm(vector))
    if norm <= bound or norm == 0.0:
        return np.asarray(vector, dtype=float).copy()
    return np.asarray(vector, dtype=float) * (bound / norm)


def stochastic_round(
    vector: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Unbiased randomized rounding to the integer grid.

    Each coordinate x is rounded to ⌈x⌉ with probability frac(x) and to
    ⌊x⌋ otherwise, so E[round(x)] = x.  DSkellam applies *conditional*
    rounding (re-sample while the rounded norm exceeds a bound); the
    norm-inflation from rounding is at most √d/2 in expectation, which the
    caller accounts for in the sensitivity (see
    :meth:`repro.dp.skellam.SkellamMechanism.scaled_sensitivities`).
    """
    vector = np.asarray(vector, dtype=float)
    floor = np.floor(vector)
    frac = vector - floor
    bump = (rng.random(vector.shape) < frac).astype(float)
    return (floor + bump).astype(np.int64)


def conditional_stochastic_round(
    vector: np.ndarray,
    rng: np.random.Generator,
    norm_bound: float,
    max_attempts: int = 64,
) -> np.ndarray:
    """DSkellam's conditional randomized rounding.

    Re-samples the rounding until the integer vector's L2 norm is within
    ``norm_bound``.  The bound is chosen by the caller so acceptance is
    overwhelmingly likely (the paper's β = e^{−0.5} config); after
    ``max_attempts`` failures we fall back to deterministic rounding,
    whose norm inflation is at most √d/2 and always accepted by
    construction of the bound.
    """
    for _ in range(max_attempts):
        rounded = stochastic_round(vector, rng)
        if np.linalg.norm(rounded) <= norm_bound:
            return rounded
    return np.rint(vector).astype(np.int64)


def wrap_modular(vector: np.ndarray, bits: int) -> np.ndarray:
    """Map signed integers into the ring [0, 2**bits)."""
    if not 1 <= bits <= 62:
        raise ValueError("bits must be in [1, 62]")
    modulus = 1 << bits
    return np.mod(np.asarray(vector, dtype=np.int64), modulus)


def unwrap_modular(vector: np.ndarray, bits: int) -> np.ndarray:
    """Re-center ring elements into the signed range [−2**(b−1), 2**(b−1))."""
    if not 1 <= bits <= 62:
        raise ValueError("bits must be in [1, 62]")
    modulus = 1 << bits
    half = modulus >> 1
    v = np.mod(np.asarray(vector, dtype=np.int64), modulus)
    return np.where(v >= half, v - modulus, v)
