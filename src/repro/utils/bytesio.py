"""Byte-level codecs used throughout the protocol implementations.

The secure-aggregation and XNoise protocols move secrets around as byte
strings (seeds, keys, shares).  These helpers keep the conversions in one
audited place instead of scattering ad-hoc ``int.from_bytes`` calls.
"""

from __future__ import annotations


def int_to_bytes(value: int, length: int | None = None) -> bytes:
    """Encode a non-negative integer big-endian.

    If ``length`` is omitted the minimal length is used (at least one byte,
    so that zero round-trips).
    """
    if value < 0:
        raise ValueError(f"cannot encode negative integer {value}")
    if length is None:
        length = max(1, (value.bit_length() + 7) // 8)
    return value.to_bytes(length, "big")


def bytes_to_int(data: bytes) -> int:
    """Decode a big-endian unsigned integer."""
    return int.from_bytes(data, "big")


def chunk_bytes(data: bytes, chunk_size: int) -> list[bytes]:
    """Split ``data`` into chunks of at most ``chunk_size`` bytes.

    The final chunk may be shorter.  Used by Shamir sharing of byte-string
    secrets, where each chunk must fit into one field element.
    """
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    return [data[i : i + chunk_size] for i in range(0, len(data), chunk_size)]


def pack_chunks(chunks: list[bytes]) -> bytes:
    """Inverse of :func:`chunk_bytes` (plain concatenation)."""
    return b"".join(chunks)
