"""Shared utilities: byte/int codecs, deterministic RNG derivation, Zipf draws."""

from repro.utils.bytesio import int_to_bytes, bytes_to_int, chunk_bytes, pack_chunks
from repro.utils.rng import derive_rng, derive_seed
from repro.utils.zipf import zipf_weights, zipf_between

__all__ = [
    "int_to_bytes",
    "bytes_to_int",
    "chunk_bytes",
    "pack_chunks",
    "derive_rng",
    "derive_seed",
    "zipf_weights",
    "zipf_between",
]
