"""Deterministic RNG derivation.

All randomness used by simulations and by seed-expanded DP noise flows
through :func:`derive_rng`, which hashes a label and arbitrary context into
a NumPy ``Generator``.  This makes every experiment reproducible from a
single master seed while keeping streams for different purposes
independent (different labels → independent SHA-256 outputs).
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_seed(*parts: bytes | str | int) -> bytes:
    """Hash arbitrary context parts into a 32-byte seed."""
    h = hashlib.sha256()
    for part in parts:
        if isinstance(part, str):
            part = part.encode("utf-8")
        elif isinstance(part, (int, np.integer)):
            part = int(part).to_bytes(16, "big", signed=True)
        h.update(len(part).to_bytes(4, "big"))
        h.update(part)
    return h.digest()


def derive_rng(*parts: bytes | str | int) -> np.random.Generator:
    """Return a NumPy generator deterministically derived from context."""
    seed = derive_seed(*parts)
    return np.random.default_rng(int.from_bytes(seed[:16], "big"))
