"""Zipf-distributed heterogeneity draws.

The paper emulates hardware and network heterogeneity by making the
end-to-end latency of the *i*-th slowest client proportional to ``i**-a``
with ``a = 1.2``, and by throttling bandwidth to a Zipf profile within
[21 Mbps, 210 Mbps] (§6.1).  These helpers produce those profiles.
"""

from __future__ import annotations

import numpy as np


def zipf_weights(n: int, a: float = 1.2) -> np.ndarray:
    """Return ``n`` weights proportional to rank**-a, rank = 1..n.

    Index 0 is the largest weight (the slowest client in the latency
    interpretation).
    """
    if n <= 0:
        raise ValueError("n must be positive")
    ranks = np.arange(1, n + 1, dtype=float)
    return ranks**-a


def zipf_between(n: int, low: float, high: float, a: float = 1.2) -> np.ndarray:
    """Map a Zipf profile affinely into ``[low, high]``.

    The returned array is sorted descending (index 0 gets ``high``).  With
    ``n == 1`` the single value is ``high``.
    """
    if high < low:
        raise ValueError("high must be >= low")
    w = zipf_weights(n, a)
    if n == 1:
        return np.array([high])
    w_min, w_max = w.min(), w.max()
    return low + (w - w_min) / (w_max - w_min) * (high - low)
