"""The Table-3 network-footprint model.

Table 3 compares the *additional* per-round network footprint a surviving
client pays for noise enforcement, relative to Orig:

- **rebasing**: one full model-sized correction vector — grows linearly
  with the model (11.9 MB at 5M weights → 1192 MB at 500M);
- **XNoise**: seed bookkeeping only — Shamir shares of the T noise-
  component seeds, distributed through ciphertexts to the other sampled
  clients, plus the revealed seeds.  Independent of model size, growing
  ~quadratically with the sample size, and *shrinking* slightly with the
  dropout rate (fewer components to reveal/recover).

Deployment constants from §6.3: model weight 2.5 B, noise seed 32 B,
Shamir share of a seed 16 B, ciphertext of a share 120 B.  The dropout
tolerance follows the paper's Table 3 setting T = ⌈|U|/2⌉.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.xnoise.rebasing import rebasing_removal_bytes

#: §6.3 deployment constants (bytes).
WEIGHT_BYTES = 2.5
SEED_BYTES = 32
SHARE_BYTES = 16
CIPHERTEXT_BYTES = 120


def xnoise_extra_bytes(
    n_sampled: int,
    dropout_rate: float = 0.0,
    tolerance: int | None = None,
    unmask_dropout_fraction: float = 0.05,
) -> int:
    """Per-round extra traffic of a surviving client under XNoise (bytes).

    Components:

    1. ShareKeys: T seed-shares encrypted to each of the |U|−1 peers —
       T·(|U|−1)·120 B (this dominates and is model-size independent);
    2. Unmasking: direct reveal of the T−|D| excess seeds — (T−|D|)·32 B;
    3. Stage 5: contributed shares for survivors that dropped mid-
       removal — (T−|D|)·f·|U|·16 B with f the unmask-dropout fraction.

    Terms 2–3 shrink as the dropout rate grows (Eq. 2's monotonicity),
    which is why the Table-3 columns decrease slightly with d.
    """
    if n_sampled < 2:
        raise ValueError("need at least 2 sampled clients")
    if not 0 <= dropout_rate < 1:
        raise ValueError("dropout_rate must be in [0, 1)")
    t = tolerance if tolerance is not None else (n_sampled + 1) // 2
    if not 0 <= t < n_sampled:
        raise ValueError("tolerance must be in [0, n_sampled)")
    dropped = int(round(dropout_rate * n_sampled))
    removable = max(t - min(dropped, t), 0)
    share_dist = t * (n_sampled - 1) * CIPHERTEXT_BYTES
    reveal = removable * SEED_BYTES
    recovery = int(removable * unmask_dropout_fraction * n_sampled * SHARE_BYTES)
    return share_dist + reveal + recovery


@dataclass(frozen=True)
class Table3Row:
    """One Table-3 cell pair: rebasing vs XNoise, in MB."""

    model_size: int
    n_sampled: int
    dropout_rate: float
    rebasing_mb: float
    xnoise_mb: float


def table3_row(
    model_size: int, n_sampled: int, dropout_rate: float
) -> Table3Row:
    """Compute one (model size, sample size, dropout) Table-3 row."""
    return Table3Row(
        model_size=model_size,
        n_sampled=n_sampled,
        dropout_rate=dropout_rate,
        rebasing_mb=rebasing_removal_bytes(model_size, WEIGHT_BYTES) / 2**20,
        xnoise_mb=xnoise_extra_bytes(n_sampled, dropout_rate) / 2**20,
    )
