"""Pipeline-parallel aggregation (§4): stages, perf model, scheduler.

Dordis abstracts the distributed-DP workflow into a sequence of stages
with alternating dominant resources (Table 1), splits the aggregation
into m chunk-aggregation sub-tasks, and pipelines them (Fig. 6).  The
optimal m minimizes the Appendix-C completion-time recurrence under the
Eq.-3 per-stage performance model.

- :mod:`repro.pipeline.stages`    — the Table-1 stage/resource mapping.
- :mod:`repro.pipeline.perf_model`— τ_s = β₁·d/m + β₂·m + β₃, profiling
  by least squares, and the calibrated Dordis cost model used by the
  Fig. 2 / Fig. 10 reproductions.
- :mod:`repro.pipeline.scheduler` — the completion-time recurrence and
  the optimal-chunk search.
- :mod:`repro.pipeline.simulator` — plain vs pipelined round timing.
- :mod:`repro.pipeline.cost`      — the Table-3 network-footprint model.
"""

from repro.pipeline.stages import (
    Resource,
    Stage,
    DORDIS_STAGES,
    TABLE1_STEPS,
)
from repro.pipeline.perf_model import (
    StagePerfModel,
    WorkflowPerfModel,
    profile_stage,
    CostModelParams,
    build_dordis_perf_model,
)
from repro.pipeline.scheduler import (
    PipelineSchedule,
    completion_time,
    optimal_chunks,
)
from repro.pipeline.simulator import RoundTiming, simulate_round, compare_plain_pipelined
from repro.pipeline.cost import xnoise_extra_bytes, table3_row
from repro.pipeline.chunking import (
    chunk_boundaries,
    split_vector,
    concat_chunks,
    run_chunked_aggregation,
)
from repro.pipeline.profiler import OnlineProfiler, ProfileNotReady

__all__ = [
    "Resource",
    "Stage",
    "DORDIS_STAGES",
    "TABLE1_STEPS",
    "StagePerfModel",
    "WorkflowPerfModel",
    "profile_stage",
    "CostModelParams",
    "build_dordis_perf_model",
    "PipelineSchedule",
    "completion_time",
    "optimal_chunks",
    "RoundTiming",
    "simulate_round",
    "compare_plain_pipelined",
    "xnoise_extra_bytes",
    "table3_row",
    "chunk_boundaries",
    "split_vector",
    "concat_chunks",
    "run_chunked_aggregation",
    "OnlineProfiler",
    "ProfileNotReady",
]
