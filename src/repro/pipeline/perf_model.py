"""The Eq.-3 performance model and its profiling/calibration.

Each stage's per-chunk processing time is modelled as

    τ_s = β_{s,1}·d/m + β_{s,2}·m + β_{s,3}                    (Eq. 3)

with d the update size and m the chunk count.  β₁ weighs the partition
size (work proportional to the chunk's share of the model), β₂ the
FL-specific *inter-task intervention* (client devices split cycles
between compute and network IO, and the distraction grows with pipeline
depth), and β₃ the constant per-chunk cost (handshakes, fixed crypto).

β is profiled by least-squares from observed (d, m, τ) triples — the
paper's offline micro-benchmarking (§4.2) — or built analytically from
the calibrated Dordis cost model below, which the Fig. 2/Fig. 10
reproductions use.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.pipeline.stages import DORDIS_STAGES, Stage
from repro.utils.zipf import zipf_between


@dataclass(frozen=True)
class StagePerfModel:
    """τ(d, m) = β₁·d/m + β₂·m + β₃ for one stage."""

    beta1: float
    beta2: float
    beta3: float

    def __post_init__(self) -> None:
        if min(self.beta1, self.beta2, self.beta3) < 0:
            raise ValueError("betas must be non-negative")

    def time(self, update_size: float, n_chunks: int) -> float:
        if update_size <= 0 or n_chunks < 1:
            raise ValueError("need positive update size and n_chunks >= 1")
        return (
            self.beta1 * update_size / n_chunks
            + self.beta2 * n_chunks
            + self.beta3
        )


def profile_stage(observations: list[tuple[float, int, float]]) -> StagePerfModel:
    """Least-squares fit of (d, m, τ) observations to Eq. 3.

    Needs ≥ 3 observations with distinct (d/m, m) combinations; negative
    fitted coefficients are clamped to zero (they are physically
    meaningless and only arise from measurement noise).
    """
    if len(observations) < 3:
        raise ValueError("need at least 3 observations to fit 3 parameters")
    a = np.array([[d / m, m, 1.0] for d, m, _ in observations])
    tau = np.array([t for _, _, t in observations])
    coef, *_ = np.linalg.lstsq(a, tau, rcond=None)
    coef = np.maximum(coef, 0.0)
    return StagePerfModel(beta1=float(coef[0]), beta2=float(coef[1]), beta3=float(coef[2]))


@dataclass
class WorkflowPerfModel:
    """Per-stage Eq.-3 models aligned with a stage list."""

    stages: list[Stage]
    models: list[StagePerfModel]

    def __post_init__(self) -> None:
        if len(self.stages) != len(self.models):
            raise ValueError("one model per stage required")

    def stage_times(self, update_size: float, n_chunks: int) -> list[float]:
        return [m.time(update_size, n_chunks) for m in self.models]


# ---------------------------------------------------------------------------
# Calibrated analytic cost model
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CostModelParams:
    """Constants of the analytic Dordis cost model.

    The absolute scale is arbitrary (we reproduce *relative* breakdowns
    and speedups, per DESIGN.md §1); the constants were calibrated so
    that (a) aggregation dominates the round at 86–97% as in Fig. 2,
    (b) SecAgg client cost grows linearly in the neighbor count, and
    (c) pipeline speedups land in the paper's 1.3–2.5× band with larger
    models and more clients gaining more.

    Attributes (units: seconds per element, seconds, bytes/s):

    - ``client_cycle``: client-side per-element per-neighbor cost of mask
      expansion + DP encode (weak mobile-class CPU).
    - ``server_cycle``: server-side per-element cost of unmask/aggregate.
    - ``bandwidth_range``: client bandwidth band (§6.1: 21–210 Mbps),
      Zipf-distributed; the slowest participant gates comm stages.
    - ``handshake``: fixed per-chunk protocol cost (key rounds, RTTs).
    - ``intervention``: Eq. 3's β₂ — per-extra-chunk distraction cost on
      client devices.
    - ``bytes_per_element``: ring element wire size (20-bit ≈ 2.5 B).
    - ``training_time``: the non-aggregation share of the round ("other"
      in Fig. 2/10).
    """

    client_cycle: float = 1.2e-6
    server_cycle: float = 0.72e-6
    bandwidth_range: tuple[float, float] = (21e6 / 8, 210e6 / 8)
    handshake: float = 1.5
    intervention: float = 0.35
    bytes_per_element: float = 2.5
    training_time: float = 45.0
    #: Client-side per-element passes besides per-neighbor masking:
    #: DP encode (clip/rotate/round), serialization, integrity checks.
    encode_passes: float = 10.0
    #: Server per-survivor unmask work (self-mask regen + summation).
    unmask_passes: float = 2.0
    #: Relative cost of generating one XNoise component client-side
    #: (seeded PRG draw, cheaper than a masking round-trip).
    xnoise_client_factor: float = 0.3
    #: Server per-element cost of one reconstructed pairwise mask
    #: (vectorized PRG bulk path — much cheaper than the per-survivor
    #: unmask bookkeeping above).
    recon_cycle: float = 7.4e-8
    #: Server per-element cost of regenerating one removed XNoise
    #: component (same bulk PRG path).
    xnoise_regen_cycle: float = 1.8e-8


def build_dordis_perf_model(
    n_clients: int,
    update_size: int,
    protocol: str = "secagg",
    xnoise: bool = False,
    dropout_rate: float = 0.0,
    tolerance_fraction: float = 0.5,
    params: CostModelParams = CostModelParams(),
    zipf_a: float = 1.2,
) -> WorkflowPerfModel:
    """Analytic β for the 5 Dordis stages (Fig. 2/10 calibration).

    ``protocol`` is "secagg" (complete masking graph, O(n) neighbors per
    client) or "secagg+" (k = 3·log₂ n neighbors).  ``xnoise`` adds the
    noise-enforcement work: T+1 component generation client-side and
    (T − |D|)·|U3| component regeneration server-side — which is how the
    §6.3 "overhead shrinks as dropout grows" behaviour arises.
    """
    if n_clients < 2:
        raise ValueError("need at least 2 clients")
    if update_size < 1:
        raise ValueError("update_size must be positive")
    if protocol not in ("secagg", "secagg+"):
        raise ValueError("protocol must be 'secagg' or 'secagg+'")
    if not 0 <= dropout_rate < 1:
        raise ValueError("dropout_rate must be in [0, 1)")

    if protocol == "secagg":
        neighbors = n_clients - 1
    else:
        neighbors = min(n_clients - 1, max(2, int(np.ceil(3 * np.log2(n_clients)))))

    survivors = max(2, int(round(n_clients * (1 - dropout_rate))))
    dropped = n_clients - survivors
    tolerance = max(dropped, int(tolerance_fraction * n_clients))

    # The slowest sampled client gates comm (Zipf-heterogeneous band).
    slowest_bw = float(zipf_between(n_clients, *params.bandwidth_range, a=zipf_a).min())

    # Stage 1 — client encode + mask: one PRG expansion per neighbor plus
    # the DP-encode/serialization passes; XNoise adds T+1 (cheaper)
    # noise-component expansions.
    c1_elem = params.client_cycle * (neighbors + 1 + params.encode_passes)
    if xnoise:
        c1_elem += (
            params.client_cycle * params.xnoise_client_factor * (tolerance + 1)
        )
    s1 = StagePerfModel(c1_elem, params.intervention, params.handshake)

    # Stage 2 — upload, gated by the slowest survivor.
    s2 = StagePerfModel(
        params.bytes_per_element / slowest_bw, params.intervention, params.handshake / 2
    )

    # Stage 3 — server unmask/aggregate: self-mask regeneration plus
    # summation for every survivor, pairwise-mask reconstruction for the
    # dropped, and (with XNoise) regeneration of the removed components
    # (T − |D|)·survivors — the term that shrinks as dropout grows,
    # giving §6.3's "overhead negatively related to dropout severity".
    s3_elem = params.server_cycle * params.unmask_passes * survivors
    s3_elem += params.recon_cycle * dropped * min(survivors, neighbors)
    if xnoise:
        s3_elem += (
            params.xnoise_regen_cycle * max(tolerance - dropped, 0) * survivors
        )
    s3 = StagePerfModel(s3_elem, 0.0, params.handshake / 2)

    # Stage 4 — dispatch of the aggregate (float32 on the way down).
    s4 = StagePerfModel(4.0 / slowest_bw, params.intervention, params.handshake / 2)

    # Stage 5 — client decode (inverse rotation, unscale).
    s5 = StagePerfModel(params.client_cycle * 4, params.intervention, params.handshake / 4)

    return WorkflowPerfModel(stages=list(DORDIS_STAGES), models=[s1, s2, s3, s4, s5])
