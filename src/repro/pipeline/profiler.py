"""Online profiling of the Eq.-3 performance model.

§4.2: "such lightweight profiling can also be conducted online by
interleaving it with the training workflow if needed."  The offline path
fits β once from micro-benchmarks (:func:`repro.pipeline.perf_model.
profile_stage`); this module maintains the fit *during* training:

- every round contributes one (d, m, τ) observation per stage;
- observations age out of a sliding window, so a drifting environment
  (e.g. the straggler population changing) re-converges;
- the chunk plan is re-optimized from the current fit on demand.

The fit is guarded: until a stage has enough distinct (d/m, m)
configurations to identify three parameters, the profiler reports the
model as not-ready rather than extrapolating garbage.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.pipeline.perf_model import (
    StagePerfModel,
    WorkflowPerfModel,
    profile_stage,
)
from repro.pipeline.scheduler import optimal_chunks
from repro.pipeline.stages import Stage


class ProfileNotReady(Exception):
    """Raised when a fit is requested before enough observations exist."""


@dataclass
class OnlineProfiler:
    """Sliding-window per-stage profiling with on-demand replanning.

    Parameters
    ----------
    stages:
        The workflow's stage list (one observation stream per stage).
    window:
        Observations retained per stage; older ones age out.
    min_observations:
        Fit threshold; also requires ≥ 2 distinct chunk counts so β₂ is
        identifiable.
    """

    stages: list[Stage]
    window: int = 64
    min_observations: int = 6
    _obs: list = field(init=False)

    def __post_init__(self) -> None:
        if self.window < self.min_observations:
            raise ValueError("window must hold at least min_observations")
        if self.min_observations < 4:
            raise ValueError("need at least 4 observations to fit robustly")
        self._obs = [deque(maxlen=self.window) for _ in self.stages]

    def observe_round(
        self, update_size: float, n_chunks: int, stage_times: list[float]
    ) -> None:
        """Record one executed round's per-stage (per-chunk) times."""
        if len(stage_times) != len(self.stages):
            raise ValueError("one stage time per stage required")
        if update_size <= 0 or n_chunks < 1:
            raise ValueError("invalid round parameters")
        for stream, tau in zip(self._obs, stage_times):
            if tau < 0:
                raise ValueError("stage times must be non-negative")
            stream.append((float(update_size), int(n_chunks), float(tau)))

    def stage_ready(self, stage_index: int) -> bool:
        stream = self._obs[stage_index]
        if len(stream) < self.min_observations:
            return False
        return len({m for _, m, _ in stream}) >= 2

    @property
    def ready(self) -> bool:
        return all(self.stage_ready(i) for i in range(len(self.stages)))

    def current_model(self) -> WorkflowPerfModel:
        """The current fitted workflow model (raises if not ready)."""
        if not self.ready:
            missing = [
                self.stages[i].name
                for i in range(len(self.stages))
                if not self.stage_ready(i)
            ]
            raise ProfileNotReady(
                f"insufficient observations for stages: {missing} — vary "
                f"the chunk count across at least {self.min_observations} rounds"
            )
        models: list[StagePerfModel] = [
            profile_stage(list(stream)) for stream in self._obs
        ]
        return WorkflowPerfModel(stages=list(self.stages), models=models)

    def replan(self, update_size: float, max_chunks: int = 20) -> tuple[int, float]:
        """Optimal chunk count under the current fit (§4.2's output)."""
        return optimal_chunks(self.current_model(), update_size, max_chunks)
