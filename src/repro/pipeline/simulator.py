"""Round-time simulation: plain vs pipelined execution.

Combines the Eq.-3 perf model with the Appendix-C schedule to produce the
Fig. 2 / Fig. 10 quantities: total round time, the aggregation share
("agg" vs "other"), and the pipeline speedup at the optimal chunk count.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.pipeline.perf_model import CostModelParams, WorkflowPerfModel
from repro.pipeline.scheduler import completion_time, optimal_chunks


@dataclass(frozen=True)
class RoundTiming:
    """One configuration's simulated round breakdown."""

    aggregation_time: float
    other_time: float
    n_chunks: int

    @property
    def total(self) -> float:
        return self.aggregation_time + self.other_time

    @property
    def aggregation_share(self) -> float:
        """The 'agg' percentage annotated on the Fig. 2/10 bars."""
        return self.aggregation_time / self.total


def simulate_round(
    model: WorkflowPerfModel,
    update_size: float,
    n_chunks: int = 1,
    training_time: float | None = None,
    params: CostModelParams = CostModelParams(),
) -> RoundTiming:
    """Round timing at a fixed chunk count (m = 1 → plain execution)."""
    other = params.training_time if training_time is None else training_time
    agg = completion_time(model, update_size, n_chunks)
    return RoundTiming(aggregation_time=agg, other_time=other, n_chunks=n_chunks)


def compare_plain_pipelined(
    model: WorkflowPerfModel,
    update_size: float,
    max_chunks: int = 20,
    training_time: float | None = None,
    params: CostModelParams = CostModelParams(),
) -> tuple[RoundTiming, RoundTiming, float]:
    """(plain, pipelined, end-to-end speedup) for one configuration.

    The speedup is over the *whole round* including the non-aggregation
    share — the Fig. 10 quantity — so by Amdahl's law it grows with the
    aggregation share, i.e. with model size (§6.4).
    """
    plain = simulate_round(model, update_size, 1, training_time, params)
    m_star, agg_time = optimal_chunks(model, update_size, max_chunks)
    pipelined = RoundTiming(
        aggregation_time=agg_time,
        other_time=plain.other_time,
        n_chunks=m_star,
    )
    return plain, pipelined, plain.total / pipelined.total
