"""The Appendix-C pipeline schedule and the optimal-chunk search.

With m equally-sized chunks and per-chunk stage times τ_s, the finishing
time f_{s,c} of stage s for chunk c obeys

    f_{s,c} = b_{s,c} + τ_s,          b_{s,c} = max(o_{s,c}, r_{s,c}),
    o_{s,c} = f_{s−1,c}               (0 for the first stage),
    r_{s,c} = f_{s,c−1}               for c > 0,
            = f_{q,m−1} or ⊥ (→ 0)    for c = 0,

where q is the latest earlier stage sharing stage s's resource.  The two
r-cases encode that a resource serves one chunk at a time and that an
earlier stage using the same resource has priority (its last chunk must
finish before a later stage may begin).  End-to-end latency is
f_{a,m−1}; m* = argmin over a small range (the paper enumerates
m ∈ [1, 20]).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.pipeline.perf_model import WorkflowPerfModel
from repro.pipeline.stages import Stage, previous_same_resource


@dataclass
class PipelineSchedule:
    """A fully-resolved schedule: begin/finish times per (stage, chunk)."""

    stages: list[Stage]
    n_chunks: int
    begin: np.ndarray  # (stages × chunks)
    finish: np.ndarray  # (stages × chunks)

    @property
    def completion_time(self) -> float:
        return float(self.finish[-1, -1])

    def stage_intervals(self, stage: int) -> list[tuple[float, float]]:
        return [
            (float(self.begin[stage, c]), float(self.finish[stage, c]))
            for c in range(self.n_chunks)
        ]

    def resource_busy_time(self) -> dict:
        """Total busy time per resource (for utilization analysis)."""
        out: dict = {}
        for s, stage in enumerate(self.stages):
            busy = float((self.finish[s] - self.begin[s]).sum())
            out[stage.resource] = out.get(stage.resource, 0.0) + busy
        return out


def build_schedule(
    stages: list[Stage], stage_times: list[float], n_chunks: int
) -> PipelineSchedule:
    """Resolve the recurrence for given per-chunk stage times."""
    if len(stages) != len(stage_times):
        raise ValueError("one time per stage required")
    if n_chunks < 1:
        raise ValueError("n_chunks must be >= 1")
    if any(t < 0 for t in stage_times):
        raise ValueError("stage times must be non-negative")
    n_stages = len(stages)
    begin = np.zeros((n_stages, n_chunks))
    finish = np.zeros((n_stages, n_chunks))
    for s in range(n_stages):
        q = previous_same_resource(stages, s)
        for c in range(n_chunks):
            o = finish[s - 1, c] if s > 0 else 0.0
            if c > 0:
                r = finish[s, c - 1]
            else:
                r = finish[q, n_chunks - 1] if q is not None else 0.0
            begin[s, c] = max(o, r)
            finish[s, c] = begin[s, c] + stage_times[s]
    return PipelineSchedule(
        stages=list(stages), n_chunks=n_chunks, begin=begin, finish=finish
    )


def completion_time(
    model: WorkflowPerfModel, update_size: float, n_chunks: int
) -> float:
    """End-to-end latency f_{a,m} for a specific chunk count."""
    times = model.stage_times(update_size, n_chunks)
    return build_schedule(model.stages, times, n_chunks).completion_time


def optimal_chunks(
    model: WorkflowPerfModel,
    update_size: float,
    max_chunks: int = 20,
) -> tuple[int, float]:
    """m* = argmin_{m ∈ [1, max_chunks]} completion time (§4.2).

    Enumeration is exact and cheap (the paper notes m ∈ [20] suffices).
    Returns ``(m*, completion_time(m*))``.
    """
    if max_chunks < 1:
        raise ValueError("max_chunks must be >= 1")
    best_m, best_t = 1, float("inf")
    for m in range(1, max_chunks + 1):
        t = completion_time(model, update_size, m)
        if t < best_t:
            best_m, best_t = m, t
    return best_m, best_t
