"""The Table-1 stage abstraction.

Secure-aggregation protocols are multi-round server↔client interactions;
Dordis represents them as a sequence of round-trip steps, each tagged
with its dominant resource, and groups consecutive same-resource steps
into *stages* — the minimum scheduling unit of the pipeline (§4.1).  By
construction adjacent stages use different resources, which is what makes
overlapped execution of independent chunk-aggregation tasks possible.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class Resource(Enum):
    """The three system resources of §4: server compute, client compute,
    and server↔client communication."""

    C_COMP = "c-comp"
    COMM = "comm"
    S_COMP = "s-comp"


@dataclass(frozen=True)
class Stage:
    """One pipeline stage: a name and its dominant resource."""

    name: str
    resource: Resource


#: Table 1's 11 steps and their stage grouping.
TABLE1_STEPS: list[tuple[int, str, int, Resource]] = [
    (1, "Clients encode updates.", 1, Resource.C_COMP),
    (2, "Clients generate security keys.", 1, Resource.C_COMP),
    (3, "Clients establish shared secrets.", 1, Resource.C_COMP),
    (4, "Clients mask encoded updates.", 1, Resource.C_COMP),
    (5, "Clients upload masked updates.", 2, Resource.COMM),
    (6, "Server deals with dropout.", 3, Resource.S_COMP),
    (7, "Server computes aggregate update.", 3, Resource.S_COMP),
    (8, "Server updates the global model.", 3, Resource.S_COMP),
    (9, "Server dispatches the aggregate.", 4, Resource.COMM),
    (10, "Clients decode the aggregate.", 5, Resource.C_COMP),
    (11, "Clients use the aggregate.", 5, Resource.C_COMP),
]

#: The 5-stage Dordis workflow (Table 1's right column).
DORDIS_STAGES: list[Stage] = [
    Stage("client-encode-and-mask", Resource.C_COMP),
    Stage("upload", Resource.COMM),
    Stage("server-aggregate", Resource.S_COMP),
    Stage("dispatch", Resource.COMM),
    Stage("client-decode", Resource.C_COMP),
]


def stages_alternate_resources(stages: list[Stage]) -> bool:
    """Check the §4.1 construction invariant: adjacent stages differ."""
    return all(
        a.resource != b.resource for a, b in zip(stages, stages[1:])
    )


def previous_same_resource(stages, index: int) -> int | None:
    """Appendix C's q = max_{i<s}{ i | r_i = r_s }, or None.

    Accepts a sequence of :class:`Stage` objects or of plain resource
    labels (the engine's arbiter passes the latter).
    """

    def resource(entry):
        return entry.resource if isinstance(entry, Stage) else entry

    for i in range(index - 1, -1, -1):
        if resource(stages[i]) == resource(stages[index]):
            return i
    return None
