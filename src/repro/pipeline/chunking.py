"""Chunk partitioning of aggregation tasks (§4.1).

Dordis exploits the coordinate-wise nature of aggregation: splitting
every client's update into m chunks turns one aggregation task into m
*independent* chunk-aggregation sub-tasks whose results concatenate back
— ``Σᵢ Δᵢ = (Σᵢ Δᵢ,1) ∥ … ∥ (Σᵢ Δᵢ,m)``.  The timing side of pipelining
lives in :mod:`repro.pipeline.scheduler`; this module is the *functional*
side: the split/concat operators and a driver that actually runs m
protocol rounds over the chunks, used to validate that chunked execution
preserves the aggregate (and, with XNoise, the per-coordinate noise
level).
"""

from __future__ import annotations

from typing import Callable

import numpy as np


def chunk_boundaries(dimension: int, n_chunks: int) -> list[tuple[int, int]]:
    """Even [start, end) slices; earlier chunks absorb the remainder.

    The paper's reduced design space (§4.1) considers only even
    partitions, which collapses the search to the single parameter m.
    """
    if dimension < 1:
        raise ValueError("dimension must be positive")
    if not 1 <= n_chunks <= dimension:
        raise ValueError("need 1 <= n_chunks <= dimension")
    base, extra = divmod(dimension, n_chunks)
    bounds = []
    start = 0
    for i in range(n_chunks):
        size = base + (1 if i < extra else 0)
        bounds.append((start, start + size))
        start += size
    return bounds


def split_vector(vector: np.ndarray, n_chunks: int) -> list[np.ndarray]:
    """Split one update into m chunk views (copies)."""
    return [
        vector[a:b].copy()
        for a, b in chunk_boundaries(vector.shape[0], n_chunks)
    ]


def concat_chunks(chunks: list[np.ndarray]) -> np.ndarray:
    """The ∥ operator."""
    if not chunks:
        raise ValueError("no chunks to concatenate")
    return np.concatenate(chunks)


def run_chunked_aggregation(
    inputs: dict[int, np.ndarray],
    n_chunks: int,
    aggregate_chunk: Callable[[dict[int, np.ndarray], int], np.ndarray],
) -> np.ndarray:
    """Run one aggregation as m independent chunk sub-tasks.

    ``aggregate_chunk(chunk_inputs, chunk_index)`` runs one sub-task —
    e.g. one full XNoise+SecAgg round over the chunk — and returns the
    chunk aggregate.  Results are concatenated in chunk order, matching
    the §4.1 identity.
    """
    if not inputs:
        raise ValueError("no inputs")
    dimension = next(iter(inputs.values())).shape[0]
    if any(v.shape != (dimension,) for v in inputs.values()):
        raise ValueError("all inputs must share one dimension")
    per_client_chunks = {u: split_vector(v, n_chunks) for u, v in inputs.items()}
    results = []
    for j in range(n_chunks):
        chunk_inputs = {u: chunks[j] for u, chunks in per_client_chunks.items()}
        results.append(np.asarray(aggregate_chunk(chunk_inputs, j)))
    return concat_chunks(results)
