"""A small worker pool for the coordinator's compute plane.

The unmask stage fans two kinds of work across workers: PRG mask
expansion (hashlib releases the GIL around large compression runs, numpy
around large vector ops) and Shamir reconstruction.  The pool is a thin
shell over :class:`concurrent.futures.ThreadPoolExecutor` with two hard
guarantees the callers rely on:

- ``workers=1`` is a *purely inline* serial path — no executor, no
  threads, no queue; ``map`` is a list comprehension.  The parity pin
  "``workers=1`` ≡ ``workers=N`` bit-identical" is therefore a statement
  about the fan-out algebra (order-independent exact int64 sums), not
  about thread scheduling.
- ``map`` always returns results in input order, whatever order the
  workers finished in.

Threads, not processes: the fan-out payloads are multi-megabyte numpy
vectors, and process pools would serialize them through pickle for a
workload whose hot loops already drop the GIL.  On a single-core host
the pool degrades gracefully to (slightly slower than) the serial path —
which is why ``workers=1`` stays the default everywhere.
"""

from __future__ import annotations

import os
from concurrent.futures import Executor, ThreadPoolExecutor
from typing import Any, Callable, Optional, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def resolve_workers(workers: Optional[int]) -> int:
    """Normalize a ``workers`` setting to a concrete pool size.

    ``None`` means "one worker per available core"; any integer must be
    ≥ 1.  ``1`` is the serial path.
    """
    if workers is None:
        return max(1, os.cpu_count() or 1)
    workers = int(workers)
    if workers < 1:
        raise ValueError("workers must be >= 1 (or None for auto)")
    return workers


class WorkerPool:
    """Ordered fan-out over ``workers`` threads (inline when 1)."""

    def __init__(self, workers: Optional[int] = 1):
        self.workers = resolve_workers(workers)
        self._executor: Optional[ThreadPoolExecutor] = (
            ThreadPoolExecutor(max_workers=self.workers)
            if self.workers > 1
            else None
        )

    @property
    def executor(self) -> Optional[Executor]:
        """The underlying executor (``None`` on the serial path)."""
        return self._executor

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        """Apply ``fn`` to every item; results keep the input order."""
        if self._executor is None or len(items) <= 1:
            return [fn(item) for item in items]
        return list(self._executor.map(fn, items))

    async def run_async(self, fn: Callable[..., R], *args: Any) -> R:
        """Run one call off the event loop (inline on the serial path).

        The :class:`repro.engine.RoundEngine` offload hook: a server
        compute op runs here so the loop thread stays free to service
        listener I/O mid-round.
        """
        if self._executor is None:
            return fn(*args)
        import asyncio

        return await asyncio.get_running_loop().run_in_executor(
            self._executor, lambda: fn(*args)
        )

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def split_slabs(items: Sequence[T], n_slabs: int) -> list[list[T]]:
    """Partition ``items`` into ≤ ``n_slabs`` contiguous non-empty slabs.

    Contiguity keeps per-slab results deterministic for any slab count:
    callers reduce slab partials with an exact, order-independent
    operation (int64 addition), so the slab boundaries never show in the
    final value.
    """
    items = list(items)
    if not items:
        return []
    n_slabs = max(1, min(int(n_slabs), len(items)))
    size, extra = divmod(len(items), n_slabs)
    slabs: list[list[T]] = []
    start = 0
    for i in range(n_slabs):
        end = start + size + (1 if i < extra else 0)
        slabs.append(items[start:end])
        start = end
    return slabs
