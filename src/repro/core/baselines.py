"""Noise-enforcement strategies: Orig, Early, Con-k, and XNoise.

These are the schemes compared in Fig. 1 and §6.2.  All of them plan the
same target level σ²_* offline; they differ in what each client adds and
in what the aggregate actually carries when |D| of |U| sampled clients
drop out:

========== =========================== ====================================
strategy    per-client noise variance   actual aggregate variance
========== =========================== ====================================
Orig        σ²_*/|U|                    σ²_*·(|U|−|D|)/|U|   (deficit!)
Early       σ²_*/|U|                    same as Orig, but training stops
                                        once the budget is exhausted
Con-k       σ²_*/(|U|·(1−k/10))         σ²_*·(|U|−|D|)/(|U|·(1−k/10))
XNoise      σ²_*/(|U|−T) ·t/(t−T_C)     exactly σ²_* for |D| ≤ T (Thm 1)
========== =========================== ====================================

The session charges the accountant with the *actual* variance each round,
which is how Orig's ε overrun and Con-k's under/over-shoot reproduce.
"""

from __future__ import annotations

from dataclasses import dataclass


class NoiseStrategy:
    """Interface: how much noise clients add, and what the sum carries."""

    #: Human-readable name used in experiment tables.
    name: str = "base"

    def client_variance(self, target_variance: float, n_sampled: int) -> float:
        """The noise variance one sampled client adds to its update."""
        raise NotImplementedError

    def actual_variance(
        self, target_variance: float, n_sampled: int, n_dropped: int
    ) -> float:
        """The aggregate noise variance after dropout (and any removal)."""
        raise NotImplementedError

    def stops_when_budget_exhausted(self) -> bool:
        """Early stops; everyone else runs to the planned horizon."""
        return False


@dataclass(frozen=True)
class OrigStrategy(NoiseStrategy):
    """Definition 1: even split of exactly the target noise."""

    name: str = "orig"

    def client_variance(self, target_variance, n_sampled):
        return target_variance / n_sampled

    def actual_variance(self, target_variance, n_sampled, n_dropped):
        if not 0 <= n_dropped < n_sampled:
            raise ValueError("need 0 <= n_dropped < n_sampled")
        return target_variance * (n_sampled - n_dropped) / n_sampled


@dataclass(frozen=True)
class EarlyStopStrategy(OrigStrategy):
    """Orig + stop training when the privacy budget runs out (§2.3.1)."""

    name: str = "early"

    def stops_when_budget_exhausted(self) -> bool:
        return True


@dataclass(frozen=True)
class ConservativeStrategy(NoiseStrategy):
    """Con-k: over-provision for an estimated dropout rate (§2.3.1).

    ``estimated_rate`` is the guessed per-round dropout fraction (Con8 →
    0.8, Con5 → 0.5, Con2 → 0.2).  Clients add σ²_*/(|U|·(1−est)) so the
    aggregate hits the target iff the guess was exact: overestimating
    wastes utility (extra noise), underestimating still overruns ε.
    """

    estimated_rate: float = 0.5
    name: str = "con"

    def __post_init__(self) -> None:
        if not 0 <= self.estimated_rate < 1:
            raise ValueError("estimated_rate must be in [0, 1)")

    def client_variance(self, target_variance, n_sampled):
        return target_variance / (n_sampled * (1.0 - self.estimated_rate))

    def actual_variance(self, target_variance, n_sampled, n_dropped):
        if not 0 <= n_dropped < n_sampled:
            raise ValueError("need 0 <= n_dropped < n_sampled")
        survivors = n_sampled - n_dropped
        return target_variance * survivors / (n_sampled * (1.0 - self.estimated_rate))


@dataclass(frozen=True)
class XNoiseStrategy(NoiseStrategy):
    """Definition 2: add-then-remove with decomposition (Theorem 1).

    ``tolerance_fraction`` sets T = ⌊fraction·|U|⌋.  Within tolerance the
    aggregate is exactly σ²_* (times the collusion inflation); beyond it
    the remaining (|U|−|D|) clients' excessive shares are all that's left.
    """

    tolerance_fraction: float = 0.5
    inflation: float = 1.0
    name: str = "xnoise"

    def __post_init__(self) -> None:
        if not 0 <= self.tolerance_fraction < 1:
            raise ValueError("tolerance_fraction must be in [0, 1)")
        if self.inflation < 1.0:
            raise ValueError("inflation must be >= 1")

    def tolerance(self, n_sampled: int) -> int:
        return min(int(self.tolerance_fraction * n_sampled), n_sampled - 1)

    def client_variance(self, target_variance, n_sampled):
        t = self.tolerance(n_sampled)
        return target_variance / (n_sampled - t) * self.inflation

    def actual_variance(self, target_variance, n_sampled, n_dropped):
        if not 0 <= n_dropped < n_sampled:
            raise ValueError("need 0 <= n_dropped < n_sampled")
        t = self.tolerance(n_sampled)
        if n_dropped <= t:
            return target_variance * self.inflation
        survivors = n_sampled - n_dropped
        return survivors * self.client_variance(target_variance, n_sampled)


def make_strategy(name: str, **kwargs) -> NoiseStrategy:
    """Factory from config strings: 'orig', 'early', 'con5', 'xnoise'…

    'conK' parses K as the estimated dropout in tenths (the paper's
    Con8/Con5/Con2 naming).
    """
    if name == "orig":
        return OrigStrategy()
    if name == "early":
        return EarlyStopStrategy()
    if name == "xnoise":
        return XNoiseStrategy(**kwargs)
    if name.startswith("con"):
        digits = name[3:]
        if digits:
            kwargs.setdefault("estimated_rate", int(digits) / 10.0)
        return ConservativeStrategy(**kwargs)
    raise ValueError(f"unknown strategy {name!r}")
