"""Verifiable random client sampling (§7).

Protocol sketch from the paper's discussion section:

1. the server announces a round;
2. every client evaluates its VRF on the round index; it volunteers iff
   the output falls below a public threshold;
3. volunteers send (output, proof) to the server;
4. the server fixes the sample — over-selecting via a slightly raised
   threshold, then trimming to the target size by an indiscriminate
   criterion on the randomness (smallest outputs first) — and broadcasts
   all responses;
5. each participant verifies every peer's proof, threshold compliance,
   and round binding before proceeding.

Because VRF outputs are unforgeable and unique, a malicious server can
neither inject non-volunteers nor grind the sample toward colluded
clients; it can only drop volunteers, which shrinks — never biases — the
sample beyond the trim rule.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.dh import DHGroup, MODP_2048
from repro.crypto.vrf import (
    VRFProof,
    generate_vrf_keypair,
    output_to_unit,
    vrf_prove,
    vrf_verify,
)


class SamplingViolation(Exception):
    """Raised by verifying clients when the broadcast sample is invalid."""


def round_tag(round_index: int) -> bytes:
    return f"dordis-sampling-round:{round_index}".encode("utf-8")


@dataclass(frozen=True)
class SamplingTicket:
    """One volunteer's claim: VRF output + proof for this round."""

    client_id: int
    output: bytes
    proof: VRFProof


class SamplingClient:
    """Client-side half: volunteer decision and broadcast verification."""

    def __init__(self, client_id: int, group: DHGroup = MODP_2048):
        self.id = client_id
        self.group = group
        self._sk, self.public_key = generate_vrf_keypair(group)

    def ticket(self, round_index: int) -> SamplingTicket:
        output, proof = vrf_prove(self._sk, round_tag(round_index), self.group)
        return SamplingTicket(client_id=self.id, output=output, proof=proof)

    def volunteers(self, round_index: int, threshold: float) -> bool:
        """Participate iff the verifiable randomness lands under the bar."""
        return output_to_unit(self.ticket(round_index).output) < threshold

    @staticmethod
    def verify_sample(
        round_index: int,
        threshold: float,
        sample: list[SamplingTicket],
        public_keys: dict[int, int],
        group: DHGroup = MODP_2048,
    ) -> None:
        """The step-5 checks; raises :class:`SamplingViolation` on fraud."""
        seen = set()
        for ticket in sample:
            if ticket.client_id in seen:
                raise SamplingViolation(f"duplicate ticket for {ticket.client_id}")
            seen.add(ticket.client_id)
            pk = public_keys.get(ticket.client_id)
            if pk is None:
                raise SamplingViolation(
                    f"client {ticket.client_id} is not in the PKI"
                )
            if not vrf_verify(
                pk, round_tag(round_index), ticket.output, ticket.proof, group
            ):
                raise SamplingViolation(
                    f"invalid VRF proof from client {ticket.client_id}"
                )
            if output_to_unit(ticket.output) >= threshold:
                raise SamplingViolation(
                    f"client {ticket.client_id} did not clear the threshold"
                )


class SamplingServer:
    """Server-side half: threshold selection and sample fixing."""

    def __init__(self, population: int, sample_size: int, over_select: float = 1.5):
        if not 1 <= sample_size <= population:
            raise ValueError("need 1 <= sample_size <= population")
        if over_select < 1.0:
            raise ValueError("over_select must be >= 1")
        self.population = population
        self.sample_size = sample_size
        self.over_select = over_select

    @property
    def threshold(self) -> float:
        """Volunteer probability targeting over_select × sample_size."""
        return min(1.0, self.over_select * self.sample_size / self.population)

    def fix_sample(self, tickets: list[SamplingTicket]) -> list[SamplingTicket]:
        """Trim volunteers to the target size — smallest outputs first,
        the paper's 'indiscriminate criteria on their randomness'."""
        ordered = sorted(tickets, key=lambda t: output_to_unit(t.output))
        return ordered[: self.sample_size]


def run_sampling_round(
    clients: list[SamplingClient],
    server: SamplingServer,
    round_index: int,
    group: DHGroup = MODP_2048,
) -> list[SamplingTicket]:
    """Drive one honest sampling round end to end; returns the sample.

    Every selected client verifies the broadcast before the function
    returns — a :class:`SamplingViolation` would propagate.
    """
    threshold = server.threshold
    tickets = [
        c.ticket(round_index)
        for c in clients
        if c.volunteers(round_index, threshold)
    ]
    sample = server.fix_sample(tickets)
    public_keys = {c.id: c.public_key for c in clients}
    SamplingClient.verify_sample(
        round_index, threshold, sample, public_keys, group
    )
    return sample
