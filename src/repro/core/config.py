"""Configuration surface of a Dordis training session."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.fleet.fleet import FleetConfig


@dataclass
class DordisConfig:
    """Everything a :class:`repro.core.dordis.DordisSession` needs.

    Task / model
    ------------
    task:
        "cifar10-like" | "cifar100-like" | "femnist-like" | "reddit-like".
    model:
        "softmax" | "mlp" | "bigram" (bigram only for the language task).
    num_clients, sample_size, rounds:
        Population, per-round sample |U|, and training horizon R.
    local_epochs, batch_size, learning_rate, optimizer:
        Local-training hyperparameters (§6.1).

    Privacy
    -------
    epsilon, delta:
        The global budget (ε_G, δ).  δ defaults to 1/num_clients, the
        paper's "reciprocal of the total number of clients".
    clip_bound:
        Per-client L2 clip (the DP sensitivity).
    mechanism:
        "gaussian" (float-domain simulation) or "skellam" (the DSkellam
        integer path, §5).
    bits:
        DSkellam ring width (paper: 20).

    Fleet / scenario
    ----------------
    fleet:
        The device population (:class:`repro.fleet.FleetConfig`):
        per-client compute slowdown, separate uplink/downlink
        bandwidth, and the availability model dropout is derived from —
        ``"fixed"`` (§6.1 i.i.d. at ``dropout_rate``) or ``"trace"``
        (Fig.-1a behaviour-trace churn, where the rate swings per
        round).  The default builds a symmetric heterogeneous fleet, so
        every session's transports carry per-direction link latency and
        ``round_seconds_history`` is meaningful out of the box.
        ``fleet=None`` is the documented opt-out: legacy zero-latency
        execution (durations 0.0 unless the engine carries its own
        timing source) with hard-wired fixed-rate dropout.

    Dropout / enforcement
    ---------------------
    dropout_rate:
        Per-round i.i.d. dropout of sampled clients (§6.1's model) when
        the fleet's availability is ``"fixed"``; ignored under
        ``"trace"``, where the behaviour trace sets each round's rate.
    strategy:
        "orig" | "early" | "conK" | "xnoise" (§2.3.1 / §3).
    tolerance_fraction:
        XNoise's T as a fraction of |U|.

    Aggregation
    -----------
    secure_aggregation:
        "simulated" — noise algebra without masking (fast; identical
        privacy accounting); "secagg" — run the real XNoise+SecAgg
        protocol per round (slow; for end-to-end validation).
    pipeline_chunks:
        m ≥ 1: split each secagg round into m chunk sub-rounds executed
        concurrently on the round engine per the §4.1 pipeline schedule
        (1 → plain, unchunked execution).  Only affects the "secagg"
        aggregation path.
    transport:
        Engine transport backend for protocol rounds:
        "inprocess" — direct dispatch of live Python objects (fastest);
        "serialized" — every payload crosses the :mod:`repro.wire`
        serialization boundary in-process, so traced per-stage traffic
        is the measured framed byte count;
        "sockets" — each client behind a real localhost TCP connection
        with framed messages and per-connection accounting;
        "websocket" — each client behind a real RFC 6455 WebSocket
        (HTTP upgrade handshake, binary messages); accounting includes
        the WebSocket framing overhead, so its traffic runs a few
        bytes per message above the other wire backends.
        Ignored when the caller supplies its own engine.
    """

    # Task / model.
    task: str = "cifar10-like"
    model: str = "softmax"
    num_clients: int = 100
    sample_size: int = 16
    rounds: int = 30
    samples_per_client: int = 40
    local_epochs: int = 1
    batch_size: int = 20
    learning_rate: float = 0.05
    optimizer: str = "sgd"
    mlp_hidden: int = 32

    # Privacy.
    epsilon: float = 6.0
    delta: Optional[float] = None
    clip_bound: float = 1.0
    mechanism: str = "gaussian"
    bits: int = 20

    # Fleet / scenario.
    fleet: Optional[FleetConfig] = field(default_factory=FleetConfig)

    # Dropout / enforcement.
    dropout_rate: float = 0.0
    strategy: str = "xnoise"
    tolerance_fraction: float = 0.5
    collusion_tolerance: int = 0

    # Aggregation.
    secure_aggregation: str = "simulated"
    dh_group: str = "modp512"
    pipeline_chunks: int = 1
    transport: str = "inprocess"

    seed: int = 0

    def __post_init__(self) -> None:
        known_tasks = {"cifar10-like", "cifar100-like", "femnist-like", "reddit-like"}
        if self.task not in known_tasks:
            raise ValueError(f"task must be one of {sorted(known_tasks)}")
        if self.model not in {"softmax", "mlp", "bigram"}:
            raise ValueError("model must be softmax, mlp, or bigram")
        if self.task == "reddit-like" and self.model != "bigram":
            raise ValueError("the language task requires the bigram model")
        if self.task != "reddit-like" and self.model == "bigram":
            raise ValueError("the bigram model requires the language task")
        if not 1 <= self.sample_size <= self.num_clients:
            raise ValueError("need 1 <= sample_size <= num_clients")
        if self.rounds < 1:
            raise ValueError("rounds must be >= 1")
        if self.epsilon <= 0:
            raise ValueError("epsilon must be positive")
        if self.delta is None:
            self.delta = 1.0 / self.num_clients
        if not 0 < self.delta < 1:
            raise ValueError("delta must be in (0, 1)")
        if self.clip_bound <= 0:
            raise ValueError("clip_bound must be positive")
        if self.mechanism not in {"gaussian", "skellam"}:
            raise ValueError("mechanism must be gaussian or skellam")
        if not 0 <= self.dropout_rate < 1:
            raise ValueError("dropout_rate must be in [0, 1)")
        if self.fleet is not None and not isinstance(self.fleet, FleetConfig):
            raise ValueError(
                "fleet must be a repro.fleet.FleetConfig (or None to opt "
                "out of fleet timing/availability)"
            )
        if self.secure_aggregation not in {"simulated", "secagg"}:
            raise ValueError("secure_aggregation must be simulated or secagg")
        if self.pipeline_chunks < 1:
            raise ValueError("pipeline_chunks must be >= 1")
        if self.transport not in {
            "inprocess", "serialized", "sockets", "websocket",
        }:
            raise ValueError(
                "transport must be inprocess, serialized, sockets, "
                "or websocket"
            )

    @property
    def is_language_task(self) -> bool:
        return self.task == "reddit-like"
