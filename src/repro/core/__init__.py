"""The end-to-end Dordis framework (Fig. 7) and baseline strategies.

- :mod:`repro.core.config`    — :class:`DordisConfig`, the single knob
  surface for tasks, privacy, dropout, and aggregation mode.
- :mod:`repro.core.baselines` — noise-enforcement strategies: Orig
  (Definition 1), Early stopping, Con-k conservative over-provisioning,
  and XNoise (Definition 2) — the Fig. 1 comparison set.
- :mod:`repro.core.dordis`    — :class:`DordisSession`: the training
  loop tying FL, distributed DP, dropout, accounting, and (optionally)
  the real XNoise+SecAgg protocol together.
"""

from repro.core.config import DordisConfig
from repro.core.baselines import (
    NoiseStrategy,
    OrigStrategy,
    EarlyStopStrategy,
    ConservativeStrategy,
    XNoiseStrategy,
    make_strategy,
)
from repro.core.dordis import DordisSession, TrainingResult

__all__ = [
    "DordisConfig",
    "NoiseStrategy",
    "OrigStrategy",
    "EarlyStopStrategy",
    "ConservativeStrategy",
    "XNoiseStrategy",
    "make_strategy",
    "DordisSession",
    "TrainingResult",
]
