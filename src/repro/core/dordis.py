"""The Dordis training session (Fig. 7's end-to-end workflow).

Each round: ① sample clients and train locally; ②/③ clip, encode, and
perturb updates per the configured noise strategy; ④ aggregate (either
the fast noise-algebra simulation or the real XNoise+SecAgg protocol),
decode, and apply FedAvg — then charge the RDP accountant with the
*actual* aggregate noise level, which is where Orig's budget overrun and
XNoise's exact enforcement become visible.

Rounds are submitted to a shared :class:`repro.engine.RoundEngine`:
each round's data dependency chains on its predecessor's handle, the
engine's virtual resource clocks persist across rounds (so consecutive
rounds land on one session timeline and overlap wherever the dependency
structure allows), and the real-protocol aggregation path executes
chunk-pipelined per the §4.1 schedule when ``config.pipeline_chunks > 1``.
Because the engine arbitrates resources with a discrete-event
virtual-time arbiter (:mod:`repro.engine.arbiter`), a session's
multi-round traces are deterministic and independent of asyncio task
scheduling — identical configs reproduce identical
``round_seconds_history`` trajectories.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.baselines import NoiseStrategy, make_strategy
from repro.core.config import DordisConfig
from repro.engine import RoundEngine
from repro.engine.core import run_sync
from repro.dp.accountant import RdpAccountant
from repro.dp.planner import NoisePlan, plan_noise
from repro.dp.quantize import clip_l2
from repro.dp.skellam import SkellamConfig, SkellamMechanism, choose_scale
from repro.fl.client import LocalTrainer
from repro.fl.data import (
    FederatedDataset,
    make_cifar10_like,
    make_cifar100_like,
    make_femnist_like,
    make_text_task,
)
from repro.fl.dropout import FixedRateDropout
from repro.fleet import Fleet
from repro.fl.models import BigramLM, MLPClassifier, SoftmaxRegression
from repro.fl.optim import SGD, AdamW
from repro.fl.server import FedAvgServer
from repro.utils.rng import derive_rng


@dataclass
class TrainingResult:
    """Outcome of a session: utility + privacy trajectories.

    ``metric_history`` holds accuracy (classification, higher better) or
    perplexity (language, lower better) per completed round;
    ``epsilon_history`` the cumulative privacy spend after each round.
    ``round_seconds_history`` is the engine-traced simulated duration of
    each completed round.  By default it is *meaningful*: the session's
    fleet (:attr:`DordisConfig.fleet`) supplies the timing source — the
    real-protocol (``secagg``) path charges every exchange's framed
    bytes against each client's own uplink/downlink, and the fast
    noise-algebra path records the fleet's modeled
    broadcast → local-train → upload round cost as traced spans.
    Configuring ``fleet=None`` (the documented opt-out) restores the
    legacy zero-latency behaviour: entries are then 0.0 unless the
    caller supplies an engine with its own timing source (e.g.
    ``DordisSession(cfg, engine=RoundEngine(transport=SimulatedNetworkTransport(...)))``
    or a ``StageTiming`` model).
    """

    metric_name: str
    metric_history: list = field(default_factory=list)
    epsilon_history: list = field(default_factory=list)
    dropout_history: list = field(default_factory=list)
    round_seconds_history: list = field(default_factory=list)
    rounds_completed: int = 0
    stopped_early: bool = False

    @property
    def final_metric(self) -> float:
        return self.metric_history[-1] if self.metric_history else float("nan")

    @property
    def final_accuracy(self) -> float:
        if self.metric_name != "accuracy":
            raise ValueError("this session tracked perplexity, not accuracy")
        return self.final_metric

    @property
    def final_perplexity(self) -> float:
        if self.metric_name != "perplexity":
            raise ValueError("this session tracked accuracy, not perplexity")
        return self.final_metric

    @property
    def epsilon_consumed(self) -> float:
        return self.epsilon_history[-1] if self.epsilon_history else 0.0


_TASK_FACTORIES = {
    "cifar10-like": make_cifar10_like,
    "cifar100-like": make_cifar100_like,
    "femnist-like": make_femnist_like,
}


def build_transport(name: str, fleet: Fleet | None = None):
    """Engine transport for a :attr:`DordisConfig.transport` name.

    With a fleet, every backend carries the fleet's per-direction link
    model (request frames on each client's downlink, responses on its
    uplink — :func:`repro.fleet.fleet_transport`); without one, the
    legacy zero-latency backends.
    """
    from repro.engine import (
        InProcessTransport,
        SerializingTransport,
        StreamTransport,
        WebSocketTransport,
    )

    if fleet is not None:
        from repro.fleet import fleet_transport

        return fleet_transport(name, fleet)
    if name == "serialized":
        return SerializingTransport(InProcessTransport())
    if name == "sockets":
        return StreamTransport()
    if name == "websocket":
        return WebSocketTransport()
    if name == "inprocess":
        return InProcessTransport()
    raise ValueError(f"unknown transport {name!r}")


class DordisSession:
    """One configured training run."""

    def __init__(
        self,
        config: DordisConfig,
        dataset: FederatedDataset | None = None,
        dropout_model=None,
        strategy: NoiseStrategy | None = None,
        engine: RoundEngine | None = None,
    ):
        self.config = config
        # The fleet (device profiles + availability) is the scenario the
        # session runs against; dropout and link timing derive from it
        # unless the caller overrides either explicitly.
        self.fleet: Fleet | None = None
        if config.fleet is not None:
            self.fleet = Fleet.build(
                config.num_clients,
                config.fleet,
                dropout_rate=config.dropout_rate,
                horizon=max(config.rounds, 1),
                seed=config.seed,
            )
        # Protocol rounds shift client ids by +1 (non-zero Shamir
        # points), so the engine transport — which only ever serves
        # those rounds; the fast path bypasses it — addresses the fleet
        # through the shifted view, pricing each client's frames on its
        # *own* links.  The view is an O(1) arithmetic offset over the
        # same columnar store (shared profile LRU), so this stays free
        # even for million-device populations.
        self.engine = engine or RoundEngine(
            transport=build_transport(
                config.transport,
                self.fleet.with_id_offset(1) if self.fleet else None,
            )
        )
        self.dataset = dataset if dataset is not None else self._build_dataset()
        self.model = self._build_model()
        self.strategy = strategy or make_strategy(
            config.strategy,
            **(
                {"tolerance_fraction": config.tolerance_fraction}
                if config.strategy == "xnoise"
                else {}
            ),
        )
        if dropout_model is not None:
            self.dropout_model = dropout_model
        elif self.fleet is not None:
            self.dropout_model = self.fleet.availability
        else:
            self.dropout_model = FixedRateDropout(
                config.dropout_rate, seed=config.seed
            )
        self.plan = self._plan_noise()
        self.skellam: SkellamMechanism | None = None
        if config.mechanism == "skellam":
            self.skellam = self._build_skellam()
        if config.secure_aggregation == "secagg":
            from repro.core.baselines import XNoiseStrategy

            if config.mechanism != "skellam" or not isinstance(
                self.strategy, XNoiseStrategy
            ):
                raise ValueError(
                    "secure_aggregation='secagg' runs the integrated "
                    "XNoise+SecAgg protocol and requires "
                    "mechanism='skellam' with strategy='xnoise'"
                )

    # ------------------------------------------------------------------
    def _build_dataset(self) -> FederatedDataset:
        cfg = self.config
        if cfg.is_language_task:
            return make_text_task(n_clients=cfg.num_clients, seed=cfg.seed)
        return _TASK_FACTORIES[cfg.task](
            n_clients=cfg.num_clients,
            samples_per_client=cfg.samples_per_client,
            seed=cfg.seed,
        )

    def _build_model(self):
        cfg = self.config
        ds = self.dataset
        if cfg.model == "softmax":
            return SoftmaxRegression(ds.n_features, ds.n_classes, seed=cfg.seed)
        if cfg.model == "mlp":
            return MLPClassifier(
                ds.n_features, cfg.mlp_hidden, ds.n_classes, seed=cfg.seed
            )
        return BigramLM(ds.n_classes, seed=cfg.seed)

    def _plan_noise(self) -> NoisePlan:
        cfg = self.config
        if cfg.mechanism == "gaussian":
            return plan_noise(
                rounds=cfg.rounds,
                epsilon_budget=cfg.epsilon,
                delta=cfg.delta,
                l2_sensitivity=cfg.clip_bound,
                mechanism="gaussian",
            )
        # DSkellam: plan in the scaled integer domain.  First get a
        # scale-free noise multiplier from the Gaussian proxy, then fix
        # the quantization scale, then re-plan against the true scaled
        # sensitivities (§5's configuration procedure).
        proxy = plan_noise(
            rounds=cfg.rounds,
            epsilon_budget=cfg.epsilon,
            delta=cfg.delta,
            l2_sensitivity=cfg.clip_bound,
            mechanism="gaussian",
        )
        z = proxy.noise_multiplier
        dim = self.model.n_params
        scale = choose_scale(
            cfg.bits, cfg.sample_size, cfg.clip_bound, z, dim
        )
        mech = SkellamMechanism(
            SkellamConfig(
                dimension=dim, clip_bound=cfg.clip_bound, bits=cfg.bits,
                scale=scale,
            )
        )
        d2, d1 = mech.scaled_sensitivities()
        self._skellam_template = mech
        return plan_noise(
            rounds=cfg.rounds,
            epsilon_budget=cfg.epsilon,
            delta=cfg.delta,
            l2_sensitivity=d2,
            l1_sensitivity=d1,
            mechanism="skellam",
        )

    def _build_skellam(self) -> SkellamMechanism:
        return self._skellam_template

    # ------------------------------------------------------------------
    def _optimizer_factory(self):
        cfg = self.config
        if cfg.optimizer == "adamw":
            return lambda: AdamW(lr=cfg.learning_rate)
        return lambda: SGD(lr=cfg.learning_rate, momentum=0.9)

    def _evaluate(self, server: FedAvgServer) -> float:
        test = self.dataset.test
        if self.config.is_language_task:
            return server.evaluate_perplexity(test.x, test.y)
        return server.evaluate(test.x, test.y)

    # ------------------------------------------------------------------
    def run(self, rounds: int | None = None) -> TrainingResult:
        """Train for the configured horizon; returns the trajectories."""
        horizon = rounds if rounds is not None else self.config.rounds
        return run_sync(self._run_rounds(horizon))

    async def _run_rounds(self, horizon: int) -> TrainingResult:
        """Submit each round to the engine, chained on its predecessor.

        FedAvg's data dependency (round r+1 trains on round r's model)
        serializes the chain via ``after=``; protocols without that
        dependency may submit with ``after=None`` and genuinely overlap
        on the shared engine timeline.
        """
        cfg = self.config
        server = FedAvgServer(self.model)
        trainer = LocalTrainer(
            self.model,
            self._optimizer_factory(),
            epochs=cfg.local_epochs,
            batch_size=cfg.batch_size,
        )
        accountant = RdpAccountant(delta=cfg.delta)
        sampler = derive_rng("client-sampling", cfg.seed)
        result = TrainingResult(
            metric_name="perplexity" if cfg.is_language_task else "accuracy"
        )

        previous = None
        for r in range(horizon):
            handle = self.engine.submit_round(
                lambda r=r: self._run_one_round(
                    r, server, trainer, accountant, sampler, result
                ),
                after=previous,
            )
            stop = await handle.result()
            previous = handle
            if stop:
                break
        return result

    async def _run_one_round(
        self, r, server, trainer, accountant, sampler, result
    ) -> bool:
        """One Fig.-7 round; returns True when the session should stop."""
        cfg = self.config
        sampled = sorted(
            sampler.choice(cfg.num_clients, size=cfg.sample_size, replace=False)
        )
        dropped = self.dropout_model.dropped(sampled, r)
        survivors = [u for u in sampled if u not in dropped]
        if not survivors:
            result.dropout_history.append(1.0)
            return False
        result.dropout_history.append(len(dropped) / len(sampled))
        rounds_mark = len(self.engine.current_job_rounds())

        if cfg.secure_aggregation == "secagg":
            from repro.secagg.types import ProtocolAbort

            # The real protocol: every sampled client trains (dropped
            # ones drop *before upload*, after local work).
            updates_by_id = {
                u: trainer.compute_update(
                    server.global_params,
                    self.dataset.shards[u],
                    round_index=r,
                    client_id=u,
                )
                for u in sampled
            }
            try:
                update_sum = await self._aggregate_secagg(
                    updates_by_id, sampled, dropped, r
                )
            except ProtocolAbort:
                # Dropout beyond the SecAgg threshold: the protocol
                # (correctly) refuses to unmask, so the round yields no
                # aggregate.  Under churning availability (behaviour
                # traces) such rounds are expected operational reality —
                # skip the model update like an all-dropped round and
                # keep training, rather than killing the session.
                return False
        else:
            updates = [
                trainer.compute_update(
                    server.global_params,
                    self.dataset.shards[u],
                    round_index=r,
                    client_id=u,
                )
                for u in survivors
            ]
            update_sum = self._aggregate(updates, sampled, survivors, r)
            if self.fleet is not None:
                # The fast path executes no protocol rounds, so the
                # fleet's timing model supplies the round's cost: model
                # broadcast on every sampled downlink, local training
                # gated by the compute straggler, update upload on every
                # surviving uplink.  Recorded as traced spans, it lands
                # in round_seconds_history exactly like an engine-
                # executed round's latency would.
                cost = self.fleet.round_cost(
                    sampled, survivors, 8 * self.model.n_params
                )
                self.engine.record_modeled_round(
                    (
                        ("broadcast", "comm", cost.down_seconds,
                         cost.down_bytes, 0),
                        ("local_train", "c-comp", cost.compute_seconds, 0, 0),
                        ("upload", "comm", cost.up_seconds, 0, cost.up_bytes),
                    )
                )
        server.apply_update_sum(update_sum, len(survivors))

        actual = self.strategy.actual_variance(
            self.plan.variance, len(sampled), len(dropped)
        )
        self.plan.spend_round(accountant, actual)
        result.epsilon_history.append(accountant.epsilon())
        result.metric_history.append(self._evaluate(server))
        # Sum the durations of exactly the engine rounds this job ran
        # (the sink is job-local, so concurrent jobs on the same engine
        # never leak into each other's accounting).
        executed = self.engine.current_job_rounds()[rounds_mark:]
        result.round_seconds_history.append(
            sum(finish - begin for begin, finish in executed)
        )
        result.rounds_completed = r + 1

        if (
            self.strategy.stops_when_budget_exhausted()
            and accountant.epsilon() >= cfg.epsilon
        ):
            result.stopped_early = True
            return True
        return False

    # ------------------------------------------------------------------
    def _aggregate(
        self,
        updates: list[np.ndarray],
        sampled: list[int],
        survivors: list[int],
        round_index: int,
    ) -> np.ndarray:
        """Clip, perturb, and sum survivor updates (noise per strategy)."""
        cfg = self.config
        n_sampled = len(sampled)
        # What the aggregate should carry after any server-side removal
        # (survivors each added the strategy's client variance; XNoise's
        # removal step brings the sum down to this).
        actual_var = self.strategy.actual_variance(
            self.plan.variance, n_sampled, n_sampled - len(survivors)
        )

        if cfg.mechanism == "skellam":
            return self._aggregate_skellam(
                updates, survivors, round_index, actual_var
            )

        rng = derive_rng("dp-noise", cfg.seed, round_index)
        total = np.zeros_like(updates[0])
        for update in updates:
            total = total + clip_l2(update, cfg.clip_bound)
        # Survivors added client_var each; the strategy's removal step
        # (XNoise) brings the sum to actual_var — we sample the net
        # effect directly, which is distribution-identical because the
        # noise family is closed under summation (§3).
        if actual_var > 0:
            total = total + rng.normal(0.0, np.sqrt(actual_var), total.shape)
        return total

    def _aggregate_skellam(
        self,
        updates: list[np.ndarray],
        survivors: list[int],
        round_index: int,
        actual_var: float,
    ) -> np.ndarray:
        """The DSkellam integer path: encode, integer-sum, decode."""
        assert self.skellam is not None
        mech = self.skellam
        rng = derive_rng("skellam-noise", self.config.seed, round_index)
        encoded = []
        per_survivor_var = actual_var / len(survivors)
        for update in updates:
            encoded.append(mech.encode(update, per_survivor_var, rng))
        return mech.decode(mech.aggregate_ring(encoded))

    async def _aggregate_secagg(
        self,
        updates_by_id: dict[int, np.ndarray],
        sampled: list[int],
        dropped: set[int],
        round_index: int,
    ) -> np.ndarray:
        """Run the integrated XNoise+SecAgg protocol for real (Fig. 5).

        With ``pipeline_chunks > 1`` the round executes as m independent
        chunk sub-rounds overlapped on the engine (§4.1): each chunk is a
        full XNoise+SecAgg round over its coordinate slice, and the chunk
        aggregates concatenate back per the ``Σ ∥`` identity.
        """
        from repro.secagg.driver import DropoutSchedule
        from repro.secagg.types import SecAggConfig
        from repro.secagg.workflow import with_dropout
        from repro.xnoise.protocol import (
            XNoiseConfig,
            arun_xnoise_round,
            xnoise_round_components,
        )

        assert self.skellam is not None
        cfg = self.config
        mech = self.skellam
        n = len(sampled)
        tolerance = self.strategy.tolerance(n)  # type: ignore[attr-defined]
        # Semi-honest SecAgg requires t > |U|/2; keep t as low as that
        # allows so the protocol tolerates dropout up to the threshold.
        threshold = max(2, n // 2 + 1)
        xconfig = XNoiseConfig(
            secagg=SecAggConfig(
                threshold=threshold,
                bits=cfg.bits,
                dimension=mech.padded_dimension,
                dh_group=cfg.dh_group,
            ),
            n_sampled=n,
            tolerance=tolerance,
            target_variance=self.plan.variance,
            collusion_tolerance=cfg.collusion_tolerance,
        )
        rng = derive_rng("secagg-encode", cfg.seed, round_index)
        # Shamir evaluation points must be non-zero: shift ids by one.
        inputs = {
            int(u) + 1: mech.encode_signal(updates_by_id[u], rng) for u in sampled
        }
        schedule = DropoutSchedule.before_upload({int(u) + 1 for u in dropped})
        # The round's client-compute stages run at the pace of the
        # sampled straggler: scale whatever op cost model the engine
        # carries by the fleet's compute slowdown (a no-op for the
        # default zero-cost timing).
        timing = None
        if self.fleet is not None:
            from repro.engine import ScaledResourceTiming

            timing = ScaledResourceTiming(
                self.engine.timing,
                {"c-comp": self.fleet.straggler_factor(sampled)},
            )

        n_chunks = min(cfg.pipeline_chunks, mech.padded_dimension)
        if n_chunks <= 1:
            result = await arun_xnoise_round(
                xconfig, inputs, schedule,
                round_index=round_index, engine=self.engine, timing=timing,
            )
            return mech.decode(result.aggregate)

        transport = with_dropout(self.engine.transport, schedule)

        def chunk_factory(j: int, chunk_inputs: dict[int, np.ndarray]):
            dim = next(iter(chunk_inputs.values())).shape[0]
            chunk_config = replace(
                xconfig, secagg=replace(xconfig.secagg, dimension=dim)
            )
            return xnoise_round_components(
                chunk_config, chunk_inputs, round_index=round_index
            )

        chunked = await self.engine.run_chunked_round(
            chunk_factory, inputs, n_chunks, transport=transport,
            timing=timing,
        )
        return mech.decode(chunked.result)
