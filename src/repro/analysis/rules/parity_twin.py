"""parity-twin: every ``*_reference`` definition has a live fast twin.

The repo's performance discipline (ARCHITECTURE.md invariants 9–11)
keeps each optimized hot path next to the original scalar code as an
executable specification: ``share`` / ``share_reference``,
``collect_unmask`` / ``collect_unmask_reference``, class ``PRG`` /
``PRGReference``.  Nothing used to stop a refactor from silently
deleting one side of a pair, renaming it out of sync, or dropping the
parity test.  This rule checks, for every reference definition under
``src/repro``:

1. a fast twin with the un-suffixed name exists in the same scope
   (the class for methods, the module for functions — twins live side
   by side by convention);
2. function twins share the exact argument-name tuple (a signature
   drift means the parity test can no longer call both sides the same
   way);
3. at least one file under ``tests/`` names *both* twins (word-bounded
   match), i.e. a pinning test exists.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable

from repro.analysis.core import (
    CheckContext,
    Finding,
    Rule,
    SourceFile,
    arg_names,
    register,
)

_DEFS = (ast.FunctionDef, ast.AsyncFunctionDef)


def _twin_name(name: str) -> str | None:
    """``share_reference`` → ``share``; class ``PRGReference`` → ``PRG``."""
    if name.endswith("_reference") and len(name) > len("_reference"):
        return name[: -len("_reference")]
    if name.endswith("Reference") and len(name) > len("Reference"):
        return name[: -len("Reference")]
    return None


def _scope_lookup(body: list[ast.stmt], name: str) -> ast.AST | None:
    for node in body:
        if isinstance(node, (*_DEFS, ast.ClassDef)) and node.name == name:
            return node
    return None


@register
class ParityTwinRule(Rule):
    id = "parity-twin"
    description = (
        "every *_reference def/class has a same-scope fast twin with an "
        "identical signature, and a test file names both"
    )
    invariants = ("9", "10", "11")

    def check(self, ctx: CheckContext) -> Iterable[Finding]:
        for src in ctx.sources:
            yield from self._check_file(ctx, src)

    def _check_file(self, ctx: CheckContext, src: SourceFile) -> Iterable[Finding]:
        # (reference node, enclosing body to search for the twin)
        scopes: list[tuple[ast.AST, list[ast.stmt]]] = []
        for node in src.tree.body:
            if isinstance(node, (*_DEFS, ast.ClassDef)):
                scopes.append((node, src.tree.body))
                if isinstance(node, ast.ClassDef):
                    for sub in node.body:
                        if isinstance(sub, (*_DEFS, ast.ClassDef)):
                            scopes.append((sub, node.body))

        for node, body in scopes:
            twin = _twin_name(node.name)  # type: ignore[union-attr]
            if twin is None:
                continue
            twin_node = _scope_lookup(body, twin)
            if twin_node is None:
                yield self.finding(
                    src, node,
                    f"{node.name} has no fast twin {twin!r} in the same "
                    f"scope",
                )
                continue
            if isinstance(node, _DEFS) and isinstance(twin_node, _DEFS):
                ref_args, fast_args = arg_names(node), arg_names(twin_node)
                if ref_args != fast_args:
                    yield self.finding(
                        src, node,
                        f"{node.name} signature {ref_args} differs from "
                        f"twin {twin}{fast_args} — the parity test can no "
                        f"longer drive both sides identically",
                    )
            if not self._test_names_both(ctx, node.name, twin):
                yield self.finding(
                    src, node,
                    f"no file under tests/ names both {node.name!r} and "
                    f"{twin!r} — the pair has no pinning test",
                )

    @staticmethod
    def _test_names_both(ctx: CheckContext, ref: str, twin: str) -> bool:
        ref_re = re.compile(rf"\b{re.escape(ref)}\b")
        twin_re = re.compile(rf"\b{re.escape(twin)}\b")
        return any(
            ref_re.search(text) and twin_re.search(text)
            for text in ctx.test_texts.values()
        )
