"""strict-decoder: wire decoders fail loudly with ``ValueError``.

The wire contract (ARCHITECTURE.md, "The wire layer") is that decoding
is strict and total — truncation, trailing garbage, wrong versions,
unknown tags all *raise*, never misparse, hang, or quietly return
nothing.  For every ``decode_*`` function in ``repro/wire/`` and
``repro/secagg/wire.py`` this rule requires:

1. no bare ``except:`` anywhere in the function;
2. no ``except Exception``/``BaseException`` handler that swallows (a
   handler must ``raise`` — re-wrapping into ``ValueError`` is the
   sanctioned idiom);
3. no silent ``return None`` (explicit or bare ``return``);
4. the function raises a ``ValueError`` (or a subclass such as
   ``CodecError``) on some path — directly, or via another function in
   the same module that does (transitive closure over module-local
   calls, so ``decode_share_payload`` may delegate its failures to
   ``decode_fields``).
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.core import (
    CheckContext,
    Finding,
    Rule,
    SourceFile,
    dotted_name,
    register,
)

_DEFS = (ast.FunctionDef, ast.AsyncFunctionDef)

_SCOPE_DIRS = ("src/repro/wire/",)
_SCOPE_FILES = ("src/repro/secagg/wire.py",)

#: Exception names accepted as the ValueError family even without a
#: local ClassDef (module-local subclasses are discovered from the AST).
_VALUE_ERROR_NAMES = {"ValueError"}


def _in_scope(rel: str) -> bool:
    return rel in _SCOPE_FILES or any(rel.startswith(d) for d in _SCOPE_DIRS)


def _value_error_classes(tree: ast.Module) -> set[str]:
    """Module-local exception classes rooted at ``ValueError``."""
    names = set(_VALUE_ERROR_NAMES)
    changed = True
    while changed:
        changed = False
        for node in tree.body:
            if not isinstance(node, ast.ClassDef) or node.name in names:
                continue
            bases = {dotted_name(b) for b in node.bases}
            if bases & names:
                names.add(node.name)
                changed = True
    return names


def _raises_value_error(fn: ast.AST, ve_names: set[str]) -> bool:
    for node in ast.walk(fn):
        if not isinstance(node, ast.Raise):
            continue
        if node.exc is None:  # bare re-raise inside a handler
            return True
        exc = node.exc
        name = dotted_name(exc.func if isinstance(exc, ast.Call) else exc)
        if name is not None and name.rsplit(".", 1)[-1] in ve_names:
            return True
    return False


def _called_local_names(fn: ast.AST) -> set[str]:
    names: set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name is not None:
                names.add(name.rsplit(".", 1)[-1])
    return names


@register
class StrictDecoderRule(Rule):
    id = "strict-decoder"
    description = (
        "every decode_* in repro/wire/ and repro/secagg/wire.py raises "
        "ValueError on malformed input — no bare except, no swallowing "
        "handler, no silent None return"
    )
    invariants = ("5", "6")

    def check(self, ctx: CheckContext) -> Iterable[Finding]:
        for src in ctx.sources:
            if _in_scope(src.rel):
                yield from self._check_module(src)

    def _check_module(self, src: SourceFile) -> Iterable[Finding]:
        ve_names = _value_error_classes(src.tree)
        module_fns = {
            node.name: node
            for node in ast.walk(src.tree)
            if isinstance(node, _DEFS)
        }
        # Transitive closure: which module functions can raise the family?
        raising = {
            name for name, fn in module_fns.items()
            if _raises_value_error(fn, ve_names)
        }
        changed = True
        while changed:
            changed = False
            for name, fn in module_fns.items():
                if name in raising:
                    continue
                if _called_local_names(fn) & raising:
                    raising.add(name)
                    changed = True

        for name, fn in module_fns.items():
            if not name.startswith("decode_"):
                continue
            yield from self._check_decoder(src, fn, name in raising)

    def _check_decoder(
        self, src: SourceFile, fn: ast.AST, can_raise: bool
    ) -> Iterable[Finding]:
        for node in ast.walk(fn):
            if isinstance(node, ast.ExceptHandler):
                if node.type is None:
                    yield self.finding(
                        src, node,
                        f"{fn.name} has a bare except: — malformed input "
                        f"must raise, not be swallowed",
                    )
                    continue
                caught = dotted_name(node.type)
                if caught in ("Exception", "BaseException") and not any(
                    isinstance(sub, ast.Raise) for sub in ast.walk(node)
                ):
                    yield self.finding(
                        src, node,
                        f"{fn.name} catches {caught} without re-raising — "
                        f"decode failures must surface as ValueError",
                    )
            elif isinstance(node, ast.Return):
                if node.value is None or (
                    isinstance(node.value, ast.Constant)
                    and node.value.value is None
                ):
                    yield self.finding(
                        src, node,
                        f"{fn.name} returns None — a decoder either parses "
                        f"or raises, it never half-answers",
                    )
        if not can_raise:
            yield self.finding(
                src, fn,
                f"{fn.name} never raises ValueError (directly or via a "
                f"module-local helper) — a total decoder must fail loudly "
                f"on malformed input",
            )
