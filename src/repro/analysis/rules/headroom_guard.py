"""headroom-guard: deferred modular accumulation carries the 2**63 guard.

The hot planes (``MaskAccumulator``, ``SecAggServer.collect_unmask``)
sum ring vectors raw in int64 and reduce once at the end — sound only
while ``n_terms * (modulus - 1) < 2**63``.  ARCHITECTURE.md invariants
9 and 11 require every such accumulator to check that bound and fall
back to per-term reduction when it fails.

Detection is scope-based.  A *deferred accumulator* is a target that
receives a ``+=``/``-=`` somewhere in a scope and a ``%=``-by-modulus
reduction somewhere in the same scope:

- local names are judged per *function* (the guard must sit in the same
  function, as in ``collect_unmask``);
- ``self.attr`` targets are judged per *class* (the accumulate, the
  reduce, and the guard may live in different methods, as in
  ``MaskAccumulator.__init__`` / ``_fold`` / ``finish``).

The reducing operand must *name* the modulus (its terminal identifier
contains ``modulus``), which keeps big-int field arithmetic
(``% self.field.p`` in Shamir, where Python ints cannot overflow) out
of scope.  A deferred accumulator in a guard-free scope is a finding.

This is a dominance *approximation* (lexical same-scope presence, not a
CFG walk) — precise enough for this codebase's shapes, and any
deliberate exception can say so with an allow-comment.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.core import (
    CheckContext,
    Finding,
    Rule,
    SourceFile,
    contains_pow_2_63,
    dotted_name,
    register,
    target_path,
)

_DEFS = (ast.FunctionDef, ast.AsyncFunctionDef)


def _names_modulus(node: ast.AST) -> bool:
    name = dotted_name(node)
    return name is not None and "modulus" in name.rsplit(".", 1)[-1].lower()


def _scan(scope: ast.AST) -> tuple[dict[str, int], set[str], bool]:
    """One scope's (accumulate targets → first line), reduce targets,
    and whether the 2**63 bound appears in any comparison."""
    accumulates: dict[str, int] = {}
    reduces: set[str] = set()
    guarded = False
    for node in ast.walk(scope):
        if isinstance(node, ast.AugAssign):
            path = target_path(node.target)
            if path is None:
                continue
            if isinstance(node.op, (ast.Add, ast.Sub)):
                accumulates.setdefault(path, node.lineno)
            elif isinstance(node.op, ast.Mod) and _names_modulus(node.value):
                reduces.add(path)
        elif isinstance(node, ast.Compare) and contains_pow_2_63(node):
            guarded = True
    return accumulates, reduces, guarded


@register
class HeadroomGuardRule(Rule):
    id = "headroom-guard"
    description = (
        "a += / -= accumulator reduced later by %= modulus must sit in a "
        "scope that compares against the 2**63 int64 headroom bound"
    )
    invariants = ("9", "11")

    def check(self, ctx: CheckContext) -> Iterable[Finding]:
        for src in ctx.sources:
            for node in ast.walk(src.tree):
                if isinstance(node, _DEFS):
                    yield from self._report(
                        src, node, node.name, attr_targets=False
                    )
                elif isinstance(node, ast.ClassDef):
                    yield from self._report(
                        src, node, f"class {node.name}", attr_targets=True
                    )

    def _report(
        self,
        src: SourceFile,
        scope: ast.AST,
        label: str,
        *,
        attr_targets: bool,
    ) -> Iterable[Finding]:
        accumulates, reduces, guarded = _scan(scope)
        if guarded:
            return
        for path in sorted(accumulates.keys() & reduces):
            if path.startswith("self.") != attr_targets:
                continue
            yield self.finding(
                src, accumulates[path],
                f"deferred accumulator {path!r} in {label} is reduced by "
                f"%= modulus but the scope never checks the "
                f"n_terms * (modulus - 1) < 2**63 headroom bound",
            )
