"""One module per rule; importing the package registers them all."""

from repro.analysis.rules import (  # noqa: F401  — registration side effects
    async_hygiene,
    determinism,
    headroom_guard,
    parity_twin,
    strict_decoder,
    zero_copy,
)
