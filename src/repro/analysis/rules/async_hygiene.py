"""async-hygiene: the engine's event loop never blocks or leaks tasks.

The engine (``repro/engine/``) is the one async substrate every round
runs through; a blocking call inside one of its coroutines stalls every
concurrent client, and a fire-and-forget task is lost to cancellation
and exception reporting.  Two checks over ``async def`` bodies:

1. no call to a known blocking API (``time.sleep``, ``subprocess.*``,
   ``os.system``, ``os.popen``, ``socket.create_connection``,
   ``urllib.request.urlopen``, builtin ``open``/``input``) — the async
   counterparts exist for all of them;
2. every ``create_task`` / ``ensure_future`` result is consumed —
   assigned, awaited, returned, or passed onward — never discarded as a
   bare expression statement, where the task object (and its eventual
   exception) is dropped on the floor.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.core import (
    CheckContext,
    Finding,
    Rule,
    SourceFile,
    dotted_name,
    register,
)

_SCOPE_DIR = "src/repro/engine/"

_BLOCKING_CALLS = {
    "time.sleep",
    "os.system",
    "os.popen",
    "socket.create_connection",
    "urllib.request.urlopen",
}
_BLOCKING_PREFIXES = ("subprocess.",)
_BLOCKING_BUILTINS = {"open", "input"}

_SPAWN_NAMES = {"create_task", "ensure_future"}


@register
class AsyncHygieneRule(Rule):
    id = "async-hygiene"
    description = (
        "no blocking calls inside engine coroutines; every "
        "create_task/ensure_future result is stored, awaited, or returned"
    )
    invariants = ("2a",)

    def check(self, ctx: CheckContext) -> Iterable[Finding]:
        for src in ctx.sources:
            if not src.rel.startswith(_SCOPE_DIR):
                continue
            for node in ast.walk(src.tree):
                if isinstance(node, ast.AsyncFunctionDef):
                    yield from self._check_coroutine(src, node)
            yield from self._check_spawns(src)

    def _check_coroutine(
        self, src: SourceFile, fn: ast.AsyncFunctionDef
    ) -> Iterable[Finding]:
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            if (
                name in _BLOCKING_CALLS
                or name.startswith(_BLOCKING_PREFIXES)
                or name in _BLOCKING_BUILTINS
            ):
                yield self.finding(
                    src, node,
                    f"blocking call {name}() inside async def {fn.name} — "
                    f"this stalls the whole event loop",
                )

    def _check_spawns(self, src: SourceFile) -> Iterable[Finding]:
        """Spawn results must be consumed wherever they appear (the rule
        is cheap enough to enforce module-wide, sync helpers included)."""
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Expr):
                continue
            call = node.value
            if not isinstance(call, ast.Call):
                continue
            name = dotted_name(call.func)
            if name is not None and name.rsplit(".", 1)[-1] in _SPAWN_NAMES:
                yield self.finding(
                    src, node,
                    f"{name}(...) result is discarded — store, await, or "
                    f"cancel the task so its exceptions cannot vanish",
                )
