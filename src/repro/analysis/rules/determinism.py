"""determinism: traced paths draw randomness through ``derive_rng``.

Executed traces must be deterministic functions of the master seed
(ARCHITECTURE.md invariants 2a, 8, 10): every rng in ``engine/``,
``sim/``, ``fleet/``, and ``crypto/`` is derived via
:func:`repro.utils.rng.derive_rng`, and virtual time — never the wall
clock — stamps traced events.  Flagged inside those packages:

1. any call through the stdlib ``random`` module (``random.random()``,
   ``random.shuffle()``, …) — a hidden global-state stream;
2. ``np.random.*`` module-level calls (the legacy global generator);
   ``np.random.default_rng(seed)`` is the sanctioned construction, but
   *unseeded* ``default_rng()`` is still a finding;
3. wall-clock reads (``time.time()``, ``datetime.now()``,
   ``datetime.utcnow()``) — traced timing flows from the virtual-time
   arbiter, not the host clock.

Cryptographic randomness (``secrets``) is exempt: protocol key material
*must* be unpredictable; determinism there lives in the seeds the
protocol explicitly shares.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.core import (
    CheckContext,
    Finding,
    Rule,
    SourceFile,
    dotted_name,
    register,
)

_SCOPE_DIRS = (
    "src/repro/engine/",
    "src/repro/sim/",
    "src/repro/fleet/",
    "src/repro/crypto/",
)

_WALL_CLOCK = {"time.time", "datetime.now", "datetime.utcnow",
               "datetime.datetime.now", "datetime.datetime.utcnow"}

#: ``np.random`` / ``numpy.random`` attribute chains.
_NP_RANDOM_PREFIXES = ("np.random.", "numpy.random.")


def _in_scope(rel: str) -> bool:
    return any(rel.startswith(d) for d in _SCOPE_DIRS)


@register
class DeterminismRule(Rule):
    id = "determinism"
    description = (
        "engine/sim/fleet/crypto draw randomness via derive_rng — no "
        "stdlib random, no global np.random, no unseeded default_rng, "
        "no wall-clock reads in traced paths"
    )
    invariants = ("2a", "8", "10")

    def check(self, ctx: CheckContext) -> Iterable[Finding]:
        for src in ctx.sources:
            if not _in_scope(src.rel):
                continue
            imports_random = any(
                isinstance(node, ast.Import)
                and any(alias.name == "random" for alias in node.names)
                for node in ast.walk(src.tree)
            )
            for node in ast.walk(src.tree):
                if not isinstance(node, ast.Call):
                    continue
                name = dotted_name(node.func)
                if name is None:
                    continue
                yield from self._check_call(src, node, name, imports_random)

    def _check_call(
        self, src: SourceFile, call: ast.Call, name: str, imports_random: bool
    ) -> Iterable[Finding]:
        if imports_random and name.startswith("random."):
            yield self.finding(
                src, call,
                f"{name}() uses the stdlib global random stream — derive "
                f"a generator with utils.rng.derive_rng instead",
            )
            return
        if name in _WALL_CLOCK:
            yield self.finding(
                src, call,
                f"{name}() reads the wall clock in a traced path — timing "
                f"must come from the virtual-time arbiter",
            )
            return
        for prefix in _NP_RANDOM_PREFIXES:
            if not name.startswith(prefix):
                continue
            fn = name[len(prefix):]
            if fn == "default_rng":
                if not call.args and not call.keywords:
                    yield self.finding(
                        src, call,
                        "np.random.default_rng() without a seed is "
                        "nondeterministic — pass a derive_rng-derived seed",
                    )
            elif fn not in ("Generator", "SeedSequence", "BitGenerator",
                            "PCG64", "Philox"):
                yield self.finding(
                    src, call,
                    f"np.random.{fn}() draws from the global generator — "
                    f"use a derive_rng stream instead",
                )
            return
