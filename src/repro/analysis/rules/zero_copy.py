"""zero-copy: the encode hot paths never re-copy payload bytes.

The single-buffer writer discipline (ARCHITECTURE.md, "The hot path";
invariant 9): ``encode_value_into`` lands ndarray data via one
``memoryview`` copy, ``encode_payload_frame`` stamps the header into
the same buffer as the body, and the WS layer returns ``(head,
payload)`` so an unmasked response is never copied at all.  A stray
``.tobytes()`` or a per-byte Python loop quietly reintroduces the
copies the refactor removed — and the parity tests, which compare
*values* not allocations, would never notice.

Inside every non-``*_reference`` ``encode_*``/``fill_*`` function of
``wire/codecs.py``, ``wire/frame.py``, and ``wire/ws.py`` this rule
flags:

1. any ``.tobytes()`` call (ndarray data must travel as a
   ``memoryview``);
2. ``for … in range(len(…))`` loops — the classic per-element copy
   shape;
3. loops that ``.append()`` a subscripted element — a byte-at-a-time
   copy in Python-land.

The retained ``*_reference`` twins are exempt by name: they are the
concatenating specification the fast path is measured against.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.core import (
    CheckContext,
    Finding,
    Rule,
    SourceFile,
    functions_matching,
    register,
)

_SCOPE_FILES = (
    "src/repro/wire/codecs.py",
    "src/repro/wire/frame.py",
    "src/repro/wire/ws.py",
)


def _is_hot_encoder(name: str) -> bool:
    return (
        (name.startswith("encode_") or name.startswith("fill_"))
        and not name.endswith("_reference")
    )


def _is_range_len(call: ast.AST) -> bool:
    return (
        isinstance(call, ast.Call)
        and isinstance(call.func, ast.Name)
        and call.func.id == "range"
        and len(call.args) == 1
        and isinstance(call.args[0], ast.Call)
        and isinstance(call.args[0].func, ast.Name)
        and call.args[0].func.id == "len"
    )


def _appends_subscript(loop: ast.For) -> bool:
    for node in ast.walk(loop):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "append"
            and node.args
            and any(
                isinstance(sub, ast.Subscript)
                for sub in ast.walk(node.args[0])
            )
        ):
            return True
    return False


@register
class ZeroCopyRule(Rule):
    id = "zero-copy"
    description = (
        "no .tobytes() and no per-byte loops inside the non-reference "
        "encode paths of wire/codecs.py, wire/frame.py, wire/ws.py"
    )
    invariants = ("6", "9")

    def check(self, ctx: CheckContext) -> Iterable[Finding]:
        for src in ctx.sources:
            if src.rel not in _SCOPE_FILES:
                continue
            for fn in functions_matching(src.tree, _is_hot_encoder):
                yield from self._check_encoder(src, fn)

    def _check_encoder(self, src: SourceFile, fn: ast.AST) -> Iterable[Finding]:
        for node in ast.walk(fn):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "tobytes"
            ):
                yield self.finding(
                    src, node,
                    f".tobytes() in encode hot path {fn.name} — land the "
                    f"data through a memoryview into the output buffer",
                )
            elif isinstance(node, ast.For):
                if _is_range_len(node.iter):
                    yield self.finding(
                        src, node,
                        f"range(len(...)) loop in encode hot path "
                        f"{fn.name} — a per-element Python copy",
                    )
                elif _appends_subscript(node):
                    yield self.finding(
                        src, node,
                        f"loop in encode hot path {fn.name} appends "
                        f"subscripted elements — a byte-at-a-time copy",
                    )
