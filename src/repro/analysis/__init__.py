"""AST-based invariant checker for this repository's own source.

The codebase rests on eleven documented invariants (ARCHITECTURE.md,
"Invariants the test suite pins") that were previously enforced only by
convention and spot tests: every fast path keeps a bit-identical
``*_reference`` twin, every deferred-reduction accumulator carries the
``n_terms * (modulus - 1) < 2**63`` headroom guard, every wire decoder
fails loudly with ``ValueError``, and every traced path draws
randomness through :func:`repro.utils.rng.derive_rng`.

``python -m repro.cli check`` runs a rule engine over ``src/repro`` and
mechanically enforces the *shape* of that discipline:

- :mod:`repro.analysis.core` — ``Finding``, the rule registry, source
  loading, and inline suppressions
  (``# repro: allow[rule-id] reason`` — the reason is mandatory);
- :mod:`repro.analysis.rules` — one module per rule (parity-twin,
  headroom-guard, strict-decoder, async-hygiene, determinism,
  zero-copy);
- :mod:`repro.analysis.baseline` — the committed grandfather list
  (``ANALYSIS_BASELINE.json``) for findings that are deliberate;
- :mod:`repro.analysis.runner` — orchestration and text/JSON output;
- :mod:`repro.analysis.invariants` — the invariant → rule/test map
  asserted by ``tests/analysis/test_invariant_map.py``.

Exit codes follow the ``bench --diff`` convention: 0 clean, 1 findings,
2 usage error.
"""

from repro.analysis.core import Finding, Rule, all_rules, register
from repro.analysis.runner import (
    CheckResult,
    default_root,
    render_json,
    render_text,
    run_check,
)

__all__ = [
    "CheckResult",
    "Finding",
    "Rule",
    "all_rules",
    "default_root",
    "register",
    "render_json",
    "render_text",
    "run_check",
]
