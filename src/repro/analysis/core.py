"""Rule engine: findings, registry, source loading, suppressions.

A rule sees the whole checked tree at once (:class:`CheckContext`), not
one file at a time — several rules are cross-file by nature (the
parity-twin rule cross-checks ``tests/``).  Every rule yields
:class:`Finding` values; the runner applies inline suppressions and the
committed baseline afterwards, so rules stay pure.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator

#: Inline suppression: a comment reading ``repro: allow[rule-id] reason``
#: on the finding's line or the line directly above it.  The reason
#: string is mandatory; an allow without one is itself a finding.
_ALLOW_RE = re.compile(
    r"#\s*repro:\s*allow\[(?P<rule>[^\]]*)\]\s*(?P<reason>.*)$"
)

#: Rule id for the checker's own meta-findings (malformed suppressions).
SUPPRESSION_RULE_ID = "suppression"


@dataclass(frozen=True, order=True)
class Finding:
    """One violation: where, which rule, and what is wrong.

    ``file`` is repo-relative (posix separators) so findings — and the
    baseline keyed on them — are stable across checkouts.  Baseline
    matching ignores ``line``: line numbers drift with unrelated edits.
    """

    file: str
    line: int
    rule: str
    message: str

    def key(self) -> tuple[str, str, str]:
        """The line-independent identity used for baseline matching."""
        return (self.rule, self.file, self.message)


@dataclass(frozen=True)
class Suppression:
    """One parsed ``# repro: allow[...]`` comment."""

    file: str
    line: int
    rule: str
    reason: str


@dataclass
class SourceFile:
    """One checked file, parsed once and shared by every rule."""

    path: Path
    rel: str
    text: str
    tree: ast.Module

    @classmethod
    def load(cls, path: Path, root: Path) -> "SourceFile":
        text = path.read_text(encoding="utf-8")
        rel = path.relative_to(root).as_posix()
        return cls(path=path, rel=rel, text=text, tree=ast.parse(text, filename=rel))


@dataclass
class CheckContext:
    """Everything a rule may consult."""

    root: Path
    sources: list[SourceFile]
    #: Raw text of every ``tests/**/*.py`` file, keyed by relative path —
    #: the parity-twin rule greps these for pinning tests.
    test_texts: dict[str, str] = field(default_factory=dict)

    def source(self, rel: str) -> SourceFile | None:
        for src in self.sources:
            if src.rel == rel:
                return src
        return None


class Rule:
    """Base class: subclasses set ``id``/``description``/``invariants``
    and implement :meth:`check`.

    ``invariants`` names the ARCHITECTURE.md invariant labels ("1"…"11",
    "2a") the rule mechanically enforces — the invariant map meta-test
    keeps that claim honest.
    """

    id: str = ""
    description: str = ""
    invariants: tuple[str, ...] = ()

    def check(self, ctx: CheckContext) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(self, src: SourceFile, node: ast.AST | int, message: str) -> Finding:
        line = node if isinstance(node, int) else getattr(node, "lineno", 1)
        return Finding(file=src.rel, line=line, rule=self.id, message=message)


_REGISTRY: dict[str, Rule] = {}


def register(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator: instantiate and register one rule."""
    rule = rule_cls()
    if not rule.id:
        raise ValueError(f"{rule_cls.__name__} has no id")
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    _REGISTRY[rule.id] = rule
    return rule_cls


def all_rules() -> dict[str, Rule]:
    """The registry, importing the rule modules on first use."""
    import repro.analysis.rules  # noqa: F401  — registration side effect

    return dict(_REGISTRY)


def known_rule_ids() -> set[str]:
    return set(all_rules()) | {SUPPRESSION_RULE_ID}


# ---------------------------------------------------------------------------
# Suppressions
# ---------------------------------------------------------------------------


def scan_suppressions(
    src: SourceFile,
) -> tuple[list[Suppression], list[Finding]]:
    """Parse every allow-comment in one file.

    Returns the valid suppressions plus meta-findings for malformed
    ones: a missing reason string or an unknown rule id is itself a
    finding (rule id :data:`SUPPRESSION_RULE_ID`) — a suppression that
    cannot say *why* is exactly the silent drift the checker exists to
    stop.
    """
    suppressions: list[Suppression] = []
    findings: list[Finding] = []
    valid = known_rule_ids()
    # Tokenize so only *real* comments count — a docstring quoting the
    # allow-comment grammar (this package documents itself) is prose,
    # not a suppression.
    tokens = tokenize.generate_tokens(io.StringIO(src.text).readline)
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        lineno = tok.start[0]
        m = _ALLOW_RE.search(tok.string)
        if m is None:
            continue
        rule = m.group("rule").strip()
        reason = m.group("reason").strip()
        if rule not in valid:
            findings.append(Finding(
                file=src.rel, line=lineno, rule=SUPPRESSION_RULE_ID,
                message=f"suppression names unknown rule {rule!r}",
            ))
            continue
        if not reason:
            findings.append(Finding(
                file=src.rel, line=lineno, rule=SUPPRESSION_RULE_ID,
                message=f"suppression of {rule!r} has no reason string",
            ))
            continue
        suppressions.append(
            Suppression(file=src.rel, line=lineno, rule=rule, reason=reason)
        )
    return suppressions, findings


def apply_suppressions(
    findings: Iterable[Finding], suppressions: Iterable[Suppression]
) -> tuple[list[Finding], int]:
    """Drop findings an allow-comment covers (same line or line above).

    Returns ``(kept, suppressed_count)``.  Meta-findings about the
    suppression comments themselves are never suppressible.
    """
    covered: set[tuple[str, str, int]] = set()
    for s in suppressions:
        covered.add((s.rule, s.file, s.line))
        covered.add((s.rule, s.file, s.line + 1))
    kept: list[Finding] = []
    suppressed = 0
    for f in findings:
        if f.rule != SUPPRESSION_RULE_ID and (f.rule, f.file, f.line) in covered:
            suppressed += 1
            continue
        kept.append(f)
    return kept, suppressed


# ---------------------------------------------------------------------------
# Shared AST helpers used by several rules
# ---------------------------------------------------------------------------


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def target_path(node: ast.AST) -> str | None:
    """A stable key for an assignment target: ``x`` or ``self._acc`` or
    ``x[...]`` reduced to its base path (subscripts are collapsed —
    ``acc[i] += v`` still accumulates into ``acc``)."""
    while isinstance(node, ast.Subscript):
        node = node.value
    return dotted_name(node)


def contains_pow_2_63(node: ast.AST) -> bool:
    """True if the expression mentions ``2**63`` (or its literal value)."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Constant) and sub.value == 2**63:
            return True
        if (
            isinstance(sub, ast.BinOp)
            and isinstance(sub.op, ast.Pow)
            and isinstance(sub.left, ast.Constant) and sub.left.value == 2
            and isinstance(sub.right, ast.Constant) and sub.right.value == 63
        ):
            return True
    return False


def walk_scopes(
    tree: ast.Module,
) -> Iterator[tuple[ast.AST, ast.ClassDef | None]]:
    """Yield every def/async-def/class with its enclosing class (if any).

    Nested functions are attributed to the class of their enclosing
    method, which is what the scope-based rules want.
    """

    def visit(node: ast.AST, cls: ast.ClassDef | None) -> Iterator:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                yield child, cls
                yield from visit(child, child)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield child, cls
                yield from visit(child, cls)
            else:
                yield from visit(child, cls)

    yield from visit(tree, None)


def arg_names(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> tuple[str, ...]:
    """The ordered argument-name tuple two twins must share."""
    a = fn.args
    names = [x.arg for x in a.posonlyargs + a.args]
    if a.vararg:
        names.append("*" + a.vararg.arg)
    names.extend(x.arg for x in a.kwonlyargs)
    if a.kwarg:
        names.append("**" + a.kwarg.arg)
    return tuple(names)


def iter_calls(node: ast.AST) -> Iterator[ast.Call]:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            yield sub


def functions_matching(
    tree: ast.Module, pred: Callable[[str], bool]
) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    """All (possibly nested) functions whose name satisfies ``pred``."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and pred(
            node.name
        ):
            yield node
