"""Orchestration: discover sources, run rules, render text/JSON.

The checked tree is ``<root>/src/repro`` (every ``.py``), with
``<root>/tests`` loaded as raw text for the cross-checking rules.  The
root defaults to the repository this package lives in, so
``python -m repro.cli check`` works from any working directory.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis import baseline as baseline_mod
from repro.analysis.core import (
    CheckContext,
    Finding,
    Rule,
    SourceFile,
    all_rules,
    apply_suppressions,
    scan_suppressions,
)

#: Bumped when the JSON output shape changes.
REPORT_VERSION = 1


@dataclass
class CheckResult:
    root: Path
    rules: dict[str, Rule]
    #: Findings not covered by a suppression or the baseline — these
    #: fail the check.
    findings: list[Finding]
    #: Findings grandfathered by the committed baseline.
    baselined: list[Finding] = field(default_factory=list)
    #: Count of findings silenced by inline allow-comments.
    suppressed: int = 0
    files_checked: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings


def default_root() -> Path:
    """The repository this package was loaded from.

    Walks up from the package directory to the first ancestor holding a
    ``pyproject.toml`` — the layout is ``<root>/src/repro/analysis``,
    so this finds the checkout whether or not cwd is inside it.
    """
    here = Path(__file__).resolve()
    for ancestor in here.parents:
        if (ancestor / "pyproject.toml").is_file():
            return ancestor
    return Path.cwd()


def discover_sources(root: Path) -> list[SourceFile]:
    src_dir = root / "src" / "repro"
    if not src_dir.is_dir():
        raise FileNotFoundError(f"{src_dir} does not exist — not a repo root?")
    return [
        SourceFile.load(path, root)
        for path in sorted(src_dir.rglob("*.py"))
        if "__pycache__" not in path.parts
    ]


def load_test_texts(root: Path) -> dict[str, str]:
    tests_dir = root / "tests"
    if not tests_dir.is_dir():
        return {}
    return {
        path.relative_to(root).as_posix(): path.read_text(encoding="utf-8")
        for path in sorted(tests_dir.rglob("*.py"))
        if "__pycache__" not in path.parts
    }


def run_check(
    root: Path | None = None, baseline_path: Path | None = None
) -> CheckResult:
    """Run every registered rule over the tree at ``root``."""
    root = (root or default_root()).resolve()
    rules = all_rules()
    sources = discover_sources(root)
    ctx = CheckContext(
        root=root, sources=sources, test_texts=load_test_texts(root)
    )

    findings: list[Finding] = []
    for rule in rules.values():
        findings.extend(rule.check(ctx))

    suppressions = []
    for src in sources:
        sups, meta = scan_suppressions(src)
        suppressions.extend(sups)
        findings.extend(meta)

    kept, suppressed = apply_suppressions(findings, suppressions)
    kept.sort()

    if baseline_path is None:
        baseline_path = root / baseline_mod.DEFAULT_BASELINE_NAME
    known = baseline_mod.load_baseline(baseline_path)
    new, grandfathered = baseline_mod.partition(kept, known)

    return CheckResult(
        root=root,
        rules=rules,
        findings=new,
        baselined=grandfathered,
        suppressed=suppressed,
        files_checked=len(sources),
    )


def render_text(result: CheckResult) -> str:
    lines = []
    for f in result.findings:
        lines.append(f"{f.file}:{f.line}: [{f.rule}] {f.message}")
    lines.append(
        f"checked {result.files_checked} files with "
        f"{len(result.rules)} rules: {len(result.findings)} finding(s), "
        f"{len(result.baselined)} baselined, {result.suppressed} suppressed"
    )
    return "\n".join(lines)


def render_json(result: CheckResult) -> str:
    def row(f: Finding) -> dict:
        return {"file": f.file, "line": f.line, "rule": f.rule,
                "message": f.message}

    doc = {
        "version": REPORT_VERSION,
        "root": str(result.root),
        "rules": [
            {
                "id": rule.id,
                "description": rule.description,
                "invariants": list(rule.invariants),
            }
            for rule in result.rules.values()
        ],
        "findings": [row(f) for f in result.findings],
        "baselined": [row(f) for f in result.baselined],
        "suppressed": result.suppressed,
        "counts": {
            "files": result.files_checked,
            "findings": len(result.findings),
            "baselined": len(result.baselined),
        },
        "clean": result.clean,
    }
    return json.dumps(doc, indent=2)
