"""The committed grandfather list for deliberate findings.

``ANALYSIS_BASELINE.json`` at the repo root records findings that are
known, reasoned about, and deliberately kept (or inherited and queued
for later).  A baselined finding does not fail ``repro.cli check``;
anything *not* in the baseline does.  Matching ignores line numbers —
the key is ``(rule, file, message)`` — so unrelated edits above a
grandfathered site do not resurrect it.

Prefer an inline ``# repro: allow[rule-id] reason`` for violations that
are *by design* (the reason lives next to the code); the baseline is
for bulk grandfathering where inline comments would be noise.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.core import Finding

BASELINE_VERSION = 1
DEFAULT_BASELINE_NAME = "ANALYSIS_BASELINE.json"


def load_baseline(path: Path) -> set[tuple[str, str, str]]:
    """The baselined ``(rule, file, message)`` keys; {} if no file."""
    if not path.is_file():
        return set()
    raw = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(raw, dict) or raw.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"{path} is not a version-{BASELINE_VERSION} analysis baseline"
        )
    keys = set()
    for entry in raw.get("findings", []):
        keys.add((entry["rule"], entry["file"], entry["message"]))
    return keys


def partition(
    findings: list[Finding], baseline: set[tuple[str, str, str]]
) -> tuple[list[Finding], list[Finding]]:
    """Split into (new, baselined)."""
    new: list[Finding] = []
    grandfathered: list[Finding] = []
    for f in findings:
        (grandfathered if f.key() in baseline else new).append(f)
    return new, grandfathered


def baseline_document(findings: list[Finding]) -> dict:
    """A baseline document grandfathering exactly ``findings``."""
    return {
        "version": BASELINE_VERSION,
        "findings": [
            {"rule": f.rule, "file": f.file, "message": f.message}
            for f in sorted(findings)
        ],
    }


def write_baseline(path: Path, findings: list[Finding]) -> None:
    path.write_text(
        json.dumps(baseline_document(findings), indent=2) + "\n",
        encoding="utf-8",
    )
