"""The invariant → enforcement map.

ARCHITECTURE.md ends with a numbered list, "Invariants the test suite
pins".  Each entry here names, for one invariant label, the analysis
rules that mechanically enforce its shape and/or the pinning test files
that enforce its values.  ``tests/analysis/test_invariant_map.py``
asserts that every numbered invariant in ARCHITECTURE.md appears here,
that every named test file exists, and that every named rule is
registered — so the document, the rules, and the tests cannot drift
apart silently.
"""

from __future__ import annotations

#: invariant label → {"rules": [...], "tests": [...]} — at least one of
#: the two lists is non-empty for every entry.
INVARIANT_MAP: dict[str, dict[str, list[str]]] = {
    # Engine + in-process transport ≡ reference drivers, bit for bit.
    "1": {
        "rules": [],
        "tests": ["tests/engine/test_parity.py"],
    },
    # Traced chunked execution ≡ Appendix-C build_schedule prediction.
    "2": {
        "rules": [],
        "tests": ["tests/engine/test_round_engine.py"],
    },
    # Concurrent-round traces are scheduling-order independent and equal
    # the offline discrete-event replay.
    "2a": {
        "rules": ["determinism", "async-hygiene"],
        "tests": [
            "tests/engine/test_determinism.py",
            "tests/engine/test_arbiter.py",
        ],
    },
    # Dropout at any stage yields a correct aggregate or a clean abort.
    "3": {
        "rules": [],
        "tests": ["tests/secagg/test_dropout_stages.py"],
    },
    # Chunking never changes the privacy trajectory.
    "4": {
        "rules": [],
        "tests": ["tests/core/test_session_engine.py"],
    },
    # Wire transports ≡ the in-process round; strict total decoding is
    # what keeps a byte-level mismatch from misparsing instead of
    # failing.
    "5": {
        "rules": ["strict-decoder"],
        "tests": [
            "tests/engine/test_parity.py",
            "tests/engine/test_websocket_transport.py",
        ],
    },
    # Traced traffic equals the framed bytes on the socket, both ends.
    "6": {
        "rules": ["strict-decoder", "zero-copy"],
        "tests": [
            "tests/engine/test_stream_transport.py",
            "tests/engine/test_websocket_transport.py",
        ],
    },
    # up_bytes + down_bytes == traffic_bytes, by construction.
    "7": {
        "rules": [],
        "tests": ["tests/test_timeline.py", "tests/fleet/test_links.py"],
    },
    # Fleet availability reproduces the legacy dropout draws exactly.
    "8": {
        "rules": ["determinism"],
        "tests": [
            "tests/fleet/test_fleet.py",
            "tests/core/test_session_engine.py",
        ],
    },
    # Every hot path is bit-identical to its retained *_reference twin.
    "9": {
        "rules": ["parity-twin", "headroom-guard", "zero-copy"],
        "tests": [
            "tests/crypto/test_hotpath_parity.py",
            "tests/wire/test_encode_parity.py",
        ],
    },
    # Fleet scale: columnar profiles box bit-identically to the
    # reference builder; vectorized queries equal the loop.
    "10": {
        "rules": ["parity-twin", "determinism"],
        "tests": [
            "tests/fleet/test_profile.py",
            "tests/fleet/test_availability_stream.py",
        ],
    },
    # The unmask plane ≡ collect_unmask_reference bit for bit at every
    # worker count, including the headroom-guard fallback.
    "11": {
        "rules": ["parity-twin", "headroom-guard"],
        "tests": ["tests/secagg/test_unmask_plane.py"],
    },
}
