"""Prime-field arithmetic.

Shamir secret sharing and the seed space F used by XNoise (Fig. 5 Setup)
operate over a prime field.  We use the Mersenne prime p = 2**127 − 1,
large enough that random field elements (seeds) are unguessable — the
security argument in the paper's Hyb4 step relies on seeds being drawn
from an "exponentially large domain F".
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass

#: The Mersenne prime 2**127 − 1.
MERSENNE_127 = (1 << 127) - 1


@dataclass(frozen=True)
class PrimeField:
    """Arithmetic in GF(p) for a prime modulus ``p``.

    Elements are plain Python ints in ``[0, p)``.  The class is a thin
    namespace: it validates inputs once and keeps modulus-specific
    constants (byte lengths) together.
    """

    p: int

    def __post_init__(self) -> None:
        if self.p < 3:
            raise ValueError("field modulus must be a prime >= 3")

    @property
    def element_bytes(self) -> int:
        """Bytes needed to encode one element."""
        return (self.p.bit_length() + 7) // 8

    @property
    def capacity_bytes(self) -> int:
        """Bytes that always fit in one element (for packing byte secrets)."""
        return (self.p.bit_length() - 1) // 8

    def validate(self, x: int) -> int:
        if not 0 <= x < self.p:
            raise ValueError(f"{x} is not an element of GF({self.p})")
        return x

    def add(self, a: int, b: int) -> int:
        return (a + b) % self.p

    def sub(self, a: int, b: int) -> int:
        return (a - b) % self.p

    def mul(self, a: int, b: int) -> int:
        return (a * b) % self.p

    def neg(self, a: int) -> int:
        return (-a) % self.p

    def inv(self, a: int) -> int:
        """Multiplicative inverse; raises on zero."""
        if a % self.p == 0:
            raise ZeroDivisionError("zero has no inverse")
        return pow(a, -1, self.p)

    def pow(self, a: int, e: int) -> int:
        return pow(a, e, self.p)

    def random_element(self) -> int:
        """Uniform element of GF(p) from the OS CSPRNG."""
        return secrets.randbelow(self.p)

    def eval_poly(self, coeffs: list[int], x: int) -> int:
        """Evaluate a polynomial with ``coeffs[0]`` the constant term (Horner)."""
        acc = 0
        for c in reversed(coeffs):
            acc = (acc * x + c) % self.p
        return acc


#: The default field shared by Shamir sharing and XNoise seeds.
FIELD = PrimeField(MERSENNE_127)
