"""Authenticated encryption: encrypt-then-MAC over the counter-mode PRG.

SecAgg requires an IND-CPA + INT-CTXT authenticated-encryption scheme AE
to protect the secret shares that clients route through the untrusted
server (Fig. 5, ShareKeys).  We build the standard composition:

- keystream: SHA-256 counter-mode PRG keyed by ``HKDF(key, "enc") || nonce``;
- ciphertext: plaintext XOR keystream;
- tag: HMAC-SHA256 under ``HKDF(key, "mac")`` over ``nonce || ciphertext``.

Encrypt-then-MAC with independent keys is the composition that yields
INT-CTXT + IND-CPA from a secure stream cipher and PRF.
"""

from __future__ import annotations

import hmac
import hashlib
import secrets

from repro.crypto.prg import PRG

_NONCE_LEN = 16
_TAG_LEN = 32
_KEY_LEN = 32


class AEError(Exception):
    """Raised when decryption fails authentication (tampered or wrong key)."""


def _subkey(key: bytes, label: bytes) -> bytes:
    """Derive an independent subkey (HKDF-style extract+expand, one block)."""
    return hmac.new(key, b"dordis-ae" + label, hashlib.sha256).digest()


class AuthenticatedEncryption:
    """AE.enc / AE.dec with a 32-byte symmetric key.

    The wire format is ``nonce (16B) || ciphertext || tag (32B)``.
    Decryption raises :class:`AEError` on any authentication failure —
    matching the protocol's "if the ciphertext does not correctly
    authenticate, abort" behaviour.
    """

    def __init__(self, key: bytes):
        if len(key) != _KEY_LEN:
            raise ValueError(f"key must be {_KEY_LEN} bytes, got {len(key)}")
        self._enc_key = _subkey(key, b"enc")
        self._mac_key = _subkey(key, b"mac")

    def encrypt(self, plaintext: bytes) -> bytes:
        nonce = secrets.token_bytes(_NONCE_LEN)
        stream = PRG(self._enc_key + nonce).read(len(plaintext))
        ciphertext = bytes(p ^ s for p, s in zip(plaintext, stream))
        tag = hmac.new(self._mac_key, nonce + ciphertext, hashlib.sha256).digest()
        return nonce + ciphertext + tag

    def decrypt(self, blob: bytes) -> bytes:
        if len(blob) < _NONCE_LEN + _TAG_LEN:
            raise AEError("ciphertext too short")
        nonce = blob[:_NONCE_LEN]
        ciphertext = blob[_NONCE_LEN:-_TAG_LEN]
        tag = blob[-_TAG_LEN:]
        expect = hmac.new(self._mac_key, nonce + ciphertext, hashlib.sha256).digest()
        if not hmac.compare_digest(tag, expect):
            raise AEError("authentication failed")
        stream = PRG(self._enc_key + nonce).read(len(ciphertext))
        return bytes(c ^ s for c, s in zip(ciphertext, stream))
