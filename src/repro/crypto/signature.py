"""Schnorr signatures over the RFC 3526 MODP group.

The malicious-setting protocol (Fig. 5, bracketed steps) requires a UF-CMA
signature scheme SIG: clients sign their advertised keys, the round
number, and the ConsistencyCheck set so the server cannot impersonate
clients or understate dropout (§3.3).  We implement classic Schnorr
signatures in the prime-order subgroup of the 2048-bit safe-prime group,
with the Fiat–Shamir hash over (commitment, public key, message).
"""

from __future__ import annotations

import hashlib
import secrets
from dataclasses import dataclass

from repro.crypto.dh import DHGroup, MODP_2048


@dataclass(frozen=True)
class SchnorrSignature:
    """A Schnorr signature ``(e, s)``; fixed-size when serialized."""

    e: int
    s: int

    def to_bytes(self) -> bytes:
        return self.e.to_bytes(32, "big") + self.s.to_bytes(256, "big")

    @classmethod
    def from_bytes(cls, data: bytes) -> "SchnorrSignature":
        if len(data) != 32 + 256:
            raise ValueError("malformed signature encoding")
        return cls(
            e=int.from_bytes(data[:32], "big"),
            s=int.from_bytes(data[32:], "big"),
        )


def _challenge(group: DHGroup, commitment: int, public: int, message: bytes) -> int:
    size = (group.p.bit_length() + 7) // 8
    h = hashlib.sha256()
    h.update(commitment.to_bytes(size, "big"))
    h.update(public.to_bytes(size, "big"))
    h.update(hashlib.sha256(message).digest())
    return int.from_bytes(h.digest(), "big") % group.q


def generate_signing_keypair(group: DHGroup = MODP_2048) -> tuple[int, int]:
    """Return ``(signing_key, verification_key)`` with vk = g**sk mod p.

    The signing key is the ``d^SK`` of Fig. 5 (distributed by the trusted
    third party / PKI), the verification key the matching ``d^PK``.
    """
    sk = 1 + secrets.randbelow(group.q - 1)
    return sk, group.power(group.g, sk)


class SchnorrSigner:
    """SIG.sign with a private signing key."""

    def __init__(self, signing_key: int, group: DHGroup = MODP_2048):
        if not 1 <= signing_key < group.q:
            raise ValueError("signing key outside [1, q)")
        self.group = group
        self._sk = signing_key
        self.public = group.power(group.g, signing_key)

    def sign(self, message: bytes) -> SchnorrSignature:
        k = 1 + secrets.randbelow(self.group.q - 1)
        commitment = self.group.power(self.group.g, k)
        e = _challenge(self.group, commitment, self.public, message)
        s = (k + self._sk * e) % self.group.q
        return SchnorrSignature(e=e, s=s)


class SchnorrVerifier:
    """SIG.ver with a public verification key."""

    def __init__(self, verification_key: int, group: DHGroup = MODP_2048):
        self.group = group
        self.public = verification_key

    def verify(self, message: bytes, signature: SchnorrSignature) -> bool:
        if not 0 <= signature.e < self.group.q or not 0 <= signature.s < self.group.q:
            return False
        # g**s must equal commitment * pk**e; recover commitment and re-hash.
        gs = self.group.power(self.group.g, signature.s)
        pk_e = self.group.power(self.public, signature.e)
        commitment = (gs * pow(pk_e, -1, self.group.p)) % self.group.p
        return _challenge(self.group, commitment, self.public, message) == signature.e
