"""A verifiable random function (VRF) over the MODP group.

§7 of the paper proposes VRF-based client sampling to stop a malicious
server from cherry-picking colluded clients into the sample: each client
derives its participation from verifiable randomness that neither it nor
the server can bias.

Construction (the classic DDH-based VRF, ECVRF's structure in a prime
field):

- keys: sk = x, pk = y = g**x;
- hash-to-group: h = (SHA-256 stretched to [0, p))² mod p — squaring
  lands in the prime-order subgroup of quadratic residues while keeping
  log_g(h) unknown;
- evaluation: γ = h**x; the VRF *output* is SHA-256(γ);
- proof: a Chaum–Pedersen DLEQ showing log_g(y) = log_h(γ), made
  non-interactive with Fiat–Shamir.

Uniqueness (γ is a function of (h, x)) is what prevents grinding: a
client cannot re-roll its randomness, and the server cannot forge
another client's.
"""

from __future__ import annotations

import hashlib
import secrets
from dataclasses import dataclass

from repro.crypto.dh import DHGroup, MODP_2048


@dataclass(frozen=True)
class VRFProof:
    """Output γ plus the DLEQ transcript (c, s)."""

    gamma: int
    c: int
    s: int


def _int_bytes(group: DHGroup, value: int) -> bytes:
    size = (group.p.bit_length() + 7) // 8
    return value.to_bytes(size, "big")


def _hash_to_group(group: DHGroup, message: bytes) -> int:
    """Map a message to the quadratic-residue subgroup."""
    counter = 0
    while True:
        digest = b""
        while len(digest) * 8 < group.p.bit_length() + 64:
            digest += hashlib.sha256(
                b"vrf-h2g" + counter.to_bytes(4, "big")
                + len(digest).to_bytes(4, "big") + message
            ).digest()
        candidate = int.from_bytes(digest, "big") % group.p
        if candidate > 1:
            return pow(candidate, 2, group.p)
        counter += 1


def _challenge(group: DHGroup, points: list[int]) -> int:
    h = hashlib.sha256()
    for pt in points:
        h.update(_int_bytes(group, pt))
    return int.from_bytes(h.digest(), "big") % group.q


def generate_vrf_keypair(group: DHGroup = MODP_2048) -> tuple[int, int]:
    """Return ``(secret_key, public_key)``."""
    sk = 1 + secrets.randbelow(group.q - 1)
    return sk, pow(group.g, sk, group.p)


def vrf_prove(
    secret_key: int, message: bytes, group: DHGroup = MODP_2048
) -> tuple[bytes, VRFProof]:
    """Evaluate the VRF; returns ``(output, proof)``.

    The output is a 32-byte uniform-looking string bound to
    (secret_key, message); the proof convinces any holder of the public
    key without revealing the key.
    """
    h = _hash_to_group(group, message)
    gamma = pow(h, secret_key, group.p)
    k = 1 + secrets.randbelow(group.q - 1)
    a1 = pow(group.g, k, group.p)
    a2 = pow(h, k, group.p)
    public = pow(group.g, secret_key, group.p)
    c = _challenge(group, [group.g, h, public, gamma, a1, a2])
    s = (k - c * secret_key) % group.q
    output = hashlib.sha256(b"vrf-out" + _int_bytes(group, gamma)).digest()
    return output, VRFProof(gamma=gamma, c=c, s=s)


def vrf_verify(
    public_key: int,
    message: bytes,
    output: bytes,
    proof: VRFProof,
    group: DHGroup = MODP_2048,
) -> bool:
    """Check the proof and that ``output`` matches γ."""
    if not 1 < public_key < group.p - 1:
        return False
    if not (0 <= proof.c < group.q and 0 <= proof.s < group.q):
        return False
    h = _hash_to_group(group, message)
    # Recompute the commitments: a1 = g^s · y^c, a2 = h^s · γ^c.
    a1 = (pow(group.g, proof.s, group.p) * pow(public_key, proof.c, group.p)) % group.p
    a2 = (pow(h, proof.s, group.p) * pow(proof.gamma, proof.c, group.p)) % group.p
    expected_c = _challenge(
        group, [group.g, h, public_key, proof.gamma, a1, a2]
    )
    if expected_c != proof.c:
        return False
    expected_out = hashlib.sha256(
        b"vrf-out" + _int_bytes(group, proof.gamma)
    ).digest()
    return output == expected_out


def output_to_unit(output: bytes) -> float:
    """Map a VRF output to [0, 1) for threshold comparisons."""
    return int.from_bytes(output[:8], "big") / float(1 << 64)
