"""A minimal public-key infrastructure.

The paper assumes a PKI run by a trusted third party that binds each
client identity to a signature verification key (§2.1, §3.3): honest
clients use it to verify message provenance, which is what stops a
malicious server from impersonating or simulating clients.  This module
is that trusted directory, plus key issuance.
"""

from __future__ import annotations

from repro.crypto.dh import DHGroup, MODP_2048
from repro.crypto.signature import (
    SchnorrSigner,
    SchnorrVerifier,
    generate_signing_keypair,
)


class PublicKeyInfrastructure:
    """Issue signing keys and answer verification-key lookups.

    The registry is append-only: re-registering an identity raises, which
    models the PKI preventing Sybil re-registration under an existing
    identity.
    """

    def __init__(self, group: DHGroup = MODP_2048):
        self.group = group
        self._verification_keys: dict[int, int] = {}

    def register(self, identity: int) -> SchnorrSigner:
        """Issue a fresh signing key for ``identity``; returns the signer.

        The verification key is recorded in the public directory.
        """
        if identity in self._verification_keys:
            raise ValueError(f"identity {identity} already registered")
        sk, vk = generate_signing_keypair(self.group)
        self._verification_keys[identity] = vk
        return SchnorrSigner(sk, self.group)

    def verifier(self, identity: int) -> SchnorrVerifier:
        """Look up the verifier bound to ``identity``."""
        try:
            vk = self._verification_keys[identity]
        except KeyError:
            raise KeyError(f"identity {identity} is not registered") from None
        return SchnorrVerifier(vk, self.group)

    def is_registered(self, identity: int) -> bool:
        return identity in self._verification_keys

    def __len__(self) -> int:
        return len(self._verification_keys)
