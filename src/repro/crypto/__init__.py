"""Cryptographic primitives for SecAgg and XNoise, built on the stdlib.

The paper instantiates SecAgg/XNoise with a PKI, Diffie–Hellman key
agreement composed with a hash, Shamir t-out-of-n secret sharing, an
IND-CPA + INT-CTXT authenticated-encryption scheme, a UF-CMA signature
scheme, and a secure PRG (Fig. 5).  This subpackage provides each of those
interfaces from scratch:

- :mod:`repro.crypto.field`     — GF(p) arithmetic, p = 2**127 − 1.
- :mod:`repro.crypto.prg`       — SHA-256 counter-mode PRG.
- :mod:`repro.crypto.shamir`    — Shamir secret sharing over GF(p).
- :mod:`repro.crypto.dh`        — finite-field Diffie–Hellman (RFC 3526).
- :mod:`repro.crypto.ae`        — encrypt-then-MAC authenticated encryption.
- :mod:`repro.crypto.signature` — Schnorr signatures.
- :mod:`repro.crypto.pki`       — a trusted key directory.

These are *reproduction-grade* primitives: they implement the textbook
constructions faithfully and pass adversarial unit tests (tamper
detection, forged-signature rejection, below-threshold reconstruction
failure), but they have not been audited for production deployment.
"""

from repro.crypto.field import PrimeField, FIELD
from repro.crypto.prg import PRG, PRGReference, expand_uniform
from repro.crypto.shamir import ShamirSecretSharing, Share
from repro.crypto.dh import DHKeyPair, KeyAgreement, MODP_2048
from repro.crypto.ae import AuthenticatedEncryption, AEError
from repro.crypto.signature import SchnorrSigner, SchnorrVerifier, generate_signing_keypair
from repro.crypto.pki import PublicKeyInfrastructure

__all__ = [
    "PrimeField",
    "FIELD",
    "PRG",
    "PRGReference",
    "expand_uniform",
    "ShamirSecretSharing",
    "Share",
    "DHKeyPair",
    "KeyAgreement",
    "MODP_2048",
    "AuthenticatedEncryption",
    "AEError",
    "SchnorrSigner",
    "SchnorrVerifier",
    "generate_signing_keypair",
    "PublicKeyInfrastructure",
]
