"""SHA-256 counter-mode pseudorandom generator.

SecAgg expands short seeds into model-length mask vectors, and XNoise
expands noise seeds into DP noise (§3.1: "a DP noise is a sequence of
pseudo-random numbers of the same length as the model, and can be uniquely
generated via feeding a seed into a PRN generator").

The construction is the standard counter-mode PRF: block *i* of the stream
is ``SHA256(seed || i)``.  Identical seeds always produce identical
streams, which is what lets XNoise ship 32-byte seeds instead of
model-sized noise vectors.

Two implementations live here, bit-identical by construction and pinned
bit-identical by test (``tests/crypto/test_hotpath_parity.py``):

- :class:`PRG` — the hot path.  The SHA-256 midstate over the seed is
  computed once and ``.copy()``-ed per counter block (the seed bytes are
  never re-absorbed), counter blocks land in one preallocated buffer,
  and :meth:`PRG.uniform_vector` reduces through a zero-copy
  ``np.frombuffer`` view of that buffer (in-place byteswap + in-place
  modulo + ``int64`` reinterpretation — no ``.astype`` round trips).
- :class:`PRGReference` — the retained executable specification: one
  ``hashlib.sha256(seed + counter)`` call per 32-byte block, exactly as
  the deployed protocol describes it.  Every optimization above must
  reproduce this stream byte for byte.

:func:`expand_uniform` is the shared whole-mask entry point (counter 0,
length · 8 bytes of stream) and :func:`expand_uniform_batch` amortizes
its per-mask setup across the k expansions of an unmask round; both are
parity-pinned per element against :class:`PRGReference`.
"""

from __future__ import annotations

import hashlib
import sys
import threading

import numpy as np

from repro import native

_BLOCK = hashlib.sha256().digest_size  # 32 bytes

# Backend for the *fast* paths only (PRGReference stays on hashlib, the
# spec as written).  CPython's bundled HACL* SHA-256 (_sha256 on 3.11,
# _sha2 on 3.12+) has a much cheaper midstate copy() than the OpenSSL
# object hashlib hands out — and copy() dominates the counter loop,
# where each block appends only 8 bytes to a copied midstate.  Both
# produce the same digests (it's SHA-256); the parity pins against
# PRGReference hold regardless of which backend is picked.
try:  # pragma: no cover - exercised implicitly by every fast-path test
    from _sha2 import sha256 as _sha256_fast  # type: ignore[import-not-found]
except ImportError:  # pragma: no cover
    try:
        from _sha256 import sha256 as _sha256_fast  # type: ignore[import-not-found]
    except ImportError:
        _sha256_fast = hashlib.sha256

# Counter blocks are the same for every seed (block i appends
# ``i.to_bytes(8, "big")``), so the 8-byte encodings are precomputed
# once and shared across all expansions — at d = 2^20 that is 2^18
# encodings per mask, ~1000 masks per unmask round.  Grown on demand
# under a lock (concurrent growers would interleave appends), capped so
# a one-off huge expansion cannot pin unbounded memory.
_CTR_CAP = 1 << 19
_ctr_table: list[bytes] = []
_ctr_lock = threading.Lock()


def _counter_bytes(nblocks: int) -> list[bytes]:
    """The first ``nblocks`` counter encodings (shared, cached ≤ cap)."""
    if nblocks > _CTR_CAP:
        return [i.to_bytes(8, "big") for i in range(nblocks)]
    if len(_ctr_table) < nblocks:
        with _ctr_lock:
            for i in range(len(_ctr_table), nblocks):
                _ctr_table.append(i.to_bytes(8, "big"))
    return _ctr_table[:nblocks]


class PRGReference:
    """The retained scalar reference: ``SHA256(seed ∥ counter)`` per block.

    This is the executable specification :class:`PRG` is parity-pinned
    against — slow on purpose, never used on the hot path.
    """

    def __init__(self, seed: bytes):
        if not isinstance(seed, (bytes, bytearray)):
            raise TypeError("seed must be bytes")
        self._seed = bytes(seed)
        self._counter = 0

    @property
    def seed(self) -> bytes:
        return self._seed

    def read(self, n: int) -> bytes:
        """Return the next ``n`` pseudorandom bytes."""
        if n < 0:
            raise ValueError("n must be non-negative")
        blocks = []
        remaining = n
        while remaining > 0:
            block = hashlib.sha256(
                self._seed + self._counter.to_bytes(8, "big")
            ).digest()
            self._counter += 1
            blocks.append(block[:remaining])
            remaining -= len(block[:remaining])
        return b"".join(blocks)

    def uniform_vector(self, length: int, modulus: int) -> np.ndarray:
        """Return ``length`` integers uniform in ``[0, modulus)`` as int64."""
        if modulus <= 0:
            raise ValueError("modulus must be positive")
        if length < 0:
            raise ValueError("length must be non-negative")
        raw = self.read(8 * length)
        words = np.frombuffer(raw, dtype=">u8").astype(np.uint64)
        return (words % np.uint64(modulus)).astype(np.int64)

    def numpy_generator(self) -> np.random.Generator:
        key = self.read(16)
        return np.random.default_rng(int.from_bytes(key, "big"))


class PRG:
    """Deterministic byte/vector stream expanded from a seed.

    Each call advances an internal counter, so successive calls return
    disjoint stream segments; two PRGs built from the same seed produce
    the same sequence of outputs for the same sequence of calls.  The
    stream is bit-identical to :class:`PRGReference` for any sequence of
    calls (pinned by test); only the per-block bookkeeping differs.
    """

    def __init__(self, seed: bytes):
        if not isinstance(seed, (bytes, bytearray)):
            raise TypeError("seed must be bytes")
        self._seed = bytes(seed)
        self._counter = 0
        # Midstate: the seed is absorbed exactly once; each block copies
        # this state and appends only its 8 counter bytes.  copy()
        # preserves buffered input, so SHA256(seed ∥ ctr) ==
        # copy().update(ctr).digest() for any seed length.
        self._midstate = _sha256_fast(self._seed)

    @property
    def seed(self) -> bytes:
        return self._seed

    def _block_digests(self, nblocks: int) -> list[bytes]:
        """The next ``nblocks`` whole counter blocks, one digest each."""
        copy = self._midstate.copy
        out: list[bytes] = []
        append = out.append
        for ctr in range(self._counter, self._counter + nblocks):
            h = copy()
            h.update(ctr.to_bytes(8, "big"))
            append(h.digest())
        self._counter += nblocks
        return out

    def read(self, n: int) -> bytes:
        """Return the next ``n`` pseudorandom bytes."""
        if n < 0:
            raise ValueError("n must be non-negative")
        if n == 0:
            return b""
        nblocks = -(-n // _BLOCK)
        blocks = self._block_digests(nblocks)
        # The final partial block is sliced exactly once (the reference
        # discards the tail of its last block the same way).
        rem = n - (nblocks - 1) * _BLOCK
        if rem != _BLOCK:
            blocks[-1] = blocks[-1][:rem]
        return b"".join(blocks)

    def uniform_vector(self, length: int, modulus: int) -> np.ndarray:
        """Return ``length`` integers uniform in ``[0, modulus)`` as int64.

        Used for SecAgg masks over the ring Z_R.  Rejection-free: we read
        64-bit words and reduce mod ``modulus``; with ``modulus`` ≤ 2**40
        (the paper uses bit-width b = 20) the modulo bias is < 2**-24 and
        irrelevant for masking (any fixed bias cancels in the pairwise
        mask sum p_{u,v} + p_{v,u} = 0).

        Zero-copy reduction: the counter blocks land in one writable
        buffer, viewed as native ``uint64`` (in-place byteswap on
        little-endian hosts recovers the stream's big-endian word
        order), reduced with an in-place modulo, and reinterpreted as
        ``int64`` — every value is < ``modulus`` ≤ 2**63, so the
        reinterpretation is value-preserving and copies nothing.
        """
        if modulus <= 0:
            raise ValueError("modulus must be positive")
        if length < 0:
            raise ValueError("length must be non-negative")
        if length == 0:
            self.read(0)
            return np.zeros(0, dtype=np.int64)
        if modulus > 1 << 63:
            # int64 reinterpretation would be lossy; take the reference
            # reduction (protocol moduli are 2**bits with bits ≤ 62).
            raw = self.read(8 * length)
            words = np.frombuffer(raw, dtype=">u8").astype(np.uint64)
            return (words % np.uint64(modulus)).astype(np.int64)
        nbytes = 8 * length
        buf = bytearray(b"".join(self._block_digests(-(-nbytes // _BLOCK))))
        words = np.frombuffer(buf, dtype=np.uint64, count=length)
        if sys.byteorder == "little":
            words.byteswap(inplace=True)
        words %= np.uint64(modulus)
        return words.view(np.int64)

    def numpy_generator(self) -> np.random.Generator:
        """A NumPy generator keyed by the next stream block.

        Used to sample distribution-shaped noise (Skellam, Gaussian)
        deterministically from a seed.  Each call returns an independent
        generator because it consumes a fresh stream block.
        """
        key = self.read(16)
        return np.random.default_rng(int.from_bytes(key, "big"))


def _expand_reduced(seed: bytes, length: int, modulus: int) -> np.ndarray:
    """One full-speed mask expansion (counter 0, ``modulus`` ≤ 2**63).

    The shared inner loop of :func:`expand_uniform` and
    :func:`expand_uniform_batch`: midstate copied per counter block,
    counter encodings from the shared table, one join, one in-place
    byteswap, one vectorized reduction.  Power-of-two moduli — the
    protocol's Z_{2^b} ring — reduce with a bitmask instead of a modulo
    (identical values: ``x % 2**b == x & (2**b − 1)`` for unsigned x).
    Returns an int64 view; every value is < ``modulus`` ≤ 2**63.
    """
    nbytes = 8 * length
    nblocks = -(-nbytes // _BLOCK)
    # The native kernel (repro.native) emits the identical block stream
    # ~10× faster when the host can build it; None means "no kernel" and
    # the hashlib loop below serves the same bytes.
    buf = native.sha256_ctr_stream(seed, nblocks)
    if buf is None:
        copy = _sha256_fast(seed).copy
        blocks: list[bytes] = []
        append = blocks.append
        for ctr in _counter_bytes(nblocks):
            h = copy()
            h.update(ctr)
            append(h.digest())
        buf = bytearray(b"".join(blocks))
    words = np.frombuffer(buf, dtype=np.uint64, count=length)
    if sys.byteorder == "little":
        words.byteswap(inplace=True)
    if modulus & (modulus - 1) == 0:
        words &= np.uint64(modulus - 1)
    else:
        words %= np.uint64(modulus)
    return words.view(np.int64)


def expand_uniform(seed: bytes, length: int, modulus: int) -> np.ndarray:
    """Expand ``seed`` into ``length`` uniform ring elements (fresh PRG).

    The one shared mask-expansion entry point: SecAgg masking
    (:mod:`repro.secagg.masking`) and the API layer's PG handler both
    call this, so there is exactly one hot-path implementation and one
    parity surface.  Bit-identical to
    ``PRGReference(seed).uniform_vector(length, modulus)`` (pinned by
    test); oversized moduli take the :class:`PRG` fallback reduction.
    """
    if not isinstance(seed, (bytes, bytearray)):
        raise TypeError("seed must be bytes")
    if modulus <= 0:
        raise ValueError("modulus must be positive")
    if length < 0:
        raise ValueError("length must be non-negative")
    if length == 0:
        return np.zeros(0, dtype=np.int64)
    if modulus > 1 << 63:
        return PRG(seed).uniform_vector(length, modulus)
    return _expand_reduced(bytes(seed), length, modulus)


def expand_uniform_batch(
    seeds: list[bytes], length: int, modulus: int
) -> np.ndarray:
    """Expand ``k`` seeds into a ``(k, length)`` int64 matrix.

    Row ``i`` is bit-identical to ``expand_uniform(seeds[i], …)`` —
    batching only amortizes the per-mask setup (the shared counter
    table, one output allocation) across the round's expansions.  The
    coordinator's unmask plane expands ~|U3| + |U2\\U3|·degree masks per
    round through this.
    """
    out = np.empty((len(seeds), length), dtype=np.int64)
    for i, seed in enumerate(seeds):
        out[i] = expand_uniform(seed, length, modulus)
    return out
