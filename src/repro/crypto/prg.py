"""SHA-256 counter-mode pseudorandom generator.

SecAgg expands short seeds into model-length mask vectors, and XNoise
expands noise seeds into DP noise (§3.1: "a DP noise is a sequence of
pseudo-random numbers of the same length as the model, and can be uniquely
generated via feeding a seed into a PRN generator").

The construction is the standard counter-mode PRF: block *i* of the stream
is ``SHA256(seed || i)``.  Identical seeds always produce identical
streams, which is what lets XNoise ship 32-byte seeds instead of
model-sized noise vectors.
"""

from __future__ import annotations

import hashlib

import numpy as np

_BLOCK = hashlib.sha256().digest_size  # 32 bytes


class PRG:
    """Deterministic byte/vector stream expanded from a seed.

    Each call advances an internal counter, so successive calls return
    disjoint stream segments; two PRGs built from the same seed produce
    the same sequence of outputs for the same sequence of calls.
    """

    def __init__(self, seed: bytes):
        if not isinstance(seed, (bytes, bytearray)):
            raise TypeError("seed must be bytes")
        self._seed = bytes(seed)
        self._counter = 0

    @property
    def seed(self) -> bytes:
        return self._seed

    def read(self, n: int) -> bytes:
        """Return the next ``n`` pseudorandom bytes."""
        if n < 0:
            raise ValueError("n must be non-negative")
        blocks = []
        remaining = n
        while remaining > 0:
            block = hashlib.sha256(
                self._seed + self._counter.to_bytes(8, "big")
            ).digest()
            self._counter += 1
            blocks.append(block[:remaining])
            remaining -= len(block[:remaining])
        return b"".join(blocks)

    def uniform_vector(self, length: int, modulus: int) -> np.ndarray:
        """Return ``length`` integers uniform in ``[0, modulus)`` as int64.

        Used for SecAgg masks over the ring Z_R.  Rejection-free: we read
        64-bit words and reduce mod ``modulus``; with ``modulus`` ≤ 2**40
        (the paper uses bit-width b = 20) the modulo bias is < 2**-24 and
        irrelevant for masking (any fixed bias cancels in the pairwise
        mask sum p_{u,v} + p_{v,u} = 0).
        """
        if modulus <= 0:
            raise ValueError("modulus must be positive")
        if length < 0:
            raise ValueError("length must be non-negative")
        raw = self.read(8 * length)
        words = np.frombuffer(raw, dtype=">u8").astype(np.uint64)
        return (words % np.uint64(modulus)).astype(np.int64)

    def numpy_generator(self) -> np.random.Generator:
        """A NumPy generator keyed by the next stream block.

        Used to sample distribution-shaped noise (Skellam, Gaussian)
        deterministically from a seed.  Each call returns an independent
        generator because it consumes a fresh stream block.
        """
        key = self.read(16)
        return np.random.default_rng(int.from_bytes(key, "big"))
