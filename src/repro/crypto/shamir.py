"""Shamir t-out-of-n secret sharing over GF(p).

XNoise secret-shares the noise-component seeds across sampled clients
before aggregation (§3.2), and SecAgg secret-shares the masking key
``s^SK`` and the self-mask seed ``b_u`` (Fig. 5, ShareKeys).  Both use the
classic Shamir scheme [Shamir'79]: the secret is the constant term of a
random degree-(t−1) polynomial; any t shares reconstruct it by Lagrange
interpolation, fewer reveal nothing.

Secrets here are byte strings (seeds, serialized keys).  A byte secret is
chunked so each chunk fits one field element; every chunk is shared with
an independent polynomial.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass

from repro.crypto.field import FIELD, PrimeField
from repro.utils.bytesio import bytes_to_int, chunk_bytes, int_to_bytes


@dataclass(frozen=True)
class Share:
    """One participant's share of a byte-string secret.

    ``x`` is the participant's evaluation point (non-zero field element,
    typically its 1-based client index) and ``ys`` holds one polynomial
    evaluation per secret chunk.  ``secret_len`` lets reconstruction strip
    the length padding.
    """

    x: int
    ys: tuple[int, ...]
    secret_len: int


class ShamirSecretSharing:
    """t-out-of-n sharing of byte-string secrets.

    Parameters
    ----------
    threshold:
        Minimum number of shares needed to reconstruct (t ≥ 1).
    field:
        The prime field to operate in; defaults to GF(2**127 − 1).
    """

    def __init__(self, threshold: int, field: PrimeField = FIELD):
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.threshold = threshold
        self.field = field

    def share(self, secret: bytes, participant_ids: list[int]) -> dict[int, Share]:
        """Split ``secret`` into one share per participant id.

        ``participant_ids`` must be distinct positive integers (they become
        the polynomial evaluation points, so 0 — the secret's position — is
        forbidden).
        """
        # Coerce to Python ints: NumPy integers overflow inside the
        # big-int polynomial arithmetic.
        ids = [int(i) for i in participant_ids]
        if len(set(ids)) != len(ids):
            raise ValueError("participant ids must be distinct")
        if any(i <= 0 or i >= self.field.p for i in ids):
            raise ValueError("participant ids must be in [1, p)")
        if len(ids) < self.threshold:
            raise ValueError(
                f"need at least threshold={self.threshold} participants, got {len(ids)}"
            )
        chunks = chunk_bytes(secret, self.field.capacity_bytes) or [b""]
        polys = []
        for chunk in chunks:
            constant = bytes_to_int(chunk) if chunk else 0
            coeffs = [constant] + [
                self.field.random_element() for _ in range(self.threshold - 1)
            ]
            polys.append(coeffs)
        return {
            pid: Share(
                x=pid,
                ys=tuple(self.field.eval_poly(coeffs, pid) for coeffs in polys),
                secret_len=len(secret),
            )
            for pid in ids
        }

    def reconstruct(self, shares: list[Share]) -> bytes:
        """Recover the secret from at least ``threshold`` shares.

        Raises ``ValueError`` if fewer than ``threshold`` distinct shares
        are supplied or the shares are structurally inconsistent.
        """
        distinct: dict[int, Share] = {}
        for s in shares:
            existing = distinct.get(s.x)
            if existing is not None and existing != s:
                raise ValueError(f"conflicting shares for x={s.x}")
            distinct[s.x] = s
        if len(distinct) < self.threshold:
            raise ValueError(
                f"need {self.threshold} shares to reconstruct, got {len(distinct)}"
            )
        use = list(distinct.values())[: self.threshold]
        n_chunks = len(use[0].ys)
        secret_len = use[0].secret_len
        if any(len(s.ys) != n_chunks or s.secret_len != secret_len for s in use):
            raise ValueError("shares disagree on secret shape")

        xs = [s.x for s in use]
        lagrange = self._lagrange_at_zero(xs)
        chunks: list[bytes] = []
        remaining = secret_len
        for chunk_idx in range(n_chunks):
            value = 0
            for coef, s in zip(lagrange, use):
                value = (value + coef * s.ys[chunk_idx]) % self.field.p
            size = min(self.field.capacity_bytes, remaining)
            chunks.append(int_to_bytes(value, size) if size else b"")
            remaining -= size
        return b"".join(chunks)

    def _lagrange_at_zero(self, xs: list[int]) -> list[int]:
        """Lagrange basis coefficients L_i(0) for the evaluation points."""
        coeffs = []
        for i, xi in enumerate(xs):
            num, den = 1, 1
            for j, xj in enumerate(xs):
                if i == j:
                    continue
                num = (num * (-xj)) % self.field.p
                den = (den * (xi - xj)) % self.field.p
            coeffs.append((num * self.field.inv(den)) % self.field.p)
        return coeffs


def random_seed(nbytes: int = 32) -> bytes:
    """Sample a fresh random seed (the ``b_u`` / ``g_{u,k}`` values of Fig. 5)."""
    return secrets.token_bytes(nbytes)
