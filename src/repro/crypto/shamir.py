"""Shamir t-out-of-n secret sharing over GF(p).

XNoise secret-shares the noise-component seeds across sampled clients
before aggregation (§3.2), and SecAgg secret-shares the masking key
``s^SK`` and the self-mask seed ``b_u`` (Fig. 5, ShareKeys).  Both use the
classic Shamir scheme [Shamir'79]: the secret is the constant term of a
random degree-(t−1) polynomial; any t shares reconstruct it by Lagrange
interpolation, fewer reveal nothing.

Secrets here are byte strings (seeds, serialized keys).  A byte secret is
chunked so each chunk fits one field element; every chunk is shared with
an independent polynomial.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass

from repro.crypto.field import FIELD, PrimeField
from repro.utils.bytesio import bytes_to_int, chunk_bytes, int_to_bytes


@dataclass(frozen=True)
class Share:
    """One participant's share of a byte-string secret.

    ``x`` is the participant's evaluation point (non-zero field element,
    typically its 1-based client index) and ``ys`` holds one polynomial
    evaluation per secret chunk.  ``secret_len`` lets reconstruction strip
    the length padding.
    """

    x: int
    ys: tuple[int, ...]
    secret_len: int


class ShamirSecretSharing:
    """t-out-of-n sharing of byte-string secrets.

    Parameters
    ----------
    threshold:
        Minimum number of shares needed to reconstruct (t ≥ 1).
    field:
        The prime field to operate in; defaults to GF(2**127 − 1).
    """

    # Distinct share-holder sets seen per instance before the Lagrange
    # cache resets.  An unmask round reconstructs ~n secrets over a
    # handful of responder sets; 256 is far above any realistic round.
    _LAGRANGE_CACHE_CAP = 256

    def __init__(self, threshold: int, field: PrimeField = FIELD):
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.threshold = threshold
        self.field = field
        self._lagrange_cache: dict[tuple[int, ...], list[int]] = {}

    def share(self, secret: bytes, participant_ids: list[int]) -> dict[int, Share]:
        """Split ``secret`` into one share per participant id.

        ``participant_ids`` must be distinct positive integers (they become
        the polynomial evaluation points, so 0 — the secret's position — is
        forbidden).
        """
        # Coerce to Python ints: NumPy integers overflow inside the
        # big-int polynomial arithmetic.
        ids = [int(i) for i in participant_ids]
        if len(set(ids)) != len(ids):
            raise ValueError("participant ids must be distinct")
        if any(i <= 0 or i >= self.field.p for i in ids):
            raise ValueError("participant ids must be in [1, p)")
        if len(ids) < self.threshold:
            raise ValueError(
                f"need at least threshold={self.threshold} participants, got {len(ids)}"
            )
        polys = self._sample_polynomials(secret)
        return self._evaluate_shares(polys, ids, len(secret))

    def share_reference(
        self, secret: bytes, participant_ids: list[int]
    ) -> dict[int, Share]:
        """Retained scalar reference for :meth:`share` (a modulo per
        Horner step via ``field.eval_poly``).

        Shares are random, so the parity pin is on the deterministic
        evaluation step: :meth:`_evaluate_shares` must equal
        :meth:`_evaluate_shares_reference` for any polynomials.
        """
        ids = [int(i) for i in participant_ids]
        if len(set(ids)) != len(ids):
            raise ValueError("participant ids must be distinct")
        if any(i <= 0 or i >= self.field.p for i in ids):
            raise ValueError("participant ids must be in [1, p)")
        if len(ids) < self.threshold:
            raise ValueError(
                f"need at least threshold={self.threshold} participants, got {len(ids)}"
            )
        polys = self._sample_polynomials(secret)
        return self._evaluate_shares_reference(polys, ids, len(secret))

    def _sample_polynomials(self, secret: bytes) -> list[list[int]]:
        """One random degree-(t−1) polynomial per secret chunk."""
        chunks = chunk_bytes(secret, self.field.capacity_bytes) or [b""]
        polys = []
        for chunk in chunks:
            constant = bytes_to_int(chunk) if chunk else 0
            coeffs = [constant] + [
                self.field.random_element() for _ in range(self.threshold - 1)
            ]
            polys.append(coeffs)
        return polys

    def _evaluate_shares(
        self, polys: list[list[int]], ids: list[int], secret_len: int
    ) -> dict[int, Share]:
        """Deferred-reduction Horner: one modulo per (participant, chunk)
        instead of one per coefficient.  The evaluation point is a small
        client index, so each Horner step multiplies the accumulator by
        a few-bit integer — the accumulator grows by ~log2(x) bits per
        step and a single final reduction is cheaper than t − 1
        interleaved ones (measured ~2× across cohort sizes).
        Bit-identical to :meth:`_evaluate_shares_reference` (polynomial
        evaluation mod p is unique); pinned by test."""
        p = self.field.p
        out: dict[int, Share] = {}
        for pid in ids:
            ys = []
            for coeffs in polys:
                acc = 0
                for c in reversed(coeffs):
                    acc = acc * pid + c
                ys.append(acc % p)
            out[pid] = Share(x=pid, ys=tuple(ys), secret_len=secret_len)
        return out

    def _evaluate_shares_reference(
        self, polys: list[list[int]], ids: list[int], secret_len: int
    ) -> dict[int, Share]:
        """Retained scalar evaluation: per-chunk Horner per participant."""
        return {
            pid: Share(
                x=pid,
                ys=tuple(self.field.eval_poly(coeffs, pid) for coeffs in polys),
                secret_len=secret_len,
            )
            for pid in ids
        }

    def reconstruct(self, shares: list[Share]) -> bytes:
        """Recover the secret from at least ``threshold`` shares.

        Raises ``ValueError`` if fewer than ``threshold`` distinct shares
        are supplied or the shares are structurally inconsistent.

        The Lagrange-at-zero coefficients are computed once for the
        chosen evaluation points and reused across every chunk, with one
        deferred reduction per chunk (bit-identical to
        :meth:`reconstruct_reference`; pinned by test).  Coefficients
        are additionally memoized per instance keyed by the x-coordinate
        tuple, so repeated reconstructions over the same share-holder
        set — the common case in an unmask round, where every secret is
        held by the same responder set — skip the modular-inverse work
        entirely.
        """
        use, n_chunks, secret_len = self._select_shares(shares)
        lagrange = self._lagrange_cached(tuple(s.x for s in use))
        return self._interpolate_chunks(use, n_chunks, secret_len, lagrange)

    def reconstruct_many(self, share_lists: list[list[Share]]) -> list[bytes]:
        """Recover one secret per share list, amortizing Lagrange setup.

        The coordinator's batched recovery entry point: an unmask round
        reconstructs |U3| self-mask seeds plus |U2\\U3| mask keys, and
        every one of them is typically held by the same responder set —
        so the Lagrange-at-zero coefficients (one modular inverse per
        share) are computed once per distinct x-tuple and reused across
        the whole batch.  Element ``i`` is bit-identical to
        ``reconstruct(share_lists[i])`` (pinned by test), including
        which ``ValueError`` a malformed list raises and in which order.
        """
        out: list[bytes] = []
        for shares in share_lists:
            use, n_chunks, secret_len = self._select_shares(shares)
            lagrange = self._lagrange_cached(tuple(s.x for s in use))
            out.append(
                self._interpolate_chunks(use, n_chunks, secret_len, lagrange)
            )
        return out

    def _interpolate_chunks(
        self,
        use: list[Share],
        n_chunks: int,
        secret_len: int,
        lagrange: list[int],
    ) -> bytes:
        """Interpolate every chunk at zero with one reduction per chunk."""
        p = self.field.p
        chunks: list[bytes] = []
        remaining = secret_len
        for chunk_idx in range(n_chunks):
            value = (
                sum(coef * s.ys[chunk_idx] for coef, s in zip(lagrange, use))
                % p
            )
            size = min(self.field.capacity_bytes, remaining)
            chunks.append(int_to_bytes(value, size) if size else b"")
            remaining -= size
        return b"".join(chunks)

    def _lagrange_cached(self, xs: tuple[int, ...]) -> list[int]:
        """Memoized :meth:`_lagrange_at_zero` (fast paths only — the
        reference twin recomputes per call, as the spec is written)."""
        coeffs = self._lagrange_cache.get(xs)
        if coeffs is None:
            if len(self._lagrange_cache) >= self._LAGRANGE_CACHE_CAP:
                self._lagrange_cache.clear()
            coeffs = self._lagrange_at_zero(list(xs))
            self._lagrange_cache[xs] = coeffs
        return coeffs

    def reconstruct_reference(self, shares: list[Share]) -> bytes:
        """Retained scalar reference for :meth:`reconstruct` (modulo per
        Lagrange term)."""
        use, n_chunks, secret_len = self._select_shares(shares)
        lagrange = self._lagrange_at_zero([s.x for s in use])
        chunks: list[bytes] = []
        remaining = secret_len
        for chunk_idx in range(n_chunks):
            value = 0
            for coef, s in zip(lagrange, use):
                value = (value + coef * s.ys[chunk_idx]) % self.field.p
            size = min(self.field.capacity_bytes, remaining)
            chunks.append(int_to_bytes(value, size) if size else b"")
            remaining -= size
        return b"".join(chunks)

    def _select_shares(
        self, shares: list[Share]
    ) -> tuple[list[Share], int, int]:
        """Validate and pick the ``threshold`` shares reconstruction uses."""
        distinct: dict[int, Share] = {}
        for s in shares:
            existing = distinct.get(s.x)
            if existing is not None and existing != s:
                raise ValueError(f"conflicting shares for x={s.x}")
            distinct[s.x] = s
        if len(distinct) < self.threshold:
            raise ValueError(
                f"need {self.threshold} shares to reconstruct, got {len(distinct)}"
            )
        use = list(distinct.values())[: self.threshold]
        n_chunks = len(use[0].ys)
        secret_len = use[0].secret_len
        if any(len(s.ys) != n_chunks or s.secret_len != secret_len for s in use):
            raise ValueError("shares disagree on secret shape")
        return use, n_chunks, secret_len

    def _lagrange_at_zero(self, xs: list[int]) -> list[int]:
        """Lagrange basis coefficients L_i(0) for the evaluation points."""
        coeffs = []
        for i, xi in enumerate(xs):
            num, den = 1, 1
            for j, xj in enumerate(xs):
                if i == j:
                    continue
                num = (num * (-xj)) % self.field.p
                den = (den * (xi - xj)) % self.field.p
            coeffs.append((num * self.field.inv(den)) % self.field.p)
        return coeffs


def random_seed(nbytes: int = 32) -> bytes:
    """Sample a fresh random seed (the ``b_u`` / ``g_{u,k}`` values of Fig. 5)."""
    return secrets.token_bytes(nbytes)
