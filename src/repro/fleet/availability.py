"""Client-availability and dropout models.

An availability model answers one question per round: *which of the
sampled clients fail to respond?* (``dropped(sampled, round_index)``).
Three models drive the experiments:

- :class:`FixedRateDropout` — the §6.1 dropout model: sampled clients
  drop i.i.d. with a configurable per-round rate, "after being sampled
  but before sending their masked and perturbed update".
- :class:`BehaviorTrace` (via :class:`TraceDrivenDropout`) — a stand-in
  for the 136k-device user-behaviour trace [Yang et al.] behind Fig. 1a:
  each client alternates heavy-tailed online/offline sessions, so the
  per-round dropout rate of a 16-client sample swings across the whole
  [0, 1] range.  It materializes a dense ``(clients × horizon)`` boolean
  matrix up front — the small-n *reference* implementation.
- :class:`SessionStream` — the same generative model, derived lazily:
  each device's on/off timeline comes on demand from its own rng stream
  (``derive_rng("behavior-trace", seed, client)``), O(1) memory per
  queried device with an LRU bounding resident state to the sampled
  cohort.  This is what a million-device fleet runs on, and the only
  model that supports the correlated bandwidth × availability coupling
  (``correlation`` + ``link_quantiles``: slow-link devices are also
  flaky, via a Gaussian copula that preserves the Beta propensity
  marginal exactly).

Scenario wrappers (:class:`DiurnalWave`, :class:`FlashCrowd`,
:class:`RegionalOutage`) compose over any base model to shape fleet-wide
churn: a time-of-day availability wave, a cohort joining mid-training,
and a correlated slice of the fleet vanishing for a window of rounds.

These classes historically lived in :mod:`repro.fl.dropout`, which
re-exports them; the fleet layer owns them now because availability is a
property of the device population, not of the learning algorithm.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from collections import OrderedDict

import numpy as np

from repro.utils.rng import derive_rng

#: Above this population size ``build_availability("trace", ...)`` stops
#: materializing the dense BehaviorTrace matrix and derives timelines
#: lazily via :class:`SessionStream` instead.
DENSE_TRACE_MAX_CLIENTS = 4096

#: Resident per-device timelines a :class:`SessionStream` keeps (LRU).
SESSION_CACHE_SIZE = 4096


class AlwaysAvailable:
    """The degenerate model: nobody ever drops."""

    def dropped(self, sampled: list[int], round_index: int) -> set[int]:
        return set()


class FixedRateDropout:
    """I.i.d. per-round dropout at a fixed rate."""

    def __init__(self, rate: float, seed: int = 0):
        if not 0 <= rate < 1:
            raise ValueError("rate must be in [0, 1)")
        self.rate = rate
        self.seed = seed

    def dropped(self, sampled: list[int], round_index: int) -> set[int]:
        """The subset of this round's sample that drops out."""
        if self.rate == 0:
            return set()
        rng = derive_rng("fixed-dropout", self.seed, round_index)
        mask = rng.random(len(sampled)) < self.rate
        return {u for u, gone in zip(sampled, mask) if gone}


class BehaviorTrace:
    """Synthetic device availability: alternating on/off sessions.

    Session lengths are lognormal (heavy-tailed, like real device usage);
    each client has its own online propensity drawn from a Beta
    distribution so the population mixes always-on devices with highly
    volatile ones — the "volatile users" the paper extracts.

    The whole ``(clients × horizon)`` matrix is materialized up front by
    a per-client Python session loop — the small-n reference model.  At
    fleet scale use :class:`SessionStream`, which derives the same
    session process lazily (statistical parity pinned by test).
    """

    def __init__(
        self,
        n_clients: int,
        horizon: int,
        mean_session: float = 8.0,
        volatility: tuple[float, float] = (1.2, 1.2),
        seed: int = 0,
    ):
        if n_clients < 1 or horizon < 1:
            raise ValueError("n_clients and horizon must be positive")
        if mean_session <= 0:
            raise ValueError("mean_session must be positive")
        self.n_clients = n_clients
        self.horizon = horizon
        self._avail = np.zeros((n_clients, horizon), dtype=bool)
        rng = derive_rng("behavior-trace", seed)
        propensity = rng.beta(*volatility, size=n_clients)
        for c in range(n_clients):
            t = 0
            online = rng.random() < propensity[c]
            while t < horizon:
                mean = mean_session * (
                    propensity[c] if online else (1 - propensity[c]) + 0.1
                )
                length = max(1, int(rng.lognormal(np.log(mean + 1e-9), 0.8)))
                self._avail[c, t : t + length] = online
                t += length
                online = not online

    def available(self, client: int, round_index: int) -> bool:
        return bool(self._avail[client % self.n_clients, round_index % self.horizon])

    def availability_matrix(self) -> np.ndarray:
        """(clients × rounds) boolean availability (for Fig. 1a plots)."""
        return self._avail.copy()

    def dropout_rates(self, sample_size: int, seed: int = 0) -> np.ndarray:
        """Per-round dropout rate of a random ``sample_size`` sample.

        Reproduces Fig. 1a: sample clients uniformly each round and
        measure the fraction unavailable by round end.  The per-round
        draws must consume the rng exactly like the retained
        :meth:`dropout_rates_reference` loop (pinned equal by test), but
        the availability gather + mean collapses into one batched fancy
        index over the whole horizon instead of one Python-level slice
        and reduction per round.
        """
        rng = derive_rng("trace-sampling", seed)
        k = min(sample_size, self.n_clients)
        samples = np.stack(
            [
                rng.choice(self.n_clients, size=k, replace=False)
                for _ in range(self.horizon)
            ]
        )
        picked = self._avail[samples, np.arange(self.horizon)[:, None]]
        return 1.0 - picked.mean(axis=1)

    def dropout_rates_reference(
        self, sample_size: int, seed: int = 0
    ) -> np.ndarray:
        """The original per-round loop — the executable spec
        :meth:`dropout_rates` is pinned bit-identical to."""
        rng = derive_rng("trace-sampling", seed)
        rates = np.empty(self.horizon)
        for r in range(self.horizon):
            sample = rng.choice(self.n_clients, size=min(sample_size, self.n_clients), replace=False)
            rates[r] = 1.0 - self._avail[sample, r].mean()
        return rates


class TraceDrivenDropout:
    """Dropout adapter: a sampled client drops if its trace says offline."""

    def __init__(self, trace: BehaviorTrace):
        self.trace = trace

    def dropped(self, sampled: list[int], round_index: int) -> set[int]:
        return {
            u for u in sampled if not self.trace.available(u, round_index)
        }


def _correlated_propensity(
    link_quantile: float, correlation: float, z_indep: float,
    a: float, b: float,
) -> float:
    """Beta(a, b) propensity rank-coupled to link quality.

    A Gaussian copula: the device's bandwidth quantile ``u`` and an
    independent normal draw mix as
    ``z = ρ·Φ⁻¹(u) + √(1−ρ²)·z_indep``; ``Φ(z)`` is again uniform, so
    ``F_Beta⁻¹(Φ(z))`` preserves the exact Beta marginal the
    uncorrelated trace model draws from while giving Spearman-style rank
    correlation ≈ ρ between link speed and online propensity — slow
    devices are also flaky (the Fig.-1a churn shape, coupled).
    """
    from scipy.special import betaincinv, ndtr, ndtri  # gated: scipy ships in CI

    # Clamp away from the copula's singular endpoints (quantiles are
    # mid-ranks (r+0.5)/n, so this only guards degenerate inputs).
    u = min(max(link_quantile, 1e-12), 1.0 - 1e-12)
    z = correlation * float(ndtri(u)) + math.sqrt(
        1.0 - correlation * correlation
    ) * z_indep
    return float(betaincinv(a, b, float(ndtr(z))))


class _DeviceSessions:
    """One device's lazily-extended on/off timeline."""

    __slots__ = ("propensity", "_rng", "_bounds", "_states", "_mean_session")

    def __init__(self, stream: "SessionStream", client: int):
        rng = derive_rng("behavior-trace", stream.seed, client)
        if stream.correlation:
            z = float(rng.standard_normal())
            self.propensity = _correlated_propensity(
                float(stream.link_quantiles[client]),
                stream.correlation,
                z,
                *stream.volatility,
            )
        else:
            self.propensity = float(rng.beta(*stream.volatility))
        self._rng = rng
        self._mean_session = stream.mean_session
        # Segment i spans rounds [_bounds[i], _bounds[i+1]) in state
        # _states[i]; the first state is drawn like BehaviorTrace's.
        self._bounds: list[int] = [0]
        self._states: list[bool] = [bool(rng.random() < self.propensity)]

    def online_at(self, t: int) -> bool:
        # bounds[i] is segment i's first round; bounds[i+1] its end;
        # states[i] its on/off state.  Extend until t is covered.
        bounds, states = self._bounds, self._states
        while bounds[-1] <= t:
            if len(states) == len(bounds):
                online = states[-1]  # initial segment, length not yet drawn
            else:
                online = not states[-1]
                states.append(online)
            mean = self._mean_session * (
                self.propensity if online else (1 - self.propensity) + 0.1
            )
            length = max(1, int(self._rng.lognormal(np.log(mean + 1e-9), 0.8)))
            bounds.append(bounds[-1] + length)
        return states[bisect_right(bounds, t) - 1]


class SessionStream:
    """Lazy behaviour-trace availability: O(1) state per queried device.

    The same generative model as :class:`BehaviorTrace` — per-client
    Beta online propensity, alternating heavy-tailed lognormal on/off
    sessions — but nothing is materialized up front.  Each device's
    timeline derives on demand from its own stream
    ``derive_rng("behavior-trace", seed, client)`` and extends only as
    far as the rounds actually queried, so a million-device fleet costs
    nothing until a cohort is sampled; an LRU bounds resident timelines
    to roughly the sampled cohort (evicted devices regenerate
    deterministically from their stream).

    The per-round dropout-rate *marginal* matches :class:`BehaviorTrace`
    (statistical parity, pinned by test) — the streams differ (the dense
    trace interleaves all clients on one rng), so individual timelines
    are not bit-equal, but the Fig.-1a churn distribution is.

    ``correlation`` ∈ [-1, 1] couples propensity to ``link_quantiles``
    (per-device bandwidth mid-ranks in (0, 1)) through a Gaussian copula
    that preserves the Beta marginal exactly: ρ > 0 makes slow-link
    devices also flaky.
    """

    def __init__(
        self,
        n_clients: int,
        mean_session: float = 8.0,
        volatility: tuple[float, float] = (1.2, 1.2),
        seed: int = 0,
        correlation: float = 0.0,
        link_quantiles: np.ndarray | None = None,
        cache_size: int = SESSION_CACHE_SIZE,
    ):
        if n_clients < 1:
            raise ValueError("n_clients must be positive")
        if mean_session <= 0:
            raise ValueError("mean_session must be positive")
        if not -1.0 <= correlation <= 1.0:
            raise ValueError("correlation must be in [-1, 1]")
        if correlation and link_quantiles is None:
            raise ValueError(
                "correlated availability needs link_quantiles "
                "(per-device bandwidth ranks)"
            )
        if link_quantiles is not None and len(link_quantiles) != n_clients:
            raise ValueError("link_quantiles must cover every device")
        if cache_size < 1:
            raise ValueError("cache_size must be positive")
        self.n_clients = n_clients
        self.mean_session = mean_session
        self.volatility = volatility
        self.seed = seed
        self.correlation = float(correlation)
        self.link_quantiles = link_quantiles
        self.cache_size = cache_size
        self._cache: OrderedDict[int, _DeviceSessions] = OrderedDict()

    def _sessions(self, client: int) -> _DeviceSessions:
        client = int(client) % self.n_clients
        cached = self._cache.get(client)
        if cached is not None:
            self._cache.move_to_end(client)
            return cached
        sessions = _DeviceSessions(self, client)
        self._cache[client] = sessions
        if len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)
        return sessions

    @property
    def resident_devices(self) -> int:
        """Timelines currently cached (≤ ``cache_size`` — O(cohort))."""
        return len(self._cache)

    def propensity(self, client: int) -> float:
        """The device's online propensity (Beta marginal; rank-coupled
        to link quality when ``correlation`` is set)."""
        return self._sessions(client).propensity

    def available(self, client: int, round_index: int) -> bool:
        return self._sessions(client).online_at(int(round_index))

    def dropped(self, sampled: list[int], round_index: int) -> set[int]:
        r = int(round_index)
        return {u for u in sampled if not self.available(u, r)}

    def dropout_rates(
        self, sample_size: int, horizon: int, seed: int = 0
    ) -> np.ndarray:
        """Fig.-1a curve over ``horizon`` rounds (uniform resampling).

        Mirrors :meth:`BehaviorTrace.dropout_rates`; ``horizon`` is a
        parameter because a session stream has no fixed end.
        """
        if horizon < 1:
            raise ValueError("horizon must be positive")
        rng = derive_rng("trace-sampling", seed)
        k = min(sample_size, self.n_clients)
        rates = np.empty(horizon)
        for r in range(horizon):
            sample = rng.choice(self.n_clients, size=k, replace=False)
            online = sum(self.available(u, r) for u in sample)
            rates[r] = 1.0 - online / k
        return rates


class DiurnalWave:
    """Scenario wrapper: a fleet-wide time-of-day availability wave.

    On top of ``base``'s churn, every sampled client is additionally
    offline with probability ``amplitude · (1 − cos(2π·r/period)) / 2``
    — zero at the daily peak (r ≡ 0 mod period), ``amplitude`` in the
    trough half a period later.
    """

    def __init__(self, base, period: int = 24, amplitude: float = 0.5,
                 seed: int = 0):
        if period < 1:
            raise ValueError("period must be positive")
        if not 0 <= amplitude <= 1:
            raise ValueError("amplitude must be in [0, 1]")
        self.base = base
        self.period = period
        self.amplitude = amplitude
        self.seed = seed

    def offline_rate(self, round_index: int) -> float:
        phase = 2.0 * math.pi * (round_index % self.period) / self.period
        return self.amplitude * 0.5 * (1.0 - math.cos(phase))

    def dropped(self, sampled: list[int], round_index: int) -> set[int]:
        gone = set(self.base.dropped(sampled, round_index))
        rate = self.offline_rate(round_index)
        if rate <= 0:
            return gone
        rng = derive_rng("diurnal-wave", self.seed, round_index)
        mask = rng.random(len(sampled)) < rate
        gone.update(u for u, g in zip(sampled, mask) if g)
        return gone


class FlashCrowd:
    """Scenario wrapper: a late cohort joins the fleet mid-training.

    The id-suffix slice (the top ``fraction`` of device ids) is absent
    before ``join_round`` and follows ``base`` from then on — a flash
    crowd arriving all at once.
    """

    def __init__(self, base, n_clients: int, join_round: int,
                 fraction: float = 0.5):
        if n_clients < 1:
            raise ValueError("n_clients must be positive")
        if not 0 < fraction <= 1:
            raise ValueError("fraction must be in (0, 1]")
        self.base = base
        self.n_clients = n_clients
        self.join_round = join_round
        self.fraction = fraction
        self.first_late_id = int(round(n_clients * (1.0 - fraction)))

    def dropped(self, sampled: list[int], round_index: int) -> set[int]:
        gone = set(self.base.dropped(sampled, round_index))
        if round_index < self.join_round:
            gone.update(
                u for u in sampled
                if (u % self.n_clients) >= self.first_late_id
            )
        return gone


class RegionalOutage:
    """Scenario wrapper: a contiguous id-region vanishes for a window.

    Devices with ``region[0] <= id < region[1]`` are offline during
    rounds ``[start_round, end_round)`` — the correlated slice of the
    fleet (a region behind one failing backbone) disappearing mid-round
    and coming back.
    """

    def __init__(self, base, region: tuple[int, int], start_round: int,
                 end_round: int):
        lo, hi = region
        if lo >= hi:
            raise ValueError("region must be a non-empty (lo, hi) id slice")
        if start_round >= end_round:
            raise ValueError("outage window must be non-empty")
        self.base = base
        self.region = (lo, hi)
        self.start_round = start_round
        self.end_round = end_round

    def dropped(self, sampled: list[int], round_index: int) -> set[int]:
        gone = set(self.base.dropped(sampled, round_index))
        if self.start_round <= round_index < self.end_round:
            lo, hi = self.region
            gone.update(u for u in sampled if lo <= u < hi)
        return gone


def build_availability(
    name: str,
    *,
    n_clients: int,
    horizon: int,
    dropout_rate: float = 0.0,
    mean_session: float = 8.0,
    seed: int = 0,
    correlation: float = 0.0,
    link_quantiles: np.ndarray | None = None,
    dense_trace_max: int = DENSE_TRACE_MAX_CLIENTS,
):
    """Availability model for a config name.

    ``"fixed"`` → :class:`FixedRateDropout` at ``dropout_rate`` (the
    §6.1 i.i.d. model; rate 0 degenerates to :class:`AlwaysAvailable`);
    ``"trace"`` → the Fig.-1a churn model — ``dropout_rate`` is ignored,
    the trace sets the rate each round.  Small populations get the dense
    :class:`BehaviorTrace` reference; above ``dense_trace_max`` clients
    (or whenever ``correlation`` is set, which only the lazy model
    supports) the timelines derive lazily via :class:`SessionStream`;
    ``"session"`` → :class:`SessionStream` unconditionally.
    """
    if name == "fixed":
        if correlation:
            raise ValueError(
                "correlation couples availability to link quality, which "
                "the fixed-rate model cannot express; use availability "
                "'trace' or 'session'"
            )
        if dropout_rate == 0.0:
            return AlwaysAvailable()
        return FixedRateDropout(dropout_rate, seed=seed)
    if name in ("trace", "session"):
        if name == "session" or correlation or n_clients > dense_trace_max:
            return SessionStream(
                n_clients=n_clients,
                mean_session=mean_session,
                seed=seed,
                correlation=correlation,
                link_quantiles=link_quantiles,
            )
        return TraceDrivenDropout(
            BehaviorTrace(
                n_clients=n_clients,
                horizon=horizon,
                mean_session=mean_session,
                seed=seed,
            )
        )
    raise ValueError(
        f"unknown availability model {name!r} (fixed | trace | session)"
    )
