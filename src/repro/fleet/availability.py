"""Client-availability and dropout models.

An availability model answers one question per round: *which of the
sampled clients fail to respond?* (``dropped(sampled, round_index)``).
Two models drive the experiments:

- :class:`FixedRateDropout` — the §6.1 dropout model: sampled clients
  drop i.i.d. with a configurable per-round rate, "after being sampled
  but before sending their masked and perturbed update".
- :class:`BehaviorTrace` (via :class:`TraceDrivenDropout`) — a stand-in
  for the 136k-device user-behaviour trace [Yang et al.] behind Fig. 1a:
  each client alternates heavy-tailed online/offline sessions, so the
  per-round dropout rate of a 16-client sample swings across the whole
  [0, 1] range.

These classes historically lived in :mod:`repro.fl.dropout`, which
re-exports them; the fleet layer owns them now because availability is a
property of the device population, not of the learning algorithm.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import derive_rng


class AlwaysAvailable:
    """The degenerate model: nobody ever drops."""

    def dropped(self, sampled: list[int], round_index: int) -> set[int]:
        return set()


class FixedRateDropout:
    """I.i.d. per-round dropout at a fixed rate."""

    def __init__(self, rate: float, seed: int = 0):
        if not 0 <= rate < 1:
            raise ValueError("rate must be in [0, 1)")
        self.rate = rate
        self.seed = seed

    def dropped(self, sampled: list[int], round_index: int) -> set[int]:
        """The subset of this round's sample that drops out."""
        if self.rate == 0:
            return set()
        rng = derive_rng("fixed-dropout", self.seed, round_index)
        mask = rng.random(len(sampled)) < self.rate
        return {u for u, gone in zip(sampled, mask) if gone}


class BehaviorTrace:
    """Synthetic device availability: alternating on/off sessions.

    Session lengths are lognormal (heavy-tailed, like real device usage);
    each client has its own online propensity drawn from a Beta
    distribution so the population mixes always-on devices with highly
    volatile ones — the "volatile users" the paper extracts.
    """

    def __init__(
        self,
        n_clients: int,
        horizon: int,
        mean_session: float = 8.0,
        volatility: tuple[float, float] = (1.2, 1.2),
        seed: int = 0,
    ):
        if n_clients < 1 or horizon < 1:
            raise ValueError("n_clients and horizon must be positive")
        if mean_session <= 0:
            raise ValueError("mean_session must be positive")
        self.n_clients = n_clients
        self.horizon = horizon
        self._avail = np.zeros((n_clients, horizon), dtype=bool)
        rng = derive_rng("behavior-trace", seed)
        propensity = rng.beta(*volatility, size=n_clients)
        for c in range(n_clients):
            t = 0
            online = rng.random() < propensity[c]
            while t < horizon:
                mean = mean_session * (
                    propensity[c] if online else (1 - propensity[c]) + 0.1
                )
                length = max(1, int(rng.lognormal(np.log(mean + 1e-9), 0.8)))
                self._avail[c, t : t + length] = online
                t += length
                online = not online

    def available(self, client: int, round_index: int) -> bool:
        return bool(self._avail[client % self.n_clients, round_index % self.horizon])

    def availability_matrix(self) -> np.ndarray:
        """(clients × rounds) boolean availability (for Fig. 1a plots)."""
        return self._avail.copy()

    def dropout_rates(self, sample_size: int, seed: int = 0) -> np.ndarray:
        """Per-round dropout rate of a random ``sample_size`` sample.

        Reproduces Fig. 1a: sample clients uniformly each round and
        measure the fraction unavailable by round end.
        """
        rng = derive_rng("trace-sampling", seed)
        rates = np.empty(self.horizon)
        for r in range(self.horizon):
            sample = rng.choice(self.n_clients, size=min(sample_size, self.n_clients), replace=False)
            rates[r] = 1.0 - self._avail[sample, r].mean()
        return rates


class TraceDrivenDropout:
    """Dropout adapter: a sampled client drops if its trace says offline."""

    def __init__(self, trace: BehaviorTrace):
        self.trace = trace

    def dropped(self, sampled: list[int], round_index: int) -> set[int]:
        return {
            u for u in sampled if not self.trace.available(u, round_index)
        }


def build_availability(
    name: str,
    *,
    n_clients: int,
    horizon: int,
    dropout_rate: float = 0.0,
    mean_session: float = 8.0,
    seed: int = 0,
):
    """Availability model for a config name.

    ``"fixed"`` → :class:`FixedRateDropout` at ``dropout_rate`` (the
    §6.1 i.i.d. model; rate 0 degenerates to :class:`AlwaysAvailable`);
    ``"trace"`` → :class:`TraceDrivenDropout` over a fresh
    :class:`BehaviorTrace` spanning the population and horizon (the
    Fig.-1a churn model — ``dropout_rate`` is ignored, the trace sets
    the rate each round).
    """
    if name == "fixed":
        if dropout_rate == 0.0:
            return AlwaysAvailable()
        return FixedRateDropout(dropout_rate, seed=seed)
    if name == "trace":
        return TraceDrivenDropout(
            BehaviorTrace(
                n_clients=n_clients,
                horizon=horizon,
                mean_session=mean_session,
                seed=seed,
            )
        )
    raise ValueError(f"unknown availability model {name!r} (fixed | trace)")
