"""Per-device hardware/network profiles with directional bandwidth.

The paper's §6.1 testbed is heterogeneous in two independent ways: the
end-to-end latency of the i-th slowest client follows an inverse Zipf
profile, and client bandwidth is Zipf-distributed within [21, 210] Mbps.
Its network costs are also *directionally asymmetric* — the client
uplink is the WAN bottleneck for masked inputs and shares, the downlink
for model broadcast — so a profile carries separate ``uplink_bps`` and
``downlink_bps``.  A symmetric profile (``uplink == downlink``) behaves
bit-identically to the legacy single-``bandwidth_bps`` device.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import derive_rng
from repro.utils.zipf import zipf_between, zipf_weights

#: §6.1 bandwidth throttle, in bytes/second: [21, 210] Mbps.
DEFAULT_BANDWIDTH_RANGE = (21e6 / 8, 210e6 / 8)


@dataclass(frozen=True)
class DeviceProfile:
    """One client's hardware/network profile.

    ``compute_factor`` multiplies compute-stage durations (1.0 = the
    fleet's fastest device); ``uplink_bps`` / ``downlink_bps`` are the
    client→server and server→client link speeds in bytes per second.
    """

    client_id: int
    compute_factor: float
    uplink_bps: float
    downlink_bps: float

    def __post_init__(self) -> None:
        if self.compute_factor < 1.0:
            raise ValueError("compute_factor is relative to the fastest (>= 1)")
        if self.uplink_bps <= 0 or self.downlink_bps <= 0:
            raise ValueError("bandwidth must be positive")

    @classmethod
    def symmetric(
        cls, client_id: int, compute_factor: float = 1.0,
        bandwidth_bps: float = DEFAULT_BANDWIDTH_RANGE[1],
    ) -> "DeviceProfile":
        """A device whose uplink and downlink share one bandwidth."""
        return cls(
            client_id=client_id,
            compute_factor=compute_factor,
            uplink_bps=bandwidth_bps,
            downlink_bps=bandwidth_bps,
        )

    @property
    def is_symmetric(self) -> bool:
        return self.uplink_bps == self.downlink_bps

    @property
    def bandwidth_bps(self) -> float:
        """The uplink speed — the legacy symmetric accessor.

        Pre-split call sites (straggler queries, upload gating) read one
        ``bandwidth_bps``; they meant the uplink, which this returns.
        Equals ``downlink_bps`` for symmetric profiles.
        """
        return self.uplink_bps

    def upload_seconds(self, nbytes: float) -> float:
        """Client→server transfer time of ``nbytes`` on the uplink."""
        return nbytes / self.uplink_bps

    def download_seconds(self, nbytes: float) -> float:
        """Server→client transfer time of ``nbytes`` on the downlink."""
        return nbytes / self.downlink_bps

    def link_seconds(self, down_nbytes: float, up_nbytes: float) -> float:
        """One request/response exchange: down on the downlink, up on
        the uplink.

        The symmetric case is computed as ``(down + up) / bandwidth`` —
        one division, exactly the pre-split formula — so a symmetric
        profile reproduces legacy latencies *bit-identically* rather
        than merely approximately (two divisions would round
        differently).
        """
        if self.uplink_bps == self.downlink_bps:
            return (down_nbytes + up_nbytes) / self.uplink_bps
        return (
            down_nbytes / self.downlink_bps + up_nbytes / self.uplink_bps
        )


@dataclass(frozen=True)
class ProfileColumns:
    """A device population as three parallel float64 columns.

    Row ``i`` is device ``i``'s profile.  This is the scalable
    representation: a million devices are three 8 MB arrays instead of a
    million boxed :class:`DeviceProfile` objects.  :meth:`device` boxes
    one row on demand, producing a profile bit-identical to what the
    materializing builder would have constructed for the same row.
    """

    compute_factor: np.ndarray
    uplink_bps: np.ndarray
    downlink_bps: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.compute_factor)
        if n < 1:
            raise ValueError("a fleet needs at least one device")
        if len(self.uplink_bps) != n or len(self.downlink_bps) != n:
            raise ValueError("profile columns must have equal length")
        # The per-profile __post_init__ checks, vectorized: one pass at
        # construction instead of one Python call per boxed device.
        if float(self.compute_factor.min()) < 1.0:
            raise ValueError("compute_factor is relative to the fastest (>= 1)")
        if float(self.uplink_bps.min()) <= 0 or float(self.downlink_bps.min()) <= 0:
            raise ValueError("bandwidth must be positive")

    @property
    def n(self) -> int:
        return len(self.compute_factor)

    def device(self, row: int) -> DeviceProfile:
        """Box one row (``client_id == row``) as a :class:`DeviceProfile`."""
        return DeviceProfile(
            client_id=int(row),
            compute_factor=float(self.compute_factor[row]),
            uplink_bps=float(self.uplink_bps[row]),
            downlink_bps=float(self.downlink_bps[row]),
        )


def heterogeneous_fleet_columns(
    n: int,
    zipf_a: float = 1.2,
    bandwidth_range: tuple[float, float] = DEFAULT_BANDWIDTH_RANGE,
    max_slowdown: float = 8.0,
    seed: int = 0,
    downlink_range: tuple[float, float] | None = None,
) -> ProfileColumns:
    """The §6.1 heterogeneity draws, kept columnar.

    Identical rng streams and identical arithmetic to
    :func:`heterogeneous_fleet_reference` — the draws were always numpy
    arrays; this builder just stops boxing them.  Boxing row ``i``
    (:meth:`ProfileColumns.device`) reproduces the reference profile
    bit-for-bit, which the parity suite pins.

    Compute factors follow the inverse Zipf profile (slowest =
    ``max_slowdown``×); uplink bandwidths are an independently-shuffled
    Zipf profile within ``bandwidth_range`` — the two resources are not
    correlated, as in the paper's setup of two independent Zipf draws.

    ``downlink_range=None`` (the default) produces symmetric devices
    whose profiles — compute factors and bandwidths alike — are
    bit-identical to the pre-split fleet for the same seed.  Passing a
    range draws a third independent Zipf profile for the downlinks
    (real WAN links are asymmetric: residential downlink is typically
    several times the uplink), shuffled on its own rng stream so the
    uplink/compute draws are untouched.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    weights = zipf_weights(n, zipf_a)
    # Largest weight = slowest device (rank 1 in the paper's i^-a law).
    slowdowns = 1.0 + (max_slowdown - 1.0) * (weights - weights.min()) / (
        weights.max() - weights.min() + 1e-12
    )
    bandwidths = zipf_between(n, *bandwidth_range, a=zipf_a)
    rng = derive_rng("fleet-shuffle", seed)
    rng.shuffle(bandwidths)
    order = rng.permutation(n)
    if downlink_range is None:
        downlinks = bandwidths
    else:
        downlinks = zipf_between(n, *downlink_range, a=zipf_a)
        derive_rng("fleet-downlink-shuffle", seed).shuffle(downlinks)
    return ProfileColumns(
        compute_factor=slowdowns[order],
        uplink_bps=bandwidths,
        downlink_bps=downlinks,
    )


def heterogeneous_fleet(
    n: int,
    zipf_a: float = 1.2,
    bandwidth_range: tuple[float, float] = DEFAULT_BANDWIDTH_RANGE,
    max_slowdown: float = 8.0,
    seed: int = 0,
    downlink_range: tuple[float, float] | None = None,
) -> list[DeviceProfile]:
    """Build a fleet with §6.1's heterogeneity as a boxed profile list.

    A thin materializing wrapper over
    :func:`heterogeneous_fleet_columns` for call sites that want the
    legacy list-of-profiles shape (the sim layer, small examples);
    bit-identical to :func:`heterogeneous_fleet_reference` for the same
    seed.  Scale-sensitive code should consume the columns directly
    (``Fleet.build`` does).
    """
    columns = heterogeneous_fleet_columns(
        n,
        zipf_a=zipf_a,
        bandwidth_range=bandwidth_range,
        max_slowdown=max_slowdown,
        seed=seed,
        downlink_range=downlink_range,
    )
    return [columns.device(i) for i in range(n)]


def heterogeneous_fleet_reference(
    n: int,
    zipf_a: float = 1.2,
    bandwidth_range: tuple[float, float] = DEFAULT_BANDWIDTH_RANGE,
    max_slowdown: float = 8.0,
    seed: int = 0,
    downlink_range: tuple[float, float] | None = None,
) -> list[DeviceProfile]:
    """The original one-object-per-device builder, retained verbatim.

    The executable specification the columnar path is parity-pinned
    against (and the "old path" the fleet benchmark times): every draw
    lands in a freshly boxed :class:`DeviceProfile` — fine at 100
    devices, hostile at 10^6.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    weights = zipf_weights(n, zipf_a)
    slowdowns = 1.0 + (max_slowdown - 1.0) * (weights - weights.min()) / (
        weights.max() - weights.min() + 1e-12
    )
    bandwidths = zipf_between(n, *bandwidth_range, a=zipf_a)
    rng = derive_rng("fleet-shuffle", seed)
    rng.shuffle(bandwidths)
    order = rng.permutation(n)
    if downlink_range is None:
        downlinks = bandwidths
    else:
        downlinks = zipf_between(n, *downlink_range, a=zipf_a)
        derive_rng("fleet-downlink-shuffle", seed).shuffle(downlinks)
    return [
        DeviceProfile(
            client_id=i,
            compute_factor=float(slowdowns[order[i]]),
            uplink_bps=float(bandwidths[i]),
            downlink_bps=float(downlinks[i]),
        )
        for i in range(n)
    ]
