"""Engine transports that derive per-link latency from a :class:`Fleet`.

Every backend of the wire stack can carry the fleet's directional link
model: request frames are charged against each client's *downlink*,
response frames against its *uplink*, using the exact measured frame
sizes — so the same fleet produces the same virtual latencies whether a
round runs in-process (sized via the codecs), behind the in-process
serialization boundary, or over real framed TCP sockets; real RFC 6455
WebSocket connections ride the same links, pricing their additional
framing overhead honestly.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.engine.transport import (
    QueueTransport,
    SerializingTransport,
    SimulatedNetworkTransport,
    Transport,
    measured_nbytes,
)
from repro.fleet.fleet import Fleet


class FleetNetworkTransport(SimulatedNetworkTransport):
    """:class:`SimulatedNetworkTransport` resolving devices via a fleet.

    The fleet's modular :meth:`~Fleet.device` lookup serves any client
    id (protocol layers may shift or oversample ids) straight off the
    columnar store — the per-frame pricing path boxes at most the LRU's
    worth of profiles even against a million-device fleet — and each
    exchange pays ``request / downlink + response / uplink`` on the
    client's own profile.  ``overhead_fn`` adds a carrier's per-message framing on
    top of the sized envelope (e.g.
    :func:`repro.engine.websocket.ws_envelope_overhead`, making this
    the offline oracle for fleet-priced websocket rounds).
    """

    def __init__(
        self,
        fleet: Fleet,
        size_fn: Callable[[Any], int] = measured_nbytes,
        overhead_fn: Optional[Callable[[str, int], int]] = None,
    ):
        super().__init__({}, size_fn, overhead_fn)
        self.fleet = fleet

    def link_seconds(
        self, client_id: int, *, down_nbytes: int = 0, up_nbytes: int = 0
    ) -> float:
        return self.fleet.link_seconds(client_id, down_nbytes, up_nbytes)


def _frame_nbytes(value: Any) -> int:
    return len(value) if isinstance(value, (bytes, bytearray)) else 0


def fleet_transport(name: str, fleet: Fleet) -> Transport:
    """A ``DordisConfig.transport`` backend carrying fleet link latency.

    - ``"inprocess"`` — :class:`FleetNetworkTransport`: live objects,
      codec-measured sizes, per-direction latency;
    - ``"serialized"`` — the :mod:`repro.wire` serialization boundary
      over a queue whose latency hook charges each framed direction
      against the client's own link;
    - ``"sockets"`` — real framed TCP with the fleet as the stream
      transport's directional latency model;
    - ``"websocket"`` — real RFC 6455 connections, same fleet links.

    The first three charge identical byte counts to identical links, so
    a round's trace is transport-invariant (the parity suites pin
    this); the websocket carrier honestly charges its additional
    RFC 6455 framing bytes to the same links — its offline oracle is
    ``FleetNetworkTransport(fleet, overhead_fn=ws_envelope_overhead)``.
    """
    if name == "inprocess":
        return FleetNetworkTransport(fleet)
    if name == "serialized":

        def latency(client_id: int, op: str, frame: Any, response: Any) -> float:
            return fleet.link_seconds(
                client_id, _frame_nbytes(frame), _frame_nbytes(response)
            )

        return SerializingTransport(QueueTransport(latency_fn=latency))
    if name == "sockets":
        from repro.engine.stream import StreamTransport

        return StreamTransport(latency_split_fn=fleet.link_seconds)
    if name == "websocket":
        from repro.engine.websocket import WebSocketTransport

        return WebSocketTransport(latency_split_fn=fleet.link_seconds)
    raise ValueError(f"unknown transport {name!r}")
