"""The heterogeneous fleet/scenario layer.

One place owns the client population: per-device profiles with
*directional* bandwidth (:class:`DeviceProfile`: separate
``uplink_bps`` / ``downlink_bps``, compute slowdown), pluggable
availability (:mod:`repro.fleet.availability`: §6.1 fixed-rate dropout
or the Fig.-1a behaviour-trace churn), and the :class:`Fleet` object
binding the two into a scenario the rest of the stack consumes —
transports derive per-link latency from it, the training session
derives per-round dropout and modeled round cost from it.

Legacy entry points remain importable: :mod:`repro.sim.network`
re-exports the profile layer (``ClientDevice`` builds a symmetric
profile) and :mod:`repro.fl.dropout` re-exports the availability
models.
"""

from repro.fleet.availability import (
    AlwaysAvailable,
    BehaviorTrace,
    FixedRateDropout,
    TraceDrivenDropout,
    build_availability,
)
from repro.fleet.fleet import Fleet, FleetConfig, FleetRoundCost
from repro.fleet.links import FleetNetworkTransport, fleet_transport
from repro.fleet.profile import (
    DEFAULT_BANDWIDTH_RANGE,
    DeviceProfile,
    heterogeneous_fleet,
)

__all__ = [
    "AlwaysAvailable",
    "BehaviorTrace",
    "DEFAULT_BANDWIDTH_RANGE",
    "DeviceProfile",
    "Fleet",
    "FleetConfig",
    "FleetNetworkTransport",
    "FleetRoundCost",
    "FixedRateDropout",
    "fleet_transport",
    "TraceDrivenDropout",
    "build_availability",
    "heterogeneous_fleet",
]
