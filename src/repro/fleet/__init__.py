"""The heterogeneous fleet/scenario layer.

One place owns the client population: per-device profiles with
*directional* bandwidth (:class:`DeviceProfile`: separate
``uplink_bps`` / ``downlink_bps``, compute slowdown), pluggable
availability (:mod:`repro.fleet.availability`: §6.1 fixed-rate dropout,
the Fig.-1a behaviour-trace churn, or its lazy million-device
:class:`SessionStream` form with optional bandwidth×availability
rank correlation), and the :class:`Fleet` object binding the two into a
scenario the rest of the stack consumes — transports derive per-link
latency from it, the training session derives per-round dropout and
modeled round cost from it.

Profiles are stored columnar (:class:`ProfileColumns`) and boxed
lazily, so fleets scale to millions of devices with O(sampled-cohort)
resident objects; :func:`heterogeneous_fleet_reference` retains the
one-object-per-device builder as the parity-pinned executable spec.

Legacy entry points remain importable: :mod:`repro.sim.network`
re-exports the profile layer (``ClientDevice`` builds a symmetric
profile) and :mod:`repro.fl.dropout` re-exports the availability
models.
"""

from repro.fleet.availability import (
    AlwaysAvailable,
    BehaviorTrace,
    DiurnalWave,
    FixedRateDropout,
    FlashCrowd,
    RegionalOutage,
    SessionStream,
    TraceDrivenDropout,
    build_availability,
)
from repro.fleet.fleet import Fleet, FleetConfig, FleetRoundCost
from repro.fleet.links import FleetNetworkTransport, fleet_transport
from repro.fleet.profile import (
    DEFAULT_BANDWIDTH_RANGE,
    DeviceProfile,
    ProfileColumns,
    heterogeneous_fleet,
    heterogeneous_fleet_columns,
    heterogeneous_fleet_reference,
)

__all__ = [
    "AlwaysAvailable",
    "BehaviorTrace",
    "DEFAULT_BANDWIDTH_RANGE",
    "DeviceProfile",
    "DiurnalWave",
    "Fleet",
    "FleetConfig",
    "FleetNetworkTransport",
    "FleetRoundCost",
    "FixedRateDropout",
    "FlashCrowd",
    "ProfileColumns",
    "RegionalOutage",
    "SessionStream",
    "fleet_transport",
    "TraceDrivenDropout",
    "build_availability",
    "heterogeneous_fleet",
    "heterogeneous_fleet_columns",
    "heterogeneous_fleet_reference",
]
