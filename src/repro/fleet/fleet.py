"""The fleet: device profiles + an availability model, as one scenario.

A :class:`Fleet` is the single object the rest of the stack consults
about the client population: which device a client runs on (per-direction
bandwidth, compute slowdown), who is online this round, and what a
synchronized round costs in virtual seconds and directional bytes.

- The engine consumes it through transports
  (:meth:`Fleet.link_seconds` feeds
  :class:`repro.engine.transport.SimulatedNetworkTransport` and the
  per-direction latency hooks of the wire transports).
- The training session (:mod:`repro.core.dordis`) derives per-round
  dropout from :attr:`availability` and — on the fast noise-algebra
  path, which runs no protocol rounds — records the fleet's modeled
  round cost (:meth:`round_cost`) as traced spans, so
  ``round_seconds_history`` is meaningful by default.

The backing representation is columnar
(:class:`repro.fleet.profile.ProfileColumns`): a million devices are
three float64 arrays, not a million boxed dataclasses.
:class:`DeviceProfile` objects are synthesized lazily by
:meth:`Fleet.device` and held in a small LRU, so resident boxed state is
O(sampled cohort) regardless of fleet size; the per-cohort timing
queries (:meth:`straggler_factor`, :meth:`broadcast_seconds`,
:meth:`upload_seconds`, :meth:`round_cost`) reduce directly over the
columns without boxing anything.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Mapping as MappingABC
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Optional, Sequence

import numpy as np

from repro.fleet.availability import AlwaysAvailable, build_availability
from repro.fleet.profile import (
    DEFAULT_BANDWIDTH_RANGE,
    DeviceProfile,
    ProfileColumns,
    heterogeneous_fleet_columns,
)

#: Boxed :class:`DeviceProfile` views a fleet keeps resident (LRU).
#: Evicted profiles are re-synthesized from the columns on demand, so
#: this bounds memory, not correctness; it comfortably covers the
#: 100-client cohorts the paper samples per round.
PROFILE_CACHE_SIZE = 4096


@dataclass(frozen=True)
class FleetConfig:
    """Declarative description of a device population.

    ``availability`` is ``"fixed"`` (§6.1 i.i.d. dropout at the
    session's ``dropout_rate``), ``"trace"`` (Fig.-1a behaviour-trace
    churn; dense reference at small n, lazy
    :class:`~repro.fleet.availability.SessionStream` at scale) or
    ``"session"`` (the lazy stream unconditionally).
    ``downlink_range=None`` keeps links symmetric — the pre-split
    behaviour; a range gives every device an independent Zipf downlink
    (asymmetric WAN).  ``compute_seconds`` is the base local-training
    time of the *fastest* device per round; the sampled straggler's
    ``compute_factor`` scales it.  ``correlation`` rank-couples link
    quality to availability (slow-link devices are also flaky) through
    the session model's Gaussian copula; the fixed-rate model cannot
    express it.
    """

    availability: str = "fixed"
    zipf_a: float = 1.2
    uplink_range: tuple[float, float] = DEFAULT_BANDWIDTH_RANGE
    downlink_range: Optional[tuple[float, float]] = None
    max_slowdown: float = 8.0
    compute_seconds: float = 0.0
    mean_session: float = 8.0
    correlation: float = 0.0

    def __post_init__(self) -> None:
        if self.availability not in {"fixed", "trace", "session"}:
            raise ValueError("availability must be fixed, trace, or session")
        if self.max_slowdown < 1.0:
            raise ValueError("max_slowdown is relative to the fastest (>= 1)")
        if self.compute_seconds < 0:
            raise ValueError("compute_seconds must be non-negative")
        if not -1.0 <= self.correlation <= 1.0:
            raise ValueError("correlation must be in [-1, 1]")
        if self.correlation and self.availability == "fixed":
            raise ValueError(
                "correlation requires availability 'trace' or 'session' "
                "(the fixed-rate model has no per-device availability)"
            )


@dataclass(frozen=True)
class FleetRoundCost:
    """Modeled cost of one synchronized FedAvg round over a sample.

    Directional: the model broadcast rides the *downlink* of every
    sampled client (gated by the slowest), the update upload rides the
    *uplink* of every survivor.  ``down_bytes`` / ``up_bytes`` follow
    the same split, so Table-3-style per-direction footprints fall out
    of the trace.
    """

    down_seconds: float
    compute_seconds: float
    up_seconds: float
    down_bytes: int
    up_bytes: int

    @property
    def total_seconds(self) -> float:
        return self.down_seconds + self.compute_seconds + self.up_seconds

    @property
    def traffic_bytes(self) -> int:
        return self.down_bytes + self.up_bytes


class _ColumnStore:
    """Columns + id index + the shared LRU of boxed profile views.

    One store backs a fleet and every ``with_id_offset`` view of it, so
    a profile boxed through any view is the *same object* everywhere —
    offset views shift addressing, not identity.

    ``ids is None`` means row ``r`` is device ``r`` (the contiguous
    0..n-1 population every built fleet has); otherwise ``ids`` is the
    sorted array of explicit device ids and row ``r`` is device
    ``ids[r]`` — matching the legacy sorted-key order, which the modular
    oversampling fallback indexes into.
    """

    __slots__ = ("columns", "ids", "_row_by_id", "_cache", "cache_size")

    def __init__(
        self,
        columns: ProfileColumns,
        ids: Optional[np.ndarray] = None,
        cache_size: int = PROFILE_CACHE_SIZE,
    ):
        self.columns = columns
        self.ids = ids
        self._row_by_id = (
            None if ids is None else {int(c): r for r, c in enumerate(ids)}
        )
        self._cache: OrderedDict[int, DeviceProfile] = OrderedDict()
        self.cache_size = cache_size

    @property
    def n(self) -> int:
        return self.columns.n

    def device_id(self, row: int) -> int:
        return row if self.ids is None else int(self.ids[row])

    def row_of(self, device_id: int) -> Optional[int]:
        """The row serving ``device_id``, or None if it is not a member."""
        if self.ids is None:
            return device_id if 0 <= device_id < self.columns.n else None
        return self._row_by_id.get(device_id)

    def rows(self, base: np.ndarray, query: np.ndarray) -> np.ndarray:
        """Vectorized ``row_of`` with the legacy modular fallback.

        ``base`` is the query ids translated to base addressing (offset
        removed); ids that miss the population fall back to sorted
        position ``query % n`` — exactly the boxed path's
        ``profiles[sorted_keys[client_id % n]]`` oversampling rule,
        which wraps on the *as-addressed* id.
        """
        n = self.columns.n
        if self.ids is None:
            hit = (base >= 0) & (base < n)
            rows = base
        else:
            pos = np.searchsorted(self.ids, base)
            rows = np.clip(pos, 0, n - 1)
            hit = self.ids[rows] == base
        return np.where(hit, rows, query % n)

    def profile(self, row: int) -> DeviceProfile:
        """Box one row, via the LRU (O(cohort) resident objects)."""
        row = int(row)
        cached = self._cache.get(row)
        if cached is not None:
            self._cache.move_to_end(row)
            return cached
        cols = self.columns
        boxed = DeviceProfile(
            client_id=self.device_id(row),
            compute_factor=float(cols.compute_factor[row]),
            uplink_bps=float(cols.uplink_bps[row]),
            downlink_bps=float(cols.downlink_bps[row]),
        )
        self._cache[row] = boxed
        while len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)
        return boxed

    @property
    def resident_profiles(self) -> int:
        return len(self._cache)


class _ProfilesView(MappingABC):
    """``{client id: profile}`` over the columns, synthesized lazily.

    Preserves the legacy ``fleet.profiles`` mapping contract (lookup,
    iteration in sorted-id order, ``len``) without materializing one
    object per device — iterating *values* of a million-device view is
    the caller's own choice to box everything.
    """

    __slots__ = ("_store", "_offset")

    def __init__(self, store: _ColumnStore, offset: int):
        self._store = store
        self._offset = offset

    def __getitem__(self, client_id: int) -> DeviceProfile:
        row = self._store.row_of(client_id - self._offset)
        if row is None:
            raise KeyError(client_id)
        return self._store.profile(row)

    def __iter__(self) -> Iterator[int]:
        store, offset = self._store, self._offset
        if store.ids is None:
            return iter(range(offset, offset + store.n))
        return (int(c) + offset for c in store.ids)

    def __len__(self) -> int:
        return self._store.n


class Fleet:
    """A device population plus its availability model."""

    def __init__(
        self,
        profiles: Mapping[int, DeviceProfile] | Sequence[DeviceProfile] | None = None,
        availability=None,
        config: Optional[FleetConfig] = None,
        *,
        columns: Optional[ProfileColumns] = None,
    ):
        if (profiles is None) == (columns is None):
            raise ValueError("pass exactly one of profiles or columns")
        if columns is not None:
            self._store = _ColumnStore(columns)
        else:
            if isinstance(profiles, Mapping):
                by_id = dict(profiles)
            else:
                by_id = {p.client_id: p for p in profiles}
            if not by_id:
                raise ValueError("a fleet needs at least one device")
            ordered = sorted(by_id)
            boxed = [by_id[c] for c in ordered]
            store_columns = ProfileColumns(
                compute_factor=np.array(
                    [p.compute_factor for p in boxed], dtype=np.float64
                ),
                uplink_bps=np.array(
                    [p.uplink_bps for p in boxed], dtype=np.float64
                ),
                downlink_bps=np.array(
                    [p.downlink_bps for p in boxed], dtype=np.float64
                ),
            )
            ids = (
                None
                if ordered == list(range(len(ordered)))
                else np.asarray(ordered, dtype=np.int64)
            )
            self._store = _ColumnStore(store_columns, ids)
            # The caller already holds these boxed objects; seeding the
            # LRU keeps legacy object identity (fleet.device(u) is the
            # profile passed in) at zero extra footprint.
            if len(boxed) <= self._store.cache_size:
                for row, p in enumerate(boxed):
                    self._store._cache[row] = p
        self._id_offset = 0
        self.availability = availability or AlwaysAvailable()
        self.config = config or FleetConfig()

    @classmethod
    def build(
        cls,
        n_clients: int,
        config: Optional[FleetConfig] = None,
        *,
        dropout_rate: float = 0.0,
        horizon: int = 1,
        seed: int = 0,
    ) -> "Fleet":
        """Population from a :class:`FleetConfig` (deterministic per seed).

        Columnar end to end: the §6.1 Zipf draws stay arrays, nothing is
        boxed until a cohort is actually queried.  With
        ``config.correlation`` set, each device's uplink mid-rank
        quantile feeds the availability model's copula so slow links and
        flaky behaviour coincide.
        """
        config = config or FleetConfig()
        columns = heterogeneous_fleet_columns(
            n_clients,
            zipf_a=config.zipf_a,
            bandwidth_range=config.uplink_range,
            max_slowdown=config.max_slowdown,
            seed=seed,
            downlink_range=config.downlink_range,
        )
        link_quantiles = None
        if config.correlation:
            order = np.argsort(columns.uplink_bps, kind="stable")
            ranks = np.empty(n_clients, dtype=np.float64)
            ranks[order] = np.arange(n_clients, dtype=np.float64)
            link_quantiles = (ranks + 0.5) / n_clients
        availability = build_availability(
            config.availability,
            n_clients=n_clients,
            horizon=horizon,
            dropout_rate=dropout_rate,
            mean_session=config.mean_session,
            seed=seed,
            correlation=config.correlation,
            link_quantiles=link_quantiles,
        )
        return cls(None, availability, config, columns=columns)

    # -- population queries -------------------------------------------
    @property
    def n_clients(self) -> int:
        return self._store.n

    @property
    def profiles(self) -> Mapping[int, DeviceProfile]:
        """Lazy ``{client id: profile}`` view (legacy mapping contract)."""
        return _ProfilesView(self._store, self._id_offset)

    @property
    def _sorted_ids(self) -> tuple[int, ...]:
        """Member ids in sorted order, as addressed by this view."""
        store, offset = self._store, self._id_offset
        if store.ids is None:
            return tuple(range(offset, offset + store.n))
        return tuple(int(c) + offset for c in store.ids)

    @property
    def resident_profiles(self) -> int:
        """Boxed profile objects currently alive (LRU-bounded)."""
        return self._store.resident_profiles

    def with_id_offset(self, offset: int) -> "Fleet":
        """A view of this fleet addressed by shifted client ids.

        Protocol layers may re-index clients — SecAgg shifts ids by +1
        so Shamir evaluation points are non-zero — and a transport that
        looks devices up by *protocol* id would otherwise price client
        u's frames on device u+1's links.  The view applies the offset
        arithmetically over the *same* backing store (O(1): no profile
        dict is rebuilt, and both views share one LRU, so
        ``shifted.device(u + 1) is fleet.device(u)``) and shares the
        same availability model.
        """
        if offset == 0:
            return self
        view = Fleet.__new__(Fleet)
        view._store = self._store
        view._id_offset = self._id_offset + offset
        view.availability = self.availability
        view.config = self.config
        return view

    def device(self, client_id: int) -> DeviceProfile:
        """The profile serving ``client_id`` (modular for oversampling)."""
        row = self._store.row_of(client_id - self._id_offset)
        if row is None:
            # Legacy oversampling rule: wrap the as-addressed id onto
            # the sorted member order.
            row = client_id % self._store.n
        return self._store.profile(row)

    def profiles_for(self, client_ids: Iterable[int]) -> dict[int, DeviceProfile]:
        """``{client id: profile}`` for a sampled set (transport input)."""
        return {u: self.device(u) for u in client_ids}

    # -- availability -------------------------------------------------
    def dropped(self, sampled: list[int], round_index: int) -> set[int]:
        """Which of this round's sample the availability model silences."""
        return self.availability.dropped(sampled, round_index)

    # -- timing -------------------------------------------------------
    def _rows(self, sampled: Iterable[int]) -> np.ndarray:
        """Cohort → backing rows, vectorized (raises on empty cohorts)."""
        if not isinstance(sampled, np.ndarray):
            sampled = np.asarray(list(sampled), dtype=np.int64)
        elif sampled.dtype != np.int64:
            sampled = sampled.astype(np.int64)
        if sampled.size == 0:
            raise ValueError("sampled set is empty")
        return self._store.rows(sampled - self._id_offset, sampled)

    def straggler_factor(self, sampled: Iterable[int]) -> float:
        """Compute slowdown of the slowest sampled device."""
        rows = self._rows(sampled)
        return float(self._store.columns.compute_factor[rows].max())

    def broadcast_seconds(self, sampled: Iterable[int], nbytes: float) -> float:
        """Synchronized server→clients broadcast: slowest downlink gates."""
        rows = self._rows(sampled)
        return float((nbytes / self._store.columns.downlink_bps[rows]).max())

    def upload_seconds(self, sampled: Iterable[int], nbytes: float) -> float:
        """Synchronized clients→server upload: slowest uplink gates."""
        rows = self._rows(sampled)
        return float((nbytes / self._store.columns.uplink_bps[rows]).max())

    def link_seconds(
        self, client_id: int, down_nbytes: float, up_nbytes: float
    ) -> float:
        """One client's request/response exchange on its own links."""
        return self.device(client_id).link_seconds(down_nbytes, up_nbytes)

    def round_cost(
        self,
        sampled: list[int],
        survivors: list[int],
        update_nbytes: int,
        compute_seconds: Optional[float] = None,
    ) -> FleetRoundCost:
        """Modeled FedAvg round: broadcast → local train → upload.

        Every sampled client downloads the ``update_nbytes``-sized model
        (dropouts happen *after* being sampled, §6.1, so they cost
        downlink); only survivors upload.  Stage times are gated by the
        slowest relevant link / the compute straggler.  One row-lookup
        pass over the cohort prices the whole round — no profile is
        boxed.
        """
        rows = self._rows(sampled)
        cols = self._store.columns
        base = (
            self.config.compute_seconds
            if compute_seconds is None
            else compute_seconds
        )
        n_survivors = len(survivors)
        return FleetRoundCost(
            down_seconds=float((update_nbytes / cols.downlink_bps[rows]).max()),
            compute_seconds=base * float(cols.compute_factor[rows].max()),
            up_seconds=(
                float(
                    (update_nbytes / cols.uplink_bps[self._rows(survivors)]).max()
                )
                if n_survivors
                else 0.0
            ),
            down_bytes=update_nbytes * len(sampled),
            up_bytes=update_nbytes * n_survivors,
        )
