"""The fleet: device profiles + an availability model, as one scenario.

A :class:`Fleet` is the single object the rest of the stack consults
about the client population: which device a client runs on (per-direction
bandwidth, compute slowdown), who is online this round, and what a
synchronized round costs in virtual seconds and directional bytes.

- The engine consumes it through transports
  (:meth:`Fleet.link_seconds` feeds
  :class:`repro.engine.transport.SimulatedNetworkTransport` and the
  per-direction latency hooks of the wire transports).
- The training session (:mod:`repro.core.dordis`) derives per-round
  dropout from :attr:`availability` and — on the fast noise-algebra
  path, which runs no protocol rounds — records the fleet's modeled
  round cost (:meth:`round_cost`) as traced spans, so
  ``round_seconds_history`` is meaningful by default.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Optional, Sequence

from repro.fleet.availability import AlwaysAvailable, build_availability
from repro.fleet.profile import (
    DEFAULT_BANDWIDTH_RANGE,
    DeviceProfile,
    heterogeneous_fleet,
)


@dataclass(frozen=True)
class FleetConfig:
    """Declarative description of a device population.

    ``availability`` is ``"fixed"`` (§6.1 i.i.d. dropout at the
    session's ``dropout_rate``) or ``"trace"`` (Fig.-1a behaviour-trace
    churn).  ``downlink_range=None`` keeps links symmetric — the
    pre-split behaviour; a range gives every device an independent Zipf
    downlink (asymmetric WAN).  ``compute_seconds`` is the base
    local-training time of the *fastest* device per round; the sampled
    straggler's ``compute_factor`` scales it.
    """

    availability: str = "fixed"
    zipf_a: float = 1.2
    uplink_range: tuple[float, float] = DEFAULT_BANDWIDTH_RANGE
    downlink_range: Optional[tuple[float, float]] = None
    max_slowdown: float = 8.0
    compute_seconds: float = 0.0
    mean_session: float = 8.0

    def __post_init__(self) -> None:
        if self.availability not in {"fixed", "trace"}:
            raise ValueError("availability must be fixed or trace")
        if self.max_slowdown < 1.0:
            raise ValueError("max_slowdown is relative to the fastest (>= 1)")
        if self.compute_seconds < 0:
            raise ValueError("compute_seconds must be non-negative")


@dataclass(frozen=True)
class FleetRoundCost:
    """Modeled cost of one synchronized FedAvg round over a sample.

    Directional: the model broadcast rides the *downlink* of every
    sampled client (gated by the slowest), the update upload rides the
    *uplink* of every survivor.  ``down_bytes`` / ``up_bytes`` follow
    the same split, so Table-3-style per-direction footprints fall out
    of the trace.
    """

    down_seconds: float
    compute_seconds: float
    up_seconds: float
    down_bytes: int
    up_bytes: int

    @property
    def total_seconds(self) -> float:
        return self.down_seconds + self.compute_seconds + self.up_seconds

    @property
    def traffic_bytes(self) -> int:
        return self.down_bytes + self.up_bytes


class Fleet:
    """A device population plus its availability model."""

    def __init__(
        self,
        profiles: Mapping[int, DeviceProfile] | Sequence[DeviceProfile],
        availability=None,
        config: Optional[FleetConfig] = None,
    ):
        if isinstance(profiles, Mapping):
            self.profiles = dict(profiles)
        else:
            self.profiles = {p.client_id: p for p in profiles}
        if not self.profiles:
            raise ValueError("a fleet needs at least one device")
        self.availability = availability or AlwaysAvailable()
        self.config = config or FleetConfig()
        # Sorted once: the modular fallback in device() sits on the
        # per-frame pricing path, and re-sorting the profile dict on
        # every miss is an O(n log n) toll per exchange.  The profile
        # dict is fixed after construction (views like with_id_offset
        # build a new Fleet), so the order can never go stale.
        self._sorted_ids: tuple[int, ...] = tuple(sorted(self.profiles))

    @classmethod
    def build(
        cls,
        n_clients: int,
        config: Optional[FleetConfig] = None,
        *,
        dropout_rate: float = 0.0,
        horizon: int = 1,
        seed: int = 0,
    ) -> "Fleet":
        """Population from a :class:`FleetConfig` (deterministic per seed)."""
        config = config or FleetConfig()
        profiles = heterogeneous_fleet(
            n_clients,
            zipf_a=config.zipf_a,
            bandwidth_range=config.uplink_range,
            max_slowdown=config.max_slowdown,
            seed=seed,
            downlink_range=config.downlink_range,
        )
        availability = build_availability(
            config.availability,
            n_clients=n_clients,
            horizon=horizon,
            dropout_rate=dropout_rate,
            mean_session=config.mean_session,
            seed=seed,
        )
        return cls(profiles, availability, config)

    # -- population queries -------------------------------------------
    @property
    def n_clients(self) -> int:
        return len(self.profiles)

    def with_id_offset(self, offset: int) -> "Fleet":
        """A view of this fleet addressed by shifted client ids.

        Protocol layers may re-index clients — SecAgg shifts ids by +1
        so Shamir evaluation points are non-zero — and a transport that
        looks devices up by *protocol* id would otherwise price client
        u's frames on device u+1's links.  The view keys the same
        profiles (and shares the same availability model) under
        ``client id + offset``.
        """
        if offset == 0:
            return self
        return Fleet(
            {cid + offset: p for cid, p in self.profiles.items()},
            self.availability,
            self.config,
        )

    def device(self, client_id: int) -> DeviceProfile:
        """The profile serving ``client_id`` (modular for oversampling)."""
        profile = self.profiles.get(client_id)
        if profile is not None:
            return profile
        keys = self._sorted_ids
        return self.profiles[keys[client_id % len(keys)]]

    def profiles_for(self, client_ids: Iterable[int]) -> dict[int, DeviceProfile]:
        """``{client id: profile}`` for a sampled set (transport input)."""
        return {u: self.device(u) for u in client_ids}

    # -- availability -------------------------------------------------
    def dropped(self, sampled: list[int], round_index: int) -> set[int]:
        """Which of this round's sample the availability model silences."""
        return self.availability.dropped(sampled, round_index)

    # -- timing -------------------------------------------------------
    def straggler_factor(self, sampled: Iterable[int]) -> float:
        """Compute slowdown of the slowest sampled device."""
        factors = [self.device(u).compute_factor for u in sampled]
        if not factors:
            raise ValueError("sampled set is empty")
        return max(factors)

    def broadcast_seconds(self, sampled: Iterable[int], nbytes: float) -> float:
        """Synchronized server→clients broadcast: slowest downlink gates."""
        times = [self.device(u).download_seconds(nbytes) for u in sampled]
        if not times:
            raise ValueError("sampled set is empty")
        return max(times)

    def upload_seconds(self, sampled: Iterable[int], nbytes: float) -> float:
        """Synchronized clients→server upload: slowest uplink gates."""
        times = [self.device(u).upload_seconds(nbytes) for u in sampled]
        if not times:
            raise ValueError("sampled set is empty")
        return max(times)

    def link_seconds(
        self, client_id: int, down_nbytes: float, up_nbytes: float
    ) -> float:
        """One client's request/response exchange on its own links."""
        return self.device(client_id).link_seconds(down_nbytes, up_nbytes)

    def round_cost(
        self,
        sampled: list[int],
        survivors: list[int],
        update_nbytes: int,
        compute_seconds: Optional[float] = None,
    ) -> FleetRoundCost:
        """Modeled FedAvg round: broadcast → local train → upload.

        Every sampled client downloads the ``update_nbytes``-sized model
        (dropouts happen *after* being sampled, §6.1, so they cost
        downlink); only survivors upload.  Stage times are gated by the
        slowest relevant link / the compute straggler.
        """
        if not sampled:
            raise ValueError("sampled set is empty")
        base = (
            self.config.compute_seconds
            if compute_seconds is None
            else compute_seconds
        )
        return FleetRoundCost(
            down_seconds=self.broadcast_seconds(sampled, update_nbytes),
            compute_seconds=base * self.straggler_factor(sampled),
            up_seconds=(
                self.upload_seconds(survivors, update_nbytes)
                if survivors
                else 0.0
            ),
            down_bytes=update_nbytes * len(sampled),
            up_bytes=update_nbytes * len(survivors),
        )
