"""Hot-path microbenchmarks: every fast path against its retained twin.

Each metric pair times the optimized implementation and the
``*_reference`` executable specification it is parity-pinned against
(PRG mask expansion, Shamir share evaluation and reconstruction, codec
encode, mask accumulation), so the recorded speedups are measured on the
same machine, same inputs, same run — the trajectory point the paper's
Fig.-2-style overhead claims rest on.
"""

from __future__ import annotations

import platform
import time
from typing import Any, Callable

import numpy as np

from repro.bench.schema import make_report, metric
from repro.crypto.prg import PRG, PRGReference
from repro.crypto.shamir import ShamirSecretSharing
from repro.secagg.masking import MaskAccumulator, accumulate_masks_reference
from repro.utils.rng import derive_rng
from repro.wire import codecs as wire_codecs

TOPIC = "hotpath"


def _best_of(fn: Callable[[], Any], repeats: int) -> float:
    """Minimum wall time of ``repeats`` calls (the classic noise filter)."""
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _speedup_triplet(
    metrics: dict[str, Any], name: str, ref_s: float, fast_s: float
) -> None:
    metrics[f"{name}_reference_s"] = metric(ref_s, "s")
    metrics[f"{name}_fast_s"] = metric(fast_s, "s")
    if fast_s > 0:
        metrics[f"{name}_speedup"] = metric(ref_s / fast_s, "x")


def run_hotpath(
    dims: list[int],
    *,
    clients: int = 4,
    repeats: int = 3,
    bits: int = 20,
    seed: int = 0,
) -> dict[str, Any]:
    """Benchmark the crypto/codec hot paths; returns a schema report."""
    modulus = 1 << bits
    rng = derive_rng("bench-hotpath", seed)
    prg_seed = bytes(rng.integers(0, 256, size=32, dtype=np.uint8))
    metrics: dict[str, Any] = {}

    # PRG mask expansion, per dimension.
    for d in dims:
        ref_s = _best_of(
            lambda: PRGReference(prg_seed).uniform_vector(d, modulus), repeats
        )
        fast_s = _best_of(
            lambda: PRG(prg_seed).uniform_vector(d, modulus), repeats
        )
        _speedup_triplet(metrics, f"prg_expand_d{d}", ref_s, fast_s)

    # Shamir: the deterministic evaluation step on identical polynomials
    # (share() itself samples fresh randomness, so the fair comparison
    # is _evaluate_shares vs its retained twin), then reconstruction on
    # identical shares.  Floor of 16 participants: the protocol shares
    # keys across whole cohorts, not the 3–4 clients of a smoke run.
    n = max(16, clients)
    threshold = max(2, n // 2 + 1)
    scheme = ShamirSecretSharing(threshold)
    ids = list(range(1, n + 1))
    secret = bytes(rng.integers(0, 256, size=32, dtype=np.uint8))
    polys = scheme._sample_polynomials(secret)
    ref_s = _best_of(
        lambda: scheme._evaluate_shares_reference(polys, ids, len(secret)),
        repeats,
    )
    fast_s = _best_of(
        lambda: scheme._evaluate_shares(polys, ids, len(secret)), repeats
    )
    _speedup_triplet(metrics, "shamir_share", ref_s, fast_s)

    shares = list(scheme.share(secret, ids).values())
    ref_s = _best_of(lambda: scheme.reconstruct_reference(shares), repeats)
    fast_s = _best_of(lambda: scheme.reconstruct(shares), repeats)
    _speedup_triplet(metrics, "shamir_reconstruct", ref_s, fast_s)

    # Codec: a masked-upload-shaped payload at the largest dimension.
    d = max(dims)
    vector = rng.integers(0, modulus, size=d).astype(np.int64)
    payload = {"sender": 1, "round": 0, "masked_vector": vector}
    ref_s = _best_of(
        lambda: wire_codecs.encode_payload_reference(payload), repeats
    )
    fast_s = _best_of(lambda: wire_codecs.encode_payload(payload), repeats)
    _speedup_triplet(metrics, f"codec_encode_d{d}", ref_s, fast_s)
    encoded = wire_codecs.encode_payload(payload)
    metrics[f"codec_encoded_d{d}_bytes"] = metric(len(encoded), "bytes")
    metrics[f"codec_decode_d{d}_s"] = metric(
        _best_of(lambda: wire_codecs.decode_payload(encoded), repeats), "s"
    )

    # Mask accumulation: base + one mask per live neighbor.
    masks = [
        rng.integers(0, modulus, size=d).astype(np.int64)
        for _ in range(max(2, clients))
    ]
    base = rng.integers(0, modulus, size=d).astype(np.int64)

    def _fast_accumulate() -> np.ndarray:
        acc = MaskAccumulator(base, modulus, n_terms=1 + len(masks))
        for m in masks:
            acc.add(m)
        return acc.finish()

    ref_s = _best_of(
        lambda: accumulate_masks_reference(base, masks, modulus), repeats
    )
    fast_s = _best_of(_fast_accumulate, repeats)
    _speedup_triplet(metrics, f"mask_accumulate_d{d}", ref_s, fast_s)

    config = {
        "dims": list(dims),
        "clients": clients,
        "repeats": repeats,
        "bits": bits,
        "seed": seed,
        "shamir_threshold": threshold,
        "shamir_participants": n,
        "python": platform.python_version(),
        "numpy": np.__version__,
    }
    return make_report(TOPIC, config, metrics)
