"""Fleet-scale benchmarks: million-device construction and cohort queries.

The columnar fleet path against its retained references, at the scale
the ROADMAP's "millions of users" north star asks for: building a
1M-device population (columnar vs the boxed
:func:`heterogeneous_fleet_reference` builder, which is timed at a
capped size and compared per-device), sampling 100-client cohorts,
pricing rounds (vectorized :meth:`Fleet.round_cost` vs the legacy
per-device Python loop on the *same* fleet), and the lazy
:class:`SessionStream` availability model with correlated
bandwidth×availability churn — plus scenario sweeps (diurnal wave,
flash-crowd join, regional outage) exercising the composition wrappers.
Persisted as ``BENCH_fleet.json``.
"""

from __future__ import annotations

import platform
import time
from typing import Any

import numpy as np

from repro.bench.schema import make_report, metric
from repro.fleet import (
    DiurnalWave,
    Fleet,
    FleetConfig,
    FlashCrowd,
    RegionalOutage,
    heterogeneous_fleet_reference,
)
from repro.utils.rng import derive_rng

TOPIC = "fleet"

#: The boxed reference builder is timed at most at this size — one
#: object per device makes 10^6 pointless to wait for; the comparison
#: is per-device throughput, which is size-stable for both builders.
REFERENCE_BUILD_CAP = 100_000


# repro: allow[parity-twin] bench-local boxed-loop reference; the live twin is Fleet.round_cost
def _round_cost_reference(
    fleet: Fleet, sampled: list[int], survivors: list[int], nbytes: int
) -> tuple[float, float, float]:
    """The pre-columnar per-device query loop, on the same fleet.

    Replicates the legacy ``round_cost`` shape — one boxed
    ``fleet.device(u)`` call and one Python-level reduction per stage —
    so the recorded speedup is loop-vs-vectorized on identical data.
    """
    down = max(fleet.device(u).download_seconds(nbytes) for u in sampled)
    factor = max(fleet.device(u).compute_factor for u in sampled)
    up = (
        max(fleet.device(u).upload_seconds(nbytes) for u in survivors)
        if survivors
        else 0.0
    )
    return down, factor, up


def _scenario_rates(
    model: Any, cohorts: list[list[int]]
) -> tuple[np.ndarray, float]:
    """Per-round dropout rates of a scenario model, plus wall seconds."""
    rates = np.empty(len(cohorts))
    start = time.perf_counter()
    for r, cohort in enumerate(cohorts):
        rates[r] = len(model.dropped(cohort, r)) / len(cohort)
    return rates, time.perf_counter() - start


def run_fleet(
    *,
    devices: int = 1_000_000,
    cohort: int = 100,
    rounds: int = 50,
    repeats: int = 3,
    correlation: float = 0.6,
    seed: int = 0,
) -> dict[str, Any]:
    """Benchmark fleet construction and cohort queries; returns a report."""
    cohort = min(cohort, devices)
    update_nbytes = 8 * 100_000  # a 100k-dim float64 model update
    metrics: dict[str, Any] = {}

    # -- construction: columnar vs boxed reference --------------------
    build_s = float("inf")
    fleet = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fleet = Fleet.build(
            devices,
            FleetConfig(
                availability="trace",
                correlation=correlation,
                compute_seconds=1.0,
            ),
            horizon=rounds,
            seed=seed,
        )
        build_s = min(build_s, time.perf_counter() - start)
    metrics["build_columnar_s"] = metric(build_s, "s")
    metrics["build_columnar_devices_per_s"] = metric(devices / build_s, "per_s")

    ref_devices = min(devices, REFERENCE_BUILD_CAP)
    ref_s = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        heterogeneous_fleet_reference(ref_devices, seed=seed)
        ref_s = min(ref_s, time.perf_counter() - start)
    metrics["build_reference_s"] = metric(ref_s, "s")
    metrics["build_reference_devices"] = metric(ref_devices, "count")
    metrics["build_reference_devices_per_s"] = metric(
        ref_devices / ref_s, "per_s"
    )
    metrics["build_per_device_speedup"] = metric(
        (ref_s / ref_devices) / (build_s / devices), "x"
    )

    # -- cohort sampling + round pricing ------------------------------
    rng = derive_rng("bench-fleet-cohorts", seed)
    cohorts = [
        rng.choice(devices, size=cohort, replace=False).tolist()
        for _ in range(rounds)
    ]

    # Dropout query on fresh cohorts: every call derives timelines the
    # LRU has never seen — the lazy model's worst case.
    start = time.perf_counter()
    survivor_sets = []
    for r, c in enumerate(cohorts):
        gone = fleet.dropped(c, r)
        survivor_sets.append([u for u in c if u not in gone])
    dropped_s = (time.perf_counter() - start) / rounds
    metrics["cohort_dropout_query_s"] = metric(dropped_s, "s")

    sampled, survivors = cohorts[0], survivor_sets[0]
    fast_s = float("inf")
    ref_cost_s = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        for r, c in enumerate(cohorts):
            fleet.round_cost(c, survivor_sets[r], update_nbytes)
        fast_s = min(fast_s, (time.perf_counter() - start) / rounds)
        start = time.perf_counter()
        for r, c in enumerate(cohorts):
            _round_cost_reference(
                fleet, c, survivor_sets[r], update_nbytes
            )
        ref_cost_s = min(ref_cost_s, (time.perf_counter() - start) / rounds)
    metrics["round_cost_reference_s"] = metric(ref_cost_s, "s")
    metrics["round_cost_fast_s"] = metric(fast_s, "s")
    if fast_s > 0:
        metrics["round_cost_speedup"] = metric(ref_cost_s / fast_s, "x")
        metrics["round_cost_queries_per_s"] = metric(1.0 / fast_s, "per_s")

    start = time.perf_counter()
    profiles = fleet.profiles_for(sampled)
    metrics["cohort_profiles_s"] = metric(
        time.perf_counter() - start, "s"
    )
    assert len(profiles) == len(sampled)
    metrics["resident_profiles"] = metric(fleet.resident_profiles, "count")
    metrics["resident_profiles_bounded"] = metric(
        int(fleet.resident_profiles <= 4096), "flag"
    )

    # -- correlated bandwidth × availability --------------------------
    # Slow-uplink devices should be flakier: compare the mean online
    # propensity of the slowest and fastest uplink tails.
    k = max(1, min(200, devices // 2))
    order = np.argsort(fleet._store.columns.uplink_bps)
    availability = fleet.availability
    slow_p = float(
        np.mean([availability.propensity(int(u)) for u in order[:k]])
    )
    fast_p = float(
        np.mean([availability.propensity(int(u)) for u in order[-k:]])
    )
    metrics["propensity_slow_tail"] = metric(slow_p, "x")
    metrics["propensity_fast_tail"] = metric(fast_p, "x")
    metrics["correlation_effect"] = metric(fast_p - slow_p, "x")

    # -- scenarios ----------------------------------------------------
    # Each wrapper composes over the fleet's own (correlated) session
    # churn; reporting the per-round *excess* over the base model on
    # identical cohorts isolates exactly what the scenario adds — the
    # structural zeros (pre-outage rounds, post-join rounds, the wave's
    # daily peak) are exact, not noise-relative.
    base = fleet.availability
    scen_rng = derive_rng("bench-fleet-scenarios", seed)
    scen_cohorts = [
        scen_rng.choice(devices, size=cohort, replace=False).tolist()
        for _ in range(rounds)
    ]
    base_rates, _ = _scenario_rates(base, scen_cohorts)
    metrics["base_churn_dropout"] = metric(float(base_rates.mean()), "x")

    period = max(2, min(24, rounds))
    diurnal = DiurnalWave(base, period=period, amplitude=0.5, seed=seed)
    rates, wall = _scenario_rates(diurnal, scen_cohorts)
    excess = rates - base_rates
    metrics["scenario_diurnal_s"] = metric(wall, "s")
    high_wave = np.array(
        [diurnal.offline_rate(r) >= 0.25 for r in range(rounds)]
    )
    metrics["diurnal_peak_excess"] = metric(
        float(excess[~high_wave].mean()), "x"
    )
    metrics["diurnal_trough_excess"] = metric(
        float(excess[high_wave].mean()), "x"
    )

    join_round = rounds // 2
    crowd = FlashCrowd(base, devices, join_round=join_round, fraction=0.5)
    rates, wall = _scenario_rates(crowd, scen_cohorts)
    excess = rates - base_rates
    metrics["scenario_flash_crowd_s"] = metric(wall, "s")
    metrics["flash_crowd_pre_join_excess"] = metric(
        float(excess[:join_round].mean()), "x"
    )
    metrics["flash_crowd_post_join_excess"] = metric(
        float(excess[join_round:].mean()), "x"
    )

    out_start, out_end = rounds // 3, max(rounds // 3 + 1, 2 * rounds // 3)
    outage = RegionalOutage(
        base, region=(0, devices // 4), start_round=out_start,
        end_round=out_end,
    )
    rates, wall = _scenario_rates(outage, scen_cohorts)
    excess = rates - base_rates
    metrics["scenario_outage_s"] = metric(wall, "s")
    metrics["outage_window_excess"] = metric(
        float(excess[out_start:out_end].mean()), "x"
    )
    metrics["outage_outside_excess"] = metric(
        float(
            np.concatenate([excess[:out_start], excess[out_end:]]).mean()
        ),
        "x",
    )

    config = {
        "devices": devices,
        "cohort": cohort,
        "rounds": rounds,
        "repeats": repeats,
        "correlation": correlation,
        "seed": seed,
        "update_nbytes": update_nbytes,
        "python": platform.python_version(),
        "numpy": np.__version__,
    }
    return make_report(TOPIC, config, metrics)
