"""Coordinator unmask-plane benchmark: fast plane vs reference twin.

Fabricates one round's worth of post-Unmasking coordinator state at the
ROADMAP target shape (d = 2^20, 100 clients, 10% dropout) — real DH
keypairs, real Shamir shares of every survivor's self-mask seed and
every dropped client's mask key, random masked inputs — then times
:meth:`SecAggServer.collect_unmask_reference` (serial executable
specification: one PRG expansion and one full reduction per term, one
Lagrange computation per reconstruction) against the deferred-reduction
plane :meth:`SecAggServer.collect_unmask` at each requested ``workers``
setting.  Every timed run must produce the bit-identical aggregate; the
report carries that check as a metric.

Fabricating state directly is what makes the target shape reachable: a
full protocol round at d = 2^20 would spend ~20 minutes in client-side
masking to set up a measurement the coordinator finishes in seconds.
"""

from __future__ import annotations

import platform
import time
from typing import Any, Optional

import numpy as np

from repro import native
from repro.bench.schema import make_report, metric
from repro.crypto.dh import KeyAgreement, resolve_group
from repro.crypto.shamir import ShamirSecretSharing, random_seed
from repro.secagg.graph import build_graph
from repro.secagg.server import SecAggServer
from repro.secagg.types import AdvertiseKeysMsg, SecAggConfig, UnmaskingMsg
from repro.utils.rng import derive_rng

TOPIC = "unmask"


def _fabricate_state(
    dim: int, clients: int, dropout: float, bits: int, seed: int
) -> dict[str, Any]:
    """One round's coordinator state, ready for the unmask stage."""
    rng = derive_rng("bench-unmask", seed)
    ids = list(range(1, clients + 1))
    threshold = clients // 2 + 1
    n_dropped = int(round(dropout * clients))
    dropped = sorted(
        int(u) for u in rng.choice(ids, size=n_dropped, replace=False)
    )
    survivors = [u for u in ids if u not in dropped]

    config = SecAggConfig(
        threshold=threshold, bits=bits, dimension=dim, dh_group="modp512"
    )
    ka = KeyAgreement(resolve_group(config.dh_group))
    pairs = {u: ka.generate() for u in ids}
    graph = build_graph(config, ids)
    modulus = config.modulus

    masked = {
        u: rng.integers(0, modulus, size=dim, dtype=np.int64)
        for u in survivors
    }

    # Every client shares both secrets across the whole cohort (complete
    # graph); responders reveal b_u for survivors, s^SK_u for dropped.
    ss = ShamirSecretSharing(threshold)
    b_shares = {u: ss.share(random_seed(32), ids) for u in survivors}
    sk_shares = {
        u: ss.share(pairs[u].secret.to_bytes(256, "big"), ids)
        for u in dropped
    }
    messages = {
        v: UnmaskingMsg(
            sender=v,
            s_sk_shares={u: sk_shares[u][v] for u in dropped},
            b_shares={u: b_shares[u][v] for u in survivors},
        )
        for v in survivors
    }

    # c_public is never touched during unmasking; s_public must be the
    # real DH public so the coordinator's agreement reproduces each
    # dropped client's pairwise seeds.
    roster = {
        u: AdvertiseKeysMsg(sender=u, c_public=0, s_public=pairs[u].public)
        for u in ids
    }

    return {
        "config": config,
        "ids": ids,
        "survivors": survivors,
        "dropped": dropped,
        "roster": roster,
        "graph": graph,
        "masked": masked,
        "messages": messages,
    }


def _make_server(state: dict[str, Any], workers: Optional[int]) -> SecAggServer:
    """A fresh coordinator holding the fabricated round state.

    Fresh per timed run, so each run starts with a cold Lagrange cache —
    the timings include the full per-round setup cost, not a warmed one.
    """
    cfg = state["config"]
    config = SecAggConfig(
        threshold=cfg.threshold,
        bits=cfg.bits,
        dimension=cfg.dimension,
        dh_group=cfg.dh_group,
        workers=workers,
    )
    server = SecAggServer(config)
    server.roster = dict(state["roster"])
    server.graph = state["graph"]
    server.u1 = list(state["ids"])
    server.u2 = list(state["ids"])
    server.u3 = list(state["survivors"])
    server.u4 = list(state["survivors"])
    server._masked = state["masked"]
    return server


def run_unmask(
    *,
    dim: int = 1 << 20,
    clients: int = 100,
    dropout: float = 0.1,
    workers_list: Optional[list[int]] = None,
    repeats: int = 1,
    bits: int = 20,
    seed: int = 0,
) -> dict[str, Any]:
    """Benchmark the unmask plane; returns a schema report."""
    workers_list = workers_list or [1, 4]
    state = _fabricate_state(dim, clients, dropout, bits, seed)
    survivors = state["survivors"]
    dropped = state["dropped"]
    n_masks = len(survivors) + sum(
        len(state["graph"].get(u, set()) & set(survivors)) for u in dropped
    )

    metrics: dict[str, Any] = {}
    results: list[np.ndarray] = []

    best = float("inf")
    for _ in range(max(1, repeats)):
        server = _make_server(state, workers=1)
        start = time.perf_counter()
        out = server.collect_unmask_reference(state["messages"])
        best = min(best, time.perf_counter() - start)
        results.append(out)
    ref_s = best
    metrics["unmask_reference_s"] = metric(ref_s, "s")

    for workers in workers_list:
        best = float("inf")
        for _ in range(max(1, repeats)):
            server = _make_server(state, workers=workers)
            start = time.perf_counter()
            out = server.collect_unmask(state["messages"])
            best = min(best, time.perf_counter() - start)
            results.append(out)
        metrics[f"unmask_fast_w{workers}_s"] = metric(best, "s")
        if best > 0:
            metrics[f"unmask_speedup_w{workers}"] = metric(ref_s / best, "x")

    identical = all(np.array_equal(results[0], r) for r in results[1:])
    metrics["parity_bit_identical"] = metric(int(identical), "flag")
    metrics["masks_expanded"] = metric(n_masks, "count")
    metrics["reconstructions"] = metric(len(survivors) + len(dropped), "count")

    config = {
        "dim": dim,
        "clients": clients,
        "dropout": dropout,
        "dropped": len(dropped),
        "survivors": len(survivors),
        "threshold": state["config"].threshold,
        "workers_list": list(workers_list),
        "repeats": repeats,
        "bits": bits,
        "seed": seed,
        "prg_backend": native.backend_name(),
        "python": platform.python_version(),
        "numpy": np.__version__,
    }
    return make_report(TOPIC, config, metrics)
