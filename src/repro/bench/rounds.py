"""Measured-round benchmarks: real protocol rounds over real sockets.

Two topics:

- ``traffic`` — one SecAgg round over the framed-TCP transport at a
  modest dimension, recording the *measured* per-stage byte split the
  engine traced (the Table-3 network-footprint view, as bytes on an
  actual socket rather than a formula).
- ``round`` — end-to-end wall time of one measured round per model
  dimension (the Fig.-2 overhead-vs-size view), with the framed byte
  totals alongside.
"""

from __future__ import annotations

import re
import time
from typing import Any

import numpy as np

from repro.bench.schema import make_report, metric
from repro.utils.rng import derive_rng

TRAFFIC_TOPIC = "traffic"
ROUND_TOPIC = "round"


def _slug(label: str) -> str:
    return re.sub(r"[^a-z0-9]+", "_", label.lower()).strip("_")


def _run_measured_round(
    clients: int, dimension: int, bits: int, seed: int
) -> dict[str, Any]:
    """One SecAgg round over StreamTransport; returns raw measurements."""
    from repro.engine import RoundEngine, StreamTransport
    from repro.engine.core import run_sync
    from repro.secagg.driver import DropoutSchedule, arun_secagg_round
    from repro.secagg.types import SecAggConfig

    n = max(3, clients)
    config = SecAggConfig(
        threshold=max(2, n // 2 + 1),
        bits=bits,
        dimension=dimension,
        dh_group="modp512",
    )
    rng = derive_rng("bench-round", seed)
    inputs = {
        u: rng.integers(0, config.modulus, size=dimension)
        for u in range(1, n + 1)
    }
    transport = StreamTransport()
    engine = RoundEngine(transport=transport)
    schedule = DropoutSchedule.before_upload(set())

    start = time.perf_counter()
    result = run_sync(
        arun_secagg_round(config, dict(inputs), schedule, engine=engine)
    )
    wall_s = time.perf_counter() - start

    expected = np.zeros(dimension, dtype=np.int64)
    for u in result.u3:
        expected = (expected + inputs[u]) % config.modulus
    stats = transport.closed_connection_stats
    split = engine.trace.round_traffic_split(0)
    return {
        "clients": n,
        "wall_s": wall_s,
        "ok": bool(np.array_equal(result.aggregate, expected)),
        "down_bytes": split.down,
        "up_bytes": split.up,
        "total_bytes": engine.trace.round_traffic_bytes(0),
        "handshake_bytes": sum(
            s.handshake_sent + s.handshake_received for s in stats
        ),
        "connections": len(stats),
        "stages": {
            label: s
            for label, s in engine.trace.stage_traffic_split(0).items()
            if s.total
        },
    }


def run_traffic(
    *, clients: int = 4, dimension: int = 1024, bits: int = 20, seed: int = 0
) -> dict[str, Any]:
    """Measured per-stage traffic of one framed-TCP SecAgg round."""
    m = _run_measured_round(clients, dimension, bits, seed)
    metrics: dict[str, Any] = {
        "round_wall_s": metric(m["wall_s"], "s"),
        "total_down_bytes": metric(m["down_bytes"], "bytes"),
        "total_up_bytes": metric(m["up_bytes"], "bytes"),
        "total_bytes": metric(m["total_bytes"], "bytes"),
        "handshake_bytes": metric(m["handshake_bytes"], "bytes"),
        "connections": metric(m["connections"], "count"),
        "aggregate_ok": metric(1 if m["ok"] else 0, "flag"),
    }
    for label, split in m["stages"].items():
        slug = _slug(label)
        metrics[f"stage_{slug}_down_bytes"] = metric(split.down, "bytes")
        metrics[f"stage_{slug}_up_bytes"] = metric(split.up, "bytes")
    config = {
        "clients": m["clients"],
        "dimension": dimension,
        "bits": bits,
        "seed": seed,
        "transport": "sockets",
    }
    return make_report(TRAFFIC_TOPIC, config, metrics)


def run_round(
    dims: list[int], *, clients: int = 4, bits: int = 20, seed: int = 0
) -> dict[str, Any]:
    """End-to-end measured SecAgg round per model dimension."""
    metrics: dict[str, Any] = {}
    n = max(3, clients)
    for d in dims:
        m = _run_measured_round(n, d, bits, seed)
        metrics[f"round_d{d}_wall_s"] = metric(m["wall_s"], "s")
        metrics[f"round_d{d}_total_bytes"] = metric(m["total_bytes"], "bytes")
        metrics[f"round_d{d}_aggregate_ok"] = metric(
            1 if m["ok"] else 0, "flag"
        )
    config = {
        "dims": list(dims),
        "clients": n,
        "bits": bits,
        "seed": seed,
        "transport": "sockets",
    }
    return make_report(ROUND_TOPIC, config, metrics)
