"""Benchmark harness behind ``repro.cli bench``.

One entry point runs the hot-path microbenchmarks (every optimized path
timed against its retained ``*_reference`` twin), measured protocol
rounds over real sockets, and the million-device fleet topic (columnar
construction, cohort queries, and churn scenarios), and persists each
topic as a machine-readable
``BENCH_<topic>.json`` so successive runs form a diffable performance
trajectory (``repro.cli bench --diff old new``).
"""

from repro.bench.fleet import run_fleet
from repro.bench.hotpath import run_hotpath
from repro.bench.listener import run_listener
from repro.bench.rounds import run_round, run_traffic
from repro.bench.unmask import run_unmask
from repro.bench.schema import (
    SCHEMA_VERSION,
    bench_path,
    diff_bench,
    format_diff,
    load_bench,
    make_report,
    validate_report,
    write_bench,
)

__all__ = [
    "SCHEMA_VERSION",
    "bench_path",
    "diff_bench",
    "format_diff",
    "load_bench",
    "make_report",
    "run_fleet",
    "run_hotpath",
    "run_listener",
    "run_round",
    "run_traffic",
    "run_unmask",
    "validate_report",
    "write_bench",
]
