"""Benchmark report schema, persistence, and diffing.

Every ``repro.cli bench`` topic produces one *report*: a small
machine-readable JSON document written to ``BENCH_<topic>.json``.  The
schema is deliberately flat so two runs diff metric-by-metric::

    {
      "schema_version": 1,
      "topic": "hotpath",
      "created_unix": 1723100000,
      "config": {"dims": [16384, ...], "repeats": 3, ...},
      "metrics": {
        "prg_expand_d1048576_fast_s": {"value": 0.153, "unit": "s"},
        ...
      }
    }

Units are plain strings: ``s`` (seconds), ``bytes``, ``x`` (speedup
ratio), ``count``, ``flag`` (0/1), ``per_s`` (events per second).  :func:`validate_report` is the
contract the tier-1 smoke test enforces; :func:`diff_bench` compares two
persisted reports per metric.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any

SCHEMA_VERSION = 1

#: Units a metric may carry; anything else fails validation.
KNOWN_UNITS = frozenset({"s", "bytes", "x", "count", "flag", "per_s"})


def metric(value: float, unit: str) -> dict[str, Any]:
    """One metric entry: a number and its unit."""
    if unit not in KNOWN_UNITS:
        raise ValueError(f"unknown metric unit {unit!r}")
    return {"value": float(value), "unit": unit}


def make_report(
    topic: str, config: dict[str, Any], metrics: dict[str, dict[str, Any]]
) -> dict[str, Any]:
    """Assemble a schema-valid report for one bench topic."""
    report = {
        "schema_version": SCHEMA_VERSION,
        "topic": topic,
        "created_unix": int(time.time()),
        "config": config,
        "metrics": metrics,
    }
    validate_report(report)
    return report


def validate_report(report: Any) -> None:
    """Raise ``ValueError`` unless ``report`` matches the bench schema."""
    if not isinstance(report, dict):
        raise ValueError("report must be a JSON object")
    for key in ("schema_version", "topic", "created_unix", "config", "metrics"):
        if key not in report:
            raise ValueError(f"report missing required key {key!r}")
    if report["schema_version"] != SCHEMA_VERSION:
        raise ValueError(
            f"schema_version {report['schema_version']!r} != {SCHEMA_VERSION}"
        )
    if not isinstance(report["topic"], str) or not report["topic"]:
        raise ValueError("topic must be a non-empty string")
    if not isinstance(report["created_unix"], (int, float)):
        raise ValueError("created_unix must be a number")
    if not isinstance(report["config"], dict):
        raise ValueError("config must be an object")
    metrics = report["metrics"]
    if not isinstance(metrics, dict) or not metrics:
        raise ValueError("metrics must be a non-empty object")
    for name, entry in metrics.items():
        if not isinstance(entry, dict):
            raise ValueError(f"metric {name!r} must be an object")
        if not isinstance(entry.get("value"), (int, float)):
            raise ValueError(f"metric {name!r} has a non-numeric value")
        if entry.get("unit") not in KNOWN_UNITS:
            raise ValueError(
                f"metric {name!r} has unknown unit {entry.get('unit')!r}"
            )


def bench_path(out_dir: str | Path, topic: str) -> Path:
    """Where a topic's report lives: ``<out_dir>/BENCH_<topic>.json``."""
    return Path(out_dir) / f"BENCH_{topic}.json"


def write_bench(report: dict[str, Any], out_dir: str | Path = ".") -> Path:
    """Persist one report; returns the path written.

    Creates ``out_dir`` if needed (CI points ``--out`` at a fresh
    directory).
    """
    validate_report(report)
    path = bench_path(out_dir, report["topic"])
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


def load_bench(path: str | Path) -> dict[str, Any]:
    """Load and validate one persisted report."""
    report = json.loads(Path(path).read_text())
    validate_report(report)
    return report


def diff_bench(
    path_a: str | Path, path_b: str | Path
) -> list[dict[str, Any]]:
    """Per-metric comparison of two persisted reports (A = old, B = new).

    Each row carries the metric name, both values, the absolute delta
    ``b − a``, and the ratio ``b / a`` (``None`` when A is 0 or the
    metric exists on only one side).
    """
    a, b = load_bench(path_a), load_bench(path_b)
    rows: list[dict[str, Any]] = []
    for name in sorted(set(a["metrics"]) | set(b["metrics"])):
        ma, mb = a["metrics"].get(name), b["metrics"].get(name)
        va = ma["value"] if ma else None
        vb = mb["value"] if mb else None
        delta = vb - va if ma and mb else None
        ratio = vb / va if ma and mb and va else None
        rows.append(
            {
                "metric": name,
                "unit": (ma or mb)["unit"],
                "a": va,
                "b": vb,
                "delta": delta,
                "ratio": ratio,
            }
        )
    return rows


def format_diff(rows: list[dict[str, Any]]) -> str:
    """Render :func:`diff_bench` rows as an aligned text table."""
    def fmt(v: Any) -> str:
        if v is None:
            return "-"
        if isinstance(v, float):
            return f"{v:.6g}"
        return str(v)

    width = max([len(r["metric"]) for r in rows] + [len("metric")])
    lines = [
        f"{'metric':{width}s} {'a':>12s} {'b':>12s} {'delta':>12s} {'b/a':>8s}"
    ]
    for r in rows:
        lines.append(
            f"{r['metric']:{width}s} {fmt(r['a']):>12s} {fmt(r['b']):>12s} "
            f"{fmt(r['delta']):>12s} {fmt(r['ratio']):>8s}"
        )
    return "\n".join(lines)
