"""Listener stress benchmark: many dialing clients, one listening port.

The payoff measurement for the inverted socket topology — N concurrent
``DialingClient`` workers (default 1000) all dial one
:class:`~repro.engine.listener.CoordinatorListener`, which must accept
and welcome every one of them through a single ``asyncio.start_server``.
Once the whole cohort is connected, the coordinator drives echo rounds
(one request to every connection, gathered concurrently) over the same
exchange path the SecAgg stages use.

Recorded per run: accept wall time and rate, best-of per-round wall
time, total bytes on the wire, and a both-ends accounting check (every
listener-side counter must equal what the dialing endpoints observed).
"""

from __future__ import annotations

import asyncio
import time
from typing import Any

from repro.api.protocol import ProtocolClient
from repro.bench.schema import make_report, metric

LISTENER_TOPIC = "listener"

#: Payload echoed on every exchange — a few words, so frames have a body
#: but the benchmark stays a connection-scale test, not a bandwidth one.
ECHO_PAYLOAD = 0xD0BD15


class _EchoClient(ProtocolClient):
    """Minimal wire peer: answers ``echo`` with its payload."""

    def set_routine(self):
        return {"echo": lambda p: p}


async def _stress(
    connections: int, rounds: int, carrier: str
) -> dict[str, Any]:
    from repro.engine import (
        CoordinatorListener,
        DialingClient,
        ListenerTransport,
    )
    from repro.engine.listener import record_endpoint

    ids = set(range(1, connections + 1))
    clients = {u: _EchoClient(u) for u in ids}
    listener = CoordinatorListener(expected_ids=ids, carrier=carrier)
    await listener.start()
    host, port = listener.address

    start = time.perf_counter()
    dialers = {
        u: DialingClient(clients[u], host, port, carrier=carrier)
        for u in sorted(ids)
    }
    workers = [
        asyncio.ensure_future(dialer.run()) for dialer in dialers.values()
    ]
    try:
        while listener.accepted < connections:
            if listener.rejected:
                raise RuntimeError(
                    f"listener rejected {listener.rejected} dialers"
                )
            await asyncio.sleep(0.005)
        accept_wall_s = time.perf_counter() - start

        channel = ListenerTransport(listener).connect(clients)
        round_walls = []
        answered = 0
        for _ in range(rounds):
            begin = time.perf_counter()
            deliveries = await asyncio.gather(
                *(channel.request(u, "echo", ECHO_PAYLOAD) for u in ids)
            )
            round_walls.append(time.perf_counter() - begin)
            answered += sum(
                1 for d in deliveries if d.response == ECHO_PAYLOAD
            )
    finally:
        for w in workers:
            w.cancel()
        for w in workers:
            try:
                await w
            except (asyncio.CancelledError, Exception):
                pass
        await listener.aclose()

    stats = listener.closed_connection_stats
    by_id = {s.client_id: s for s in stats}
    for u, dialer in dialers.items():
        if u in by_id:
            record_endpoint(by_id[u], dialer)
    balanced = len(stats) == connections and all(
        s.endpoint_sent_bytes == s.bytes_received
        and s.endpoint_received_bytes == s.bytes_sent
        for s in stats
    )
    return {
        "accept_wall_s": accept_wall_s,
        "round_wall_s": min(round_walls),
        "answered": answered,
        "total_bytes": sum(
            s.bytes_sent + s.bytes_received for s in stats
        ),
        "handshake_bytes": sum(
            s.handshake_sent + s.handshake_received for s in stats
        ),
        "balanced": balanced,
    }


def run_listener(
    *, connections: int = 1000, rounds: int = 3, carrier: str = "sockets"
) -> dict[str, Any]:
    """Stress one coordinator listener with ``connections`` dialers."""
    if connections < 1:
        raise ValueError("connections must be positive")
    if rounds < 1:
        raise ValueError("rounds must be positive")
    m = asyncio.run(_stress(connections, rounds, carrier))
    ok = m["answered"] == connections * rounds and m["balanced"]
    metrics = {
        "connections": metric(connections, "count"),
        "accept_wall_s": metric(m["accept_wall_s"], "s"),
        "accept_rate_per_s": metric(
            connections / m["accept_wall_s"], "per_s"
        ),
        "round_wall_s": metric(m["round_wall_s"], "s"),
        "exchange_rate_per_s": metric(
            connections / m["round_wall_s"], "per_s"
        ),
        "total_bytes": metric(m["total_bytes"], "bytes"),
        "handshake_bytes": metric(m["handshake_bytes"], "bytes"),
        "accounting_balanced": metric(1 if m["balanced"] else 0, "flag"),
        "all_answered_ok": metric(1 if ok else 0, "flag"),
    }
    config = {
        "connections": connections,
        "rounds": rounds,
        "carrier": carrier,
    }
    return make_report(LISTENER_TOPIC, config, metrics)
