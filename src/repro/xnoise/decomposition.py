"""The XNoise noise-component algebra (§3.2, Theorem 1).

Setup: |U| sampled clients, dropout tolerance T, target aggregate noise
level σ²_*.  Each client adds noise at the *excessive* level
σ²_*/(|U|−T), split into T+1 additive components:

    n_{i,0} ~ χ(σ²_*/|U|)
    n_{i,k} ~ χ(σ²_*/((|U|−k+1)(|U|−k)))   for k = 1..T.

The variances telescope — 1/((|U|−k+1)(|U|−k)) = 1/(|U|−k) − 1/(|U|−k+1) —
so when |D| ≤ T clients actually drop, removing the components with index
k > |D| from every survivor leaves the aggregate at exactly σ²_*
(Theorem 1; reproduced numerically by the tests).

Collusion (§3.3): with SecAgg threshold t and collusion tolerance T_C,
every component variance is inflated by t/(t−T_C), so that an adversary
who learns the seeds of up to T_C colluding clients still faces at least
σ²_* of residual noise (Theorem 2's algebra).
"""

from __future__ import annotations

from dataclasses import dataclass


def _validate(n_sampled: int, tolerance: int) -> None:
    if n_sampled < 1:
        raise ValueError("need at least one sampled client")
    if not 0 <= tolerance < n_sampled:
        raise ValueError(
            f"dropout tolerance must satisfy 0 <= T < |U| "
            f"(got T={tolerance}, |U|={n_sampled})"
        )


def inflation_factor(threshold: int, collusion_tolerance: int) -> float:
    """The t/(t−T_C) noise inflation handling mild collusion (§3.3)."""
    if threshold < 1:
        raise ValueError("threshold must be >= 1")
    if not 0 <= collusion_tolerance < threshold:
        raise ValueError("collusion tolerance must satisfy 0 <= T_C < t")
    return threshold / (threshold - collusion_tolerance)


def component_variances(
    n_sampled: int,
    tolerance: int,
    target_variance: float,
    inflation: float = 1.0,
) -> list[float]:
    """Variances of the T+1 noise components each client adds.

    ``result[k]`` is the variance of n_{i,k}; their sum is the per-client
    excessive level σ²_*/(|U|−T) (times ``inflation``).
    """
    _validate(n_sampled, tolerance)
    if target_variance < 0:
        raise ValueError("target_variance must be non-negative")
    if inflation < 1.0:
        raise ValueError("inflation factor must be >= 1")
    out = [target_variance / n_sampled * inflation]
    for k in range(1, tolerance + 1):
        out.append(
            target_variance / ((n_sampled - k + 1) * (n_sampled - k)) * inflation
        )
    return out


def per_client_variance(
    n_sampled: int, tolerance: int, target_variance: float, inflation: float = 1.0
) -> float:
    """The excessive level σ²_*/(|U|−T) each client adds in total."""
    _validate(n_sampled, tolerance)
    return target_variance / (n_sampled - tolerance) * inflation


def removable_indices(n_dropped: int, tolerance: int) -> range:
    """Component indices the server removes from every survivor.

    With |D| actual dropouts, components k ∈ [|D|+1, T] are excessive
    (Definition 2).  |D| = T ⇒ nothing to remove; |D| > T is outside the
    tolerance and rejected.
    """
    if n_dropped < 0:
        raise ValueError("n_dropped must be non-negative")
    if n_dropped > tolerance:
        raise ValueError(
            f"dropout {n_dropped} exceeds the tolerance T={tolerance}"
        )
    return range(n_dropped + 1, tolerance + 1)


def excess_variance(
    n_sampled: int, tolerance: int, n_dropped: int, target_variance: float
) -> float:
    """Total excess noise level the server must remove — Eq. (1):

        l_ex = (T − |D|)/(|U| − T) · σ²_*.
    """
    _validate(n_sampled, tolerance)
    if not 0 <= n_dropped <= tolerance:
        raise ValueError("n_dropped must be in [0, T]")
    return (tolerance - n_dropped) / (n_sampled - tolerance) * target_variance


def per_survivor_excess(
    n_sampled: int, tolerance: int, n_dropped: int, target_variance: float
) -> float:
    """Per-survivor removal level — Eq. (2):

        l'_ex = σ²_* · (1/(|U|−T) − 1/(|U|−|D|)).
    """
    _validate(n_sampled, tolerance)
    if not 0 <= n_dropped <= tolerance:
        raise ValueError("n_dropped must be in [0, T]")
    return target_variance * (
        1.0 / (n_sampled - tolerance) - 1.0 / (n_sampled - n_dropped)
    )


def residual_variance_after_removal(
    n_sampled: int,
    tolerance: int,
    n_dropped: int,
    target_variance: float,
    inflation: float = 1.0,
) -> float:
    """Aggregate noise level after add-then-remove — Theorem 1's σ²_*.

    Computed from first principles (sum the survivors' added component
    variances, subtract the removed ones) rather than assumed, so tests
    can pin Theorem 1 numerically.
    """
    variances = component_variances(n_sampled, tolerance, target_variance, inflation)
    survivors = n_sampled - n_dropped
    added = survivors * sum(variances)
    removed = survivors * sum(
        variances[k] for k in removable_indices(n_dropped, tolerance)
    )
    return added - removed


@dataclass(frozen=True)
class NoiseDecomposition:
    """One round's decomposition parameters, bundled for the protocol.

    This is what a sampled client needs to know to add its noise, and
    what the server needs to know to remove the excess.
    """

    n_sampled: int
    tolerance: int
    target_variance: float
    threshold: int = 1
    collusion_tolerance: int = 0

    def __post_init__(self) -> None:
        _validate(self.n_sampled, self.tolerance)
        inflation_factor(self.threshold, self.collusion_tolerance)  # validates
        if self.target_variance < 0:
            raise ValueError("target_variance must be non-negative")

    @property
    def inflation(self) -> float:
        return inflation_factor(self.threshold, self.collusion_tolerance)

    @property
    def n_components(self) -> int:
        return self.tolerance + 1

    def variances(self) -> list[float]:
        return component_variances(
            self.n_sampled, self.tolerance, self.target_variance, self.inflation
        )

    def client_total_variance(self) -> float:
        return per_client_variance(
            self.n_sampled, self.tolerance, self.target_variance, self.inflation
        )

    def removal_plan(self, n_dropped: int) -> range:
        return removable_indices(n_dropped, self.tolerance)

    def residual_variance(self, n_dropped: int) -> float:
        return residual_variance_after_removal(
            self.n_sampled,
            self.tolerance,
            n_dropped,
            self.target_variance,
            self.inflation,
        )
