"""The 'rebasing' add-then-remove baseline (§3.1, adopted by Baek et al.).

Rebasing also over-adds noise, but removes the excess differently: after
the dropout outcome is known, every survivor samples the *newly-required*
noise n_u, and transmits the full correction vector ``n_u − n_o`` to the
server (sending either noise alone would let the server reconstruct the
noise-free aggregate).  Two consequences the paper exploits (§3.1, §6.3,
Table 3):

1. **Cost** — the correction is a model-sized vector, so the removal
   traffic grows linearly with the model, while XNoise ships 32-byte
   seeds.
2. **Robustness** — the correction can be neither seed-compressed nor
   secret-shared ahead of time (it depends on the dropout outcome), so a
   survivor dropping mid-removal leaves the aggregate at the *wrong*
   noise level with no recovery path.

This module implements a working float-domain simulation of the scheme
(used by the comparison tests) and the network-cost model behind
Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import derive_rng
from repro.xnoise.decomposition import per_client_variance


@dataclass
class RebasingRoundOutcome:
    """What a rebasing round produced.

    ``achieved_variance`` is the aggregate noise level actually present;
    it equals the target only if every survivor completed noise removal.
    """

    aggregate: np.ndarray
    achieved_variance: float
    target_variance: float
    removal_bytes_per_survivor: int

    @property
    def enforced(self) -> bool:
        return abs(self.achieved_variance - self.target_variance) < 1e-9


class RebasingScheme:
    """Float-domain simulation of rebasing over one round."""

    def __init__(self, n_sampled: int, tolerance: int, target_variance: float):
        self.n_sampled = n_sampled
        self.tolerance = tolerance
        self.target_variance = target_variance
        self.client_variance = per_client_variance(
            n_sampled, tolerance, target_variance
        )

    def run_round(
        self,
        updates: dict[int, np.ndarray],
        dropped: set[int],
        removal_dropouts: set[int] | None = None,
        seed: int = 0,
        element_bytes: float = 2.5,
    ) -> RebasingRoundOutcome:
        """Aggregate with rebasing noise enforcement.

        ``dropped`` leave before upload; ``removal_dropouts`` are
        survivors that vanish during the correction phase — their old
        (excessive) noise stays in the aggregate, demonstrating the
        robustness gap.
        """
        if len(updates) != self.n_sampled:
            raise ValueError("updates must cover the sampled set")
        if not dropped <= set(updates):
            raise ValueError("dropped ids must be sampled clients")
        removal_dropouts = set(removal_dropouts or set())
        survivors = [u for u in sorted(updates) if u not in dropped]
        n_dropped = len(dropped)
        if n_dropped > self.tolerance:
            raise ValueError("dropout beyond tolerance")

        dim = next(iter(updates.values())).shape[0]
        rng = derive_rng("rebasing", seed)
        aggregate = np.zeros(dim)
        achieved = 0.0
        new_variance = self.target_variance / len(survivors)
        for u in survivors:
            old_noise = rng.normal(0, np.sqrt(self.client_variance), dim)
            aggregate = aggregate + updates[u] + old_noise
            if u in removal_dropouts:
                # Correction never arrives; the old noise stays.
                achieved += self.client_variance
            else:
                new_noise = rng.normal(0, np.sqrt(new_variance), dim)
                aggregate = aggregate + (new_noise - old_noise)
                achieved += new_variance
        removal_bytes = rebasing_removal_bytes(dim, element_bytes)
        return RebasingRoundOutcome(
            aggregate=aggregate,
            achieved_variance=achieved,
            target_variance=self.target_variance,
            removal_bytes_per_survivor=removal_bytes,
        )


def rebasing_removal_bytes(model_size: int, element_bytes: float = 2.5) -> int:
    """Per-survivor removal traffic of rebasing: one full noise vector.

    Table 3's deployment constants: 2.5 bytes per model weight.
    """
    if model_size <= 0:
        raise ValueError("model_size must be positive")
    return int(model_size * element_bytes)
