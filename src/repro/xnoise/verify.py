"""Detection of dropout understatement by a malicious server (§3.3).

Equation (1) says the server removes *more* noise the *fewer* clients
dropped — so a malicious server profits from pretending dropped clients
survived (down to (1 − T/|U|)·σ_* of the target noise in the worst case).
The defense:

- before uploading its perturbed update, every client signs the current
  round number: ω'_i ← SIG.sign(d^SK_i, R);
- the server must broadcast the dropout outcome D *together with* the
  signature set {j, ω'_j} of the clients it claims survived (P);
- each client verifies every signature and that P = U \\ D, aborting
  otherwise.

Claiming a dropped client survived requires forging its round signature —
infeasible under UF-CMA.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.pki import PublicKeyInfrastructure
from repro.crypto.signature import SchnorrSignature, SchnorrSigner


class UnderstatementDetected(Exception):
    """Raised by a verifying client when the broadcast fails the checks."""


def round_message(round_index: int) -> bytes:
    """The byte string clients sign alongside their perturbed update."""
    return f"dordis-round:{round_index}".encode("utf-8")


@dataclass(frozen=True)
class DropoutBroadcast:
    """The server's claim: dropout outcome D plus survivor signatures."""

    round_index: int
    claimed_dropped: frozenset
    survivor_signatures: dict  # client id -> SchnorrSignature


class DropoutAttestation:
    """Client- and server-side halves of the §3.3 verification."""

    def __init__(self, pki: PublicKeyInfrastructure, round_index: int):
        self.pki = pki
        self.round_index = round_index

    # -------------------------------------------------- client side
    def sign_participation(self, signer: SchnorrSigner) -> SchnorrSignature:
        """ω'_i — sent with the perturbed update."""
        return signer.sign(round_message(self.round_index))

    def verify_broadcast(
        self, sampled: set, broadcast: DropoutBroadcast
    ) -> None:
        """The client-side checks; raises on any inconsistency.

        1. every broadcast signature verifies under the claimed sender's
           PKI key for this round; and
        2. the signed set P equals U \\ D.
        """
        if broadcast.round_index != self.round_index:
            raise UnderstatementDetected(
                f"broadcast is for round {broadcast.round_index}, "
                f"expected {self.round_index}"
            )
        claimed_survivors = set(broadcast.survivor_signatures)
        expected = set(sampled) - set(broadcast.claimed_dropped)
        if claimed_survivors != expected:
            raise UnderstatementDetected(
                "signature set does not match U \\ D: "
                f"signed={sorted(claimed_survivors)}, "
                f"expected={sorted(expected)}"
            )
        msg = round_message(self.round_index)
        for client_id, sig in broadcast.survivor_signatures.items():
            if not self.pki.verifier(client_id).verify(msg, sig):
                raise UnderstatementDetected(
                    f"invalid round signature attributed to client {client_id}"
                )

    # -------------------------------------------------- server side
    @staticmethod
    def honest_broadcast(
        round_index: int,
        sampled: set,
        received_signatures: dict,
    ) -> DropoutBroadcast:
        """What a faithful server broadcasts: D = U minus actual senders."""
        dropped = frozenset(set(sampled) - set(received_signatures))
        return DropoutBroadcast(
            round_index=round_index,
            claimed_dropped=dropped,
            survivor_signatures=dict(received_signatures),
        )
