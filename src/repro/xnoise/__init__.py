"""XNoise: the paper's dropout-resilient 'add-then-remove' noise scheme.

- :mod:`repro.xnoise.decomposition` — the noise-component algebra of
  §3.2: how much each client over-adds, how the T+1 component variances
  telescope, and how much the server removes for each dropout outcome
  (Theorem 1), including the collusion inflation factor t/(t−T_C) (§3.3).
- :mod:`repro.xnoise.protocol` — XNoise integrated with SecAgg exactly as
  Fig. 5: noise-seed secret sharing in ShareKeys, direct seed reveal in
  Unmasking, and the extra Stage 5 (ExcessiveNoiseRemoval) recovering
  seeds of clients that dropped mid-removal.
- :mod:`repro.xnoise.rebasing` — the 'rebasing' baseline [Baek et al.]:
  noise correction transmitted as a full model-sized vector, with the
  robustness gap XNoise fixes.
- :mod:`repro.xnoise.verify` — the §3.3 defense against a malicious
  server understating dropout: signed round numbers rebroadcast with the
  dropout outcome.
"""

from repro.xnoise.decomposition import (
    NoiseDecomposition,
    component_variances,
    removable_indices,
    residual_variance_after_removal,
)
from repro.xnoise.rebasing import RebasingScheme, rebasing_removal_bytes
from repro.xnoise.verify import DropoutAttestation, UnderstatementDetected

# repro.xnoise.protocol pulls in the round engine (which in turn reaches
# back through repro.pipeline → repro.xnoise.rebasing), so its exports
# load lazily: any __all__ name not bound above is looked up in the
# protocol module on first access, then cached in module globals.


def __getattr__(name: str):
    if name in __all__:
        from repro.xnoise import protocol

        value = getattr(protocol, name)
        globals()[name] = value
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(__all__))

__all__ = [
    "NoiseDecomposition",
    "component_variances",
    "removable_indices",
    "residual_variance_after_removal",
    "XNoiseConfig",
    "XNoiseResult",
    "XNoiseClient",
    "XNoiseServer",
    "XNoiseWorkflowServer",
    "run_xnoise_round",
    "arun_xnoise_round",
    "run_xnoise_round_reference",
    "xnoise_round_components",
    "RebasingScheme",
    "rebasing_removal_bytes",
    "DropoutAttestation",
    "UnderstatementDetected",
]
