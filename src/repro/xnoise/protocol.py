"""XNoise integrated with SecAgg (Fig. 5's red/underlined additions).

The integration reuses SecAgg's infrastructure (§3.3 "Optimization via
Integration with Secure Aggregation"):

- *Setup*: each sampled client samples T+1 noise seeds g_{u,k}; seeds for
  k ≥ 1 are Shamir-shared through the same encrypted ShareKeys channels
  as the mask secrets (labels ``g:k``).
- *MaskedInputCollection*: the client perturbs its encoded update with
  all T+1 noise components before masking.
- *Unmasking*: every survivor directly reveals the seeds of its excess
  components (k > |D| where D = U \\ U3).
- *Stage 5, ExcessiveNoiseRemoval*: for survivors that dropped before
  revealing (U3 \\ U5), the server collects seed shares from ≥ t live
  clients (U6), reconstructs the seeds, regenerates the components, and
  subtracts them from the aggregate.

Noise is Skellam in the ring domain (closed under summation, integer-
valued), regenerated deterministically from each 32-byte seed — this is
why removal costs seeds, not model-sized vectors (§3.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.crypto.pki import PublicKeyInfrastructure
from repro.crypto.prg import PRG
from repro.crypto.shamir import ShamirSecretSharing, random_seed
from repro.engine import RoundEngine, Targeted
from repro.engine.core import run_sync
from repro.secagg.client import SecAggClient
from repro.secagg.driver import (
    DropoutSchedule,
    make_secagg_clients,
    resolve_round_pki,
)
from repro.secagg.graph import build_graph
from repro.secagg.server import SecAggServer
from repro.secagg.workflow import (
    SecAggWorkflowClient,
    SecAggWorkflowServer,
    with_dropout,
)
from repro.secagg.types import (
    ProtocolAbort,
    RoundResult,
    SecAggConfig,
    TrafficMeter,
    STAGE_ADVERTISE,
    STAGE_SHARE_KEYS,
    STAGE_MASKED_INPUT,
    STAGE_CONSISTENCY,
    STAGE_UNMASK,
    STAGE_NOISE_REMOVAL,
)
from repro.xnoise.decomposition import NoiseDecomposition


def seed_label(k: int) -> str:
    """ShareKeys label under which component k's seed is shared."""
    return f"g:{k}"


def skellam_noise_from_seed(
    seed: bytes, variance: float, dimension: int
) -> np.ndarray:
    """Deterministically expand a seed into one Skellam noise component.

    Client (addition) and server (removal) call this with the same seed
    and variance and obtain the identical vector — the property that lets
    XNoise transmit 32-byte seeds instead of model-sized noise.
    """
    if variance < 0:
        raise ValueError("variance must be non-negative")
    if variance == 0:
        return np.zeros(dimension, dtype=np.int64)
    gen = PRG(seed).numpy_generator()
    mu = variance / 2.0
    plus = gen.poisson(mu, size=dimension)
    minus = gen.poisson(mu, size=dimension)
    return (plus - minus).astype(np.int64)


@dataclass(frozen=True)
class XNoiseConfig:
    """Parameters of one XNoise round on top of a SecAgg config.

    ``target_variance`` is σ²_* in the ring (scaled-integer) domain —
    the level Theorem 1 guarantees on the decoded aggregate.
    """

    secagg: SecAggConfig
    n_sampled: int
    tolerance: int
    target_variance: float
    collusion_tolerance: int = 0

    def __post_init__(self) -> None:
        # Constructing the decomposition validates all the constraints.
        self.decomposition()

    def decomposition(self) -> NoiseDecomposition:
        return NoiseDecomposition(
            n_sampled=self.n_sampled,
            tolerance=self.tolerance,
            target_variance=self.target_variance,
            threshold=self.secagg.threshold,
            collusion_tolerance=self.collusion_tolerance,
        )


@dataclass
class XNoiseResult(RoundResult):
    """Round outcome plus noise-enforcement bookkeeping."""

    residual_variance: float = 0.0
    tolerance_exceeded: bool = False
    n_dropped: int = 0


class XNoiseClient(SecAggClient):
    """SecAgg client that over-adds decomposed noise and reveals seeds."""

    def __init__(
        self,
        client_id: int,
        config: XNoiseConfig,
        noise_seeds: Optional[list[bytes]] = None,
        **kwargs,
    ):
        self.xconfig = config
        self.decomposition = config.decomposition()
        if noise_seeds is None:
            noise_seeds = [
                random_seed(32) for _ in range(self.decomposition.n_components)
            ]
        if len(noise_seeds) != self.decomposition.n_components:
            raise ValueError(
                f"need {self.decomposition.n_components} noise seeds, "
                f"got {len(noise_seeds)}"
            )
        self.noise_seeds: list[bytes] = list(noise_seeds)
        extra = {
            seed_label(k): self.noise_seeds[k]
            for k in range(1, self.decomposition.n_components)
        }
        super().__init__(
            client_id, config.secagg, extra_secrets=extra, **kwargs
        )

    def masked_input(self, ciphertexts, update_signal: np.ndarray):
        """Add all T+1 noise components to the encoded signal, then mask."""
        noisy = np.asarray(update_signal, dtype=np.int64).copy()
        for k, variance in enumerate(self.decomposition.variances()):
            noisy = noisy + skellam_noise_from_seed(
                self.noise_seeds[k], variance, self.config.dimension
            )
        return super().masked_input(ciphertexts, noisy % self.config.modulus)

    def excess_component_indices(self) -> range:
        """Components this client should reveal, from its view of U3."""
        n_dropped = self.decomposition.n_sampled - len(self._u3)
        clamped = min(max(n_dropped, 0), self.decomposition.tolerance)
        return range(clamped + 1, self.decomposition.n_components)

    def unmask(self, u4, u4_signatures, dropped, survivors, revealed_seeds=None):
        reveal = {
            k: self.noise_seeds[k] for k in self.excess_component_indices()
        }
        return super().unmask(
            u4, u4_signatures, dropped, survivors, revealed_seeds=reveal
        )


class XNoiseServer(SecAggServer):
    """SecAgg server extended with excessive-noise removal."""

    def __init__(self, config: XNoiseConfig, **kwargs):
        super().__init__(config.secagg, **kwargs)
        self.xconfig = config
        self.decomposition = config.decomposition()

    def n_dropped(self) -> int:
        """|D| = |U \\ U3| — sampled clients whose noise is missing."""
        return self.decomposition.n_sampled - len(self.u3)

    def removal_indices(self) -> range:
        clamped = min(max(self.n_dropped(), 0), self.decomposition.tolerance)
        return range(clamped + 1, self.decomposition.n_components)

    def remove_excess_noise(
        self,
        aggregate: np.ndarray,
        revealed: dict[int, dict[int, bytes]],
        reconstructed: dict[int, dict[int, bytes]],
    ) -> tuple[np.ndarray, int]:
        """Subtract every survivor's excess components from the aggregate.

        ``revealed`` maps survivor → {k: seed} sent directly in Unmasking;
        ``reconstructed`` covers survivors recovered via Stage 5.  Raises
        if any survivor's excess seeds are unavailable — a faithful
        execution always has them (Shamir guarantees reconstruction with
        ≥ t responders).
        """
        modulus = self.config.modulus
        variances = self.decomposition.variances()
        removed = 0
        for u in self.u3:
            seeds = revealed.get(u) or reconstructed.get(u) or {}
            for k in self.removal_indices():
                seed = seeds.get(k)
                if seed is None:
                    raise ProtocolAbort(
                        f"missing seed g_{{{u},{k}}} for noise removal"
                    )
                noise = skellam_noise_from_seed(
                    seed, variances[k], self.config.dimension
                )
                aggregate = (aggregate - noise) % modulus
                removed += 1
        return aggregate, removed


class XNoiseWorkflowServer(SecAggWorkflowServer):
    """Fig.-5 workflow extended with ExcessiveNoiseRemoval (stage 5)."""

    def __init__(self, inner: XNoiseServer, traffic: Optional[TrafficMeter] = None):
        super().__init__(inner, traffic)
        self.xconfig = inner.xconfig

    def set_graph_dict(self) -> dict:
        graph = super().set_graph_dict()
        graph["noise_shares"] = {"resource": "c-comp", "deps": ["collect_unmask"]}
        graph["remove_noise"] = {"resource": "s-comp", "deps": ["noise_shares"]}
        return graph

    def _meter_unmask(self, responses: dict) -> None:
        super()._meter_unmask(responses)
        for msg in responses.values():
            self.traffic.add_up(STAGE_UNMASK, 32 * len(msg.revealed_seeds))

    def collect_unmask(self, responses: dict) -> Targeted:
        self._meter_unmask(responses)
        self._aggregate = self.inner.collect_unmask(responses)
        self._revealed = {
            u: dict(m.revealed_seeds) for u, m in responses.items()
        }
        self._removal = list(self.inner.removal_indices())
        self._needs_recovery = (
            sorted(set(self.inner.u3) - set(self._revealed))
            if self._removal
            else []
        )
        self._labels = {
            u: [seed_label(k) for k in self._removal]
            for u in self._needs_recovery
        }
        if self._needs_recovery:
            return Targeted({v: self._labels for v in sorted(self.inner.u5)})
        return Targeted({})

    def remove_noise(self, responses: dict) -> XNoiseResult:
        removal, needs_recovery = self._removal, self._needs_recovery
        collected: dict[int, dict[str, list]] = {
            u: {lbl: [] for lbl in self._labels[u]} for u in needs_recovery
        }
        u6: list[int] = []
        for v in sorted(responses):
            response = responses[v]
            if response:
                u6.append(v)
            for peer, found in response.items():
                for lbl, share in found.items():
                    collected[peer][lbl].append(share)
                    self.traffic.add_up(STAGE_NOISE_REMOVAL, 300)
        reconstructed: dict[int, dict[int, bytes]] = {}
        if needs_recovery:
            if len(u6) < self.config.threshold and removal:
                raise ProtocolAbort(
                    f"only {len(u6)} stage-5 responders; below threshold"
                )
            ss = ShamirSecretSharing(self.config.threshold)
            for u in needs_recovery:
                seeds: dict[int, bytes] = {}
                for k in removal:
                    shares = collected[u][seed_label(k)]
                    try:
                        seeds[k] = ss.reconstruct(shares)
                    except ValueError as exc:
                        raise ProtocolAbort(
                            f"cannot reconstruct seed g_{{{u},{k}}}: {exc}"
                        ) from exc
                reconstructed[u] = seeds

        aggregate, removed = self.inner.remove_excess_noise(
            self._aggregate, self._revealed, reconstructed
        )
        n_dropped = self.inner.n_dropped()
        exceeded = n_dropped > self.xconfig.tolerance
        residual = self.inner.decomposition.residual_variance(
            min(n_dropped, self.xconfig.tolerance)
        )
        if exceeded:
            # Fewer survivors than |U|−T: aggregate noise is below target.
            residual = (self.xconfig.n_sampled - n_dropped) * (
                self.inner.decomposition.client_total_variance()
            )
        return XNoiseResult(
            aggregate=aggregate,
            u1=list(self.inner.u1),
            u2=list(self.inner.u2),
            u3=list(self.inner.u3),
            u4=list(self.inner.u4),
            u5=list(self.inner.u5),
            traffic=self.traffic,
            u6=u6,
            removed_noise_components=removed,
            residual_variance=residual,
            tolerance_exceeded=exceeded,
            n_dropped=n_dropped,
        )


def xnoise_round_components(
    config: XNoiseConfig,
    inputs: dict[int, np.ndarray],
    pki: Optional[PublicKeyInfrastructure] = None,
    round_index: int = 0,
    client_factory: Optional[Callable[[int], XNoiseClient]] = None,
) -> tuple[XNoiseWorkflowServer, list[SecAggWorkflowClient]]:
    """(declared server, declared clients) for one XNoise engine round."""
    if len(inputs) != config.n_sampled:
        raise ValueError(
            f"got {len(inputs)} inputs for n_sampled={config.n_sampled}"
        )
    sampled = sorted(inputs)
    pki = resolve_round_pki(config.secagg, pki, client_factory)
    clients = make_secagg_clients(
        config.secagg, sampled, pki, round_index, client_factory,
        client_cls=XNoiseClient, client_config=config,
    )
    server = XNoiseServer(config, pki=pki, round_index=round_index)
    return (
        XNoiseWorkflowServer(server),
        [SecAggWorkflowClient(clients[u], inputs[u]) for u in sampled],
    )


async def arun_xnoise_round(
    config: XNoiseConfig,
    inputs: dict[int, np.ndarray],
    dropout: Optional[DropoutSchedule] = None,
    pki: Optional[PublicKeyInfrastructure] = None,
    round_index: int = 0,
    client_factory: Optional[Callable[[int], XNoiseClient]] = None,
    engine: Optional[RoundEngine] = None,
    timing=None,
) -> XNoiseResult:
    """Execute one XNoise+SecAgg round on the engine (async).

    Dropout middleware wraps the engine's own transport, preserving any
    configured latency model; ``timing`` overrides the engine's op cost
    model for this round (e.g. a straggler-scaled wrapper).
    """
    server, clients = xnoise_round_components(
        config, inputs, pki, round_index, client_factory
    )
    engine = engine or RoundEngine()
    return await engine.run_round(
        server,
        clients,
        round_index=round_index,
        transport=with_dropout(engine.transport, dropout),
        timing=timing,
    )


def run_xnoise_round(
    config: XNoiseConfig,
    inputs: dict[int, np.ndarray],
    dropout: Optional[DropoutSchedule] = None,
    pki: Optional[PublicKeyInfrastructure] = None,
    round_index: int = 0,
    client_factory: Optional[Callable[[int], XNoiseClient]] = None,
) -> XNoiseResult:
    """Execute one full XNoise+SecAgg round (Fig. 5, stages 0–5).

    ``inputs`` maps client id → *pre-noise* encoded signal (signed
    integers; e.g. :meth:`repro.dp.skellam.SkellamMechanism.encode_signal`
    output).  Returns the unmasked ring aggregate with the excess noise
    removed and the residual noise level implied by Theorem 1.
    """
    return run_sync(
        arun_xnoise_round(
            config, inputs, dropout, pki, round_index, client_factory
        )
    )


def run_xnoise_round_reference(
    config: XNoiseConfig,
    inputs: dict[int, np.ndarray],
    dropout: Optional[DropoutSchedule] = None,
    pki: Optional[PublicKeyInfrastructure] = None,
    round_index: int = 0,
    client_factory: Optional[Callable[[int], XNoiseClient]] = None,
) -> XNoiseResult:
    """The pre-engine synchronous driver, kept as executable specification.

    Regression tests run both this and the engine path on identical
    inputs (and, via ``client_factory``, identical noise seeds) and
    require bit-identical outcomes.  Do not add features here.
    """
    if len(inputs) != config.n_sampled:
        raise ValueError(
            f"got {len(inputs)} inputs for n_sampled={config.n_sampled}"
        )
    dropout = dropout or DropoutSchedule()
    traffic = TrafficMeter()
    sampled = sorted(inputs)
    secagg_cfg = config.secagg

    pki = resolve_round_pki(secagg_cfg, pki, client_factory)
    clients = make_secagg_clients(
        secagg_cfg, sampled, pki, round_index, client_factory,
        client_cls=XNoiseClient, client_config=config,
    )
    server = XNoiseServer(config, pki=pki, round_index=round_index)

    # Stage 0 — AdvertiseKeys.
    alive = set(sampled) - dropout.dropped_by(STAGE_ADVERTISE)
    adverts = {u: clients[u].advertise_keys() for u in sorted(alive)}
    for _ in adverts:
        traffic.add_up(STAGE_ADVERTISE, 512 + (288 if secagg_cfg.malicious else 0))
    graph = build_graph(secagg_cfg, sorted(adverts))
    roster = server.collect_advertise(adverts, graph)
    traffic.add_down(STAGE_ADVERTISE, len(roster) * 512 * len(roster))

    # Stage 1 — ShareKeys (now carrying the T noise-seed shares).
    alive -= dropout.dropped_by(STAGE_SHARE_KEYS)
    outboxes = {}
    for u in sorted(alive & set(roster)):
        outboxes[u] = clients[u].share_keys(roster, graph)
        traffic.add_up(STAGE_SHARE_KEYS, sum(len(ct) for ct in outboxes[u].values()))
    inboxes = server.route_shares(outboxes)
    for box in inboxes.values():
        traffic.add_down(STAGE_SHARE_KEYS, sum(len(ct) for ct in box.values()))

    # Stage 2 — MaskedInputCollection (inputs perturbed with T+1 components).
    alive -= dropout.dropped_by(STAGE_MASKED_INPUT)
    masked = {}
    for u in sorted(alive & set(server.u2)):
        masked[u] = clients[u].masked_input(inboxes.get(u, {}), inputs[u])
        traffic.add_up(
            STAGE_MASKED_INPUT, secagg_cfg.dimension * secagg_cfg.bits // 8
        )
    u3 = server.collect_masked(masked)
    traffic.add_down(STAGE_MASKED_INPUT, 8 * len(u3) * len(u3))

    # Stage 3 — ConsistencyCheck.
    alive -= dropout.dropped_by(STAGE_CONSISTENCY)
    if secagg_cfg.malicious:
        sigs = {}
        for u in sorted(alive & set(u3)):
            sigs[u] = clients[u].consistency_check(u3)
            traffic.add_up(STAGE_CONSISTENCY, 288)
        u4, sig_set = server.collect_consistency(sigs)
        traffic.add_down(STAGE_CONSISTENCY, 288 * len(u4) * len(u4))
    else:
        for u in sorted(alive & set(u3)):
            clients[u].consistency_check(u3)
        u4, sig_set = server.skip_consistency(), None

    # Stage 4 — Unmasking (with direct excess-seed reveal).
    alive -= dropout.dropped_by(STAGE_UNMASK)
    dropped_list = server.dropped_after_masking
    unmask_msgs = {}
    for u in sorted(alive & set(u4)):
        msg = clients[u].unmask(u4, sig_set, dropped=dropped_list, survivors=list(u3))
        unmask_msgs[u] = msg
        traffic.add_up(
            STAGE_UNMASK,
            300 * (len(msg.s_sk_shares) + len(msg.b_shares))
            + 32 * len(msg.revealed_seeds),
        )
    aggregate = server.collect_unmask(unmask_msgs)

    # Stage 5 — ExcessiveNoiseRemoval.
    alive -= dropout.dropped_by(STAGE_NOISE_REMOVAL)
    removal = list(server.removal_indices())
    revealed = {u: dict(m.revealed_seeds) for u, m in unmask_msgs.items()}
    needs_recovery = sorted(set(u3) - set(revealed)) if removal else []
    reconstructed: dict[int, dict[int, bytes]] = {}
    u6: list[int] = []
    if needs_recovery:
        labels = {u: [seed_label(k) for k in removal] for u in needs_recovery}
        collected: dict[int, dict[str, list]] = {
            u: {lbl: [] for lbl in labels[u]} for u in needs_recovery
        }
        for v in sorted(alive & set(server.u5)):
            response = clients[v].shares_of_extra_secret(labels)
            if response:
                u6.append(v)
            for peer, found in response.items():
                for lbl, share in found.items():
                    collected[peer][lbl].append(share)
                    traffic.add_up(STAGE_NOISE_REMOVAL, 300)
        if len(u6) < secagg_cfg.threshold and removal:
            raise ProtocolAbort(
                f"only {len(u6)} stage-5 responders; below threshold"
            )
        ss = ShamirSecretSharing(secagg_cfg.threshold)
        for u in needs_recovery:
            seeds: dict[int, bytes] = {}
            for k in removal:
                shares = collected[u][seed_label(k)]
                try:
                    seeds[k] = ss.reconstruct(shares)
                except ValueError as exc:
                    raise ProtocolAbort(
                        f"cannot reconstruct seed g_{{{u},{k}}}: {exc}"
                    ) from exc
            reconstructed[u] = seeds

    aggregate, removed = server.remove_excess_noise(
        aggregate, revealed, reconstructed
    )

    n_dropped = server.n_dropped()
    exceeded = n_dropped > config.tolerance
    residual = server.decomposition.residual_variance(
        min(n_dropped, config.tolerance)
    )
    if exceeded:
        # Fewer survivors than |U|−T: aggregate noise is below target.
        residual = (config.n_sampled - n_dropped) * (
            server.decomposition.client_total_variance()
        )

    return XNoiseResult(
        aggregate=aggregate,
        u1=list(server.u1),
        u2=list(server.u2),
        u3=list(server.u3),
        u4=list(server.u4),
        u5=list(server.u5),
        traffic=traffic,
        u6=u6,
        removed_noise_components=removed,
        residual_variance=residual,
        tolerance_exceeded=exceeded,
        n_dropped=n_dropped,
    )
