"""ProtocolServer / ProtocolClient base classes (Appendix D).

A protocol is declared, not hard-coded:

- the **server** overrides :meth:`ProtocolServer.set_graph_dict` to
  describe its workflow — one entry per operation with the dominant
  resource and dependency edges.  Dordis uses the declaration both to
  drive execution order and to plan pipeline acceleration (§4): the
  resource annotations are what the stage-grouping of Table 1 is built
  from.  One coordination method per operation carries the server-side
  logic.
- each **client** overrides :meth:`ProtocolClient.set_routine` to map
  request names to handler methods, mirroring the paper's "specify which
  part of the client workflow is triggered by a specific server request".
"""

from __future__ import annotations

from repro.pipeline.stages import Resource, Stage


class WorkflowError(Exception):
    """Malformed workflow declaration (unknown resource, cycle, …)."""


_VALID_RESOURCES = {r.value for r in Resource}


class ProtocolServer:
    """Base class for server-side protocol workflows."""

    def set_graph_dict(self) -> dict:
        """Return ``{operation: {"resource": str, "deps": [operation…]}}``.

        Subclasses must override; the runtime validates and topologically
        orders the graph.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    def workflow_order(self) -> list[str]:
        """Validated topological order of the declared operations."""
        graph = self.set_graph_dict()
        if not graph:
            raise WorkflowError("empty workflow declaration")
        for op, spec in graph.items():
            resource = spec.get("resource")
            if resource not in _VALID_RESOURCES:
                raise WorkflowError(
                    f"operation {op!r}: unknown resource {resource!r} "
                    f"(choose from {sorted(_VALID_RESOURCES)})"
                )
            for dep in spec.get("deps", []):
                if dep not in graph:
                    raise WorkflowError(
                        f"operation {op!r} depends on undeclared {dep!r}"
                    )
        order: list[str] = []
        state: dict[str, int] = {}

        def visit(op: str) -> None:
            if state.get(op) == 1:
                raise WorkflowError(f"workflow cycle through {op!r}")
            if state.get(op) == 2:
                return
            state[op] = 1
            for dep in graph[op].get("deps", []):
                visit(dep)
            state[op] = 2
            order.append(op)

        for op in graph:
            visit(op)
        return order

    def pipeline_stages(self) -> list[Stage]:
        """Group consecutive same-resource operations into stages.

        This is the §4.1 grouping applied to the declared workflow — the
        minimum scheduling units pipeline planning operates on.
        """
        graph = self.set_graph_dict()
        stages: list[Stage] = []
        for op in self.workflow_order():
            resource = Resource(graph[op]["resource"])
            if stages and stages[-1].resource is resource:
                merged = Stage(f"{stages[-1].name}+{op}", resource)
                stages[-1] = merged
            else:
                stages.append(Stage(op, resource))
        return stages

    def operation_method(self, op: str):
        """The coordination method for ``op`` (e.g. ``encode_data``)."""
        method = getattr(self, op, None)
        if method is None or not callable(method):
            raise WorkflowError(
                f"server declares operation {op!r} but defines no "
                f"method of that name"
            )
        return method


class ProtocolClient:
    """Base class for client-side protocol participants."""

    def __init__(self, client_id: int):
        self.id = client_id

    def set_routine(self) -> dict:
        """Return ``{request_name: handler}``; subclasses override."""
        raise NotImplementedError

    def handle(self, request: str, payload):
        """Dispatch one server request through the routine table."""
        routine = self.set_routine()
        handler = routine.get(request)
        if handler is None:
            raise WorkflowError(
                f"client {self.id} has no handler for request {request!r} "
                f"(routine handles {sorted(routine)})"
            )
        return handler(payload)
