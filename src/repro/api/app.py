"""AppServer / AppClient: applications on top of the aggregation core.

Appendix D: "developers can leverage the AppServer class by overriding
``use_output()`` … and instantiate their own AppClient by overriding
``prepare_data()`` and ``use_output()``" — the hooks that let the same
privacy machinery power applications beyond FL (federated analytics,
telemetry, …).
"""

from __future__ import annotations

import numpy as np


class AppServer:
    """Application logic at the server: consume the aggregate."""

    def use_output(self, aggregate: np.ndarray) -> None:
        """Called once per round with the decoded aggregate."""
        raise NotImplementedError


class AppClient:
    """Application logic at a client: produce input, consume output."""

    def __init__(self, client_id: int):
        self.id = client_id

    def prepare_data(self, round_index: int) -> np.ndarray:
        """Produce this round's input vector."""
        raise NotImplementedError

    def use_output(self, aggregate: np.ndarray) -> None:
        """Consume the (broadcast) aggregate; default: ignore."""
