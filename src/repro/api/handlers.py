"""Pluggable privacy/security primitive handlers (Appendix D).

Each abstract handler pins the interface one primitive family exposes to
protocol code; the ``Default*`` classes delegate to this repository's
implementations.  Swapping a handler (say, a different DP mechanism or a
hardware AE scheme) requires no protocol changes — the Table-4 promise.
"""

from __future__ import annotations

import numpy as np

from repro.crypto.ae import AuthenticatedEncryption
from repro.crypto.dh import DHKeyPair, KeyAgreement, resolve_group
from repro.crypto.prg import expand_uniform
from repro.crypto.shamir import Share, ShamirSecretSharing
from repro.dp.skellam import SkellamConfig, SkellamMechanism


# ---------------------------------------------------------------------------
# Differential privacy
# ---------------------------------------------------------------------------


class DPHandler:
    """DP mechanism interface: parameter setup, encode, decode."""

    def init_params(self, **kwargs) -> None:
        """Configure the mechanism before the round starts."""
        raise NotImplementedError

    def encode_data(self, chunk: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Client-side: real-valued chunk → aggregation-domain chunk."""
        raise NotImplementedError

    def decode_data(self, chunk: np.ndarray) -> np.ndarray:
        """Server-side: aggregated chunk → real-valued chunk."""
        raise NotImplementedError


class PlainDPHandler(DPHandler):
    """No-op encoding (float aggregation, no privacy) — the null object."""

    def init_params(self, **kwargs) -> None:  # noqa: D102 - nothing to do
        pass

    def encode_data(self, chunk, rng):
        return np.asarray(chunk, dtype=float)

    def decode_data(self, chunk):
        return np.asarray(chunk, dtype=float)


class SkellamDPHandler(DPHandler):
    """The DSkellam mechanism behind the DPHandler interface."""

    def __init__(self):
        self.mechanism: SkellamMechanism | None = None
        self.noise_variance: float = 0.0

    def init_params(
        self,
        dimension: int = 16,
        clip_bound: float = 1.0,
        bits: int = 20,
        scale: float = 64.0,
        noise_variance: float = 0.0,
        **kwargs,
    ) -> None:
        self.mechanism = SkellamMechanism(
            SkellamConfig(
                dimension=dimension, clip_bound=clip_bound, bits=bits,
                scale=scale, **kwargs,
            )
        )
        self.noise_variance = noise_variance

    def _require(self) -> SkellamMechanism:
        if self.mechanism is None:
            raise RuntimeError("call init_params() before encode/decode")
        return self.mechanism

    def encode_data(self, chunk, rng):
        return self._require().encode(chunk, self.noise_variance, rng)

    def decode_data(self, chunk):
        return self._require().decode(chunk)


# ---------------------------------------------------------------------------
# Security primitives
# ---------------------------------------------------------------------------


class AEHandler:
    """Authenticated encryption interface."""

    def encrypt(self, key: bytes, plaintext: bytes) -> bytes:
        raise NotImplementedError

    def decrypt(self, key: bytes, blob: bytes) -> bytes:
        raise NotImplementedError


class DefaultAEHandler(AEHandler):
    """Encrypt-then-MAC over the counter-mode PRG (repro.crypto.ae)."""

    def encrypt(self, key, plaintext):
        return AuthenticatedEncryption(key).encrypt(plaintext)

    def decrypt(self, key, blob):
        return AuthenticatedEncryption(key).decrypt(blob)


class KAHandler:
    """Key agreement interface (KA.gen / KA.agree)."""

    def generate(self):
        raise NotImplementedError

    def agree(self, mine, peer_public) -> bytes:
        raise NotImplementedError


class DefaultKAHandler(KAHandler):
    """Finite-field Diffie–Hellman (repro.crypto.dh)."""

    def __init__(self, group_name: str = "modp2048"):
        self._ka = KeyAgreement(resolve_group(group_name))

    def generate(self) -> DHKeyPair:
        return self._ka.generate()

    def agree(self, mine: DHKeyPair, peer_public: int) -> bytes:
        return self._ka.agree(mine, peer_public)


class PGHandler:
    """Pseudorandom generation interface."""

    def expand(self, seed: bytes, length: int, modulus: int) -> np.ndarray:
        raise NotImplementedError


class DefaultPGHandler(PGHandler):
    """SHA-256 counter-mode PRG (repro.crypto.prg)."""

    def expand(self, seed, length, modulus):
        return expand_uniform(seed, length, modulus)


class SSHandler:
    """Secret sharing interface."""

    def share(self, secret: bytes, threshold: int, ids: list[int]) -> dict[int, Share]:
        raise NotImplementedError

    def reconstruct(self, shares: list[Share], threshold: int) -> bytes:
        raise NotImplementedError


class DefaultSSHandler(SSHandler):
    """Shamir over GF(2**127 − 1) (repro.crypto.shamir)."""

    def __init__(self):
        self._schemes: dict[int, ShamirSecretSharing] = {}

    def _scheme(self, threshold: int) -> ShamirSecretSharing:
        scheme = self._schemes.get(threshold)
        if scheme is None:
            scheme = self._schemes[threshold] = ShamirSecretSharing(threshold)
        return scheme

    def share(self, secret, threshold, ids):
        return self._scheme(threshold).share(secret, ids)

    def reconstruct(self, shares, threshold):
        return self._scheme(threshold).reconstruct(shares)
