"""The developer-facing programming interface (Appendix D, Table 4).

Dordis is "proactively designed to be complementary to existing DPFL
frameworks": developers customize distributed-DP algorithms and
applications by subclassing a small set of base classes:

==================  ======================================================
base class          customization
==================  ======================================================
ProtocolServer      ``set_graph_dict()`` declares the workflow's
                    operations, resources, and dependencies (for pipeline
                    planning); one coordination method per operation.
ProtocolClient      ``set_routine()`` maps each server request to a
                    client-side handler method.
DPHandler           ``init_params`` / ``encode_data`` / ``decode_data``.
AEHandler,          the security primitives: authenticated encryption,
KAHandler,          key agreement, pseudorandom generation, and secret
PGHandler,          sharing — override to swap implementations.
SSHandler
AppServer           ``use_output()`` — what the server does with the
                    aggregate.
AppClient           ``prepare_data()`` / ``use_output()``.
==================  ======================================================

:mod:`repro.api.runtime` executes a (server, clients) pair: it walks the
server's declared workflow in dependency order, dispatching client-side
operations through each client's routine table — the same mechanism the
built-in protocols use, exposed for extension.
"""

from repro.api.handlers import (
    DPHandler,
    PlainDPHandler,
    SkellamDPHandler,
    AEHandler,
    DefaultAEHandler,
    KAHandler,
    DefaultKAHandler,
    PGHandler,
    DefaultPGHandler,
    SSHandler,
    DefaultSSHandler,
)
from repro.api.protocol import ProtocolServer, ProtocolClient, WorkflowError
from repro.api.app import AppServer, AppClient
from repro.api.runtime import AggregationRuntime

__all__ = [
    "DPHandler",
    "PlainDPHandler",
    "SkellamDPHandler",
    "AEHandler",
    "DefaultAEHandler",
    "KAHandler",
    "DefaultKAHandler",
    "PGHandler",
    "DefaultPGHandler",
    "SSHandler",
    "DefaultSSHandler",
    "ProtocolServer",
    "ProtocolClient",
    "WorkflowError",
    "AppServer",
    "AppClient",
    "AggregationRuntime",
]
