"""Round runtime for Appendix-D protocol declarations.

Walks a :class:`ProtocolServer`'s validated workflow in dependency
order.  Operations tagged ``c-comp`` or client-side ``comm`` fan out to
every live client through its routine table; server operations call the
server's coordination method with the collected responses.  The runtime
is transport-agnostic by construction — the same property that lets the
real system swap Socket.IO for this in-process driver.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.api.app import AppClient, AppServer
from repro.api.protocol import ProtocolClient, ProtocolServer, WorkflowError


class AggregationRuntime:
    """Execute one round of a declared protocol over in-process clients."""

    def __init__(
        self,
        server: ProtocolServer,
        clients: Iterable[ProtocolClient],
        app_server: AppServer | None = None,
        app_clients: dict[int, AppClient] | None = None,
    ):
        self.server = server
        self.clients = {c.id: c for c in clients}
        if len(self.clients) == 0:
            raise ValueError("need at least one client")
        self.app_server = app_server
        self.app_clients = dict(app_clients or {})

    def run_round(self, round_index: int = 0):
        """Run every declared operation once; returns the final result.

        Protocol contract: a *client operation* (resource ``c-comp``) is
        dispatched to every client as a request named after the
        operation, with the previous operation's result as payload; a
        *server operation* receives the dict of client responses (or the
        previous server result).  The last operation's return value is
        the round result, handed to the AppServer/AppClients.
        """
        graph = self.server.set_graph_dict()
        inputs = None
        if self.app_clients:
            inputs = {
                cid: app.prepare_data(round_index)
                for cid, app in self.app_clients.items()
            }
        carry = inputs
        for op in self.server.workflow_order():
            resource = graph[op]["resource"]
            if resource == "c-comp":
                responses = {}
                for cid, client in self.clients.items():
                    payload = carry[cid] if isinstance(carry, dict) and cid in carry else carry
                    responses[cid] = client.handle(op, payload)
                carry = responses
            else:
                method = self.server.operation_method(op)
                carry = method(carry)
        if self.app_server is not None:
            self.app_server.use_output(carry)
        for cid, app in self.app_clients.items():
            app.use_output(carry)
        return carry
