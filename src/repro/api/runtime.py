"""Round runtime for Appendix-D protocol declarations.

``AggregationRuntime`` is now a thin synchronous wrapper over the
unified :class:`repro.engine.RoundEngine`: the engine walks the
:class:`ProtocolServer`'s validated workflow in dependency order,
fanning operations tagged ``c-comp`` or client-side ``comm`` out to
every live client **concurrently** through the configured transport
(in-process by default — the same property that lets the real system
swap Socket.IO for direct dispatch), while server operations call the
server's coordination method with the collected responses.
"""

from __future__ import annotations

from typing import Iterable

from repro.api.app import AppClient, AppServer
from repro.api.protocol import ProtocolClient, ProtocolServer
from repro.engine import RoundEngine


class AggregationRuntime:
    """Execute one round of a declared protocol over in-process clients."""

    def __init__(
        self,
        server: ProtocolServer,
        clients: Iterable[ProtocolClient],
        app_server: AppServer | None = None,
        app_clients: dict[int, AppClient] | None = None,
        engine: RoundEngine | None = None,
    ):
        self.server = server
        self.clients = {c.id: c for c in clients}
        if len(self.clients) == 0:
            raise ValueError("need at least one client")
        self.app_server = app_server
        self.app_clients = dict(app_clients or {})
        self.engine = engine or RoundEngine()

    def run_round(self, round_index: int = 0):
        """Run every declared operation once; returns the final result.

        Protocol contract: a *client operation* (resource ``c-comp`` or
        ``comm``) is dispatched to every client as a request named after
        the operation, with the previous operation's result as payload
        (dicts keyed by client id are unpacked per client); a *server
        operation* receives the dict of client responses (or the previous
        server result).  The last operation's return value is the round
        result, handed to the AppServer/AppClients.
        """
        return self.engine.run_round_sync(
            self.server,
            self.clients,
            round_index=round_index,
            app_server=self.app_server,
            app_clients=self.app_clients,
        )
