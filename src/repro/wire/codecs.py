"""Typed payload codecs: every protocol payload as canonical bytes.

This module generalizes the per-message helpers of
:mod:`repro.secagg.wire` / :mod:`repro.secagg.codec` into one recursive
*value encoding* plus a registry of typed codecs, so that **any**
payload a protocol operation sends — masked ``np.ndarray`` chunks,
:class:`~repro.crypto.shamir.Share` bundles, DH public keys (big ints),
signatures, seed commitments, roster dicts, abort notices — has exactly
one byte representation and a strict, total decoder.

Format
------
A payload is ``PAYLOAD_VERSION(1) ∥ value``, where a *value* is a tag
byte followed by a tag-specific body.  Containers are canonical (dict
and set entries sorted by their encoded key/element bytes) so equal
payloads encode to equal bytes.  All length/count prefixes are 4-byte
big-endian; ints are length-prefixed signed big-endian (arbitrary
precision — DH group elements fit); ndarrays carry dtype, shape, and
the raw C-order buffer.

Strictness: :func:`decode_payload` consumes the entire buffer or raises
:class:`CodecError` — truncation, trailing bytes, unknown tags, wrong
version bytes, duplicate dict keys/set elements all fail loudly.
Decoding never executes code (no pickle) and never blocks.

Registry
--------
:func:`register_codec` binds a Python type to a tag in ``0x20..0xFF``
with its own body encoder/decoder.  The protocol message types ship
registered below; :class:`repro.engine.Targeted` registers itself when
the engine is imported (the engine depends on this module, not the
reverse).  Transports treat the registry as *the* wire contract — a
future websocket/gRPC backend reuses these codecs unchanged.
"""

from __future__ import annotations

import struct
from typing import Any, Callable

import numpy as np

from repro.wire.frame import FRAME_OVERHEAD, fill_frame_header

PAYLOAD_VERSION = 1

#: Maximum ndarray rank the decoder accepts (protocol vectors are 1-D;
#: a hostile 2**31-dimension header must not be believed).
_MAX_NDIM = 32

#: Maximum container nesting the decoder accepts.  Protocol payloads
#: nest a handful of levels; a hostile few-hundred-KB buffer of nested
#: list headers must raise :class:`CodecError`, not ``RecursionError``.
_MAX_DEPTH = 64


class CodecError(ValueError):
    """Unencodable payload or malformed encoding."""


_TAG_NONE = 0x00
_TAG_FALSE = 0x01
_TAG_TRUE = 0x02
_TAG_INT = 0x03
_TAG_FLOAT = 0x04
_TAG_STR = 0x05
_TAG_BYTES = 0x06
_TAG_LIST = 0x07
_TAG_TUPLE = 0x08
_TAG_SET = 0x09
_TAG_FROZENSET = 0x0A
_TAG_DICT = 0x0B
_TAG_NDARRAY = 0x0C

#: First tag available to registered (typed) codecs.
REGISTERED_TAG_BASE = 0x20

_by_type: dict[type, tuple[int, Callable[[Any], bytes]]] = {}
_by_tag: dict[int, tuple[type, Callable[[bytes], Any]]] = {}
_size_by_type: dict[type, Callable[[Any], int]] = {}


def register_codec(
    cls: type,
    tag: int,
    encode_body: Callable[[Any], bytes],
    decode_body: Callable[[bytes], Any],
    body_nbytes: Callable[[Any], int] | None = None,
) -> None:
    """Bind ``cls`` to ``tag`` with a body encoder/decoder pair.

    Tags below :data:`REGISTERED_TAG_BASE` belong to the structural
    value encoding; duplicate tags or types are programming errors and
    refused.  ``body_nbytes`` optionally computes ``len(encode_body(x))``
    without materializing the bytes — worth providing for bulk-carrying
    types (the size-only path otherwise falls back to encoding).
    """
    if not REGISTERED_TAG_BASE <= tag <= 0xFF:
        raise ValueError(
            f"codec tag {tag:#x} outside the registered range "
            f"[{REGISTERED_TAG_BASE:#x}, 0xff]"
        )
    if tag in _by_tag:
        raise ValueError(
            f"tag {tag:#x} already registered for {_by_tag[tag][0].__name__}"
        )
    if cls in _by_type:
        raise ValueError(f"type {cls.__name__} already has a codec")
    _by_type[cls] = (tag, encode_body)
    _by_tag[tag] = (cls, decode_body)
    if body_nbytes is not None:
        _size_by_type[cls] = body_nbytes


def registered_codecs() -> dict[type, int]:
    """``{type: tag}`` of every registered typed codec (for tests)."""
    _ensure_defaults()
    return {cls: tag for cls, (tag, _) in _by_type.items()}


_defaults_loaded = False


def _ensure_defaults() -> None:
    """Register the protocol message codecs on first use.

    Deferred because the message-type modules live under packages
    (``repro.secagg``) whose ``__init__`` imports the engine — which
    imports this module; a load-time import would cycle.
    """
    global _defaults_loaded
    if _defaults_loaded:
        return
    _defaults_loaded = True
    from repro.crypto.shamir import Share
    from repro.crypto.signature import SchnorrSignature
    from repro.secagg import codec as secagg_codec
    from repro.secagg import wire as secagg_wire
    from repro.secagg.types import AdvertiseKeysMsg, MaskedInputMsg, UnmaskingMsg

    register_codec(
        Share, 0x20, secagg_wire.encode_share, secagg_wire.decode_share
    )
    register_codec(
        SchnorrSignature,
        0x21,
        lambda sig: sig.to_bytes(),
        SchnorrSignature.from_bytes,
    )
    register_codec(
        AdvertiseKeysMsg,
        0x22,
        secagg_codec.encode_advertise,
        secagg_codec.decode_advertise,
    )
    register_codec(
        MaskedInputMsg,
        0x23,
        secagg_codec.encode_masked_input,
        secagg_codec.decode_masked_input,
        # encode_fields([sender(8), vector(8·d)]): two 4-byte length
        # prefixes — O(1), the vector buffer is never copied to size it.
        body_nbytes=lambda m: 4 + 8 + 4 + 8 * int(m.masked_vector.size),
    )
    register_codec(
        UnmaskingMsg,
        0x24,
        secagg_codec.encode_unmasking,
        secagg_codec.decode_unmasking,
    )


# ---------------------------------------------------------------------------
# Value encoding
# ---------------------------------------------------------------------------


def _lp(body: bytes) -> bytes:
    """4-byte big-endian length prefix."""
    return len(body).to_bytes(4, "big") + body


def _encode_int(value: int) -> bytes:
    n = max(1, (value.bit_length() + 8) // 8)
    return value.to_bytes(n, "big", signed=True)


def encode_value(obj: Any) -> bytes:
    """Tagged canonical encoding of one payload value.

    Byte-identical to :func:`encode_value_reference` (pinned by test);
    built through the single-buffer :func:`encode_value_into` path.
    """
    out = bytearray()
    encode_value_into(obj, out)
    return bytes(out)


def encode_value_into(obj: Any, out: bytearray) -> None:
    """Append the tagged canonical encoding of ``obj`` to ``out``.

    The zero-copy write path: one buffer grows in place, and a
    contiguous ndarray's data lands in it through a single
    ``memoryview`` copy — never a ``tobytes()`` round trip, never a
    per-node chain of intermediate ``bytes`` concatenations.  Container
    canonicalization (sets/dicts sort by encoded bytes) still encodes
    each element separately, as the format requires.
    """
    _ensure_defaults()
    if obj is None:
        out.append(_TAG_NONE)
        return
    if isinstance(obj, (bool, np.bool_)):
        out.append(_TAG_TRUE if obj else _TAG_FALSE)
        return
    if isinstance(obj, (int, np.integer)):
        body = _encode_int(int(obj))
        out.append(_TAG_INT)
        out += len(body).to_bytes(4, "big")
        out += body
        return
    if isinstance(obj, (float, np.floating)):
        out.append(_TAG_FLOAT)
        out += struct.pack(">d", float(obj))
        return
    if isinstance(obj, str):
        body = obj.encode("utf-8")
        out.append(_TAG_STR)
        out += len(body).to_bytes(4, "big")
        out += body
        return
    if isinstance(obj, (bytes, bytearray, memoryview)):
        if isinstance(obj, memoryview) and not obj.c_contiguous:
            obj = bytes(obj)
        out.append(_TAG_BYTES)
        out += len(obj).to_bytes(4, "big")
        out += obj
        return
    if isinstance(obj, np.ndarray):
        out.append(_TAG_NDARRAY)
        _encode_ndarray_into(obj, out)
        return
    if isinstance(obj, (list, tuple)):
        out.append(_TAG_LIST if isinstance(obj, list) else _TAG_TUPLE)
        out += len(obj).to_bytes(4, "big")
        for item in obj:
            encode_value_into(item, out)
        return
    if isinstance(obj, (set, frozenset)):
        encoded = sorted(encode_value(item) for item in obj)
        out.append(_TAG_SET if isinstance(obj, set) else _TAG_FROZENSET)
        out += len(encoded).to_bytes(4, "big")
        for item in encoded:
            out += item
        return
    if isinstance(obj, dict):
        pairs = sorted(
            (encode_value(k), encode_value(v)) for k, v in obj.items()
        )
        out.append(_TAG_DICT)
        out += len(pairs).to_bytes(4, "big")
        for k, v in pairs:
            out += k
            out += v
        return
    for cls in type(obj).__mro__:
        entry = _by_type.get(cls)
        if entry is not None:
            tag, encode_body = entry
            body = encode_body(obj)
            out.append(tag)
            out += len(body).to_bytes(4, "big")
            out += body
            return
    raise CodecError(
        f"no codec registered for payload type {type(obj).__name__}"
    )


def encode_value_reference(obj: Any) -> bytes:
    """Retained concatenating encoder: the executable byte-format spec.

    Every fast path (:func:`encode_value_into`, :func:`encode_payload`,
    :func:`encode_payload_frame`) is parity-pinned against this
    implementation byte for byte.
    """
    _ensure_defaults()
    if obj is None:
        return bytes((_TAG_NONE,))
    if isinstance(obj, (bool, np.bool_)):
        return bytes((_TAG_TRUE,)) if obj else bytes((_TAG_FALSE,))
    if isinstance(obj, (int, np.integer)):
        return bytes((_TAG_INT,)) + _lp(_encode_int(int(obj)))
    if isinstance(obj, (float, np.floating)):
        return bytes((_TAG_FLOAT,)) + struct.pack(">d", float(obj))
    if isinstance(obj, str):
        return bytes((_TAG_STR,)) + _lp(obj.encode("utf-8"))
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return bytes((_TAG_BYTES,)) + _lp(bytes(obj))
    if isinstance(obj, np.ndarray):
        return bytes((_TAG_NDARRAY,)) + _encode_ndarray(obj)
    if isinstance(obj, (list, tuple)):
        tag = _TAG_LIST if isinstance(obj, list) else _TAG_TUPLE
        out = bytearray((tag,))
        out += len(obj).to_bytes(4, "big")
        for item in obj:
            out += encode_value_reference(item)
        return bytes(out)
    if isinstance(obj, (set, frozenset)):
        tag = _TAG_SET if isinstance(obj, set) else _TAG_FROZENSET
        encoded = sorted(encode_value_reference(item) for item in obj)
        out = bytearray((tag,))
        out += len(encoded).to_bytes(4, "big")
        for item in encoded:
            out += item
        return bytes(out)
    if isinstance(obj, dict):
        pairs = sorted(
            (encode_value_reference(k), encode_value_reference(v))
            for k, v in obj.items()
        )
        out = bytearray((_TAG_DICT,))
        out += len(pairs).to_bytes(4, "big")
        for k, v in pairs:
            out += k
            out += v
        return bytes(out)
    for cls in type(obj).__mro__:
        entry = _by_type.get(cls)
        if entry is not None:
            tag, encode_body = entry
            return bytes((tag,)) + _lp(encode_body(obj))
    raise CodecError(
        f"no codec registered for payload type {type(obj).__name__}"
    )


def _encode_ndarray_into(arr: np.ndarray, out: bytearray) -> None:
    """Append an ndarray body: dtype, shape, then the raw buffer via a
    single ``memoryview`` copy into ``out`` (no ``tobytes()`` copy)."""
    if arr.dtype.hasobject:
        raise CodecError("object-dtype ndarrays have no wire encoding")
    a = np.ascontiguousarray(arr)
    dtype_str = a.dtype.str.encode("ascii")
    out += len(dtype_str).to_bytes(4, "big")
    out += dtype_str
    out += len(a.shape).to_bytes(4, "big")
    for dim in a.shape:
        out += int(dim).to_bytes(4, "big")
    out += a.nbytes.to_bytes(4, "big")
    out += a.data


def _encode_ndarray(arr: np.ndarray) -> bytes:
    out = bytearray()
    _encode_ndarray_into(arr, out)
    return bytes(out)


def _read(data: bytes, offset: int, n: int) -> tuple[bytes, int]:
    end = offset + n
    if end > len(data):
        raise CodecError("truncated value")
    return data[offset:end], end


def _read_lp(data: bytes, offset: int) -> tuple[bytes, int]:
    raw, offset = _read(data, offset, 4)
    n = int.from_bytes(raw, "big")
    return _read(data, offset, n)


def _read_count(data: bytes, offset: int) -> tuple[int, int]:
    raw, offset = _read(data, offset, 4)
    return int.from_bytes(raw, "big"), offset


def decode_value(
    data: bytes, offset: int = 0, _depth: int = 0
) -> tuple[Any, int]:
    """Inverse of :func:`encode_value`; returns (value, next offset)."""
    _ensure_defaults()
    if _depth > _MAX_DEPTH:
        raise CodecError(f"payload nesting exceeds {_MAX_DEPTH} levels")
    tag_raw, offset = _read(data, offset, 1)
    tag = tag_raw[0]
    if tag == _TAG_NONE:
        return None, offset
    if tag == _TAG_FALSE:
        return False, offset
    if tag == _TAG_TRUE:
        return True, offset
    if tag == _TAG_INT:
        body, offset = _read_lp(data, offset)
        if not body:
            raise CodecError("empty int body")
        return int.from_bytes(body, "big", signed=True), offset
    if tag == _TAG_FLOAT:
        body, offset = _read(data, offset, 8)
        return struct.unpack(">d", body)[0], offset
    if tag == _TAG_STR:
        body, offset = _read_lp(data, offset)
        try:
            return body.decode("utf-8"), offset
        except UnicodeDecodeError as exc:
            raise CodecError(f"invalid utf-8 in str value: {exc}") from exc
    if tag == _TAG_BYTES:
        body, offset = _read_lp(data, offset)
        return body, offset
    if tag == _TAG_NDARRAY:
        return _decode_ndarray(data, offset)
    if tag in (_TAG_LIST, _TAG_TUPLE):
        count, offset = _read_count(data, offset)
        items = []
        for _ in range(count):
            item, offset = decode_value(data, offset, _depth + 1)
            items.append(item)
        return (items if tag == _TAG_LIST else tuple(items)), offset
    if tag in (_TAG_SET, _TAG_FROZENSET):
        count, offset = _read_count(data, offset)
        items = []
        for _ in range(count):
            item, offset = decode_value(data, offset, _depth + 1)
            items.append(item)
        try:
            out = set(items)
        except TypeError as exc:
            raise CodecError(f"unhashable set element: {exc}") from exc
        if len(out) != count:
            raise CodecError("duplicate elements in set encoding")
        return (out if tag == _TAG_SET else frozenset(out)), offset
    if tag == _TAG_DICT:
        count, offset = _read_count(data, offset)
        out_dict: dict = {}
        for _ in range(count):
            key, offset = decode_value(data, offset, _depth + 1)
            value, offset = decode_value(data, offset, _depth + 1)
            try:
                out_dict[key] = value
            except TypeError as exc:
                raise CodecError(f"unhashable dict key: {exc}") from exc
        if len(out_dict) != count:
            raise CodecError("duplicate keys in dict encoding")
        return out_dict, offset
    entry = _by_tag.get(tag)
    if entry is not None:
        cls, decode_body = entry
        body, offset = _read_lp(data, offset)
        try:
            return decode_body(body), offset
        except CodecError:
            raise
        except ValueError as exc:
            raise CodecError(f"malformed {cls.__name__} body: {exc}") from exc
    raise CodecError(f"unknown value tag {tag:#x}")


def _decode_ndarray(data: bytes, offset: int) -> tuple[np.ndarray, int]:
    dtype_raw, offset = _read_lp(data, offset)
    try:
        dtype = np.dtype(dtype_raw.decode("ascii"))
    except (UnicodeDecodeError, TypeError, ValueError) as exc:
        raise CodecError(f"invalid ndarray dtype {dtype_raw!r}") from exc
    if dtype.hasobject:
        raise CodecError("object-dtype ndarrays have no wire encoding")
    ndim, offset = _read_count(data, offset)
    if ndim > _MAX_NDIM:
        raise CodecError(f"ndarray rank {ndim} exceeds {_MAX_NDIM}")
    shape = []
    for _ in range(ndim):
        dim, offset = _read_count(data, offset)
        shape.append(dim)
    raw, offset = _read_lp(data, offset)
    count = 1
    for dim in shape:
        count *= dim
    expected = count * dtype.itemsize
    if len(raw) != expected:
        raise CodecError(
            f"ndarray buffer of {len(raw)} bytes does not match "
            f"shape {tuple(shape)} dtype {dtype.str}"
        )
    arr = np.frombuffer(raw, dtype=dtype)
    return arr.reshape(shape).copy(), offset


# ---------------------------------------------------------------------------
# Payload envelope
# ---------------------------------------------------------------------------


def encode_payload(obj: Any) -> bytes:
    """Versioned canonical bytes for one payload value."""
    out = bytearray((PAYLOAD_VERSION,))
    encode_value_into(obj, out)
    return bytes(out)


def encode_payload_reference(obj: Any) -> bytes:
    """Retained concatenating twin of :func:`encode_payload`."""
    return bytes((PAYLOAD_VERSION,)) + encode_value_reference(obj)


def encode_payload_into(obj: Any, out: bytearray) -> None:
    """Append the versioned payload envelope for ``obj`` to ``out``."""
    out.append(PAYLOAD_VERSION)
    encode_value_into(obj, out)


def encode_payload_frame(kind: int, obj: Any) -> bytearray:
    """One complete wire frame carrying ``encode_payload(obj)``.

    The transports' zero-copy write path: header, payload version, and
    the value encoding are emitted into a single buffer (header filled
    in after the body length is known), so framing a payload never
    re-copies its body.  Byte-identical to
    ``encode_frame(kind, encode_payload(obj))`` — pinned by test — and
    suitable for ``StreamWriter.write`` as-is.
    """
    buf = bytearray(FRAME_OVERHEAD)
    encode_payload_into(obj, buf)
    fill_frame_header(buf, kind)
    return buf


def decode_payload(data: bytes) -> Any:
    """Strict inverse of :func:`encode_payload` (whole-buffer parse)."""
    if not data:
        raise CodecError("empty payload")
    if data[0] != PAYLOAD_VERSION:
        raise CodecError(
            f"unsupported payload version {data[0]} (speaking {PAYLOAD_VERSION})"
        )
    value, offset = decode_value(data, 1)
    if offset != len(data):
        raise CodecError(
            f"trailing garbage: {len(data) - offset} bytes after payload"
        )
    return value


def encoded_value_nbytes(obj: Any) -> int:
    """``len(encode_value(obj))`` computed arithmetically.

    Mirrors :func:`encode_value` case for case without materializing
    the bytes — an ndarray contributes ``arr.nbytes`` in O(1) instead
    of a full buffer copy, so sizing a simulated exchange never scales
    with model size.  A property test pins the equality with the real
    encoder.
    """
    _ensure_defaults()
    if obj is None or isinstance(obj, (bool, np.bool_)):
        return 1
    if isinstance(obj, (int, np.integer)):
        value = int(obj)
        return 1 + 4 + max(1, (value.bit_length() + 8) // 8)
    if isinstance(obj, (float, np.floating)):
        return 1 + 8
    if isinstance(obj, str):
        return 1 + 4 + len(obj.encode("utf-8"))
    if isinstance(obj, memoryview):
        return 1 + 4 + obj.nbytes
    if isinstance(obj, (bytes, bytearray)):
        return 1 + 4 + len(obj)
    if isinstance(obj, np.ndarray):
        if obj.dtype.hasobject:
            raise CodecError("object-dtype ndarrays have no wire encoding")
        return (
            1
            + 4 + len(obj.dtype.str)
            + 4 + 4 * obj.ndim
            + 4 + obj.nbytes
        )
    if isinstance(obj, (list, tuple, set, frozenset)):
        return 1 + 4 + sum(encoded_value_nbytes(item) for item in obj)
    if isinstance(obj, dict):
        return 1 + 4 + sum(
            encoded_value_nbytes(k) + encoded_value_nbytes(v)
            for k, v in obj.items()
        )
    for cls in type(obj).__mro__:
        entry = _by_type.get(cls)
        if entry is not None:
            size_fn = _size_by_type.get(cls)
            body = size_fn(obj) if size_fn else len(entry[1](obj))
            return 1 + 4 + body
    raise CodecError(
        f"no codec registered for payload type {type(obj).__name__}"
    )


def encoded_nbytes(payload: Any) -> int:
    """Framed wire size of ``payload``: header + version + encoded body.

    This is the *measured* size transports and the latency model use —
    computed without serializing (see :func:`encoded_value_nbytes`);
    raises :class:`CodecError` for payloads no codec covers (callers
    that need a guess fall back to
    :func:`repro.engine.transport.payload_nbytes`).
    """
    return FRAME_OVERHEAD + 1 + encoded_value_nbytes(payload)


# ---------------------------------------------------------------------------
# Error (abort-notice) payloads
# ---------------------------------------------------------------------------

_exception_types: dict[str, type] = {}


def _exception_registry() -> dict[str, type]:
    """Exception types an ERROR frame reconstructs exactly.

    Anything else becomes a RuntimeError carrying the original type
    name — a remote peer must not be able to summon arbitrary exception
    classes.  Built lazily: importing ``repro.api`` at module load
    would cycle back through the engine.
    """
    if not _exception_types:
        from repro.api.protocol import WorkflowError
        from repro.secagg.types import ProtocolAbort

        for cls in (
            ProtocolAbort,
            WorkflowError,
            ValueError,
            TypeError,
            KeyError,
            RuntimeError,
        ):
            _exception_types[cls.__name__] = cls
    return _exception_types


def encode_error(exc: BaseException) -> bytes:
    """The body of an ERROR frame: ``(type name, message)``."""
    return encode_payload((type(exc).__name__, str(exc)))


def decode_error(body: bytes) -> BaseException:
    """Rebuild the client-side exception an ERROR frame reports."""
    decoded = decode_payload(body)
    if (
        not isinstance(decoded, tuple)
        or len(decoded) != 2
        or not all(isinstance(part, str) for part in decoded)
    ):
        raise CodecError("malformed error payload")
    name, message = decoded
    cls = _exception_registry().get(name)
    if cls is None:
        return RuntimeError(f"{name}: {message}")
    return cls(message)


#: Tag reserved for :class:`repro.engine.Targeted`, registered by
#: :mod:`repro.engine.core` at import (avoids a wire → engine import).
TARGETED_TAG = 0x25


def register_targeted(cls: type) -> None:
    """Register the engine's ``Targeted`` wrapper (called by the engine)."""

    def _encode(t) -> bytes:
        return encode_value(dict(t.payloads))

    def _decode(body: bytes):
        payloads, offset = decode_value(body)
        if offset != len(body) or not isinstance(payloads, dict):
            raise CodecError("malformed Targeted body")
        return cls(payloads)

    register_codec(cls, TARGETED_TAG, _encode, _decode)
