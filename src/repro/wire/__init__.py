"""The wire layer: typed payload codecs and framed binary messages.

Everything a Dordis transport puts on a real link goes through this
package: :mod:`repro.wire.codecs` gives every protocol payload one
canonical, versioned byte encoding with a strict total decoder, and
:mod:`repro.wire.frame` wraps encoded payloads in self-delimiting
length-prefixed frames with a handshake and error kind.  The codec
registry is the contract any transport backend (in-process, asyncio
TCP, a future websocket/gRPC bridge) plugs into — transports move
opaque frames; only the codec layer understands their contents.
"""

from repro.wire.codecs import (
    CodecError,
    PAYLOAD_VERSION,
    decode_error,
    decode_payload,
    decode_value,
    encode_error,
    encode_payload,
    encode_value,
    encoded_nbytes,
    encoded_value_nbytes,
    register_codec,
    registered_codecs,
)
from repro.wire.frame import (
    FRAME_OVERHEAD,
    KIND_ERROR,
    KIND_HELLO,
    KIND_REQUEST,
    KIND_RESPONSE,
    KIND_WELCOME,
    MAGIC,
    MAX_AUTH_TOKEN,
    MAX_BODY,
    WIRE_VERSION,
    FrameEOF,
    Hello,
    decode_frame,
    decode_hello,
    encode_frame,
    encode_hello,
    read_frame,
    write_frame,
)

__all__ = [
    "CodecError",
    "PAYLOAD_VERSION",
    "decode_error",
    "decode_payload",
    "decode_value",
    "encode_error",
    "encode_payload",
    "encode_value",
    "encoded_nbytes",
    "encoded_value_nbytes",
    "register_codec",
    "registered_codecs",
    "FRAME_OVERHEAD",
    "KIND_ERROR",
    "KIND_HELLO",
    "KIND_REQUEST",
    "KIND_RESPONSE",
    "KIND_WELCOME",
    "MAGIC",
    "MAX_AUTH_TOKEN",
    "MAX_BODY",
    "WIRE_VERSION",
    "FrameEOF",
    "Hello",
    "decode_frame",
    "decode_hello",
    "encode_frame",
    "encode_hello",
    "read_frame",
    "write_frame",
]
