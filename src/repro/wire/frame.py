"""Length-prefixed binary frames for wire-native transports.

Every message a Dordis transport puts on a real link is one *frame*:

``MAGIC(2) ∥ VERSION(1) ∥ KIND(1) ∥ LENGTH(4, big-endian) ∥ BODY``

The fixed 8-byte header makes framing self-delimiting over a byte
stream, the magic/version bytes make cross-protocol or cross-version
traffic fail to parse instead of misparse, and the bounded length
prefix means a malicious or corrupted header can never make a reader
allocate unbounded memory or wait for data that will never come.

Frame *kinds* partition the conversation: a connection opens with a
``HELLO``/``WELCOME`` handshake (protocol version + client id), then
carries ``REQUEST``/``RESPONSE`` pairs; a client-side exception crosses
back as an ``ERROR`` frame (see :func:`repro.wire.codecs.encode_error`).

The ``HELLO`` body has an explicit fixed schema (:class:`Hello`,
:func:`encode_hello`/:func:`decode_hello`) rather than riding the
generic codecs: the listener must be able to parse *and reject* a
handshake from a client speaking a different wire version, so the
handshake layout can never itself be version-dependent.

All decode paths raise :class:`ValueError` on malformed input — never
a partial parse, never a hang.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass

MAGIC = b"DW"
WIRE_VERSION = 1

#: Fixed header size: magic(2) + version(1) + kind(1) + length(4).
FRAME_OVERHEAD = 8

#: Upper bound on one frame body (256 MiB).  A length prefix above this
#: is rejected outright — the defense against hostile 4 GiB prefixes.
MAX_BODY = 1 << 28

KIND_HELLO = 0x01
KIND_WELCOME = 0x02
KIND_REQUEST = 0x10
KIND_RESPONSE = 0x11
KIND_ERROR = 0x12

_KNOWN_KINDS = frozenset(
    {KIND_HELLO, KIND_WELCOME, KIND_REQUEST, KIND_RESPONSE, KIND_ERROR}
)


class FrameEOF(Exception):
    """The peer closed the stream cleanly between frames (not an error)."""


def encode_frame(kind: int, body: bytes) -> bytes:
    """One wire frame; ``len()`` of the result is the framed byte count."""
    if kind not in _KNOWN_KINDS:
        raise ValueError(f"unknown frame kind {kind:#x}")
    if len(body) > MAX_BODY:
        raise ValueError(
            f"frame body of {len(body)} bytes exceeds MAX_BODY={MAX_BODY}"
        )
    return (
        MAGIC
        + bytes((WIRE_VERSION, kind))
        + len(body).to_bytes(4, "big")
        + body
    )


def fill_frame_header(buf: bytearray, kind: int) -> None:
    """Stamp the 8-byte header into a preallocated single-buffer frame.

    ``buf`` must start with :data:`FRAME_OVERHEAD` reserved bytes
    followed by the already-written body — the zero-copy counterpart of
    :func:`encode_frame` (see
    :func:`repro.wire.codecs.encode_payload_frame`), validating the
    same kind/size invariants.
    """
    if kind not in _KNOWN_KINDS:
        raise ValueError(f"unknown frame kind {kind:#x}")
    length = len(buf) - FRAME_OVERHEAD
    if length < 0:
        raise ValueError("buffer smaller than the frame header")
    if length > MAX_BODY:
        raise ValueError(
            f"frame body of {length} bytes exceeds MAX_BODY={MAX_BODY}"
        )
    buf[:2] = MAGIC
    buf[2] = WIRE_VERSION
    buf[3] = kind
    buf[4:8] = length.to_bytes(4, "big")


def _check_header(header: bytes) -> tuple[int, int]:
    """Validate an 8-byte frame header; returns (kind, body length)."""
    if header[:2] != MAGIC:
        raise ValueError(f"bad frame magic {header[:2]!r} (expected {MAGIC!r})")
    if header[2] != WIRE_VERSION:
        raise ValueError(
            f"unsupported frame version {header[2]} (speaking {WIRE_VERSION})"
        )
    kind = header[3]
    if kind not in _KNOWN_KINDS:
        raise ValueError(f"unknown frame kind {kind:#x}")
    length = int.from_bytes(header[4:8], "big")
    if length > MAX_BODY:
        raise ValueError(
            f"oversized frame: length prefix {length} exceeds MAX_BODY={MAX_BODY}"
        )
    return kind, length


def decode_frame(data: bytes) -> tuple[int, bytes]:
    """Parse exactly one frame; raises ``ValueError`` on any deviation.

    Strict: truncated headers, truncated bodies, and trailing garbage
    all fail — a buffer either is one whole frame or it does not parse.
    """
    if len(data) < FRAME_OVERHEAD:
        raise ValueError("truncated frame header")
    kind, length = _check_header(data[:FRAME_OVERHEAD])
    body = data[FRAME_OVERHEAD:]
    if len(body) < length:
        raise ValueError("truncated frame body")
    if len(body) > length:
        raise ValueError("trailing garbage after frame")
    return kind, bytes(body)


async def read_frame(reader: asyncio.StreamReader) -> tuple[int, bytes, int]:
    """Read one frame from a stream: ``(kind, body, framed byte count)``.

    Raises :class:`FrameEOF` on a clean close *between* frames and
    ``ValueError`` on a close mid-frame (the peer died mid-send).
    """
    try:
        header = await reader.readexactly(FRAME_OVERHEAD)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            raise FrameEOF from exc
        raise ValueError("connection closed inside a frame header") from exc
    kind, length = _check_header(header)
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ValueError("connection closed inside a frame body") from exc
    return kind, body, FRAME_OVERHEAD + length


async def write_frame(
    writer: asyncio.StreamWriter, kind: int, body: bytes
) -> int:
    """Write one frame and drain; returns the framed byte count."""
    frame = encode_frame(kind, body)
    writer.write(frame)
    await writer.drain()
    return len(frame)


#: Upper bound on a HELLO auth token (fits the 2-byte length field).
MAX_AUTH_TOKEN = (1 << 16) - 1

#: Fixed part of the HELLO body: version(1) + client id(8) + token len(2).
HELLO_OVERHEAD = 11


@dataclass(frozen=True)
class Hello:
    """What a dialing client announces before any protocol bytes flow.

    ``wire_version`` is carried explicitly (not just in the frame
    header) so the listener can *name* a version skew in its rejection;
    ``auth_token`` is an optional shared secret the listener may demand
    of dialing clients (empty means unauthenticated).
    """

    client_id: int
    wire_version: int = WIRE_VERSION
    auth_token: bytes = b""


def encode_hello(hello: Hello) -> bytes:
    """Fixed-layout HELLO body:
    ``version(1) ∥ client id(8, big-endian) ∥ token len(2) ∥ token``."""
    if not 0 <= hello.wire_version <= 0xFF:
        raise ValueError(f"wire version {hello.wire_version} must fit one byte")
    if not 0 <= hello.client_id < 1 << 64:
        raise ValueError(f"client id {hello.client_id} must fit eight bytes")
    if len(hello.auth_token) > MAX_AUTH_TOKEN:
        raise ValueError(
            f"auth token of {len(hello.auth_token)} bytes exceeds "
            f"MAX_AUTH_TOKEN={MAX_AUTH_TOKEN}"
        )
    return (
        bytes((hello.wire_version,))
        + hello.client_id.to_bytes(8, "big")
        + len(hello.auth_token).to_bytes(2, "big")
        + bytes(hello.auth_token)
    )


def decode_hello(body: bytes) -> Hello:
    """Strict inverse of :func:`encode_hello`.

    Truncation, token-length mismatch, and trailing garbage all raise
    ``ValueError``.  A *foreign* ``wire_version`` parses fine — version
    acceptance is the listener's decision, not the codec's, so the
    rejection can carry both version numbers.
    """
    if len(body) < HELLO_OVERHEAD:
        raise ValueError("truncated HELLO body")
    token_len = int.from_bytes(body[9:11], "big")
    token = body[HELLO_OVERHEAD:]
    if len(token) < token_len:
        raise ValueError("truncated HELLO auth token")
    if len(token) > token_len:
        raise ValueError("trailing garbage after HELLO body")
    return Hello(
        client_id=int.from_bytes(body[1:9], "big"),
        wire_version=body[0],
        auth_token=bytes(token),
    )
