"""RFC 6455 WebSocket wire layer — pure stdlib, no third-party deps.

The transport stack's fourth carrier speaks standards WebSocket so the
same :mod:`repro.wire` frames that ride raw framed TCP can traverse
HTTP-aware infrastructure (proxies, load balancers) the way the
original system's Socket.IO substrate does.  This module is the
protocol layer only — no sockets of its own:

- **Handshake**: the HTTP/1.1 Upgrade exchange (RFC 6455 §4).
  :func:`handshake_request` / :func:`handshake_response` build the two
  messages; :func:`parse_handshake_request` /
  :func:`parse_handshake_response` validate them strictly, including
  the ``Sec-WebSocket-Key`` → ``Sec-WebSocket-Accept`` SHA-1
  derivation (:func:`accept_for`).
- **Frames** (§5): :func:`encode_ws_frame` / :func:`decode_ws_frame` /
  :func:`read_ws_frame` speak the binary framing — FIN/opcode byte,
  7/16/64-bit payload lengths, 4-byte client masking key, control
  frames (close/ping/pong), continuation fragments.  Length encodings
  must be minimal and are bounded by :data:`MAX_MESSAGE`, so a hostile
  64-bit prefix can never force an allocation or an eternal read.
- **Masking discipline** (§5.1): a reader declares which side it is —
  frames from the WebSocket *client* must be masked, frames from the
  *server* must not be — and any frame violating that fails to parse.

All decode paths raise :class:`ValueError` on malformed input — never
a partial parse, never a hang — mirroring :mod:`repro.wire.frame`.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import os

#: GUID every handshake appends to the client key before SHA-1 (§1.3).
WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

#: The only WebSocket protocol version this layer speaks.
WS_VERSION = "13"

# Frame opcodes (§5.2).
OP_CONT = 0x0
OP_TEXT = 0x1
OP_BINARY = 0x2
OP_CLOSE = 0x8
OP_PING = 0x9
OP_PONG = 0xA

_KNOWN_OPCODES = frozenset(
    {OP_CONT, OP_TEXT, OP_BINARY, OP_CLOSE, OP_PING, OP_PONG}
)
CONTROL_OPCODES = frozenset({OP_CLOSE, OP_PING, OP_PONG})

#: Upper bound on one message body (single frame or assembled
#: fragments) — mirrors :data:`repro.wire.frame.MAX_BODY`.
MAX_MESSAGE = 1 << 28

#: Upper bound on an HTTP upgrade request/response, headers included.
MAX_HANDSHAKE = 8192

#: Largest payload expressible with a 7-bit length.
_LEN_7BIT_MAX = 125
#: Largest payload expressible with the 16-bit extended length.
_LEN_16BIT_MAX = 0xFFFF


class WSEOF(Exception):
    """The peer closed the TCP stream cleanly between frames."""


class WSClosed(Exception):
    """The peer completed (or initiated) the WebSocket close handshake."""

    def __init__(self, code: int = 1000, reason: bytes = b""):
        super().__init__(f"websocket closed (code {code})")
        self.code = code
        self.reason = reason


# ---------------------------------------------------------------------------
# Handshake (§4)
# ---------------------------------------------------------------------------


def websocket_key(entropy: bytes | None = None) -> str:
    """A ``Sec-WebSocket-Key``: base64 of 16 random bytes (§4.1).

    The key is a handshake nonce, not a secret; its byte length (24
    base64 chars) is fixed, so handshake accounting is deterministic
    regardless of the entropy drawn.
    """
    raw = os.urandom(16) if entropy is None else entropy
    if len(raw) != 16:
        raise ValueError("a websocket key encodes exactly 16 bytes")
    return base64.b64encode(raw).decode("ascii")


def accept_for(key: str) -> str:
    """The ``Sec-WebSocket-Accept`` proving the server read the key:
    base64 of SHA-1 over ``key ∥ GUID`` (§4.2.2)."""
    digest = hashlib.sha1((key + WS_GUID).encode("ascii")).digest()
    return base64.b64encode(digest).decode("ascii")


def handshake_request(
    host: str, port: int, key: str, path: str = "/"
) -> bytes:
    """The client's HTTP/1.1 Upgrade request opening a connection."""
    return (
        f"GET {path} HTTP/1.1\r\n"
        f"Host: {host}:{port}\r\n"
        "Upgrade: websocket\r\n"
        "Connection: Upgrade\r\n"
        f"Sec-WebSocket-Key: {key}\r\n"
        f"Sec-WebSocket-Version: {WS_VERSION}\r\n"
        "\r\n"
    ).encode("ascii")


def handshake_response(key: str) -> bytes:
    """The server's ``101 Switching Protocols`` answer to ``key``."""
    return (
        "HTTP/1.1 101 Switching Protocols\r\n"
        "Upgrade: websocket\r\n"
        "Connection: Upgrade\r\n"
        f"Sec-WebSocket-Accept: {accept_for(key)}\r\n"
        "\r\n"
    ).encode("ascii")


def _split_http(raw: bytes) -> tuple[str, dict[str, str]]:
    """(start line, lowercased-name header map); strict CRLF framing."""
    if len(raw) > MAX_HANDSHAKE:
        raise ValueError(
            f"handshake of {len(raw)} bytes exceeds MAX_HANDSHAKE={MAX_HANDSHAKE}"
        )
    if not raw.endswith(b"\r\n\r\n"):
        raise ValueError("handshake does not end with an empty CRLF line")
    try:
        text = raw[:-4].decode("ascii")
    except UnicodeDecodeError as exc:
        raise ValueError("handshake is not ASCII") from exc
    lines = text.split("\r\n")
    headers: dict[str, str] = {}
    for line in lines[1:]:
        name, sep, value = line.partition(":")
        if not sep or not name.strip():
            raise ValueError(f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    return lines[0], headers


def _check_upgrade_headers(headers: dict[str, str]) -> None:
    upgrade = headers.get("upgrade")
    if upgrade is None:
        raise ValueError("missing Upgrade header")
    if upgrade.lower() != "websocket":
        raise ValueError(f"Upgrade header is {upgrade!r}, not websocket")
    connection = headers.get("connection")
    if connection is None:
        raise ValueError("missing Connection header")
    tokens = {t.strip().lower() for t in connection.split(",")}
    if "upgrade" not in tokens:
        raise ValueError(f"Connection header {connection!r} lacks Upgrade")


def parse_handshake_request(raw: bytes) -> str:
    """Validate a client upgrade request; returns its ``Sec-WebSocket-Key``.

    Raises :class:`ValueError` on anything short of a well-formed
    RFC 6455 §4.2.1 opening handshake: wrong method or HTTP version,
    missing/incorrect ``Upgrade``/``Connection`` headers, an
    unsupported ``Sec-WebSocket-Version``, or a key that is not the
    base64 of exactly 16 bytes.
    """
    start, headers = _split_http(raw)
    parts = start.split(" ")
    if len(parts) != 3 or parts[0] != "GET" or parts[2] != "HTTP/1.1":
        raise ValueError(f"bad request line {start!r}")
    _check_upgrade_headers(headers)
    if "host" not in headers:
        raise ValueError("missing Host header")
    version = headers.get("sec-websocket-version")
    if version != WS_VERSION:
        raise ValueError(
            f"unsupported Sec-WebSocket-Version {version!r} "
            f"(speaking {WS_VERSION})"
        )
    key = headers.get("sec-websocket-key")
    if key is None:
        raise ValueError("missing Sec-WebSocket-Key header")
    try:
        decoded = base64.b64decode(key.encode("ascii"), validate=True)
    except Exception as exc:
        raise ValueError(f"Sec-WebSocket-Key {key!r} is not base64") from exc
    if len(decoded) != 16:
        raise ValueError("Sec-WebSocket-Key does not encode 16 bytes")
    return key


def parse_handshake_response(raw: bytes, key: str) -> None:
    """Validate a server's 101 answer against the key the client sent.

    The ``Sec-WebSocket-Accept`` check is what makes a misdialed or
    non-WebSocket peer fail the handshake instead of silently carrying
    frames.
    """
    start, headers = _split_http(raw)
    parts = start.split(" ", 2)
    if len(parts) < 2 or parts[0] != "HTTP/1.1":
        raise ValueError(f"bad status line {start!r}")
    if parts[1] != "101":
        raise ValueError(f"handshake refused: status {start!r}")
    _check_upgrade_headers(headers)
    accept = headers.get("sec-websocket-accept")
    if accept is None:
        raise ValueError("missing Sec-WebSocket-Accept header")
    if accept != accept_for(key):
        raise ValueError(
            f"bad Sec-WebSocket-Accept {accept!r} for key {key!r}"
        )


async def read_handshake(reader: asyncio.StreamReader) -> bytes:
    """Read one HTTP message head (through the blank line), bounded.

    Returns the raw bytes (for accounting); raises :class:`ValueError`
    if the peer closes mid-handshake or the head exceeds
    :data:`MAX_HANDSHAKE`.
    """
    try:
        raw = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        raise ValueError("connection closed inside the handshake") from exc
    except asyncio.LimitOverrunError as exc:
        raise ValueError("handshake exceeds the stream buffer limit") from exc
    if len(raw) > MAX_HANDSHAKE:
        raise ValueError(
            f"handshake of {len(raw)} bytes exceeds MAX_HANDSHAKE={MAX_HANDSHAKE}"
        )
    return raw


# ---------------------------------------------------------------------------
# Frames (§5)
# ---------------------------------------------------------------------------


def ws_frame_overhead(body_nbytes: int, *, masked: bool) -> int:
    """Framing bytes RFC 6455 adds around a ``body_nbytes`` payload.

    2 header bytes, plus the extended length (0, 2, or 8 bytes for
    7/16/64-bit encodings), plus the 4-byte masking key on frames sent
    by the WebSocket client.  This is the documented per-message
    overhead the websocket transport's traffic accounting adds on top
    of the :mod:`repro.wire` envelope — deterministic in the body size,
    so traced byte counts stay reproducible.
    """
    if body_nbytes <= _LEN_7BIT_MAX:
        ext = 0
    elif body_nbytes <= _LEN_16BIT_MAX:
        ext = 2
    else:
        ext = 8
    return 2 + ext + (4 if masked else 0)


def _apply_mask(data: bytes, mask: bytes) -> bytes:
    """XOR ``data`` with the 4-byte mask, repeated (§5.3)."""
    if not data:
        return b""
    key = (mask * (len(data) // 4 + 1))[: len(data)]
    return (
        int.from_bytes(data, "little") ^ int.from_bytes(key, "little")
    ).to_bytes(len(data), "little")


def encode_ws_frame_parts(
    opcode: int,
    payload: bytes | bytearray | memoryview,
    *,
    fin: bool = True,
    mask: bytes | None = None,
) -> tuple[bytes, bytes | bytearray | memoryview]:
    """One WebSocket frame as ``(head, wire payload)``.

    The zero-copy writer path: a sender can put the two parts on the
    socket back to back without concatenating them first, and an
    *unmasked* payload (a server→client response carrying a model-sized
    vector) is returned as the very buffer that came in — no copy at
    all (masking inherently copies: the XOR produces new bytes).
    ``head + bytes(payload part)`` equals :func:`encode_ws_frame` byte
    for byte (pinned by test).
    """
    if opcode not in _KNOWN_OPCODES:
        raise ValueError(f"unknown websocket opcode {opcode:#x}")
    if opcode in CONTROL_OPCODES:
        if not fin:
            raise ValueError("control frames must not be fragmented")
        if len(payload) > _LEN_7BIT_MAX:
            raise ValueError("control frame payload exceeds 125 bytes")
    if len(payload) > MAX_MESSAGE:
        raise ValueError(
            f"payload of {len(payload)} bytes exceeds MAX_MESSAGE={MAX_MESSAGE}"
        )
    head = bytearray()
    head.append((0x80 if fin else 0x00) | opcode)
    mask_bit = 0x80 if mask is not None else 0x00
    n = len(payload)
    if n <= _LEN_7BIT_MAX:
        head.append(mask_bit | n)
    elif n <= _LEN_16BIT_MAX:
        head.append(mask_bit | 126)
        head += n.to_bytes(2, "big")
    else:
        head.append(mask_bit | 127)
        head += n.to_bytes(8, "big")
    if mask is not None:
        if len(mask) != 4:
            raise ValueError("a masking key is exactly 4 bytes")
        head += mask
        wire_payload: bytes | bytearray | memoryview = _apply_mask(
            bytes(payload), mask
        )
    else:
        wire_payload = payload
    return bytes(head), wire_payload


def encode_ws_frame(
    opcode: int,
    payload: bytes,
    *,
    fin: bool = True,
    mask: bytes | None = None,
) -> bytes:
    """One WebSocket frame; ``len()`` of the result is the wire size.

    ``mask`` of 4 bytes marks (and masks) a client→server frame;
    ``None`` builds an unmasked server→client frame.
    """
    head, wire_payload = encode_ws_frame_parts(
        opcode, payload, fin=fin, mask=mask
    )
    return head + bytes(wire_payload)


def _check_first_two(b0: int, b1: int, *, require_mask: bool) -> tuple[bool, int, bool, int]:
    """Validate the fixed 2-byte frame prefix.

    Returns ``(fin, opcode, masked, base length)``; every RFC "MUST"
    this layer depends on is enforced here — reserved bits, opcode,
    masking direction, control-frame shape.
    """
    if b0 & 0x70:
        raise ValueError("reserved frame bits set (no extension negotiated)")
    fin = bool(b0 & 0x80)
    opcode = b0 & 0x0F
    if opcode not in _KNOWN_OPCODES:
        raise ValueError(f"unknown websocket opcode {opcode:#x}")
    masked = bool(b1 & 0x80)
    if require_mask and not masked:
        raise ValueError("unmasked client frame (client frames must be masked)")
    if not require_mask and masked:
        raise ValueError("masked server frame (server frames must not be masked)")
    length = b1 & 0x7F
    if opcode in CONTROL_OPCODES:
        if not fin:
            raise ValueError("fragmented control frame")
        if length > _LEN_7BIT_MAX:
            raise ValueError("control frame payload exceeds 125 bytes")
    return fin, opcode, masked, length


def _extended_length(length: int, ext: bytes) -> int:
    """Decode + validate an extended payload length (minimal, bounded)."""
    if length == 126:
        value = int.from_bytes(ext, "big")
        if value <= _LEN_7BIT_MAX:
            raise ValueError("non-minimal 16-bit length encoding")
    else:
        value = int.from_bytes(ext, "big")
        if value & (1 << 63):
            raise ValueError("64-bit length with the most significant bit set")
        if value <= _LEN_16BIT_MAX:
            raise ValueError("non-minimal 64-bit length encoding")
    if value > MAX_MESSAGE:
        raise ValueError(
            f"oversized frame: length prefix {value} exceeds "
            f"MAX_MESSAGE={MAX_MESSAGE}"
        )
    return value


def decode_ws_frame(
    data: bytes, *, require_mask: bool
) -> tuple[bool, int, bytes]:
    """Parse exactly one frame from a buffer: ``(fin, opcode, payload)``.

    Strict, like :func:`repro.wire.frame.decode_frame`: truncation at
    any cut, trailing garbage, reserved bits, masking-direction
    violations, non-minimal or oversized lengths all raise
    :class:`ValueError`.
    """
    if len(data) < 2:
        raise ValueError("truncated websocket frame header")
    fin, opcode, masked, length = _check_first_two(
        data[0], data[1], require_mask=require_mask
    )
    offset = 2
    if length in (126, 127):
        ext_size = 2 if length == 126 else 8
        ext = data[offset : offset + ext_size]
        if len(ext) < ext_size:
            raise ValueError("truncated extended payload length")
        length = _extended_length(126 if ext_size == 2 else 127, ext)
        offset += ext_size
    if masked:
        mask = data[offset : offset + 4]
        if len(mask) < 4:
            raise ValueError("truncated masking key")
        offset += 4
    body = data[offset:]
    if len(body) < length:
        raise ValueError("truncated websocket frame body")
    if len(body) > length:
        raise ValueError("trailing garbage after websocket frame")
    if masked:
        body = _apply_mask(bytes(body), mask)
    return fin, opcode, bytes(body)


async def read_ws_frame(
    reader: asyncio.StreamReader, *, require_mask: bool
) -> tuple[bool, int, bytes, int]:
    """Read one frame from a stream: ``(fin, opcode, payload, wire bytes)``.

    Raises :class:`WSEOF` on a clean close *between* frames and
    :class:`ValueError` on a close mid-frame or any framing violation.
    """
    try:
        head = await reader.readexactly(2)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            raise WSEOF from exc
        raise ValueError("connection closed inside a frame header") from exc
    fin, opcode, masked, length = _check_first_two(
        head[0], head[1], require_mask=require_mask
    )
    nbytes = 2
    try:
        if length in (126, 127):
            ext_size = 2 if length == 126 else 8
            ext = await reader.readexactly(ext_size)
            nbytes += ext_size
            length = _extended_length(126 if ext_size == 2 else 127, ext)
        if masked:
            mask = await reader.readexactly(4)
            nbytes += 4
        body = await reader.readexactly(length)
        nbytes += length
    except asyncio.IncompleteReadError as exc:
        raise ValueError("connection closed inside a frame") from exc
    if masked:
        body = _apply_mask(body, mask)
    return fin, opcode, body, nbytes
