"""Property-based tests over the full protocol stack.

Hypothesis drives randomized dropout schedules and parameters through
real SecAgg / XNoise rounds and checks the end-to-end invariants:

- SecAgg: the unmasked aggregate always equals the survivor-set ring sum;
- XNoise: the enforced residual level is exactly the target whenever the
  dropout stays within tolerance — Theorem 1 over the *implementation*,
  not just the algebra.

Sizes stay small (protocol rounds cost real crypto), but the schedules
cover every stage-combination of dropouts.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.secagg import DropoutSchedule, ProtocolAbort, SecAggConfig, run_secagg_round
from repro.secagg.types import (
    STAGE_ADVERTISE,
    STAGE_SHARE_KEYS,
    STAGE_MASKED_INPUT,
    STAGE_UNMASK,
)
from repro.utils.rng import derive_rng
from repro.xnoise.protocol import XNoiseConfig, run_xnoise_round

N = 6
BITS = 16
DIM = 12
STAGES = [STAGE_ADVERTISE, STAGE_SHARE_KEYS, STAGE_MASKED_INPUT, STAGE_UNMASK]


def make_inputs(seed):
    rng = derive_rng("prop-inputs", seed)
    return {
        u: rng.integers(0, 1 << 10, size=DIM).astype(np.int64)
        for u in range(1, N + 1)
    }


schedules = st.dictionaries(
    keys=st.sampled_from(STAGES),
    values=st.sets(st.integers(min_value=1, max_value=N), max_size=2),
    max_size=3,
)


class TestSecAggProperties:
    @given(schedule=schedules, seed=st.integers(min_value=0, max_value=50))
    @settings(max_examples=25, deadline=None)
    def test_aggregate_is_survivor_ring_sum_or_clean_abort(self, schedule, seed):
        """For ANY dropout schedule the protocol either aborts (below
        threshold) or returns exactly the ring sum over U3."""
        config = SecAggConfig(
            threshold=3, bits=BITS, dimension=DIM, dh_group="modp512"
        )
        inputs = make_inputs(seed)
        try:
            result = run_secagg_round(
                config, inputs, DropoutSchedule(at_stage=schedule)
            )
        except ProtocolAbort:
            return  # clean refusal is an acceptable outcome
        expected = np.zeros(DIM, dtype=np.int64)
        for u in result.u3:
            expected = (expected + inputs[u]) % (1 << BITS)
        np.testing.assert_array_equal(result.aggregate, expected)
        # Set-chain invariant: U1 ⊇ U2 ⊇ U3 ⊇ U4 ⊇ U5, all ≥ t.
        chain = [result.u1, result.u2, result.u3, result.u4, result.u5]
        for bigger, smaller in zip(chain, chain[1:]):
            assert set(smaller) <= set(bigger)
            assert len(smaller) >= config.threshold


class TestXNoiseProperties:
    @given(
        upload_drops=st.sets(st.integers(min_value=1, max_value=N), max_size=2),
        unmask_drops=st.sets(st.integers(min_value=1, max_value=N), max_size=1),
        seed=st.integers(min_value=0, max_value=20),
    )
    @settings(max_examples=15, deadline=None)
    def test_theorem1_holds_in_the_implementation(
        self, upload_drops, unmask_drops, seed
    ):
        """Residual noise level is exactly σ²_* for every within-tolerance
        dropout pattern, including mid-unmasking failures."""
        config = XNoiseConfig(
            secagg=SecAggConfig(
                threshold=3, bits=18, dimension=DIM, dh_group="modp512"
            ),
            n_sampled=N,
            tolerance=2,
            target_variance=64.0,
        )
        inputs = {
            u: derive_rng("xn-prop", seed, u).integers(-8, 9, size=DIM).astype(np.int64)
            for u in range(1, N + 1)
        }
        schedule = DropoutSchedule(
            at_stage={
                STAGE_MASKED_INPUT: set(upload_drops),
                STAGE_UNMASK: set(unmask_drops) - set(upload_drops),
            }
        )
        try:
            result = run_xnoise_round(config, inputs, schedule)
        except ProtocolAbort:
            return
        if result.n_dropped <= config.tolerance:
            assert not result.tolerance_exceeded
            assert result.residual_variance == pytest.approx(64.0)
        else:
            assert result.tolerance_exceeded
            assert result.residual_variance < 64.0
        # Every survivor's input made it into the aggregate: strip the
        # noise expectation by checking the mean error is bounded by a
        # few noise standard deviations.
        from repro.dp.quantize import unwrap_modular

        truth = sum(inputs[u] for u in result.u3)
        err = unwrap_modular(result.aggregate, 18) - truth
        assert np.abs(err.mean()) < 5 * np.sqrt(result.residual_variance / DIM + 1)
