"""Hardened decode/encode paths of :mod:`repro.secagg.wire`.

Out-of-range fields must raise descriptive ``ValueError``s naming the
field — never a raw ``OverflowError`` out of ``int.to_bytes`` — and
share bundles must reject duplicate or out-of-range recipient ids.
"""

import pytest

from repro.crypto.shamir import Share
from repro.secagg import wire


def _share(**overrides) -> Share:
    base = dict(x=1, ys=(42, 7), secret_len=24)
    base.update(overrides)
    return Share(**base)


class TestEncodeShareValidation:
    def test_valid_share_roundtrips(self):
        share = _share()
        assert wire.decode_share(wire.encode_share(share)) == share

    def test_oversized_y_named_in_error(self):
        share = _share(ys=(42, 1 << 128))
        with pytest.raises(ValueError, match=r"ys\[1\]"):
            wire.encode_share(share)

    def test_negative_y_rejected(self):
        with pytest.raises(ValueError, match=r"ys\[0\]"):
            wire.encode_share(_share(ys=(-1,)))

    def test_oversized_x_named_in_error(self):
        with pytest.raises(ValueError, match="'x'"):
            wire.encode_share(_share(x=1 << 64))

    def test_oversized_secret_len_named_in_error(self):
        with pytest.raises(ValueError, match="'secret_len'"):
            wire.encode_share(_share(secret_len=1 << 32))

    def test_never_a_raw_overflowerror(self):
        for bad in (
            _share(ys=(1 << 200,)),
            _share(x=1 << 70),
            _share(secret_len=1 << 40),
        ):
            try:
                wire.encode_share(bad)
            except ValueError:
                continue
            pytest.fail("out-of-range share field did not raise ValueError")


class TestSharePayloadValidation:
    def test_out_of_range_sender_rejected(self):
        with pytest.raises(ValueError, match="'sender'"):
            wire.encode_share_payload(1 << 64, 2, _share(), _share())

    def test_out_of_range_recipient_rejected(self):
        with pytest.raises(ValueError, match="'recipient'"):
            wire.encode_share_payload(1, -3, _share(), _share())

    def test_duplicate_extra_label_rejected_on_decode(self):
        from repro.secagg.wire import encode_fields, encode_share

        fields = [
            (1).to_bytes(8, "big"),
            (2).to_bytes(8, "big"),
            encode_share(_share()),
            encode_share(_share()),
            b"g:1",
            encode_share(_share()),
            b"g:1",
            encode_share(_share(x=2)),
        ]
        with pytest.raises(ValueError, match="duplicate extra-share label"):
            wire.decode_share_payload(encode_fields(fields))


class TestShareBundles:
    def test_roundtrip(self):
        bundle = {3: b"ct-three", 1: b"ct-one", 2: b""}
        assert wire.decode_share_bundle(wire.encode_share_bundle(bundle)) == bundle

    def test_encoding_is_canonical(self):
        a = wire.encode_share_bundle({1: b"x", 2: b"y"})
        b = wire.encode_share_bundle({2: b"y", 1: b"x"})
        assert a == b

    def test_out_of_range_recipient_rejected_on_encode(self):
        with pytest.raises(ValueError, match="recipient id"):
            wire.encode_share_bundle({1 << 64: b"ct"})
        with pytest.raises(ValueError, match="recipient id"):
            wire.encode_share_bundle({-1: b"ct"})

    def test_duplicate_recipient_rejected_on_decode(self):
        from repro.secagg.wire import encode_fields

        forged = encode_fields(
            [(5).to_bytes(8, "big"), b"ct-a", (5).to_bytes(8, "big"), b"ct-b"]
        )
        with pytest.raises(ValueError, match="duplicate recipient id 5"):
            wire.decode_share_bundle(forged)

    def test_out_of_order_recipients_rejected_on_decode(self):
        from repro.secagg.wire import encode_fields

        forged = encode_fields(
            [(5).to_bytes(8, "big"), b"ct-a", (2).to_bytes(8, "big"), b"ct-b"]
        )
        with pytest.raises(ValueError, match="out of order"):
            wire.decode_share_bundle(forged)

    def test_bad_id_width_rejected(self):
        from repro.secagg.wire import encode_fields

        forged = encode_fields([(5).to_bytes(4, "big"), b"ct"])
        with pytest.raises(ValueError, match="recipient id width"):
            wire.decode_share_bundle(forged)

    def test_odd_field_count_rejected(self):
        from repro.secagg.wire import encode_fields

        forged = encode_fields([(5).to_bytes(8, "big")])
        with pytest.raises(ValueError, match="odd field count"):
            wire.decode_share_bundle(forged)

    def test_non_bytes_ciphertext_rejected(self):
        with pytest.raises(ValueError, match="not bytes"):
            wire.encode_share_bundle({1: 7})
