"""Adversarial/failure-injection tests against the protocol state machines.

Fig. 5's abort arms exist to stop active attacks; these tests drive the
client and server stage methods directly with malformed or malicious
inputs and assert that honest parties abort (never silently continue).
"""

import numpy as np
import pytest

from repro.crypto.pki import PublicKeyInfrastructure
from repro.crypto.signature import SchnorrSignature
from repro.secagg.client import SecAggClient, consistency_message
from repro.secagg.driver import build_graph
from repro.secagg.server import SecAggServer
from repro.secagg.types import (
    AdvertiseKeysMsg,
    ProtocolAbort,
    SecAggConfig,
)

CFG = SecAggConfig(threshold=3, bits=16, dimension=8, dh_group="modp512")


def make_round(n=5, config=CFG):
    clients = {u: SecAggClient(u, config) for u in range(1, n + 1)}
    server = SecAggServer(config)
    adverts = {u: c.advertise_keys() for u, c in clients.items()}
    graph = build_graph(config, sorted(adverts))
    roster = server.collect_advertise(adverts, graph)
    return clients, server, roster, graph


class TestRosterAttacks:
    def test_duplicate_public_keys_rejected(self):
        """A server replaying one client's keys under two identities is
        caught by the all-keys-distinct assertion."""
        clients, server, roster, graph = make_round()
        cloned = dict(roster)
        victim = roster[1]
        cloned[2] = AdvertiseKeysMsg(
            sender=2, c_public=victim.c_public, s_public=victim.s_public
        )
        with pytest.raises(ProtocolAbort):
            clients[3].share_keys(cloned, graph)

    def test_client_missing_from_roster_aborts(self):
        clients, server, roster, graph = make_round()
        without_me = {u: m for u, m in roster.items() if u != 3}
        with pytest.raises(ProtocolAbort):
            clients[3].share_keys(without_me, graph)

    def test_undersized_roster_aborts(self):
        config = SecAggConfig(threshold=4, bits=16, dimension=8, dh_group="modp512")
        clients = {u: SecAggClient(u, config) for u in range(1, 6)}
        adverts = {u: c.advertise_keys() for u, c in clients.items()}
        graph = build_graph(config, sorted(adverts))
        tiny = {u: adverts[u] for u in (1, 2, 3)}
        with pytest.raises(ProtocolAbort):
            clients[1].share_keys(tiny, graph)

    def test_forged_key_signature_rejected_in_malicious_mode(self):
        pki = PublicKeyInfrastructure()
        config = SecAggConfig(
            threshold=3, bits=16, dimension=8, malicious=True, dh_group="modp512"
        )
        signers = {u: pki.register(u) for u in range(1, 5)}
        clients = {
            u: SecAggClient(u, config, signer=signers[u], pki=pki)
            for u in range(1, 5)
        }
        adverts = {u: c.advertise_keys() for u, c in clients.items()}
        # The server swaps client 2's advertised keys for its own choice,
        # keeping the (now mismatched) signature.
        impostor = SecAggClient(99, config, signer=signers[2], pki=pki)
        fake = impostor.advertise_keys()
        adverts[2] = AdvertiseKeysMsg(
            sender=2, c_public=fake.c_public, s_public=fake.s_public,
            signature=adverts[2].signature,
        )
        graph = build_graph(config, sorted(adverts))
        with pytest.raises(ProtocolAbort):
            clients[1].share_keys(adverts, graph)


class TestCiphertextAttacks:
    def _shared_round(self):
        clients, server, roster, graph = make_round()
        outboxes = {u: clients[u].share_keys(roster, graph) for u in clients}
        inboxes = server.route_shares(outboxes)
        return clients, server, inboxes

    def test_tampered_ciphertext_aborts_unmasking(self):
        clients, server, inboxes = self._shared_round()
        box = dict(inboxes[1])
        blob = bytearray(box[2])
        blob[len(blob) // 2] ^= 0x01
        box[2] = bytes(blob)
        clients[1].masked_input(box, np.zeros(8, dtype=np.int64))
        clients[1].consistency_check(sorted(clients))
        with pytest.raises(ProtocolAbort):
            clients[1].unmask(sorted(clients), None, dropped=[], survivors=sorted(clients))

    def test_misrouted_ciphertext_detected(self):
        """A ciphertext meant for client 3 delivered to client 1 fails
        decryption (different channel key) and aborts."""
        clients, server, inboxes = self._shared_round()
        box = dict(inboxes[1])
        box[2] = inboxes[3][2]  # 2 -> 3 payload rerouted to 1
        clients[1].masked_input(box, np.zeros(8, dtype=np.int64))
        clients[1].consistency_check(sorted(clients))
        with pytest.raises(ProtocolAbort):
            clients[1].unmask(sorted(clients), None, dropped=[], survivors=sorted(clients))


class TestUnmaskingAttacks:
    def _to_unmask_stage(self):
        clients, server, roster, graph = make_round()
        outboxes = {u: clients[u].share_keys(roster, graph) for u in clients}
        inboxes = server.route_shares(outboxes)
        masked = {
            u: clients[u].masked_input(inboxes[u], np.zeros(8, dtype=np.int64))
            for u in clients
        }
        u3 = server.collect_masked(masked)
        for u in clients:
            clients[u].consistency_check(u3)
        return clients, server, u3

    def test_both_secrets_request_refused(self):
        """The core SecAgg privacy invariant: a client never reveals both
        the mask key and the self-mask seed of the same peer — a server
        asking for both is trying to unmask an individual input."""
        clients, server, u3 = self._to_unmask_stage()
        with pytest.raises(ProtocolAbort):
            clients[1].unmask(
                u3, None, dropped=[2], survivors=u3  # 2 is also in U3!
            )

    def test_survivor_list_mismatch_refused(self):
        clients, server, u3 = self._to_unmask_stage()
        with pytest.raises(ProtocolAbort):
            clients[1].unmask(u3, None, dropped=[], survivors=u3[:-1])

    def test_undersized_u4_refused(self):
        clients, server, u3 = self._to_unmask_stage()
        with pytest.raises(ProtocolAbort):
            clients[1].unmask(u3[:2], None, dropped=[], survivors=u3)

    def test_u4_not_subset_of_u3_refused(self):
        clients, server, u3 = self._to_unmask_stage()
        with pytest.raises(ProtocolAbort):
            clients[1].unmask(u3 + [99], None, dropped=[], survivors=u3)

    def test_forged_consistency_signature_refused(self):
        pki = PublicKeyInfrastructure()
        config = SecAggConfig(
            threshold=3, bits=16, dimension=8, malicious=True, dh_group="modp512"
        )
        signers = {u: pki.register(u) for u in range(1, 5)}
        clients = {
            u: SecAggClient(u, config, signer=signers[u], pki=pki)
            for u in range(1, 5)
        }
        server = SecAggServer(config, pki=pki)
        adverts = {u: c.advertise_keys() for u, c in clients.items()}
        graph = build_graph(config, sorted(adverts))
        roster = server.collect_advertise(adverts, graph)
        outboxes = {u: clients[u].share_keys(roster, graph) for u in clients}
        inboxes = server.route_shares(outboxes)
        masked = {
            u: clients[u].masked_input(inboxes[u], np.zeros(8, dtype=np.int64))
            for u in clients
        }
        u3 = server.collect_masked(masked)
        sigs = {u: clients[u].consistency_check(u3) for u in clients}
        # The server substitutes a forged signature — pretending a
        # different survivor set was acknowledged.
        sigs[2] = SchnorrSignature(e=12345, s=67890)
        u4, sig_set = server.collect_consistency(sigs)
        with pytest.raises(ProtocolAbort):
            clients[1].unmask(u4, sig_set, dropped=[], survivors=u3)

    def test_consistency_message_binds_round_and_set(self):
        assert consistency_message(1, [1, 2]) != consistency_message(2, [1, 2])
        assert consistency_message(1, [1, 2]) != consistency_message(1, [1, 3])
        # Order-insensitive (the set is what is signed).
        assert consistency_message(1, [2, 1]) == consistency_message(1, [1, 2])
