"""Wire codecs, masking algebra, and communication graphs."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.shamir import Share, ShamirSecretSharing
from repro.secagg import wire
from repro.secagg.graph import CompleteGraph, KRegularGraph, recommended_degree
from repro.secagg.masking import pairwise_mask, self_mask
from repro.utils.rng import derive_seed


class TestWire:
    @given(fields=st.lists(st.binary(max_size=60), max_size=8))
    @settings(max_examples=30)
    def test_fields_roundtrip(self, fields):
        assert wire.decode_fields(wire.encode_fields(fields)) == fields

    def test_truncated_fields_rejected(self):
        blob = wire.encode_fields([b"abcdef"])
        with pytest.raises(ValueError):
            wire.decode_fields(blob[:-2])

    def test_share_roundtrip(self):
        share = Share(x=7, ys=(123456789, 42), secret_len=20)
        assert wire.decode_share(wire.encode_share(share)) == share

    def test_share_payload_roundtrip_with_extras(self):
        ss = ShamirSecretSharing(threshold=2)
        s_shares = ss.share(b"\x01" * 32, [1, 2])
        b_shares = ss.share(b"\x02" * 32, [1, 2])
        g_shares = ss.share(b"\x03" * 32, [1, 2])
        blob = wire.encode_share_payload(
            sender=5,
            recipient=1,
            s_sk_share=s_shares[1],
            b_share=b_shares[1],
            extra_shares={"g:0": g_shares[1]},
        )
        sender, recipient, s, b, extra = wire.decode_share_payload(blob)
        assert (sender, recipient) == (5, 1)
        assert s == s_shares[1]
        assert b == b_shares[1]
        assert extra == {"g:0": g_shares[1]}

    def test_malformed_payload_rejected(self):
        with pytest.raises(ValueError):
            wire.decode_share_payload(wire.encode_fields([b"1", b"2", b"3"]))

    def test_garbage_share_rejected(self):
        with pytest.raises(ValueError):
            wire.decode_share(b"\x00" * 5)


class TestMasking:
    def test_pairwise_masks_cancel(self):
        seed = derive_seed("pair", 1, 2)
        modulus = 1 << 20
        a = pairwise_mask(seed, 2, 1, 64, modulus)
        b = pairwise_mask(seed, 1, 2, 64, modulus)
        np.testing.assert_array_equal((a + b) % modulus, np.zeros(64, dtype=np.int64))

    def test_self_pair_is_zero(self):
        assert not pairwise_mask(b"s", 3, 3, 16, 1 << 10).any()

    def test_self_mask_deterministic(self):
        np.testing.assert_array_equal(
            self_mask(b"b-seed", 32, 1 << 20), self_mask(b"b-seed", 32, 1 << 20)
        )

    def test_masks_cover_full_range(self):
        m = self_mask(b"range", 5000, 1 << 16)
        assert m.min() >= 0 and m.max() < (1 << 16)
        assert m.max() > (1 << 15)  # uses the upper half too

    def test_complete_cancellation_over_survivor_set(self):
        """Sum of all pairwise masks over a complete survivor set is 0 —
        the identity the masked sum relies on."""
        modulus = 1 << 20
        ids = [3, 7, 11, 19]
        total = np.zeros(16, dtype=np.int64)
        for u in ids:
            for v in ids:
                if u == v:
                    continue
                seed = derive_seed("pair", min(u, v), max(u, v))
                total = (total + pairwise_mask(seed, u, v, 16, modulus)) % modulus
        np.testing.assert_array_equal(total, np.zeros(16, dtype=np.int64))


class TestGraphs:
    def test_complete_graph(self):
        g = CompleteGraph().build([1, 2, 3])
        assert g == {1: {2, 3}, 2: {1, 3}, 3: {1, 2}}

    def test_k_regular_degree(self):
        g = KRegularGraph(4, seed=1).build(list(range(10, 30)))
        assert all(len(nbrs) == 4 for nbrs in g.values())

    def test_k_regular_symmetric(self):
        g = KRegularGraph(4, seed=1).build(list(range(12)))
        for u, nbrs in g.items():
            for v in nbrs:
                assert u in g[v]

    def test_k_regular_deterministic(self):
        a = KRegularGraph(4, seed=7).build(list(range(16)))
        b = KRegularGraph(4, seed=7).build(list(range(16)))
        assert a == b

    def test_k_regular_infeasible_degree_falls_back(self):
        # k = 3, n = 3 -> complete graph of degree 2.
        g = KRegularGraph(3, seed=0).build([1, 2, 3])
        assert all(len(nbrs) == 2 for nbrs in g.values())

    def test_odd_product_degree_adjusted(self):
        # k = 3, n = 5: k*n odd, no 3-regular graph on 5 nodes; adjust to 2.
        g = KRegularGraph(3, seed=0).build([1, 2, 3, 4, 5])
        assert all(len(nbrs) == 2 for nbrs in g.values())

    def test_single_node_graph(self):
        assert KRegularGraph(3).build([42]) == {42: set()}

    def test_invalid_degree(self):
        with pytest.raises(ValueError):
            KRegularGraph(0)

    def test_recommended_degree_logarithmic(self):
        assert recommended_degree(100) == pytest.approx(3 * np.log2(100), abs=1)
        assert recommended_degree(100) < 99
        assert recommended_degree(2) == 1
        # Must grow slowly.
        assert recommended_degree(10_000) < 50
