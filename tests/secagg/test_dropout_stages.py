"""Mid-protocol dropout: failures after the masked upload.

The driver docstring promises dropout before *any* stage works — these
tests pin that down for the late stages (ConsistencyCheck, Unmasking,
ExcessiveNoiseRemoval): each outcome is either a correct aggregate over
U3 or a clean :class:`ProtocolAbort`, never a wrong answer or a hang.
"""

import numpy as np
import pytest

from repro.secagg.driver import DropoutSchedule, run_secagg_round
from repro.secagg.types import (
    ProtocolAbort,
    SecAggConfig,
    STAGE_CONSISTENCY,
    STAGE_UNMASK,
    STAGE_NOISE_REMOVAL,
)
from repro.utils.rng import derive_rng
from repro.xnoise.protocol import XNoiseClient, XNoiseConfig, run_xnoise_round


def _inputs(n=5, dim=6, seed=7):
    rng = np.random.default_rng(seed)
    return {u: rng.integers(0, 1 << 16, size=dim) for u in range(1, n + 1)}


def _ring_sum(inputs, members, modulus, dim):
    total = np.zeros(dim, dtype=np.int64)
    for u in members:
        total = (total + inputs[u]) % modulus
    return total


class TestConsistencyStageDropout:
    """Clients vanish between the masked upload and ConsistencyCheck."""

    def test_semi_honest_aggregate_still_correct(self):
        config = SecAggConfig(threshold=3, bits=16, dimension=6, dh_group="modp512")
        inputs = _inputs()
        schedule = DropoutSchedule(at_stage={STAGE_CONSISTENCY: {2}})
        result = run_secagg_round(config, inputs, schedule)
        # The dropped client already uploaded: it stays in U3 and its
        # masks are reconstructed, so the sum covers all five inputs.
        assert result.u3 == [1, 2, 3, 4, 5]
        np.testing.assert_array_equal(
            result.aggregate,
            _ring_sum(inputs, result.u3, config.modulus, 6),
        )

    def test_malicious_mode_aggregate_still_correct(self):
        config = SecAggConfig(
            threshold=3, bits=16, dimension=6, malicious=True, dh_group="modp512"
        )
        inputs = _inputs(seed=11)
        schedule = DropoutSchedule(at_stage={STAGE_CONSISTENCY: {4}})
        result = run_secagg_round(config, inputs, schedule)
        assert result.u3 == [1, 2, 3, 4, 5]
        assert result.u4 == [1, 2, 3, 5]  # dropped client signed nothing
        np.testing.assert_array_equal(
            result.aggregate,
            _ring_sum(inputs, result.u3, config.modulus, 6),
        )

    def test_below_threshold_aborts_cleanly(self):
        config = SecAggConfig(
            threshold=4, bits=16, dimension=6, malicious=True, dh_group="modp512"
        )
        inputs = _inputs(seed=13)
        schedule = DropoutSchedule(at_stage={STAGE_CONSISTENCY: {1, 2}})
        with pytest.raises(ProtocolAbort):
            run_secagg_round(config, inputs, schedule)


class TestUnmaskStageDropout:
    """Clients vanish between ConsistencyCheck and Unmasking."""

    def test_aggregate_still_correct(self):
        config = SecAggConfig(threshold=3, bits=16, dimension=6, dh_group="modp512")
        inputs = _inputs(seed=17)
        schedule = DropoutSchedule(at_stage={STAGE_UNMASK: {3, 5}})
        result = run_secagg_round(config, inputs, schedule)
        assert result.u3 == [1, 2, 3, 4, 5]
        assert result.u5 == [1, 2, 4]
        np.testing.assert_array_equal(
            result.aggregate,
            _ring_sum(inputs, result.u3, config.modulus, 6),
        )

    def test_below_threshold_aborts_cleanly(self):
        config = SecAggConfig(threshold=4, bits=16, dimension=6, dh_group="modp512")
        inputs = _inputs(seed=19)
        schedule = DropoutSchedule(at_stage={STAGE_UNMASK: {1, 2}})
        with pytest.raises(ProtocolAbort):
            run_secagg_round(config, inputs, schedule)

    def test_combined_with_upload_dropout(self):
        """Upload dropout (mask reconstruction) + unmask dropout together."""
        config = SecAggConfig(threshold=3, bits=16, dimension=6, dh_group="modp512")
        inputs = _inputs(seed=23)
        schedule = DropoutSchedule(
            at_stage={2: {2}, STAGE_UNMASK: {4}}  # 2 = STAGE_MASKED_INPUT
        )
        result = run_secagg_round(config, inputs, schedule)
        assert result.u3 == [1, 3, 4, 5]
        np.testing.assert_array_equal(
            result.aggregate,
            _ring_sum(inputs, result.u3, config.modulus, 6),
        )


class TestXNoiseLateDropout:
    """XNoise's stage-5 recovery under mid-unmasking failures."""

    XCONFIG = XNoiseConfig(
        secagg=SecAggConfig(threshold=3, bits=16, dimension=6, dh_group="modp512"),
        n_sampled=5,
        tolerance=2,
        target_variance=4.0,
    )

    def _factory(self):
        xconfig = self.XCONFIG

        def make(u):
            rng = derive_rng("late-dropout-seeds", u)
            n = xconfig.decomposition().n_components
            return XNoiseClient(
                u, xconfig, noise_seeds=[rng.bytes(32) for _ in range(n)]
            )

        return make

    def test_unmask_dropout_recovers_seeds_via_stage5(self):
        inputs = {
            u: np.random.default_rng(u).integers(-30, 30, size=6)
            for u in range(1, 6)
        }
        schedule = DropoutSchedule(at_stage={STAGE_UNMASK: {4}})
        result = run_xnoise_round(
            self.XCONFIG, inputs, schedule, client_factory=self._factory()
        )
        # Client 4 survived masking, so its excess seeds had to be
        # reconstructed through stage 5 by ≥ t live peers.
        assert result.u3 == [1, 2, 3, 4, 5]
        assert 4 not in result.u5
        assert len(result.u6) >= self.XCONFIG.secagg.threshold
        # No dropout by U3 accounting → all T excess components removed
        # for each of the 5 survivors.
        assert result.n_dropped == 0
        assert result.removed_noise_components == 5 * self.XCONFIG.tolerance

    def test_stage5_collapse_aborts_cleanly(self):
        """If recovery is needed but < t helpers remain, abort — never a
        silently mis-noised aggregate."""
        inputs = {
            u: np.random.default_rng(u).integers(-30, 30, size=6)
            for u in range(1, 6)
        }
        schedule = DropoutSchedule(
            at_stage={STAGE_UNMASK: {4}, STAGE_NOISE_REMOVAL: {1, 2}}
        )
        with pytest.raises(ProtocolAbort):
            run_xnoise_round(
                self.XCONFIG, inputs, schedule, client_factory=self._factory()
            )
