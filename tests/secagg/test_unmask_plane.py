"""The coordinator's unmask plane vs its retained reference twin.

Builds real protocol state (keys, graphs, Shamir shares, masked inputs)
through the client/server state machines, then pins
``SecAggServer.collect_unmask`` bit-identical to
``collect_unmask_reference`` across dropout patterns, worker counts, and
the int64-headroom guard fallback — and both equal to the plain survivor
input sum, which is what unmasking is supposed to recover.
"""

from __future__ import annotations

import dataclasses
import random

import numpy as np
import pytest

from repro.secagg.driver import (
    DropoutSchedule,
    build_graph,
    make_secagg_clients,
    resolve_round_pki,
)
from repro.secagg.server import SecAggServer
from repro.secagg.types import (
    STAGE_MASKED_INPUT,
    STAGE_UNMASK,
    ProtocolAbort,
    SecAggConfig,
)


def build_unmask_state(config, inputs, dropout=None):
    """Run stages 0–4 client-side; return the server + unmask messages."""
    dropout = dropout or DropoutSchedule()
    sampled = sorted(inputs)
    pki = resolve_round_pki(config, None, None)
    clients = make_secagg_clients(config, sampled, pki, 0, None)
    server = SecAggServer(config, pki=pki)

    alive = set(sampled)
    adverts = {u: clients[u].advertise_keys() for u in sorted(alive)}
    graph = build_graph(config, sorted(adverts))
    roster = server.collect_advertise(adverts, graph)

    outboxes = {
        u: clients[u].share_keys(roster, graph)
        for u in sorted(alive & set(roster))
    }
    inboxes = server.route_shares(outboxes)

    alive -= dropout.dropped_by(STAGE_MASKED_INPUT)
    masked = {
        u: clients[u].masked_input(inboxes.get(u, {}), inputs[u])
        for u in sorted(alive & set(server.u2))
    }
    u3 = server.collect_masked(masked)
    for u in sorted(alive & set(u3)):
        clients[u].consistency_check(u3)
    u4 = server.skip_consistency()

    alive -= dropout.dropped_by(STAGE_UNMASK)
    dropped_list = server.dropped_after_masking
    messages = {
        u: clients[u].unmask(u4, None, dropped=dropped_list, survivors=list(u3))
        for u in sorted(alive & set(u4))
    }
    return server, messages


def clone_with_workers(server: SecAggServer, workers) -> SecAggServer:
    """A coordinator with identical round state but a different pool size."""
    config = dataclasses.replace(server.config, workers=workers)
    clone = SecAggServer(config, pki=server.pki, round_index=server.round_index)
    clone.roster = dict(server.roster)
    clone.graph = server.graph
    clone.u1 = list(server.u1)
    clone.u2 = list(server.u2)
    clone.u3 = list(server.u3)
    clone.u4 = list(server.u4)
    clone._masked = server._masked
    return clone


def assert_plane_parity(server, messages, inputs, *, workers=(1, 3)):
    """Fast plane ≡ reference twin ≡ the survivor input sum, all workers."""
    reference = clone_with_workers(server, 1).collect_unmask_reference(messages)
    expected = np.zeros(server.config.dimension, dtype=np.int64)
    for u in server.u3:
        expected = (expected + inputs[u]) % server.config.modulus
    np.testing.assert_array_equal(reference, expected)
    for w in workers:
        fast = clone_with_workers(server, w).collect_unmask(messages)
        np.testing.assert_array_equal(fast, reference)
    return reference


def ring_inputs(rng, ids, dim, modulus):
    return {
        u: np.asarray(
            [rng.randrange(modulus) for _ in range(dim)], dtype=np.int64
        )
        for u in ids
    }


class TestUnmaskPlaneParity:
    def test_no_dropouts(self):
        config = SecAggConfig(
            threshold=4, bits=20, dimension=48, dh_group="modp512"
        )
        rng = random.Random(101)
        inputs = ring_inputs(rng, range(1, 7), 48, config.modulus)
        server, messages = build_unmask_state(config, inputs)
        assert server.dropped_after_masking == []
        assert_plane_parity(server, messages, inputs)

    def test_all_but_threshold_dropped(self):
        config = SecAggConfig(
            threshold=4, bits=20, dimension=32, dh_group="modp512"
        )
        rng = random.Random(202)
        inputs = ring_inputs(rng, range(1, 8), 32, config.modulus)
        dropout = DropoutSchedule(at_stage={STAGE_MASKED_INPUT: {2, 5, 7}})
        server, messages = build_unmask_state(config, inputs, dropout)
        assert len(server.u3) == config.threshold
        assert server.dropped_after_masking == [2, 5, 7]
        assert_plane_parity(server, messages, inputs)

    def test_sparse_graph_with_dropped_neighbors(self):
        # SecAgg+ k-regular graph where dropped clients neighbor other
        # dropped clients: the pairwise recovery loop must only touch
        # *surviving* neighbors, and two disconnected dropped clients
        # contribute no term at all for each other.
        config = SecAggConfig(
            threshold=3,
            bits=20,
            dimension=24,
            graph_degree=4,
            graph_seed=9,
            dh_group="modp512",
        )
        rng = random.Random(303)
        inputs = ring_inputs(rng, range(1, 10), 24, config.modulus)
        dropout = DropoutSchedule(at_stage={STAGE_MASKED_INPUT: {2, 3}})
        server, messages = build_unmask_state(config, inputs, dropout)
        assert server.dropped_after_masking == [2, 3]
        assert_plane_parity(server, messages, inputs)

    def test_unmask_stage_dropouts_shrink_u5(self):
        config = SecAggConfig(
            threshold=3, bits=20, dimension=16, dh_group="modp512"
        )
        rng = random.Random(404)
        inputs = ring_inputs(rng, range(1, 7), 16, config.modulus)
        dropout = DropoutSchedule(
            at_stage={STAGE_MASKED_INPUT: {4}, STAGE_UNMASK: {1, 6}}
        )
        server, messages = build_unmask_state(config, inputs, dropout)
        assert sorted(messages) == sorted(set(server.u4) - {1, 6})
        assert_plane_parity(server, messages, inputs)

    def test_headroom_guard_fallback_at_bits_62(self):
        # n_terms · (2^62 − 1) ≥ 2^63 for any round with ≥ 2 terms, so
        # the plane takes the per-term reduced MaskAccumulator path —
        # still bit-identical to the reference twin.
        config = SecAggConfig(
            threshold=3, bits=62, dimension=8, dh_group="modp512"
        )
        rng = random.Random(505)
        inputs = ring_inputs(rng, range(1, 6), 8, config.modulus)
        dropout = DropoutSchedule(at_stage={STAGE_MASKED_INPUT: {2}})
        server, messages = build_unmask_state(config, inputs, dropout)
        n_terms_floor = 1 + len(server.u3)
        assert n_terms_floor * (config.modulus - 1) >= 2**63
        assert_plane_parity(server, messages, inputs)

    def test_workers_auto_matches_serial(self):
        config = SecAggConfig(
            threshold=3, bits=20, dimension=16, dh_group="modp512"
        )
        rng = random.Random(606)
        inputs = ring_inputs(rng, range(1, 6), 16, config.modulus)
        server, messages = build_unmask_state(config, inputs)
        assert_plane_parity(server, messages, inputs, workers=(1, 2, None))

    def test_fuzz_random_dropout_patterns(self):
        rng = random.Random(0xD15C0)
        for trial in range(6):
            n = rng.randint(5, 9)
            degree = rng.choice([None, 4])
            # Sparse graphs cap the threshold: every client needs at
            # least ``threshold`` usable neighbors to proceed.
            threshold = 3 if degree is not None else rng.randint(3, max(3, n - 2))
            config = SecAggConfig(
                threshold=threshold,
                bits=rng.choice([16, 20]),
                dimension=rng.randint(1, 40),
                graph_degree=degree,
                graph_seed=trial,
                dh_group="modp512",
            )
            ids = list(range(1, n + 1))
            inputs = ring_inputs(rng, ids, config.dimension, config.modulus)
            max_drop = n - threshold
            drop = set(rng.sample(ids, rng.randint(0, max_drop)))
            dropout = DropoutSchedule(at_stage={STAGE_MASKED_INPUT: drop})
            server, messages = build_unmask_state(config, inputs, dropout)
            workers = (1, rng.choice([2, 3, 4]))
            try:
                assert_plane_parity(server, messages, inputs, workers=workers)
            except ProtocolAbort as abort:
                # Sparse graphs can leave too few share-holders alive;
                # the fast plane must abort exactly like the reference.
                for w in workers:
                    with pytest.raises(ProtocolAbort) as excinfo:
                        clone_with_workers(server, w).collect_unmask(messages)
                    assert str(excinfo.value) == str(abort)


class TestUnmaskPlaneAbortParity:
    def _state(self):
        config = SecAggConfig(
            threshold=3, bits=20, dimension=8, dh_group="modp512"
        )
        rng = random.Random(808)
        inputs = ring_inputs(rng, range(1, 6), 8, config.modulus)
        dropout = DropoutSchedule(at_stage={STAGE_MASKED_INPUT: {3}})
        return build_unmask_state(config, inputs, dropout)

    def test_below_threshold_aborts_identically(self):
        server, messages = self._state()
        few = dict(list(messages.items())[:2])
        errors = []
        for method in ("collect_unmask", "collect_unmask_reference"):
            with pytest.raises(ProtocolAbort) as excinfo:
                getattr(clone_with_workers(server, 1), method)(few)
            errors.append(str(excinfo.value))
        assert errors[0] == errors[1]

    def test_missing_self_mask_shares_abort_identically(self):
        server, messages = self._state()
        victim = server.u3[1]
        for msg in messages.values():
            msg.b_shares.pop(victim, None)
        errors = []
        for method in ("collect_unmask", "collect_unmask_reference"):
            with pytest.raises(ProtocolAbort) as excinfo:
                getattr(clone_with_workers(server, 2), method)(messages)
            errors.append(str(excinfo.value))
        assert errors[0] == errors[1]
        assert f"self-mask seed of {victim}" in errors[0]

    def test_missing_mask_key_shares_abort_identically(self):
        server, messages = self._state()
        for msg in messages.values():
            msg.s_sk_shares.pop(3, None)
        errors = []
        for method in ("collect_unmask", "collect_unmask_reference"):
            with pytest.raises(ProtocolAbort) as excinfo:
                getattr(clone_with_workers(server, 2), method)(messages)
            errors.append(str(excinfo.value))
        assert errors[0] == errors[1]
        assert "mask key of 3" in errors[0]

    def test_reconstruct_twins_abort_identically(self):
        # The share-reconstruction helper pair behind both unmask
        # planes: SecAggServer._reconstruct and _reconstruct_reference
        # must wrap an unreconstructable share set in the same
        # ProtocolAbort message.
        from repro.crypto.shamir import ShamirSecretSharing

        server, _ = self._state()
        ss = ShamirSecretSharing(3)
        shares = list(ss.share(b"unmask seed material", [1, 2, 3, 4]).values())
        too_few = shares[:2]
        errors = []
        for method in ("_reconstruct", "_reconstruct_reference"):
            with pytest.raises(ProtocolAbort) as excinfo:
                getattr(server, method)(ss, too_few, "self-mask seed of 9")
            errors.append(str(excinfo.value))
        assert errors[0] == errors[1]
        assert "self-mask seed of 9" in errors[0]
        # And on reconstructable shares the twins agree with each other.
        assert server._reconstruct(ss, shares[:3], "x") == \
            server._reconstruct_reference(ss, shares[:3], "x")


def test_config_rejects_non_positive_workers():
    with pytest.raises(ValueError):
        SecAggConfig(threshold=2, workers=0)
    assert SecAggConfig(threshold=2, workers=None).workers is None
