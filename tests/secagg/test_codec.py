"""Wire-format round-trips and malformed-input rejection."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.shamir import ShamirSecretSharing
from repro.crypto.signature import SchnorrSigner, generate_signing_keypair
from repro.crypto.dh import TOY_GROUP
from repro.secagg.codec import (
    decode_advertise,
    decode_masked_input,
    decode_unmasking,
    decode_vector,
    encode_advertise,
    encode_masked_input,
    encode_unmasking,
    encode_vector,
    message_bytes,
)
from repro.secagg.types import AdvertiseKeysMsg, MaskedInputMsg, UnmaskingMsg


class TestAdvertiseCodec:
    def test_roundtrip_semi_honest(self):
        msg = AdvertiseKeysMsg(sender=7, c_public=12345, s_public=67890)
        assert decode_advertise(encode_advertise(msg)) == msg

    def test_roundtrip_with_signature(self):
        sk, _ = generate_signing_keypair(TOY_GROUP)
        sig = SchnorrSigner(sk, TOY_GROUP).sign(b"keys")
        msg = AdvertiseKeysMsg(sender=7, c_public=1, s_public=2, signature=sig)
        decoded = decode_advertise(encode_advertise(msg))
        assert decoded.signature == sig

    def test_malformed_rejected(self):
        with pytest.raises(ValueError):
            decode_advertise(b"\x00\x01garbage")


class TestVectorCodec:
    @given(
        values=st.lists(
            st.integers(min_value=-(2**40), max_value=2**40),
            min_size=0,
            max_size=64,
        )
    )
    @settings(max_examples=30)
    def test_roundtrip(self, values):
        v = np.array(values, dtype=np.int64)
        np.testing.assert_array_equal(decode_vector(encode_vector(v)), v)

    def test_truncated_rejected(self):
        v = encode_vector(np.arange(4, dtype=np.int64))
        with pytest.raises(ValueError):
            decode_vector(v[:-3])


class TestMaskedInputCodec:
    def test_roundtrip(self):
        msg = MaskedInputMsg(
            sender=3, masked_vector=np.arange(16, dtype=np.int64)
        )
        decoded = decode_masked_input(encode_masked_input(msg))
        assert decoded.sender == 3
        np.testing.assert_array_equal(decoded.masked_vector, msg.masked_vector)

    def test_size_scales_with_dimension(self):
        small = MaskedInputMsg(1, np.zeros(16, dtype=np.int64))
        large = MaskedInputMsg(1, np.zeros(1024, dtype=np.int64))
        assert message_bytes(large) > message_bytes(small) * 30


class TestUnmaskingCodec:
    def _message(self):
        ss = ShamirSecretSharing(threshold=2)
        s_shares = ss.share(b"\x01" * 64, [1, 2, 3])
        b_shares = ss.share(b"\x02" * 32, [1, 2, 3])
        return UnmaskingMsg(
            sender=2,
            s_sk_shares={5: s_shares[2]},
            b_shares={6: b_shares[2], 7: b_shares[3]},
            revealed_seeds={1: b"\xaa" * 32, 3: b"\xbb" * 32},
        )

    def test_roundtrip(self):
        msg = self._message()
        decoded = decode_unmasking(encode_unmasking(msg))
        assert decoded.sender == msg.sender
        assert decoded.s_sk_shares == msg.s_sk_shares
        assert decoded.b_shares == msg.b_shares
        assert decoded.revealed_seeds == msg.revealed_seeds

    def test_malformed_rejected(self):
        blob = encode_unmasking(self._message())
        with pytest.raises(ValueError):
            decode_unmasking(blob[:-4])

    def test_message_bytes_dispatch(self):
        assert message_bytes(self._message()) == len(
            encode_unmasking(self._message())
        )
        with pytest.raises(TypeError):
            message_bytes(object())
