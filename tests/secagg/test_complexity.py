"""Asymptotic cost accounting: O(n) vs O(log n) clients, O(n²) server."""


import pytest

from repro.secagg.complexity import (
    crossover_population,
    secagg_client_cost,
    secagg_plus_client_cost,
    secagg_server_cost,
)


class TestClientAsymptotics:
    def test_secagg_linear_in_n(self):
        c100 = secagg_client_cost(100)
        c1000 = secagg_client_cost(1000)
        assert c1000.key_agreements == pytest.approx(
            10 * c100.key_agreements, rel=0.02
        )
        assert c1000.upload_bytes_fixed > 9 * c100.upload_bytes_fixed

    def test_secagg_plus_logarithmic_in_n(self):
        c100 = secagg_plus_client_cost(100)
        c10000 = secagg_plus_client_cost(10_000)
        # log₂(10000)/log₂(100) = 2 — nowhere near the 100× of SecAgg.
        assert c10000.key_agreements <= 2.5 * c100.key_agreements

    def test_plus_beats_full_at_scale(self):
        for n in (64, 256, 1024):
            full = secagg_client_cost(n)
            plus = secagg_plus_client_cost(n)
            assert plus.total_crypto_ops < full.total_crypto_ops
            assert plus.mask_expansions < full.mask_expansions

    def test_crossover_is_small(self):
        n = crossover_population()
        assert 3 < n < 50
        # Below the crossover the degree is clamped to n−1 (no gain).
        below = secagg_plus_client_cost(4)
        assert below.key_agreements == secagg_client_cost(4).key_agreements


class TestServerAsymptotics:
    def test_quadratic_under_dropout_full_graph(self):
        """Dropped×survivors mask reconstruction is the O(n²) term."""
        s100 = secagg_server_cost(100, dropout_rate=0.2)
        s1000 = secagg_server_cost(1000, dropout_rate=0.2)
        ratio = s1000.mask_expansions / s100.mask_expansions
        assert ratio > 50  # ~100× for a 10× population

    def test_secagg_plus_server_nearly_linear(self):
        s100 = secagg_server_cost(100, dropout_rate=0.2, degree=20)
        s1000 = secagg_server_cost(1000, dropout_rate=0.2, degree=30)
        ratio = s1000.mask_expansions / s100.mask_expansions
        assert ratio < 20  # O(n·k) with k = O(log n)

    def test_no_dropout_is_linear(self):
        s = secagg_server_cost(500, dropout_rate=0.0)
        assert s.mask_expansions == 500  # self-masks only

    def test_validation(self):
        with pytest.raises(ValueError):
            secagg_client_cost(1)
        with pytest.raises(ValueError):
            secagg_plus_client_cost(1)
        with pytest.raises(ValueError):
            secagg_server_cost(10, dropout_rate=1.0)


class TestCountsMatchProtocolDefinition:
    def test_client_counts_against_fig5(self):
        """n = 5, full graph: 4 peers → 8 agreements, 10 shares (s_sk and
        b over U1 incl. self), 4 ciphertexts, 5 mask expansions."""
        c = secagg_client_cost(5)
        assert c.key_agreements == 8
        assert c.shares_generated == 10
        assert c.ciphertexts_sent == 4
        assert c.mask_expansions == 5

    def test_server_counts_small_example(self):
        """n = 6, 2 dropped: 4 self-masks + 2×4 pairwise recomputations."""
        s = secagg_server_cost(6, dropout_rate=1 / 3)
        assert s.reconstructions == 6
        assert s.mask_expansions == 4 + 2 * 4
