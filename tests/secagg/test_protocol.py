"""End-to-end SecAgg rounds: correctness, dropout handling, abort paths."""

import numpy as np
import pytest

from repro.secagg import (
    DropoutSchedule,
    ProtocolAbort,
    SecAggConfig,
    run_secagg_round,
    secagg_plus_config,
    STAGE_ADVERTISE,
    STAGE_SHARE_KEYS,
    STAGE_MASKED_INPUT,
    STAGE_UNMASK,
)
from repro.utils.rng import derive_rng


def make_inputs(n, dim, bits=16, label="inputs"):
    rng = derive_rng(label, n, dim)
    return {
        u: rng.integers(0, 1 << (bits - 4), size=dim).astype(np.int64)
        for u in range(1, n + 1)
    }


def ring_sum(inputs, ids, bits):
    total = np.zeros(next(iter(inputs.values())).shape[0], dtype=np.int64)
    for u in ids:
        total = (total + inputs[u]) % (1 << bits)
    return total


class TestNoDropout:
    def test_aggregate_equals_plain_sum(self):
        bits, dim, n = 16, 32, 6
        config = SecAggConfig(threshold=4, bits=bits, dimension=dim, dh_group="modp512")
        inputs = make_inputs(n, dim, bits)
        result = run_secagg_round(config, inputs)
        np.testing.assert_array_equal(
            result.aggregate, ring_sum(inputs, inputs, bits)
        )

    def test_all_sets_complete(self):
        config = SecAggConfig(threshold=3, bits=16, dimension=8, dh_group="modp512")
        inputs = make_inputs(5, 8)
        result = run_secagg_round(config, inputs)
        assert result.u1 == result.u2 == result.u3 == result.u4 == result.u5
        assert len(result.u1) == 5

    def test_traffic_metered(self):
        config = SecAggConfig(threshold=3, bits=16, dimension=8, dh_group="modp512")
        result = run_secagg_round(config, make_inputs(5, 8))
        assert result.traffic.total_bytes > 0
        assert STAGE_MASKED_INPUT in result.traffic.up_bytes


class TestDropoutBeforeUpload:
    """The paper's canonical dropout point: after sampling, before upload."""

    def test_sum_over_survivors_only(self):
        bits, dim, n = 16, 32, 8
        config = SecAggConfig(threshold=4, bits=bits, dimension=dim, dh_group="modp512")
        inputs = make_inputs(n, dim, bits)
        dropped = {2, 5}
        result = run_secagg_round(
            config, inputs, DropoutSchedule.before_upload(dropped)
        )
        survivors = [u for u in inputs if u not in dropped]
        assert sorted(result.u3) == survivors
        np.testing.assert_array_equal(
            result.aggregate, ring_sum(inputs, survivors, bits)
        )

    def test_dropout_at_advertise(self):
        config = SecAggConfig(threshold=3, bits=16, dimension=8, dh_group="modp512")
        inputs = make_inputs(6, 8)
        result = run_secagg_round(
            config,
            inputs,
            DropoutSchedule(at_stage={STAGE_ADVERTISE: {1}}),
        )
        assert 1 not in result.u1
        np.testing.assert_array_equal(
            result.aggregate, ring_sum(inputs, [2, 3, 4, 5, 6], 16)
        )

    def test_dropout_at_sharekeys(self):
        config = SecAggConfig(threshold=3, bits=16, dimension=8, dh_group="modp512")
        inputs = make_inputs(6, 8)
        result = run_secagg_round(
            config,
            inputs,
            DropoutSchedule(at_stage={STAGE_SHARE_KEYS: {4}}),
        )
        assert 4 in result.u1 and 4 not in result.u2
        np.testing.assert_array_equal(
            result.aggregate, ring_sum(inputs, [1, 2, 3, 5, 6], 16)
        )

    def test_dropout_during_unmasking_still_recovers(self):
        """Clients that vanish after the masked upload leave their *input*
        in the sum; the remaining ≥ t clients supply the shares."""
        bits, dim = 16, 16
        config = SecAggConfig(threshold=3, bits=bits, dimension=dim, dh_group="modp512")
        inputs = make_inputs(6, dim, bits)
        result = run_secagg_round(
            config,
            inputs,
            DropoutSchedule(at_stage={STAGE_UNMASK: {2, 3}}),
        )
        # 2 and 3 made it into U3 — their inputs are included.
        assert sorted(result.u3) == [1, 2, 3, 4, 5, 6]
        assert sorted(result.u5) == [1, 4, 5, 6]
        np.testing.assert_array_equal(
            result.aggregate, ring_sum(inputs, inputs, bits)
        )

    def test_combined_dropout_across_stages(self):
        bits, dim = 16, 16
        config = SecAggConfig(threshold=3, bits=bits, dimension=dim, dh_group="modp512")
        inputs = make_inputs(8, dim, bits)
        schedule = DropoutSchedule(
            at_stage={
                STAGE_SHARE_KEYS: {1},
                STAGE_MASKED_INPUT: {2},
                STAGE_UNMASK: {3},
            }
        )
        result = run_secagg_round(config, inputs, schedule)
        np.testing.assert_array_equal(
            result.aggregate, ring_sum(inputs, [3, 4, 5, 6, 7, 8], bits)
        )


class TestThresholdAborts:
    def test_too_many_dropouts_abort(self):
        config = SecAggConfig(threshold=5, bits=16, dimension=8, dh_group="modp512")
        inputs = make_inputs(6, 8)
        with pytest.raises(ProtocolAbort):
            run_secagg_round(
                config, inputs, DropoutSchedule.before_upload({1, 2, 3})
            )

    def test_below_threshold_at_advertise_aborts(self):
        config = SecAggConfig(threshold=5, bits=16, dimension=8, dh_group="modp512")
        inputs = make_inputs(6, 8)
        with pytest.raises(ProtocolAbort):
            run_secagg_round(
                config,
                inputs,
                DropoutSchedule(at_stage={STAGE_ADVERTISE: {1, 2}}),
            )

    def test_unmasking_below_threshold_aborts(self):
        config = SecAggConfig(threshold=4, bits=16, dimension=8, dh_group="modp512")
        inputs = make_inputs(5, 8)
        with pytest.raises(ProtocolAbort):
            run_secagg_round(
                config,
                inputs,
                DropoutSchedule(at_stage={STAGE_UNMASK: {1, 2}}),
            )


class TestMaliciousMode:
    def test_full_round_with_signatures(self):
        bits, dim = 16, 16
        config = SecAggConfig(threshold=3, bits=bits, dimension=dim, malicious=True, dh_group="modp512")
        inputs = make_inputs(5, dim, bits)
        result = run_secagg_round(config, inputs)
        np.testing.assert_array_equal(
            result.aggregate, ring_sum(inputs, inputs, bits)
        )

    def test_malicious_round_with_dropout(self):
        bits, dim = 16, 16
        config = SecAggConfig(threshold=3, bits=bits, dimension=dim, malicious=True, dh_group="modp512")
        inputs = make_inputs(6, dim, bits)
        result = run_secagg_round(
            config, inputs, DropoutSchedule.before_upload({2})
        )
        np.testing.assert_array_equal(
            result.aggregate, ring_sum(inputs, [1, 3, 4, 5, 6], bits)
        )


class TestSecAggPlus:
    def test_aggregate_with_k_regular_graph(self):
        bits, dim, n = 16, 32, 12
        config = secagg_plus_config(n, bits=bits, dimension=dim, degree=4, graph_seed=3, dh_group="modp512")
        inputs = make_inputs(n, dim, bits)
        result = run_secagg_round(config, inputs)
        np.testing.assert_array_equal(
            result.aggregate, ring_sum(inputs, inputs, bits)
        )

    def test_dropout_with_k_regular_graph(self):
        bits, dim, n = 16, 32, 12
        config = secagg_plus_config(n, bits=bits, dimension=dim, degree=6, graph_seed=3, dh_group="modp512")
        inputs = make_inputs(n, dim, bits)
        result = run_secagg_round(
            config, inputs, DropoutSchedule.before_upload({3, 9})
        )
        survivors = [u for u in inputs if u not in {3, 9}]
        np.testing.assert_array_equal(
            result.aggregate, ring_sum(inputs, survivors, bits)
        )

    def test_cheaper_sharekeys_traffic_than_full_secagg(self):
        bits, dim, n = 16, 16, 24
        full = SecAggConfig(threshold=13, bits=bits, dimension=dim, dh_group="modp512")
        plus = secagg_plus_config(n, bits=bits, dimension=dim, degree=6, dh_group="modp512")
        inputs = make_inputs(n, dim, bits)
        t_full = run_secagg_round(full, inputs).traffic
        t_plus = run_secagg_round(plus, inputs).traffic
        assert (
            t_plus.up_bytes[STAGE_SHARE_KEYS] < t_full.up_bytes[STAGE_SHARE_KEYS]
        )

    def test_config_validation(self):
        with pytest.raises(ValueError):
            secagg_plus_config(1, dh_group="modp512")


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(threshold=0),
            dict(threshold=2, bits=0),
            dict(threshold=2, bits=63),
            dict(threshold=2, dimension=0),
            dict(threshold=2, graph_degree=0),
        ],
    )
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SecAggConfig(**kwargs)
