"""The rule engine itself: suppressions, baseline, findings, reports."""

from __future__ import annotations

import json

import pytest

from repro.analysis import render_json, render_text, run_check
from repro.analysis.baseline import load_baseline, partition, write_baseline
from repro.analysis.core import (
    SUPPRESSION_RULE_ID,
    Finding,
    SourceFile,
    all_rules,
    apply_suppressions,
    scan_suppressions,
)

from .conftest import findings_for

# A file the parity-twin rule trips on: a reference def with no twin.
_ORPHAN = "def lonely_reference(x):\n    return x\n"


def _load(tmp_path, text, name="m.py"):
    path = tmp_path / name
    path.write_text(text)
    return SourceFile.load(path, tmp_path)


class TestSuppressionParsing:
    def test_valid_allow_comment_parses(self, tmp_path):
        src = _load(
            tmp_path,
            "x = 1  # repro: allow[parity-twin] twin is a class\n",
        )
        sups, meta = scan_suppressions(src)
        assert meta == []
        (s,) = sups
        assert (s.rule, s.line) == ("parity-twin", 1)
        assert s.reason == "twin is a class"

    def test_missing_reason_is_a_finding(self, tmp_path):
        src = _load(tmp_path, "x = 1  # repro: allow[parity-twin]\n")
        sups, meta = scan_suppressions(src)
        assert sups == []
        (f,) = meta
        assert f.rule == SUPPRESSION_RULE_ID
        assert "no reason" in f.message

    def test_unknown_rule_id_is_a_finding(self, tmp_path):
        src = _load(tmp_path, "x = 1  # repro: allow[no-such-rule] why\n")
        sups, meta = scan_suppressions(src)
        assert sups == []
        (f,) = meta
        assert f.rule == SUPPRESSION_RULE_ID
        assert "no-such-rule" in f.message

    def test_docstring_mention_is_not_a_suppression(self, tmp_path):
        # Prose *about* the grammar (as this package's own docs) must
        # not parse as a suppression or a malformed one.
        src = _load(
            tmp_path,
            '"""Docs: write ``# repro: allow[rule-id] reason``."""\nx = 1\n',
        )
        sups, meta = scan_suppressions(src)
        assert sups == [] and meta == []

    def test_suppression_covers_same_line_and_line_below(self):
        from repro.analysis.core import Suppression

        sup = Suppression(file="m.py", line=4, rule="r", reason="why")
        same = Finding(file="m.py", line=4, rule="r", message="x")
        below = Finding(file="m.py", line=5, rule="r", message="x")
        far = Finding(file="m.py", line=6, rule="r", message="x")
        other_rule = Finding(file="m.py", line=4, rule="q", message="x")
        kept, n = apply_suppressions([same, below, far, other_rule], [sup])
        assert kept == [far, other_rule] and n == 2

    def test_meta_findings_are_unsuppressible(self):
        from repro.analysis.core import Suppression

        sup = Suppression(
            file="m.py", line=1, rule=SUPPRESSION_RULE_ID, reason="nope"
        )
        meta = Finding(
            file="m.py", line=1, rule=SUPPRESSION_RULE_ID, message="bad"
        )
        kept, n = apply_suppressions([meta], [sup])
        assert kept == [meta] and n == 0


class TestBaseline:
    def test_round_trip(self, tmp_path):
        findings = [
            Finding(file="a.py", line=3, rule="r1", message="m1"),
            Finding(file="b.py", line=9, rule="r2", message="m2"),
        ]
        path = tmp_path / "BASE.json"
        write_baseline(path, findings)
        keys = load_baseline(path)
        assert keys == {("r1", "a.py", "m1"), ("r2", "b.py", "m2")}

    def test_matching_ignores_line_numbers(self, tmp_path):
        path = tmp_path / "BASE.json"
        write_baseline(
            path, [Finding(file="a.py", line=3, rule="r", message="m")]
        )
        drifted = Finding(file="a.py", line=77, rule="r", message="m")
        fresh = Finding(file="a.py", line=3, rule="r", message="other")
        new, grandfathered = partition([drifted, fresh], load_baseline(path))
        assert grandfathered == [drifted] and new == [fresh]

    def test_missing_file_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") == set()

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "BASE.json"
        path.write_text(json.dumps({"version": 999, "findings": []}))
        with pytest.raises(ValueError):
            load_baseline(path)

    def test_baselined_findings_do_not_fail_check(self, make_repo):
        root = make_repo({"src/repro/mod.py": _ORPHAN})
        dirty = run_check(root=root)
        tripped = findings_for(dirty, "parity-twin")
        assert tripped
        write_baseline(root / "ANALYSIS_BASELINE.json", tripped)
        clean = run_check(root=root)
        assert clean.clean
        assert {f.key() for f in clean.baselined} == {
            f.key() for f in tripped
        }


class TestReports:
    def _result(self, check_repo):
        return check_repo({"src/repro/mod.py": _ORPHAN})

    def test_text_report_lines(self, check_repo):
        result = self._result(check_repo)
        text = render_text(result)
        assert "src/repro/mod.py:1: [parity-twin]" in text
        assert text.strip().endswith("0 suppressed")

    def test_json_report_schema(self, check_repo):
        result = self._result(check_repo)
        doc = json.loads(render_json(result))
        assert doc["version"] == 1
        assert isinstance(doc["root"], str)
        assert doc["clean"] is False
        rule_ids = {r["id"] for r in doc["rules"]}
        assert len(rule_ids) >= 6
        for r in doc["rules"]:
            assert set(r) == {"id", "description", "invariants"}
            assert isinstance(r["invariants"], list)
        for f in doc["findings"]:
            assert set(f) == {"file", "line", "rule", "message"}
            assert isinstance(f["line"], int)
        assert doc["counts"] == {
            "files": result.files_checked,
            "findings": len(result.findings),
            "baselined": 0,
        }

    def test_registry_has_six_rules_with_invariants(self):
        rules = all_rules()
        assert len(rules) >= 6
        for rule in rules.values():
            assert rule.id and rule.description
            assert rule.invariants, f"{rule.id} claims no invariant"
