"""Trip / no-trip fixtures for every rule, run through the full pipeline.

Each case materialises a mini-repo under ``tmp_path`` (see conftest) so
the rule is exercised exactly as ``repro.cli check`` runs it: discovery,
scoping, suppressions, baseline.  The deliberately-broken sources are
string snippets, never committed ``.py`` files — a real fixture with a
bare ``except:`` would fail the repo's own lint gate.
"""

from __future__ import annotations

import textwrap

from .conftest import findings_for


def _src(text: str) -> str:
    return textwrap.dedent(text).lstrip()


# ---------------------------------------------------------------------------
# parity-twin
# ---------------------------------------------------------------------------


class TestParityTwin:
    def test_trips_on_missing_twin(self, check_repo):
        result = check_repo({
            "src/repro/mod.py": _src("""
                def share_reference(secret, ids):
                    return [(i, secret) for i in ids]
            """),
        })
        (f,) = findings_for(result, "parity-twin")
        assert "no fast twin 'share'" in f.message

    def test_trips_on_signature_drift(self, check_repo):
        result = check_repo({
            "src/repro/mod.py": _src("""
                def share(secret, ids, threshold):
                    return ids

                def share_reference(secret, ids):
                    return ids
            """),
            "tests/test_share.py": "# share share_reference\n",
        })
        (f,) = findings_for(result, "parity-twin")
        assert "signature" in f.message

    def test_trips_on_missing_pinning_test(self, check_repo):
        result = check_repo({
            "src/repro/mod.py": _src("""
                def share(secret, ids):
                    return ids

                def share_reference(secret, ids):
                    return ids
            """),
        })
        (f,) = findings_for(result, "parity-twin")
        assert "pinning test" in f.message

    def test_word_boundary_naming(self, check_repo):
        # A test naming only `share_reference` does NOT count as naming
        # `share` — the twin match is word-bounded.
        result = check_repo({
            "src/repro/mod.py": _src("""
                def fleet(n):
                    return n

                def fleet_reference(n):
                    return n
            """),
            "tests/test_fleet.py": "# only fleet_reference here\n",
        })
        (f,) = findings_for(result, "parity-twin")
        assert "pinning test" in f.message

    def test_clean_pair_with_test_passes(self, check_repo):
        result = check_repo({
            "src/repro/mod.py": _src("""
                def share(secret, ids):
                    return ids

                def share_reference(secret, ids):
                    return ids
            """),
            "tests/test_share.py": _src("""
                from repro.mod import share, share_reference

                def test_parity():
                    assert share(b"s", [1]) == share_reference(b"s", [1])
            """),
        })
        assert findings_for(result, "parity-twin") == []

    def test_class_twin_and_method_twin(self, check_repo):
        result = check_repo({
            "src/repro/mod.py": _src("""
                class PRG:
                    def expand(self, n):
                        return n

                class PRGReference:
                    def expand(self, n):
                        return n

                class Acc:
                    def fold(self, x, y):
                        return x

                    def fold_reference(self, x):
                        return x
            """),
            "tests/test_prg.py": "# PRG PRGReference fold fold_reference\n",
        })
        # PRG/PRGReference are clean; fold/fold_reference drift in
        # signature within the class scope.
        (f,) = findings_for(result, "parity-twin")
        assert "fold_reference" in f.message and "signature" in f.message


# ---------------------------------------------------------------------------
# headroom-guard
# ---------------------------------------------------------------------------


class TestHeadroomGuard:
    def test_trips_on_unguarded_deferred_sum(self, check_repo):
        result = check_repo({
            "src/repro/secagg/acc.py": _src("""
                def unmask(vectors, modulus):
                    acc = vectors[0]
                    for v in vectors[1:]:
                        acc += v
                    acc %= modulus
                    return acc
            """),
        })
        (f,) = findings_for(result, "headroom-guard")
        assert "'acc'" in f.message and "2**63" in f.message

    def test_guarded_function_passes(self, check_repo):
        result = check_repo({
            "src/repro/secagg/acc.py": _src("""
                def unmask(vectors, modulus):
                    if len(vectors) * (modulus - 1) >= 2**63:
                        raise OverflowError
                    acc = vectors[0]
                    for v in vectors[1:]:
                        acc += v
                    acc %= modulus
                    return acc
            """),
        })
        assert findings_for(result, "headroom-guard") == []

    def test_class_scope_guard_spans_methods(self, check_repo):
        # Accumulate, reduce, and guard in three different methods —
        # the MaskAccumulator shape — is legal.
        result = check_repo({
            "src/repro/secagg/acc.py": _src("""
                class Acc:
                    def __init__(self, n, modulus):
                        self._modulus = modulus
                        self._ok = n * (modulus - 1) < 2**63

                    def fold(self, v):
                        self._acc += v

                    def finish(self):
                        self._acc %= self._modulus
                        return self._acc
            """),
        })
        assert findings_for(result, "headroom-guard") == []

    def test_class_scope_without_guard_trips(self, check_repo):
        result = check_repo({
            "src/repro/secagg/acc.py": _src("""
                class Acc:
                    def fold(self, v):
                        self._acc += v

                    def finish(self):
                        self._acc %= self._modulus
                        return self._acc
            """),
        })
        (f,) = findings_for(result, "headroom-guard")
        assert "'self._acc'" in f.message

    def test_non_modulus_reduction_out_of_scope(self, check_repo):
        # Big-int field arithmetic (`% p`) cannot overflow int64 and is
        # deliberately not matched — only modulus-named operands are.
        result = check_repo({
            "src/repro/crypto/field.py": _src("""
                def horner(coeffs, x, p):
                    acc = 0
                    for c in coeffs:
                        acc += c * x
                        acc %= p
                    return acc
            """),
        })
        assert findings_for(result, "headroom-guard") == []


# ---------------------------------------------------------------------------
# strict-decoder
# ---------------------------------------------------------------------------


class TestStrictDecoder:
    def test_trips_on_bare_except(self, check_repo):
        result = check_repo({
            "src/repro/wire/c.py": _src("""
                def decode_header(buf):
                    try:
                        return buf[0]
                    except:  # noqa: E722
                        raise ValueError("bad")
            """),
        })
        msgs = [f.message for f in findings_for(result, "strict-decoder")]
        assert any("bare except" in m for m in msgs)

    def test_trips_on_swallowing_handler(self, check_repo):
        result = check_repo({
            "src/repro/wire/c.py": _src("""
                def decode_header(buf):
                    try:
                        if not buf:
                            raise ValueError("empty")
                        return buf[0]
                    except Exception:
                        return 0
            """),
        })
        msgs = [f.message for f in findings_for(result, "strict-decoder")]
        assert any("without re-raising" in m for m in msgs)

    def test_trips_on_silent_none(self, check_repo):
        result = check_repo({
            "src/repro/wire/c.py": _src("""
                def decode_header(buf):
                    if len(buf) < 1:
                        return None
                    if buf[0] > 10:
                        raise ValueError("bad tag")
                    return buf[0]
            """),
        })
        msgs = [f.message for f in findings_for(result, "strict-decoder")]
        assert any("returns None" in m for m in msgs)

    def test_trips_on_never_raising(self, check_repo):
        result = check_repo({
            "src/repro/wire/c.py": _src("""
                def decode_header(buf):
                    return buf[0]
            """),
        })
        msgs = [f.message for f in findings_for(result, "strict-decoder")]
        assert any("never raises ValueError" in m for m in msgs)

    def test_delegated_raise_and_local_subclass_pass(self, check_repo):
        # Raising through a module-local helper, or a module-local
        # ValueError subclass (the CodecError idiom), both satisfy the
        # rule; re-wrapping handlers are fine because they raise.
        result = check_repo({
            "src/repro/wire/c.py": _src("""
                class CodecError(ValueError):
                    pass

                def _need(buf, n):
                    if len(buf) < n:
                        raise CodecError("truncated")

                def decode_header(buf):
                    _need(buf, 1)
                    return buf[0]

                def decode_frame(buf):
                    try:
                        return decode_header(buf)
                    except Exception as exc:
                        raise CodecError(str(exc)) from exc
            """),
        })
        assert findings_for(result, "strict-decoder") == []

    def test_out_of_scope_files_ignored(self, check_repo):
        result = check_repo({
            "src/repro/fleet/c.py": _src("""
                def decode_header(buf):
                    return buf[0]
            """),
        })
        assert findings_for(result, "strict-decoder") == []


# ---------------------------------------------------------------------------
# async-hygiene
# ---------------------------------------------------------------------------


class TestAsyncHygiene:
    def test_trips_on_blocking_call_in_coroutine(self, check_repo):
        result = check_repo({
            "src/repro/engine/a.py": _src("""
                import time

                async def run_round(self):
                    time.sleep(1)
            """),
        })
        (f,) = findings_for(result, "async-hygiene")
        assert "time.sleep" in f.message

    def test_trips_on_discarded_create_task(self, check_repo):
        result = check_repo({
            "src/repro/engine/a.py": _src("""
                import asyncio

                async def spawn_all(coros):
                    for c in coros:
                        asyncio.create_task(c)
            """),
        })
        (f,) = findings_for(result, "async-hygiene")
        assert "discarded" in f.message

    def test_consumed_task_and_async_sleep_pass(self, check_repo):
        result = check_repo({
            "src/repro/engine/a.py": _src("""
                import asyncio

                async def spawn_all(coros):
                    tasks = [asyncio.create_task(c) for c in coros]
                    await asyncio.sleep(0)
                    return tasks
            """),
        })
        assert findings_for(result, "async-hygiene") == []

    def test_blocking_in_sync_helper_is_fine(self, check_repo):
        # The rule polices coroutines; sync setup helpers may block.
        result = check_repo({
            "src/repro/engine/a.py": _src("""
                import time

                def warm_up():
                    time.sleep(0.01)
            """),
        })
        assert findings_for(result, "async-hygiene") == []


# ---------------------------------------------------------------------------
# determinism
# ---------------------------------------------------------------------------


class TestDeterminism:
    def test_trips_on_stdlib_random(self, check_repo):
        result = check_repo({
            "src/repro/fleet/d.py": _src("""
                import random

                def sample(n):
                    return random.random() * n
            """),
        })
        (f,) = findings_for(result, "determinism")
        assert "random.random" in f.message

    def test_trips_on_global_np_random(self, check_repo):
        result = check_repo({
            "src/repro/sim/d.py": _src("""
                import numpy as np

                def draw(n):
                    return np.random.rand(n)
            """),
        })
        (f,) = findings_for(result, "determinism")
        assert "np.random.rand" in f.message

    def test_trips_on_unseeded_default_rng(self, check_repo):
        result = check_repo({
            "src/repro/crypto/d.py": _src("""
                import numpy as np

                def draw(n):
                    return np.random.default_rng().integers(0, 7, n)
            """),
        })
        (f,) = findings_for(result, "determinism")
        assert "without a seed" in f.message

    def test_trips_on_wall_clock(self, check_repo):
        result = check_repo({
            "src/repro/engine/d.py": _src("""
                import time

                def stamp(trace):
                    trace.append(time.time())
            """),
        })
        (f,) = findings_for(result, "determinism")
        assert "wall clock" in f.message

    def test_seeded_rng_and_method_calls_pass(self, check_repo):
        # Seeded default_rng and drawing through a Generator object
        # (`rng.random()` — not the stdlib module) are the sanctioned
        # idioms; out-of-scope packages may do as they like.
        result = check_repo({
            "src/repro/fleet/d.py": _src("""
                import numpy as np

                def sample(seed, n):
                    rng = np.random.default_rng(seed)
                    return rng.random() + rng.integers(0, n)
            """),
            "src/repro/dp/d.py": _src("""
                import time

                def wall():
                    return time.time()
            """),
        })
        assert findings_for(result, "determinism") == []


# ---------------------------------------------------------------------------
# zero-copy
# ---------------------------------------------------------------------------


class TestZeroCopy:
    def test_trips_on_tobytes_in_encoder(self, check_repo):
        result = check_repo({
            "src/repro/wire/codecs.py": _src("""
                def encode_vector(arr, out):
                    if arr is None:
                        raise ValueError("no vector")
                    out += arr.tobytes()
            """),
        })
        msgs = [f.message for f in findings_for(result, "zero-copy")]
        assert any(".tobytes()" in m for m in msgs)

    def test_trips_on_range_len_loop(self, check_repo):
        result = check_repo({
            "src/repro/wire/frame.py": _src("""
                def encode_body(data, out):
                    for i in range(len(data)):
                        out.append(data[i])
            """),
        })
        msgs = [f.message for f in findings_for(result, "zero-copy")]
        assert any("range(len(...))" in m for m in msgs)

    def test_trips_on_per_byte_append_loop(self, check_repo):
        result = check_repo({
            "src/repro/wire/ws.py": _src("""
                def encode_masked(payload, mask, out):
                    for i, b in enumerate(payload):
                        out.append(mask[i % 4] ^ b)
            """),
        })
        msgs = [f.message for f in findings_for(result, "zero-copy")]
        assert any("byte-at-a-time" in m for m in msgs)

    def test_reference_twin_and_other_files_exempt(self, check_repo):
        # `*_reference` encoders are the concatenating spec — exempt by
        # name; files outside the three hot modules are out of scope.
        result = check_repo({
            "src/repro/wire/codecs.py": _src("""
                def encode_vector_reference(arr):
                    return arr.tobytes()
            """),
            "src/repro/secagg/other.py": _src("""
                def encode_anything(arr):
                    return arr.tobytes()
            """),
            "tests/test_enc.py":
                "# encode_vector_reference encode_vector\n",
        })
        assert findings_for(result, "zero-copy") == []

    def test_memoryview_writer_passes(self, check_repo):
        result = check_repo({
            "src/repro/wire/codecs.py": _src("""
                def encode_vector(arr, out):
                    if arr is None:
                        raise ValueError("no vector")
                    n = len(out)
                    out += b"\\x00" * arr.nbytes
                    memoryview(out)[n:] = memoryview(arr).cast("B")
            """),
        })
        assert findings_for(result, "zero-copy") == []


# ---------------------------------------------------------------------------
# suppressions through the full pipeline
# ---------------------------------------------------------------------------


class TestSuppressionsEndToEnd:
    def test_reasoned_allow_silences_a_finding(self, check_repo):
        result = check_repo({
            "src/repro/mod.py": _src("""
                # repro: allow[parity-twin] twin retired with the v2 codec
                def share_reference(secret, ids):
                    return ids
            """),
        })
        assert findings_for(result, "parity-twin") == []
        assert result.suppressed == 1

    def test_reasonless_allow_is_itself_a_finding(self, check_repo):
        result = check_repo({
            "src/repro/mod.py": _src("""
                # repro: allow[parity-twin]
                def share_reference(secret, ids):
                    return ids
            """),
        })
        # The original finding survives AND the malformed comment is
        # reported.
        assert len(findings_for(result, "parity-twin")) == 1
        (meta,) = findings_for(result, "suppression")
        assert "no reason" in meta.message
