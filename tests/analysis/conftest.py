"""Shared fixture machinery: build a throwaway mini-repo and check it.

The rule fixtures are *string snippets*, not committed ``.py`` files —
a real fixture file with a deliberate bare ``except:`` would fail the
repo's own ruff gate.  ``make_repo`` materialises the snippets under
``tmp_path`` in the same ``src/repro/...`` layout the runner discovers,
so every trip/no-trip case exercises the full pipeline: discovery,
parsing, rules, suppressions, baseline.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import run_check


@pytest.fixture
def make_repo(tmp_path):
    """Write ``{relpath: source}`` files into a fresh repo skeleton and
    return its root.  A ``pyproject.toml`` marks the root the same way
    the real checkout does."""

    def _make(files: dict[str, str]) -> Path:
        root = tmp_path / "repo"
        (root / "src" / "repro").mkdir(parents=True, exist_ok=True)
        (root / "pyproject.toml").write_text("[project]\nname='x'\n")
        for rel, text in files.items():
            path = root / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(text, encoding="utf-8")
        return root

    return _make


@pytest.fixture
def check_repo(make_repo):
    """``files -> CheckResult`` — the one-call harness the rule tests use."""

    def _check(files: dict[str, str]):
        return run_check(root=make_repo(files))

    return _check


def findings_for(result, rule_id: str):
    """The result's non-baselined findings for one rule."""
    return [f for f in result.findings if f.rule == rule_id]
