"""The checker on its own repository: clean, and for stated reasons.

This is the dogfood gate the CI ``analysis`` job replicates: running
``repro.cli check`` over the real tree must produce zero non-baselined
findings, with the rule set fully loaded.  It also pins the *shape* of
the current suppression inventory, so a suppression added without
thought shows up as a diff here.
"""

from __future__ import annotations

import json

from repro.analysis import render_json, run_check
from repro.analysis.baseline import DEFAULT_BASELINE_NAME, load_baseline
from repro.analysis.runner import default_root


def test_real_tree_is_clean():
    result = run_check()
    assert result.clean, "\n".join(
        f"{f.file}:{f.line}: [{f.rule}] {f.message}" for f in result.findings
    )
    assert len(result.rules) >= 6
    assert result.files_checked > 50


def test_committed_baseline_is_empty():
    # The tree was brought to zero findings in the PR that introduced
    # the checker; the baseline exists as the grandfathering mechanism
    # but currently grandfathers nothing.  If this fails, either fix
    # the finding or make a deliberate baseline entry — don't bypass.
    keys = load_baseline(default_root() / DEFAULT_BASELINE_NAME)
    assert keys == set()


def test_suppression_inventory_is_the_documented_three():
    # Every inline allow in the tree, by (file, rule) — all three are
    # parity-twin exemptions whose fast twin is not a same-named def.
    from repro.analysis.core import scan_suppressions
    from repro.analysis.runner import discover_sources

    root = default_root()
    inventory = []
    for src in discover_sources(root):
        sups, meta = scan_suppressions(src)
        assert meta == [], f"malformed suppression in {src.rel}"
        inventory.extend((s.file, s.rule) for s in sups)
        for s in sups:
            assert s.reason, f"{s.file}:{s.line} has an empty reason"
    assert sorted(inventory) == [
        ("src/repro/bench/fleet.py", "parity-twin"),
        ("src/repro/secagg/masking.py", "parity-twin"),
        ("src/repro/secagg/masking.py", "parity-twin"),
    ]


def test_json_report_on_real_tree_is_valid_and_clean():
    doc = json.loads(render_json(run_check()))
    assert doc["clean"] is True
    assert doc["findings"] == []
    assert doc["counts"]["findings"] == 0
    assert {r["id"] for r in doc["rules"]} >= {
        "parity-twin",
        "headroom-guard",
        "strict-decoder",
        "async-hygiene",
        "determinism",
        "zero-copy",
    }
