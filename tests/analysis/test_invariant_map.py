"""The invariant map stays honest against ARCHITECTURE.md and the tree.

Every numbered invariant in ARCHITECTURE.md's "Invariants the test
suite pins" section must appear in ``repro.analysis.invariants``
mapped to at least one registered rule or one existing pinning-test
file — and the map may not invent invariants the document does not
state.  This is the drift tripwire between the prose, the checker, and
the suite.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.analysis.core import all_rules
from repro.analysis.invariants import INVARIANT_MAP
from repro.analysis.runner import default_root

_SECTION = "## Invariants the test suite pins"
_LABEL_RE = re.compile(r"^(\d+[a-z]?)\.\s", re.MULTILINE)


def documented_invariants() -> list[str]:
    text = (default_root() / "ARCHITECTURE.md").read_text(encoding="utf-8")
    assert _SECTION in text, "ARCHITECTURE.md lost its invariants section"
    section = text.split(_SECTION, 1)[1]
    # The list runs to the next heading (or EOF).
    section = section.split("\n## ", 1)[0]
    return _LABEL_RE.findall(section)


def test_architecture_lists_the_expected_invariants():
    labels = documented_invariants()
    assert len(labels) >= 11
    assert labels == sorted(set(labels), key=labels.index), "duplicate labels"


def test_every_documented_invariant_is_mapped():
    missing = [x for x in documented_invariants() if x not in INVARIANT_MAP]
    assert not missing, f"ARCHITECTURE.md invariants unmapped: {missing}"


def test_map_invents_no_invariants():
    extra = set(INVARIANT_MAP) - set(documented_invariants())
    assert not extra, f"mapped but not documented: {sorted(extra)}"


def test_every_entry_names_a_rule_or_a_test():
    for label, entry in INVARIANT_MAP.items():
        assert entry["rules"] or entry["tests"], (
            f"invariant {label} maps to neither a rule nor a test"
        )


def test_mapped_rules_are_registered():
    registered = set(all_rules())
    for label, entry in INVARIANT_MAP.items():
        unknown = set(entry["rules"]) - registered
        assert not unknown, f"invariant {label} names unknown rules {unknown}"


def test_mapped_tests_exist():
    root = default_root()
    for label, entry in INVARIANT_MAP.items():
        for rel in entry["tests"]:
            assert Path(root, rel).is_file(), (
                f"invariant {label} names missing test file {rel}"
            )


def test_rule_invariant_claims_agree_with_the_map():
    # A rule's own `invariants` tuple and the central map must tell the
    # same story in both directions.
    for rule_id, rule in all_rules().items():
        for label in rule.invariants:
            assert label in INVARIANT_MAP, (
                f"rule {rule_id} claims unknown invariant {label}"
            )
            assert rule_id in INVARIANT_MAP[label]["rules"], (
                f"rule {rule_id} claims invariant {label} but the map "
                f"does not list it there"
            )
    for label, entry in INVARIANT_MAP.items():
        for rule_id in entry["rules"]:
            assert label in all_rules()[rule_id].invariants, (
                f"map lists {rule_id} under invariant {label} but the "
                f"rule does not claim it"
            )


def test_every_rule_enforces_some_invariant():
    mapped = {r for entry in INVARIANT_MAP.values() for r in entry["rules"]}
    unmapped = set(all_rules()) - mapped
    assert not unmapped, f"rules enforcing no invariant: {sorted(unmapped)}"
