"""Tier-1 smoke for the ``repro.cli bench`` entry point.

Runs the full bench pipeline at tiny dimensions and asserts the
contract CI's scheduled benchmark job relies on: schema-valid
``BENCH_<topic>.json`` reports on disk for every topic and a working
``--diff``.
"""

from __future__ import annotations

import json

import pytest

from repro import bench
from repro.cli import main

pytestmark = pytest.mark.timeout(120)

TOPICS = ("hotpath", "traffic", "round", "listener", "fleet")


@pytest.fixture(scope="module")
def bench_run(tmp_path_factory):
    out = tmp_path_factory.mktemp("bench")
    rc = main(
        [
            "bench",
            "--dims", "32", "64",
            "--clients", "4",
            "--repeats", "1",
            "--traffic-dimension", "32",
            "--connections", "20",
            "--fleet-devices", "2000",
            "--fleet-cohort", "8",
            "--fleet-rounds", "6",
            "--out", str(out),
        ]
    )
    assert rc == 0
    return out


class TestBenchEntrypoint:
    def test_writes_every_topic(self, bench_run):
        for topic in TOPICS:
            assert bench.bench_path(bench_run, topic).exists()

    @pytest.mark.parametrize("topic", TOPICS)
    def test_reports_are_schema_valid(self, bench_run, topic):
        report = bench.load_bench(bench.bench_path(bench_run, topic))
        assert report["topic"] == topic
        assert report["metrics"]

    def test_hotpath_records_speedup_pairs(self, bench_run):
        m = bench.load_bench(bench.bench_path(bench_run, "hotpath"))["metrics"]
        for name in (
            "prg_expand_d64",
            "shamir_share",
            "shamir_reconstruct",
            "codec_encode_d64",
            "mask_accumulate_d64",
        ):
            assert f"{name}_reference_s" in m
            assert f"{name}_fast_s" in m

    def test_round_report_covers_requested_dims(self, bench_run):
        m = bench.load_bench(bench.bench_path(bench_run, "round"))["metrics"]
        for d in (32, 64):
            assert m[f"round_d{d}_wall_s"]["unit"] == "s"
            assert m[f"round_d{d}_aggregate_ok"]["value"] == 1

    def test_traffic_report_balances(self, bench_run):
        m = bench.load_bench(bench.bench_path(bench_run, "traffic"))["metrics"]
        assert m["aggregate_ok"]["value"] == 1
        assert (
            m["total_down_bytes"]["value"] + m["total_up_bytes"]["value"]
            == m["total_bytes"]["value"]
        )

    def test_listener_report_sustains_the_cohort(self, bench_run):
        report = bench.load_bench(bench.bench_path(bench_run, "listener"))
        m = report["metrics"]
        assert report["config"]["connections"] == 20
        assert m["connections"]["value"] == 20
        assert m["accept_rate_per_s"]["unit"] == "per_s"
        assert m["accounting_balanced"]["value"] == 1
        assert m["all_answered_ok"]["value"] == 1
        assert m["total_bytes"]["value"] > m["handshake_bytes"]["value"] > 0

    def test_fleet_report_scales_and_bounds_memory(self, bench_run):
        report = bench.load_bench(bench.bench_path(bench_run, "fleet"))
        m = report["metrics"]
        assert report["config"]["devices"] == 2000
        assert m["build_columnar_s"]["unit"] == "s"
        assert m["round_cost_fast_s"]["value"] > 0
        assert m["round_cost_reference_s"]["value"] > 0
        assert m["resident_profiles_bounded"]["value"] == 1
        # Correlated churn: the fast-uplink tail is measurably more
        # available than the slow tail.
        assert m["correlation_effect"]["value"] > 0
        # Scenario shapes, measured as excess dropout over the base
        # churn on identical cohorts: the diurnal trough adds churn its
        # peak doesn't, the flash crowd only inflates pre-join rounds,
        # and the outage only inflates its window (exact zeros outside).
        assert (
            m["diurnal_trough_excess"]["value"]
            > m["diurnal_peak_excess"]["value"]
        )
        assert m["flash_crowd_pre_join_excess"]["value"] > 0
        assert m["flash_crowd_post_join_excess"]["value"] == 0
        assert m["outage_window_excess"]["value"] > 0
        assert m["outage_outside_excess"]["value"] == 0

    def test_diff_reports_per_metric_deltas(self, bench_run, capsys):
        path = str(bench.bench_path(bench_run, "round"))
        rc = main(["bench", "--diff", path, path])
        assert rc == 0
        out = capsys.readouterr().out
        assert "round_d32_wall_s" in out
        assert "b/a" in out

    def test_diff_bench_rows(self, bench_run):
        path = bench.bench_path(bench_run, "round")
        rows = bench.diff_bench(path, path)
        assert rows
        for row in rows:
            assert row["delta"] == 0
            assert row["ratio"] == 1


class TestUnmaskBench:
    """The unmask plane topic (opt-in: not part of the default run)."""

    @pytest.fixture(scope="class")
    def unmask_run(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("bench-unmask")
        rc = main(
            [
                "bench",
                "--topics", "unmask",
                "--unmask-dim", "256",
                "--unmask-clients", "8",
                "--unmask-dropout", "0.25",
                "--unmask-workers", "1", "2",
                "--out", str(out),
            ]
        )
        assert rc == 0
        return out

    def test_not_in_default_topics(self, bench_run):
        assert not bench.bench_path(bench_run, "unmask").exists()

    def test_report_is_schema_valid(self, unmask_run):
        report = bench.load_bench(bench.bench_path(unmask_run, "unmask"))
        assert report["topic"] == "unmask"
        assert report["config"]["dim"] == 256
        assert report["config"]["prg_backend"]

    def test_fast_plane_is_bit_identical(self, unmask_run):
        m = bench.load_bench(bench.bench_path(unmask_run, "unmask"))["metrics"]
        assert m["parity_bit_identical"]["value"] == 1
        assert m["unmask_reference_s"]["value"] > 0
        for w in (1, 2):
            assert m[f"unmask_fast_w{w}_s"]["value"] > 0
            assert m[f"unmask_speedup_w{w}"]["unit"] == "x"


class TestBenchSchema:
    def test_validate_rejects_missing_metrics(self):
        with pytest.raises(ValueError):
            bench.validate_report(
                {
                    "schema_version": bench.SCHEMA_VERSION,
                    "topic": "x",
                    "created_unix": 0,
                    "config": {},
                    "metrics": {},
                }
            )

    def test_validate_rejects_unknown_unit(self):
        report = bench.make_report("x", {}, {"m": {"value": 1.0, "unit": "s"}})
        report["metrics"]["m"]["unit"] = "furlongs"
        with pytest.raises(ValueError):
            bench.validate_report(report)

    def test_validate_rejects_wrong_schema_version(self, tmp_path):
        report = bench.make_report("x", {}, {"m": {"value": 1.0, "unit": "s"}})
        report["schema_version"] = 999
        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps(report))
        with pytest.raises(ValueError):
            bench.load_bench(path)
