"""Device profiles: directional bandwidth and fleet construction."""

import numpy as np
import pytest

from repro.fleet import (
    DeviceProfile,
    Fleet,
    FleetConfig,
    ProfileColumns,
    heterogeneous_fleet,
    heterogeneous_fleet_columns,
    heterogeneous_fleet_reference,
)
from repro.sim.network import ClientDevice


class TestDeviceProfile:
    def test_validation(self):
        with pytest.raises(ValueError):
            DeviceProfile(0, compute_factor=0.5, uplink_bps=1e6, downlink_bps=1e6)
        with pytest.raises(ValueError):
            DeviceProfile(0, compute_factor=1.0, uplink_bps=0.0, downlink_bps=1e6)
        with pytest.raises(ValueError):
            DeviceProfile(0, compute_factor=1.0, uplink_bps=1e6, downlink_bps=-1.0)

    def test_directional_transfer_times(self):
        d = DeviceProfile(0, compute_factor=1.0, uplink_bps=1e6, downlink_bps=4e6)
        assert d.upload_seconds(2e6) == pytest.approx(2.0)
        assert d.download_seconds(2e6) == pytest.approx(0.5)
        assert not d.is_symmetric

    def test_symmetric_link_is_bit_identical_to_single_division(self):
        """The pre-refactor formula was (req + resp) / bandwidth — one
        division.  A symmetric profile must reproduce it exactly, not
        via two separately-rounded divisions."""
        d = DeviceProfile.symmetric(0, bandwidth_bps=3.0)
        down, up = 1_000_003, 777_777
        assert d.link_seconds(down, up) == (down + up) / 3.0
        assert d.is_symmetric and d.bandwidth_bps == 3.0

    def test_asymmetric_link_charges_each_direction(self):
        d = DeviceProfile(0, compute_factor=1.0, uplink_bps=10.0, downlink_bps=40.0)
        assert d.link_seconds(400, 100) == 400 / 40.0 + 100 / 10.0

    def test_legacy_client_device_is_symmetric(self):
        d = ClientDevice(3, compute_factor=2.0, bandwidth_bps=5e5)
        assert isinstance(d, DeviceProfile)
        assert d.uplink_bps == d.downlink_bps == 5e5
        assert d.bandwidth_bps == 5e5
        assert d.compute_factor == 2.0


class TestHeterogeneousFleet:
    def test_default_fleet_is_symmetric(self):
        fleet = heterogeneous_fleet(30, seed=2)
        assert all(d.is_symmetric for d in fleet)

    def test_downlink_range_leaves_uplinks_and_compute_untouched(self):
        """The asymmetric draw rides its own rng stream: uplink and
        compute profiles are bit-identical to the symmetric fleet."""
        base = heterogeneous_fleet(25, seed=7)
        asym = heterogeneous_fleet(
            25, seed=7, downlink_range=(100e6 / 8, 1000e6 / 8)
        )
        assert [d.uplink_bps for d in base] == [d.uplink_bps for d in asym]
        assert [d.compute_factor for d in base] == [d.compute_factor for d in asym]
        lo, hi = 100e6 / 8, 1000e6 / 8
        assert all(lo <= d.downlink_bps <= hi for d in asym)
        assert not all(d.is_symmetric for d in asym)

    def test_asymmetric_fleet_deterministic(self):
        kwargs = dict(seed=4, downlink_range=(1e6, 2e6))
        a = heterogeneous_fleet(12, **kwargs)
        b = heterogeneous_fleet(12, **kwargs)
        assert [d.downlink_bps for d in a] == [d.downlink_bps for d in b]


class TestColumnarParity:
    """The columnar store is a representation change, not a model change:
    boxing any row must reproduce the retained reference builder's
    profile bit-for-bit (dataclass equality compares every float)."""

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(seed=3),
            dict(seed=11, downlink_range=(1e6, 2e6)),
            dict(seed=0, zipf_a=1.6, max_slowdown=3.0),
        ],
    )
    def test_columns_bit_identical_to_reference(self, kwargs):
        ref = heterogeneous_fleet_reference(40, **kwargs)
        cols = heterogeneous_fleet_columns(40, **kwargs)
        assert [cols.device(i) for i in range(40)] == ref

    def test_boxing_wrapper_matches_reference(self):
        assert heterogeneous_fleet(25, seed=6) == (
            heterogeneous_fleet_reference(25, seed=6)
        )

    def test_fleet_build_devices_match_reference(self):
        """Fleet.build goes columnar end to end; every lazily boxed
        device must equal the boxed builder's output for the seed."""
        fleet = Fleet.build(30, FleetConfig(), seed=13)
        assert [fleet.device(i) for i in range(30)] == (
            heterogeneous_fleet_reference(30, seed=13)
        )

    def test_columns_validation(self):
        ones = np.ones(3)
        with pytest.raises(ValueError, match="at least one"):
            ProfileColumns(
                compute_factor=np.empty(0),
                uplink_bps=np.empty(0),
                downlink_bps=np.empty(0),
            )
        with pytest.raises(ValueError, match="equal length"):
            ProfileColumns(
                compute_factor=ones, uplink_bps=np.ones(2), downlink_bps=ones
            )
        with pytest.raises(ValueError, match="compute_factor"):
            ProfileColumns(
                compute_factor=np.array([1.0, 0.5, 1.0]),
                uplink_bps=ones,
                downlink_bps=ones,
            )
        with pytest.raises(ValueError, match="bandwidth"):
            ProfileColumns(
                compute_factor=ones,
                uplink_bps=np.array([1.0, 0.0, 1.0]),
                downlink_bps=ones,
            )
