"""Fleet-driven transports: one link model, three carriers.

The acceptance bar for the directional refactor: the same asymmetric
fleet must produce *identical* traces — per-direction byte splits and
virtual latencies — whether the round runs in-process with codec-sized
payloads, behind the in-process serialization boundary, or over real
framed TCP sockets.
"""

import numpy as np
import pytest

from repro.engine import RoundEngine, measured_nbytes
from repro.fleet import DeviceProfile, Fleet, FleetNetworkTransport, fleet_transport
from tests.engine.test_round_engine import SumClient, SumServer


def asymmetric_fleet():
    return Fleet([
        DeviceProfile(0, compute_factor=1.0, uplink_bps=1e4, downlink_bps=8e4),
        DeviceProfile(1, compute_factor=1.0, uplink_bps=1e6, downlink_bps=4e6),
        DeviceProfile(2, compute_factor=1.0, uplink_bps=5e5, downlink_bps=5e5),
    ])


def run_round(transport):
    engine = RoundEngine(transport=transport)
    clients = [SumClient(u, np.ones(16) * (u + 1)) for u in (0, 1, 2)]
    result = engine.run_round_sync(SumServer(), clients)
    np.testing.assert_allclose(result, np.ones(16) * 6.0)
    return engine.trace


class TestFleetNetworkTransport:
    def test_latency_is_per_direction_per_client(self):
        fleet = asymmetric_fleet()
        trace = run_round(FleetNetworkTransport(fleet))
        encode = trace.round_spans(0)[0]
        down = measured_nbytes(("encode", None))
        up = measured_nbytes(np.ones(16) * 1.0)
        worst = max(
            fleet.link_seconds(u, down, up) for u in (0, 1, 2)
        )
        assert encode.duration == worst
        # Slow-uplink client 0 gates: its uplink term dominates.
        assert worst == fleet.link_seconds(0, down, up)
        assert encode.down_bytes == 3 * down
        assert encode.up_bytes == 3 * up

    def test_unknown_transport_name_rejected(self):
        with pytest.raises(ValueError, match="unknown transport"):
            fleet_transport("carrier-pigeon", asymmetric_fleet())


@pytest.mark.timeout(120)
class TestOneLinkModelThreeCarriers:
    def test_traces_identical_across_backends(self):
        """Same fleet, same round → identical spans (labels, begin,
        finish, down, up) on all three envelope-identical backends."""
        fleet = asymmetric_fleet()
        traces = {
            name: run_round(fleet_transport(name, fleet))
            for name in ("inprocess", "serialized", "sockets")
        }
        as_tuples = {
            name: [
                (s.label, s.resource, s.begin, s.finish,
                 s.down_bytes, s.up_bytes)
                for s in trace.spans
            ]
            for name, trace in traces.items()
        }
        assert as_tuples["inprocess"] == as_tuples["serialized"]
        assert as_tuples["serialized"] == as_tuples["sockets"]
        # And the round genuinely moved directional bytes.
        split = traces["sockets"].round_traffic_split(0)
        assert split.down > 0 and split.up > 0


@pytest.mark.timeout(120)
class TestWebSocketCarrier:
    def test_ws_trace_equals_fleet_oracle_with_overhead(self):
        """The fourth carrier prices its own (honestly larger) framed
        bytes on the same fleet links: its trace — spans *and* virtual
        latencies — equals the offline FleetNetworkTransport oracle
        carrying the documented RFC 6455 framing overhead."""
        from repro.engine import ws_envelope_overhead

        fleet = asymmetric_fleet()
        ws_trace = run_round(fleet_transport("websocket", fleet))
        oracle_trace = run_round(
            FleetNetworkTransport(fleet, overhead_fn=ws_envelope_overhead)
        )
        assert [
            (s.label, s.resource, s.begin, s.finish, s.down_bytes, s.up_bytes)
            for s in ws_trace.spans
        ] == [
            (s.label, s.resource, s.begin, s.finish, s.down_bytes, s.up_bytes)
            for s in oracle_trace.spans
        ]

    def test_ws_carrier_charges_more_bytes_to_the_same_links(self):
        """WS framing rides the same per-direction links, so the
        carrier's comm stages take (slightly) longer than framed TCP —
        more bytes over the same bandwidth, never fewer."""
        fleet = asymmetric_fleet()
        tcp = run_round(fleet_transport("sockets", fleet))
        ws = run_round(fleet_transport("websocket", fleet))
        tcp_split = tcp.round_traffic_split(0)
        ws_split = ws.round_traffic_split(0)
        assert ws_split.down > tcp_split.down
        assert ws_split.up > tcp_split.up
        assert ws.completion_time > tcp.completion_time
