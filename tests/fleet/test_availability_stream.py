"""Lazy session-stream availability, correlation, and churn scenarios."""

import numpy as np
import pytest

from repro.fleet import (
    AlwaysAvailable,
    BehaviorTrace,
    DiurnalWave,
    FlashCrowd,
    RegionalOutage,
    SessionStream,
    TraceDrivenDropout,
    build_availability,
)
from repro.fleet.availability import DENSE_TRACE_MAX_CLIENTS


class TestSessionStream:
    def test_deterministic_per_seed(self):
        a = SessionStream(60, seed=4)
        b = SessionStream(60, seed=4)
        sampled = list(range(20))
        for r in (0, 3, 17):
            assert a.dropped(sampled, r) == b.dropped(sampled, r)

    def test_rounds_can_be_queried_out_of_order(self):
        """Timelines extend lazily but a (client, round) answer is a
        pure function of the seed, whatever order rounds arrive in."""
        a = SessionStream(30, seed=7)
        b = SessionStream(30, seed=7)
        forward = [a.available(5, r) for r in range(40)]
        backward = [b.available(5, r) for r in reversed(range(40))]
        assert forward == backward[::-1]

    def test_eviction_regenerates_identically(self):
        """An LRU-evicted device re-derives the same timeline from its
        own rng stream — the cache bounds memory, not answers."""
        small = SessionStream(50, seed=9, cache_size=2)
        fresh = SessionStream(50, seed=9)
        want = [fresh.available(0, r) for r in range(12)]
        assert [small.available(0, r) for r in range(12)] == want
        for c in range(1, 50):  # churn client 0 out of the cache
            small.available(c, 0)
        assert small.resident_devices <= 2
        assert [small.available(0, r) for r in range(12)] == want

    def test_resident_devices_track_cohort_not_population(self):
        stream = SessionStream(10_000, seed=1, cache_size=64)
        for c in range(500):
            stream.available(c, 0)
        assert stream.resident_devices <= 64

    def test_marginal_parity_with_dense_trace(self):
        """Same generative model, different derivation: the per-round
        dropout-rate distribution of a sampled cohort must match the
        dense BehaviorTrace reference statistically."""
        bt = BehaviorTrace(400, 60, seed=2)
        ss = SessionStream(400, seed=2)
        r_dense = bt.dropout_rates(32, seed=12)
        r_lazy = ss.dropout_rates(32, 60, seed=12)
        assert abs(r_dense.mean() - r_lazy.mean()) < 0.08
        assert abs(r_dense.std() - r_lazy.std()) < 0.05
        # Both churn: Fig.-1a rates swing round to round.
        assert len({round(r, 3) for r in r_lazy}) > 3

    def test_validation(self):
        with pytest.raises(ValueError):
            SessionStream(0)
        with pytest.raises(ValueError):
            SessionStream(5, mean_session=0.0)
        with pytest.raises(ValueError):
            SessionStream(5, correlation=1.5, link_quantiles=np.full(5, 0.5))
        with pytest.raises(ValueError, match="link_quantiles"):
            SessionStream(5, correlation=0.5)
        with pytest.raises(ValueError):
            SessionStream(5, correlation=0.5, link_quantiles=np.full(3, 0.5))


class TestCorrelatedAvailability:
    def test_slow_links_are_flaky(self):
        """Positive correlation: low bandwidth quantiles get low online
        propensity (and vice versa) — slow devices are also volatile."""
        n = 300
        q = (np.arange(n) + 0.5) / n  # quantile i/n = bandwidth rank
        stream = SessionStream(n, seed=2, correlation=0.9, link_quantiles=q)
        low = np.mean([stream.propensity(i) for i in range(60)])
        high = np.mean([stream.propensity(i) for i in range(n - 60, n)])
        assert low < 0.35 < 0.65 < high

    def test_negative_correlation_flips_direction(self):
        n = 300
        q = (np.arange(n) + 0.5) / n
        stream = SessionStream(n, seed=2, correlation=-0.9, link_quantiles=q)
        low = np.mean([stream.propensity(i) for i in range(60)])
        high = np.mean([stream.propensity(i) for i in range(n - 60, n)])
        assert high < low

    def test_copula_preserves_beta_marginal(self):
        """The coupling reorders who is flaky, not how flaky the fleet
        is: the propensity distribution stays the Beta marginal
        (mean 0.5 for the default volatility (1.2, 1.2))."""
        n = 400
        q = (np.arange(n) + 0.5) / n
        coupled = SessionStream(n, seed=3, correlation=0.8, link_quantiles=q)
        free = SessionStream(n, seed=3)
        p_coupled = np.array([coupled.propensity(i) for i in range(n)])
        p_free = np.array([free.propensity(i) for i in range(n)])
        assert abs(p_coupled.mean() - p_free.mean()) < 0.06
        assert abs(p_coupled.mean() - 0.5) < 0.06

    def test_zero_correlation_matches_uncorrelated_stream(self):
        """correlation=0.0 must not even consume the copula's rng draw —
        the uncorrelated path is the retained behaviour."""
        n = 50
        q = (np.arange(n) + 0.5) / n
        a = SessionStream(n, seed=5, correlation=0.0, link_quantiles=q)
        b = SessionStream(n, seed=5)
        assert [a.available(c, r) for c in range(n) for r in range(8)] == [
            b.available(c, r) for c in range(n) for r in range(8)
        ]


class TestDropoutRatesVectorization:
    def test_pinned_to_reference_loop(self):
        """The batched gather must consume the sampling rng exactly like
        the retained per-round loop — bit-equal output."""
        trace = BehaviorTrace(80, 40, seed=6)
        for seed in (0, 3):
            fast = trace.dropout_rates(16, seed=seed)
            ref = trace.dropout_rates_reference(16, seed=seed)
            assert np.array_equal(fast, ref)

    def test_oversized_sample_clamps_to_population(self):
        trace = BehaviorTrace(10, 12, seed=1)
        assert np.array_equal(
            trace.dropout_rates(64, seed=2),
            trace.dropout_rates_reference(64, seed=2),
        )


class TestScenarios:
    def test_diurnal_wave_peaks_and_troughs(self):
        wave = DiurnalWave(AlwaysAvailable(), period=8, amplitude=0.8, seed=0)
        sampled = list(range(200))
        assert wave.dropped(sampled, 0) == set()  # peak: no extra churn
        assert wave.offline_rate(4) == pytest.approx(0.8)
        trough = len(wave.dropped(sampled, 4)) / len(sampled)
        assert 0.6 < trough < 1.0

    def test_diurnal_wave_composes_over_base(self):
        base = SessionStream(100, seed=3)
        wave = DiurnalWave(base, period=6, amplitude=1.0, seed=1)
        sampled = list(range(40))
        assert base.dropped(sampled, 2) <= wave.dropped(sampled, 2)

    def test_flash_crowd_joins_at_round(self):
        crowd = FlashCrowd(AlwaysAvailable(), 100, join_round=5, fraction=0.3)
        sampled = [10, 69, 70, 99]
        assert crowd.dropped(sampled, 0) == {70, 99}  # late cohort absent
        assert crowd.dropped(sampled, 4) == {70, 99}
        assert crowd.dropped(sampled, 5) == set()     # everyone joined

    def test_regional_outage_window(self):
        outage = RegionalOutage(
            AlwaysAvailable(), region=(20, 40), start_round=3, end_round=6
        )
        sampled = [5, 19, 20, 39, 40]
        assert outage.dropped(sampled, 2) == set()
        for r in (3, 4, 5):
            assert outage.dropped(sampled, r) == {20, 39}
        assert outage.dropped(sampled, 6) == set()

    def test_scenario_validation(self):
        with pytest.raises(ValueError):
            DiurnalWave(AlwaysAvailable(), period=0)
        with pytest.raises(ValueError):
            DiurnalWave(AlwaysAvailable(), amplitude=1.5)
        with pytest.raises(ValueError):
            FlashCrowd(AlwaysAvailable(), 10, join_round=2, fraction=0.0)
        with pytest.raises(ValueError):
            RegionalOutage(AlwaysAvailable(), region=(5, 5),
                           start_round=0, end_round=1)
        with pytest.raises(ValueError):
            RegionalOutage(AlwaysAvailable(), region=(0, 5),
                           start_round=2, end_round=2)


class TestBuildAvailabilitySwitching:
    def test_small_trace_stays_dense_reference(self):
        model = build_availability("trace", n_clients=50, horizon=10, seed=1)
        assert isinstance(model, TraceDrivenDropout)

    def test_large_trace_goes_lazy(self):
        model = build_availability(
            "trace", n_clients=DENSE_TRACE_MAX_CLIENTS + 1, horizon=10, seed=1
        )
        assert isinstance(model, SessionStream)

    def test_correlation_forces_lazy_model(self):
        n = 50
        q = (np.arange(n) + 0.5) / n
        model = build_availability(
            "trace", n_clients=n, horizon=10, seed=1,
            correlation=0.5, link_quantiles=q,
        )
        assert isinstance(model, SessionStream)
        assert model.correlation == 0.5

    def test_session_name_is_always_lazy(self):
        model = build_availability("session", n_clients=5, horizon=10, seed=1)
        assert isinstance(model, SessionStream)

    def test_fixed_rejects_correlation(self):
        with pytest.raises(ValueError, match="correlation"):
            build_availability(
                "fixed", n_clients=5, horizon=10,
                dropout_rate=0.1, correlation=0.5,
            )
