"""Fleet: availability derivation, directional round costs, config."""

import pytest

from repro.fleet import (
    AlwaysAvailable,
    DeviceProfile,
    Fleet,
    FleetConfig,
    FixedRateDropout,
    TraceDrivenDropout,
    build_availability,
)


def toy_fleet(availability=None):
    profiles = [
        DeviceProfile(0, compute_factor=1.0, uplink_bps=100.0, downlink_bps=400.0),
        DeviceProfile(1, compute_factor=4.0, uplink_bps=50.0, downlink_bps=200.0),
        DeviceProfile(2, compute_factor=2.0, uplink_bps=25.0, downlink_bps=800.0),
    ]
    return Fleet(profiles, availability)


class TestFleetQueries:
    def test_modular_device_lookup(self):
        fleet = toy_fleet()
        assert fleet.device(1).uplink_bps == 50.0
        # Unknown ids wrap onto the population (protocols shift ids).
        assert fleet.device(4).client_id == 1
        assert fleet.profiles_for([0, 5]) == {
            0: fleet.device(0), 5: fleet.device(5)
        }

    def test_modular_lookup_uses_cached_sorted_ids(self):
        """The fallback must not re-sort the profile dict per lookup —
        it sits on the per-frame pricing path — and the cache must be
        sort-equivalent regardless of construction order."""
        profiles = [
            DeviceProfile(
                i,
                compute_factor=1.0,
                uplink_bps=10.0 * (i + 1),
                downlink_bps=10.0 * (i + 1),
            )
            for i in (7, 0, 3)
        ]
        fleet = Fleet(profiles)
        assert fleet._sorted_ids == (0, 3, 7)
        # Modular wrap follows the sorted order, as before the cache.
        assert [fleet.device(100 + k).client_id for k in range(3)] == [
            (0, 3, 7)[(100 + k) % 3] for k in range(3)
        ]

    def test_id_offset_view_keeps_cache_consistent(self):
        """with_id_offset builds a shifted view whose sorted-key cache
        reflects the *shifted* ids, so its modular fallback agrees with
        recomputing from the shifted profile dict."""
        fleet = toy_fleet()
        shifted = fleet.with_id_offset(1)
        assert shifted._sorted_ids == tuple(sorted(shifted.profiles))
        # An id miss on the view wraps over the shifted key space.
        assert (
            shifted.device(99).client_id
            == shifted.profiles[shifted._sorted_ids[99 % 3]].client_id
        )

    def test_straggler_and_gating(self):
        fleet = toy_fleet()
        assert fleet.straggler_factor([0, 1, 2]) == 4.0
        # Broadcast gated by slowest downlink (client 1: 200 B/s).
        assert fleet.broadcast_seconds([0, 1, 2], 400) == pytest.approx(2.0)
        # Upload gated by slowest uplink (client 2: 25 B/s).
        assert fleet.upload_seconds([0, 1, 2], 100) == pytest.approx(4.0)
        with pytest.raises(ValueError):
            fleet.straggler_factor([])

    def test_link_seconds_uses_each_clients_own_links(self):
        fleet = toy_fleet()
        assert fleet.link_seconds(2, 800, 25) == pytest.approx(1.0 + 1.0)

    def test_round_cost_directional(self):
        fleet = toy_fleet()
        cost = fleet.round_cost([0, 1, 2], [0, 2], update_nbytes=400,
                                compute_seconds=1.5)
        assert cost.down_seconds == pytest.approx(2.0)      # slowest downlink
        assert cost.compute_seconds == pytest.approx(6.0)   # 1.5 × straggler 4
        assert cost.up_seconds == pytest.approx(16.0)       # 400 / 25
        assert cost.down_bytes == 3 * 400   # every sampled client downloads
        assert cost.up_bytes == 2 * 400     # only survivors upload
        assert cost.traffic_bytes == cost.down_bytes + cost.up_bytes
        assert cost.total_seconds == pytest.approx(2.0 + 6.0 + 16.0)

    def test_round_cost_no_survivors(self):
        cost = toy_fleet().round_cost([0, 1], [], update_nbytes=100)
        assert cost.up_seconds == 0.0 and cost.up_bytes == 0
        assert cost.down_bytes == 200


class TestAvailability:
    def test_default_is_always_available(self):
        fleet = toy_fleet()
        assert isinstance(fleet.availability, AlwaysAvailable)
        assert fleet.dropped([0, 1, 2], 0) == set()

    def test_fixed_availability_matches_legacy_dropout(self):
        """build_availability('fixed') must reproduce the session's old
        hard-wired FixedRateDropout draws exactly."""
        model = build_availability(
            "fixed", n_clients=30, horizon=10, dropout_rate=0.3, seed=5
        )
        legacy = FixedRateDropout(0.3, seed=5)
        sampled = list(range(12))
        for r in range(10):
            assert model.dropped(sampled, r) == legacy.dropped(sampled, r)

    def test_zero_rate_degenerates_to_always_available(self):
        model = build_availability("fixed", n_clients=5, horizon=3)
        assert isinstance(model, AlwaysAvailable)

    def test_trace_availability_churns(self):
        model = build_availability("trace", n_clients=40, horizon=30, seed=3)
        assert isinstance(model, TraceDrivenDropout)
        sampled = list(range(16))
        rates = [len(model.dropped(sampled, r)) / 16 for r in range(30)]
        # Fig.-1a shape: the rate actually swings round to round.
        assert len({round(r, 3) for r in rates}) > 3

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError, match="availability"):
            build_availability("weather", n_clients=4, horizon=2)


class TestFleetBuild:
    def test_build_is_deterministic(self):
        a = Fleet.build(20, FleetConfig(), dropout_rate=0.2, seed=9)
        b = Fleet.build(20, FleetConfig(), dropout_rate=0.2, seed=9)
        assert [a.device(i).uplink_bps for i in range(20)] == [
            b.device(i).uplink_bps for i in range(20)
        ]
        assert a.dropped(list(range(10)), 3) == b.dropped(list(range(10)), 3)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FleetConfig(availability="sometimes")
        with pytest.raises(ValueError):
            FleetConfig(max_slowdown=0.5)
        with pytest.raises(ValueError):
            FleetConfig(compute_seconds=-1.0)
        with pytest.raises(ValueError):
            FleetConfig(correlation=1.5)
        # The fixed-rate model has no per-device availability to couple.
        with pytest.raises(ValueError, match="correlation"):
            FleetConfig(availability="fixed", correlation=0.4)
        FleetConfig(availability="trace", correlation=0.4)
        FleetConfig(availability="session", correlation=-0.4)

    def test_empty_fleet_rejected(self):
        with pytest.raises(ValueError):
            Fleet([])


class TestIdOffset:
    def test_shifted_view_addresses_same_profiles(self):
        """Protocols that re-index clients (SecAgg's +1 Shamir shift)
        must keep pricing each client's frames on its own device."""
        fleet = toy_fleet()
        shifted = fleet.with_id_offset(1)
        for u in (0, 1, 2):
            assert shifted.device(u + 1) is fleet.device(u)
        assert shifted.availability is fleet.availability
        assert shifted.link_seconds(3, 100, 50) == fleet.link_seconds(2, 100, 50)

    def test_zero_offset_is_identity(self):
        fleet = toy_fleet()
        assert fleet.with_id_offset(0) is fleet

    def test_offset_view_is_o1_over_shared_store(self):
        """The view shifts addressing arithmetically; no profile dict is
        rebuilt and both views share one backing store (and LRU)."""
        fleet = toy_fleet()
        shifted = fleet.with_id_offset(5)
        assert shifted._store is fleet._store
        assert shifted.n_clients == fleet.n_clients
        assert shifted._sorted_ids == (5, 6, 7)

    def test_offset_views_compose(self):
        fleet = toy_fleet()
        twice = fleet.with_id_offset(2).with_id_offset(3)
        assert twice._store is fleet._store
        assert twice.device(5) is fleet.device(0)
        assert sorted(twice.profiles) == [5, 6, 7]


class TestFleetScale:
    def test_modular_fallback_at_huge_ids(self):
        """Oversampled ids far beyond the population wrap modularly —
        the exact legacy profiles[sorted_keys[id % n]] rule."""
        fleet = toy_fleet()
        huge = 10**12 + 1
        assert fleet.device(huge) is fleet.device(huge % 3)
        # On a shifted view the wrap applies to the as-addressed id.
        shifted = fleet.with_id_offset(1)
        assert shifted.device(huge).client_id == huge % 3
        # Non-contiguous populations wrap onto sorted order too.
        sparse = Fleet([
            DeviceProfile(i, compute_factor=1.0, uplink_bps=1.0 * (i + 1),
                          downlink_bps=1.0 * (i + 1))
            for i in (7, 0, 3)
        ])
        assert sparse.device(huge).client_id == (0, 3, 7)[huge % 3]

    def test_empty_cohort_value_errors(self):
        fleet = toy_fleet()
        with pytest.raises(ValueError, match="empty"):
            fleet.straggler_factor([])
        with pytest.raises(ValueError, match="empty"):
            fleet.broadcast_seconds([], 100)
        with pytest.raises(ValueError, match="empty"):
            fleet.upload_seconds([], 100)
        with pytest.raises(ValueError, match="empty"):
            fleet.round_cost([], [], 100)

    def test_vectorized_queries_match_per_device_loop(self):
        """The array reductions must agree bit-for-bit with querying
        boxed profiles one by one (same divisions, same max)."""
        fleet = Fleet.build(50, FleetConfig(compute_seconds=2.0), seed=3)
        sampled = [3, 17, 44, 61, 9]  # 61 oversamples and wraps
        nbytes = 12345.0
        assert fleet.straggler_factor(sampled) == max(
            fleet.device(u).compute_factor for u in sampled
        )
        assert fleet.broadcast_seconds(sampled, nbytes) == max(
            fleet.device(u).download_seconds(nbytes) for u in sampled
        )
        assert fleet.upload_seconds(sampled, nbytes) == max(
            fleet.device(u).upload_seconds(nbytes) for u in sampled
        )
        cost = fleet.round_cost(sampled, sampled[:3], int(nbytes))
        assert cost.up_seconds == max(
            fleet.device(u).upload_seconds(nbytes) for u in sampled[:3]
        )

    def test_resident_profiles_bounded_and_regenerable(self):
        """Boxed profiles live in an LRU: scanning more devices than the
        cache holds keeps residency bounded, and evicted profiles
        regenerate bit-identically from the columns."""
        fleet = Fleet.build(100, seed=1)
        first = fleet.device(0)
        fleet._store.cache_size = 10
        for i in range(100):
            fleet.device(i)
        assert fleet.resident_profiles <= 10
        again = fleet.device(0)  # evicted: re-boxed from the columns
        assert again is not first and again == first

    def test_lazy_profiles_view_keeps_mapping_contract(self):
        fleet = toy_fleet()
        view = fleet.profiles
        assert len(view) == 3
        assert list(view) == [0, 1, 2]
        assert view[1].uplink_bps == 50.0
        with pytest.raises(KeyError):
            view[9]
        assert dict(fleet.with_id_offset(2).profiles).keys() == {2, 3, 4}
