"""The Appendix-C schedule recurrence, optimizer, and round simulator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.pipeline.perf_model import build_dordis_perf_model
from repro.pipeline.scheduler import (
    build_schedule,
    completion_time,
    optimal_chunks,
)
from repro.pipeline.simulator import compare_plain_pipelined, simulate_round
from repro.pipeline.stages import DORDIS_STAGES, Resource, Stage


class TestScheduleRecurrence:
    def test_single_chunk_is_sequential_sum(self):
        """m = 1 (plain execution): completion = Στ_s."""
        times = [3.0, 1.0, 4.0, 1.0, 5.0]
        sched = build_schedule(DORDIS_STAGES, times, 1)
        assert sched.completion_time == pytest.approx(sum(times))

    def test_chunks_within_stage_are_sequential(self):
        sched = build_schedule(DORDIS_STAGES, [2.0] * 5, 3)
        for s in range(5):
            ivals = sched.stage_intervals(s)
            for (b1, f1), (b2, _) in zip(ivals, ivals[1:]):
                assert b2 >= f1 - 1e-12

    def test_chunk_follows_its_previous_stage(self):
        sched = build_schedule(DORDIS_STAGES, [2.0, 3.0, 1.0, 2.0, 1.0], 4)
        for s in range(1, 5):
            for c in range(4):
                assert sched.begin[s, c] >= sched.finish[s - 1, c] - 1e-12

    def test_same_resource_never_overlaps(self):
        """A resource serves one chunk at a time — across *all* stages
        using it (the constraint Appendix C's r_{s,c} enforces)."""
        sched = build_schedule(DORDIS_STAGES, [2.0, 3.0, 1.5, 2.5, 1.0], 5)
        for resource in Resource:
            intervals = []
            for s, stage in enumerate(DORDIS_STAGES):
                if stage.resource is resource:
                    intervals += sched.stage_intervals(s)
            intervals.sort()
            for (b1, f1), (b2, _) in zip(intervals, intervals[1:]):
                assert b2 >= f1 - 1e-12

    def test_earlier_same_resource_stage_has_priority(self):
        """Stage 4 (dispatch) cannot begin until stage 2 (upload) has
        finished its last chunk."""
        sched = build_schedule(DORDIS_STAGES, [1.0, 5.0, 1.0, 1.0, 1.0], 3)
        upload_done = sched.finish[1, 2]
        assert sched.begin[3, 0] >= upload_done - 1e-12

    def test_pipelining_beats_plain_for_balanced_stages(self):
        times = [2.0, 2.0, 2.0, 2.0, 2.0]
        plain = build_schedule(DORDIS_STAGES, times, 1).completion_time
        # With m chunks the same total work is split into per-chunk slices.
        per_chunk = [t / 4 for t in times]
        piped = build_schedule(DORDIS_STAGES, per_chunk, 4).completion_time
        assert piped < plain

    @given(
        n_chunks=st.integers(min_value=1, max_value=8),
        data=st.data(),
    )
    @settings(max_examples=40)
    def test_schedule_invariants_random_times(self, n_chunks, data):
        times = data.draw(
            st.lists(
                st.floats(min_value=0.0, max_value=10.0),
                min_size=5,
                max_size=5,
            )
        )
        sched = build_schedule(DORDIS_STAGES, times, n_chunks)
        # Finishing times are begin + τ, and the matrix is monotone per
        # stage and per chunk.
        for s in range(5):
            np.testing.assert_allclose(
                sched.finish[s] - sched.begin[s], times[s], atol=1e-9
            )
        assert sched.completion_time >= max(times) - 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            build_schedule(DORDIS_STAGES, [1.0] * 4, 1)
        with pytest.raises(ValueError):
            build_schedule(DORDIS_STAGES, [1.0] * 5, 0)
        with pytest.raises(ValueError):
            build_schedule(DORDIS_STAGES, [1.0, -1.0, 1.0, 1.0, 1.0], 1)

    def test_resource_busy_time(self):
        sched = build_schedule(DORDIS_STAGES, [1.0, 2.0, 3.0, 4.0, 5.0], 2)
        busy = sched.resource_busy_time()
        assert busy[Resource.C_COMP] == pytest.approx(2 * (1.0 + 5.0))
        assert busy[Resource.COMM] == pytest.approx(2 * (2.0 + 4.0))
        assert busy[Resource.S_COMP] == pytest.approx(2 * 3.0)


class TestOptimalChunks:
    def test_finds_interior_optimum(self):
        """With real Eq.-3 tradeoffs the optimum is neither 1 nor max."""
        model = build_dordis_perf_model(100, 11_000_000)
        m_star, t_star = optimal_chunks(model, 11_000_000, max_chunks=20)
        assert 1 < m_star <= 20
        assert t_star <= completion_time(model, 11_000_000, 1)

    def test_optimum_is_argmin_over_range(self):
        model = build_dordis_perf_model(16, 2_000_000)
        m_star, t_star = optimal_chunks(model, 2_000_000, max_chunks=12)
        times = [completion_time(model, 2_000_000, m) for m in range(1, 13)]
        assert t_star == pytest.approx(min(times))
        assert times[m_star - 1] == pytest.approx(t_star)

    def test_single_chunk_allowed(self):
        model = build_dordis_perf_model(4, 100)
        m_star, _ = optimal_chunks(model, 100, max_chunks=1)
        assert m_star == 1

    def test_invalid_range(self):
        model = build_dordis_perf_model(4, 100)
        with pytest.raises(ValueError):
            optimal_chunks(model, 100, max_chunks=0)


class TestSimulator:
    def test_round_timing_shares(self):
        timing = simulate_round(
            build_dordis_perf_model(16, 1_000_000), 1_000_000, training_time=60.0
        )
        assert timing.total == pytest.approx(
            timing.aggregation_time + 60.0
        )
        assert 0 < timing.aggregation_share < 1

    def test_speedup_at_least_one(self):
        model = build_dordis_perf_model(16, 11_000_000)
        _, _, speedup = compare_plain_pipelined(model, 11_000_000)
        assert speedup >= 1.0

    def test_fig10_shape_larger_models_gain_more(self):
        """§6.4 'Dordis Gains More Speedup with Larger Models'."""
        def speedup(d):
            model = build_dordis_perf_model(16, d)
            return compare_plain_pipelined(model, d)[2]

        assert speedup(20_000_000) > speedup(1_000_000)

    def test_fig10_shape_more_clients_gain_more(self):
        """§6.4 'Dordis Scales with Number of Sampled Clients'."""
        def speedup(n):
            model = build_dordis_perf_model(n, 11_000_000)
            return compare_plain_pipelined(model, 11_000_000)[2]

        assert speedup(100) > speedup(16)

    def test_fig10_speedup_band(self):
        """All paper configurations speed up by 1.1–2.5×."""
        for n, d in [(16, 11_000_000), (16, 20_000_000), (100, 1_000_000),
                     (100, 11_000_000)]:
            for xn in (False, True):
                model = build_dordis_perf_model(n, d, xnoise=xn)
                _, _, s = compare_plain_pipelined(model, d)
                assert 1.0 <= s <= 2.6
